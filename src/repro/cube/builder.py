"""SegregationDataCubeBuilder: itemset-driven cube materialisation.

This is the core algorithm of the paper (§2, implementing the JIIS
companion's SegregationDataCubeBuilder): because segregation indexes are
**not additive**, a cell cannot be rolled up from finer cells; instead,

1. ``finalTable`` is encoded as a transaction database (one transaction
   per individual×unit row; items = SA/CA ``attribute=value`` pairs;
   the unit id rides along as a transaction label);
2. frequent itemsets are mined over the items — the frequency threshold
   is the discovery guard-rail: cells describing fewer than
   ``min_minority`` individuals are statistically meaningless and
   pruned *with* their refinements, which is what makes the cube
   tractable compared to full enumeration (benchmark E10);
3. every mined itemset ``X`` splits uniquely into SA part ``A`` and CA
   part ``B`` — the cell coordinates.  The cell's population counts come
   from the covers: ``t_i`` = per-unit counts of ``cover(B)``, ``m_i`` =
   per-unit counts of ``cover(X)``; every requested segregation index is
   evaluated on those vectors.

Covers are :class:`~repro.itemsets.coverset.Cover` objects (packed
``uint64`` bitmaps by default; ``codec`` selects the representation),
and per-unit splitting runs on the database's precomputed unit→rows
grouping — the builder never touches dense per-transaction boolean
arrays.

In ``closed`` mode only closed coordinates are materialised (non-closed
itemsets select exactly the same minority as their closure); the cube
carries a resolver that answers any other point query exactly from the
item covers, so no information is lost.
"""

from __future__ import annotations

import time
from collections.abc import Iterable

import numpy as np

from repro.cube.cell import CellStats
from repro.cube.coordinates import CellKey
from repro.cube.cube import CubeMetadata, SegregationCube
from repro.errors import CubeError
from repro.etl.schema import Schema
from repro.etl.table import Table
from repro.indexes.base import IndexSpec, resolve_indexes
from repro.indexes.counts import UnitCounts
from repro.itemsets.closed import filter_closed
from repro.itemsets.coverset import Cover
from repro.itemsets.eclat import mine_eclat, mine_eclat_typed
from repro.itemsets.miner import absolute_minsup
from repro.itemsets.transactions import TransactionDatabase, encode_table

Itemset = frozenset[int]


class SegregationDataCubeBuilder:
    """Builds a :class:`~repro.cube.cube.SegregationCube` from ``finalTable``.

    Parameters
    ----------
    indexes:
        Index short names (default: the six SCube indexes).
    min_population:
        Minimum context size ``T`` for a cell to exist (absolute count, or
        a fraction of the table in ``(0,1)``).
    min_minority:
        Minimum minority size ``M`` for a cell to exist.
    max_sa_items / max_ca_items:
        Caps on coordinate granularity (None = unbounded).
    mode:
        ``"all"`` materialises every frequent cell; ``"closed"``
        materialises closed coordinates only and resolves other queries
        lazily (the JIIS efficiency solution).
    backend:
        Mining backend for the support-only passes (``eclat`` /
        ``fpgrowth`` / ``apriori``); covers always come from eclat.
    codec:
        Cover representation used when encoding the table
        (``packed`` / ``bool`` / ``ewah``); results are identical
        across codecs.
    """

    def __init__(
        self,
        indexes: "list[str] | None" = None,
        min_population: "int | float" = 20,
        min_minority: "int | float" = 5,
        max_sa_items: "int | None" = None,
        max_ca_items: "int | None" = None,
        mode: str = "all",
        backend: str = "eclat",
        codec: str = "packed",
    ):
        if mode not in ("all", "closed"):
            raise CubeError(f"mode must be 'all' or 'closed', got {mode!r}")
        self.indexes: list[IndexSpec] = resolve_indexes(indexes)
        self.min_population = min_population
        self.min_minority = min_minority
        self.max_sa_items = max_sa_items
        self.max_ca_items = max_ca_items
        self.mode = mode
        self.backend = backend
        self.codec = codec

    # ------------------------------------------------------------------

    def build(self, table: Table, schema: Schema) -> SegregationCube:
        """Encode, mine and fill the cube."""
        if not schema.sa_names:
            raise CubeError("schema declares no segregation attributes")
        schema.unit_name  # raises SchemaError when missing
        db = encode_table(table, schema, codec=self.codec)
        if len(db) == 0:
            raise CubeError("finalTable is empty")
        return self.build_from_transactions(db)

    def build_from_transactions(self, db: TransactionDatabase) -> SegregationCube:
        """Build from an already-encoded transaction database."""
        if db.units is None:
            raise CubeError("transaction database has no unit labels")
        started = time.perf_counter()
        minsup_pop = absolute_minsup(self.min_population, len(db))
        minsup_min = absolute_minsup(self.min_minority, len(db))
        n_units = db.n_units

        # Pass 1 — contexts: frequent CA-only itemsets with covers.
        context_covers = mine_eclat(
            db,
            minsup_pop,
            items=db.dictionary.ca_ids,
            max_len=self.max_ca_items,
            with_covers=True,
        )
        context_covers[frozenset()] = db.full_cover()
        context_tvecs = {
            b: db.unit_counts(cover) for b, cover in context_covers.items()
        }

        # Pass 2 — candidate cells: frequent typed itemsets with covers,
        # DFS constrained to the coordinate lattice (at most max_sa_items
        # SA items and max_ca_items CA items).  Mined at the smaller of
        # the two thresholds so that context-only cells (SA part empty,
        # filtered by min_population later) are not lost when
        # min_minority exceeds min_population.
        mixed_minsup = min(minsup_min, minsup_pop)
        mixed_covers = mine_eclat_typed(
            db,
            mixed_minsup,
            sa_ids=db.dictionary.sa_ids,
            ca_ids=db.dictionary.ca_ids,
            max_sa=self.max_sa_items,
            max_ca=self.max_ca_items,
        )
        if self.mode == "closed":
            supports = {k: v.support() for k, v in mixed_covers.items()}
            closed = filter_closed(supports)
            kept = {k: v for k, v in mixed_covers.items() if k in closed}
            kept[frozenset()] = mixed_covers[frozenset()]
            mixed_covers = kept

        cells: dict[CellKey, CellStats] = {}
        for itemset, cover in mixed_covers.items():
            sa_part, ca_part = db.dictionary.split(itemset)
            if self.max_sa_items is not None and len(sa_part) > self.max_sa_items:
                continue
            if self.max_ca_items is not None and len(ca_part) > self.max_ca_items:
                continue
            tvec = context_tvecs.get(ca_part)
            if tvec is None:
                # Context below the population threshold: no cell.
                continue
            stats = self._make_cell(
                (sa_part, ca_part), cover, tvec, db, minsup_pop, minsup_min
            )
            if stats is not None:
                cells[stats.key] = stats

        metadata = CubeMetadata(
            index_names=[spec.name for spec in self.indexes],
            min_population=minsup_pop,
            min_minority=minsup_min,
            n_rows=len(db),
            n_units=n_units,
            mode=self.mode,
            backend=self.backend,
            build_seconds=time.perf_counter() - started,
            extra={
                "n_contexts": len(context_covers),
                "n_mined_itemsets": len(mixed_covers),
            },
        )
        resolver = _LazyResolver(self, db, minsup_pop, minsup_min)
        return SegregationCube(cells, db.dictionary, metadata, resolver=resolver)

    # ------------------------------------------------------------------

    def _make_cell(
        self,
        key: CellKey,
        minority_cover: Cover,
        context_tvec: np.ndarray,
        db: TransactionDatabase,
        minsup_pop: int,
        minsup_min: int,
    ) -> "CellStats | None":
        """Fill one cell from covers; None when below thresholds."""
        population = int(context_tvec.sum())
        if population < minsup_pop:
            return None
        sa_part, _ = key
        if not sa_part:
            # Context-only navigation cell: indexes undefined by design.
            return CellStats(
                key=key,
                population=population,
                minority=population,
                n_units=int((context_tvec > 0).sum()),
                indexes={spec.name: float("nan") for spec in self.indexes},
            )
        mvec = db.unit_counts(minority_cover)
        minority = int(mvec.sum())
        if minority < minsup_min:
            return None
        counts = UnitCounts(context_tvec, mvec)
        indexes = {spec.name: spec.compute(counts) for spec in self.indexes}
        return CellStats(
            key=key,
            population=population,
            minority=minority,
            n_units=int((context_tvec > 0).sum()),
            indexes=indexes,
        )


class _LazyResolver:
    """Answers point queries for cells absent from the materialised cube.

    Works directly on the item covers: exact, and O(|items| * rows) per
    query.  Returns None when the queried cell is below the builder's
    thresholds (so lazy answers agree with materialisation).
    """

    def __init__(
        self,
        builder: SegregationDataCubeBuilder,
        db: TransactionDatabase,
        minsup_pop: int,
        minsup_min: int,
    ):
        self._builder = builder
        self._db = db
        self._minsup_pop = minsup_pop
        self._minsup_min = minsup_min

    def __call__(self, key: CellKey) -> "CellStats | None":
        sa_part, ca_part = key
        context_cover = self._db.cover_of(ca_part)
        tvec = self._db.unit_counts(context_cover)
        minority_cover = (
            context_cover & self._db.cover_of(sa_part) if sa_part
            else context_cover
        )
        return self._builder._make_cell(
            key, minority_cover, tvec, self._db, self._minsup_pop,
            self._minsup_min
        )


def build_cube(
    table: Table,
    schema: Schema,
    indexes: "list[str] | None" = None,
    min_population: "int | float" = 20,
    min_minority: "int | float" = 5,
    max_sa_items: "int | None" = None,
    max_ca_items: "int | None" = None,
    mode: str = "all",
    codec: str = "packed",
) -> SegregationCube:
    """One-call convenience wrapper around the builder."""
    builder = SegregationDataCubeBuilder(
        indexes=indexes,
        min_population=min_population,
        min_minority=min_minority,
        max_sa_items=max_sa_items,
        max_ca_items=max_ca_items,
        mode=mode,
        codec=codec,
    )
    return builder.build(table, schema)
