"""SegregationDataCubeBuilder: itemset-driven cube materialisation.

This is the core algorithm of the paper (§2, implementing the JIIS
companion's SegregationDataCubeBuilder): because segregation indexes are
**not additive**, a cell cannot be rolled up from finer cells; instead,

1. ``finalTable`` is encoded as a transaction database (one transaction
   per individual×unit row; items = SA/CA ``attribute=value`` pairs;
   the unit id rides along as a transaction label);
2. frequent itemsets are mined over the items — the frequency threshold
   is the discovery guard-rail: cells describing fewer than
   ``min_minority`` individuals are statistically meaningless and
   pruned *with* their refinements, which is what makes the cube
   tractable compared to full enumeration (benchmark E10);
3. every mined itemset ``X`` splits uniquely into SA part ``A`` and CA
   part ``B`` — the cell coordinates.  The cell's population counts come
   from the covers: ``t_i`` = per-unit counts of ``cover(B)``, ``m_i`` =
   per-unit counts of ``cover(X)``; every requested segregation index is
   evaluated on those vectors.

The fill stage is **columnar** by default (``engine="columnar"``): all
candidate cells are counted at once through
:meth:`~repro.itemsets.transactions.TransactionDatabase.unit_counts_many`
(one grouped, chunked pass producing the ``(n_cells, n_units)`` minority
matrix), and every index is evaluated per *context* through its batched
kernel (:meth:`~repro.indexes.base.IndexSpec.compute_batch`) — one
vectorized call over all cells sharing a context instead of one Python
call per cell.  Results land directly in the cube's struct-of-arrays
:class:`~repro.cube.table.CellTable`; they are bit-identical to the
retained per-cell reference path (``engine="percell"``), which benchmark
E17 uses as its baseline.  Per-context populations and unit counts are
computed once per context, never re-derived per cell, and context
covers below ``min_population`` are discarded before any per-unit
counting happens.

A multiprocess variant (``engine="parallel"``, :mod:`repro.cube.parallel`)
partitions the context groups across workers; each worker runs the exact
same phases B/C (the shared :func:`eval_context_block`) over shared-memory
cover words, so the parallel cube is bit-exact against the columnar one.

In ``closed`` mode only closed coordinates are materialised (non-closed
itemsets select exactly the same minority as their closure); the cube
carries a resolver that answers any other point query exactly from the
item covers, so no information is lost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.cube.cell import CellStats
from repro.cube.coordinates import CellKey
from repro.cube.cube import CubeMetadata, SegregationCube
from repro.cube.table import CellTable
from repro.errors import CubeError
from repro.etl.schema import Schema
from repro.etl.table import Table
from repro.indexes.base import IndexSpec, resolve_indexes
from repro.indexes.counts import UnitCounts
from repro.itemsets.closed import filter_closed
from repro.itemsets.coverset import Cover, cover_digest
from repro.itemsets.eclat import mine_eclat, mine_eclat_typed
from repro.itemsets.miner import absolute_minsup
from repro.itemsets.transactions import TransactionDatabase, encode_table

Itemset = frozenset[int]

#: Cell-count budget of one columnar fill batch, in int64 matrix
#: entries (~32 MB): batches hold at most this many cells x units.
_FILL_BATCH_CELLS = 1 << 22


def eval_context_block(
    specs: "list[IndexSpec]",
    tvec: np.ndarray,
    sub_all: np.ndarray,
    minsup_min: int,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Phase C for one context block: thresholds + batched index kernels.

    ``sub_all`` is the block's minority-count matrix (one row per
    candidate cell of the context, one column per unit); ``tvec`` is the
    context's per-unit population vector.  Returns ``(totals, keep,
    values)`` where ``values`` is ``(n_specs, n_block_rows)`` with NaN
    on dropped rows.  This is the single evaluation path shared by the
    single-process columnar fill and the parallel workers — sharing it
    is what makes ``engine="parallel"`` bit-exact.
    """
    totals = sub_all.sum(axis=1)
    keep_cells = totals >= minsup_min
    values = np.full((len(specs), len(totals)), np.nan)
    if keep_cells.any():
        # Prepare once per context (float64 cast + empty-unit drop),
        # not once per index: every spec sees the same batch.
        tvec_f = tvec.astype(np.float64)
        sub = sub_all[keep_cells].astype(np.float64)
        keep_units = tvec_f > 0
        if not keep_units.all():
            tvec_f = tvec_f[keep_units]
            sub = np.ascontiguousarray(sub[:, keep_units])
        for j, spec in enumerate(specs):
            values[j, keep_cells] = spec.compute_batch_prepared(tvec_f, sub)
    return totals, keep_cells, values


def plan_context_batches(
    by_context: "dict[Itemset, list[int]]",
    max_batch_cells: int,
) -> "list[list[tuple[Itemset, list[int]]]]":
    """Slice context groups into bounded batches of matrix rows.

    Kernels are row-independent, so contexts are sliced freely into
    batches of exactly ``max_batch_cells`` rows (the last one smaller)
    — the memory bound holds even when a single popular context
    dominates the candidate set.
    """
    batches: "list[list[tuple[Itemset, list[int]]]]" = []
    batch_acc: "list[tuple[Itemset, list[int]]]" = []
    room = max_batch_cells
    for ca_part, rows in by_context.items():
        start = 0
        while start < len(rows):
            take = rows[start:start + room]
            batch_acc.append((ca_part, take))
            start += len(take)
            room -= len(take)
            if room == 0:
                batches.append(batch_acc)
                batch_acc, room = [], max_batch_cells
    if batch_acc:
        batches.append(batch_acc)
    return batches


@dataclass
class CandidateArrays:
    """Phase A output: the candidate cells in mining order.

    ``rows_of[i] == -1`` marks a context-only candidate (no counting
    needed); otherwise it is the candidate's row in the SA count
    matrix / ``sa_covers`` list.
    """

    keys: "list[CellKey]"
    contexts: "list[Itemset]"
    sa_covers: "list[Cover]"
    rows_of: np.ndarray
    pops: np.ndarray
    units_of: np.ndarray

    def rows_by_context(self) -> "dict[Itemset, list[int]]":
        """Group SA-bearing matrix rows by their context."""
        by_context: "dict[Itemset, list[int]]" = {}
        for cand, row in enumerate(self.rows_of):
            if row >= 0:
                by_context.setdefault(
                    self.contexts[cand], []
                ).append(int(row))
        return by_context


@dataclass
class MinedCoordinates:
    """Output of the mining passes, input of the fill stage."""

    #: Mixed SA+CA itemset -> cover, within the coordinate lattice.
    mixed_covers: "dict[Itemset, Cover]"
    #: Frequent context -> per-unit population vector ``t``.
    context_tvecs: "dict[Itemset, np.ndarray]"
    #: Frequent context -> total population (``t.sum()``, computed once).
    context_pops: "dict[Itemset, int]"
    #: Frequent context -> number of non-empty units (computed once).
    context_nunits: "dict[Itemset, int]"
    minsup_pop: int
    minsup_min: int
    n_contexts: int
    #: Closed mode + incremental engine only: every pass-2 itemset —
    #: including the non-closed ones filtered out of ``mixed_covers`` —
    #: mapped to ``(cover_digest, closed_flag)``, the seed of the
    #: incremental engine's closure-diff pass (see
    #: :func:`repro.itemsets.closed.closure_diff`).
    closed_info: "dict[Itemset, tuple[bytes, bool]] | None" = None


class SegregationDataCubeBuilder:
    """Builds a :class:`~repro.cube.cube.SegregationCube` from ``finalTable``.

    Parameters
    ----------
    indexes:
        Index short names (default: the six SCube indexes).
    min_population:
        Minimum context size ``T`` for a cell to exist (absolute count, or
        a fraction of the table in ``(0,1)``).
    min_minority:
        Minimum minority size ``M`` for a cell to exist.
    max_sa_items / max_ca_items:
        Caps on coordinate granularity (None = unbounded).
    mode:
        ``"all"`` materialises every frequent cell; ``"closed"``
        materialises closed coordinates only and resolves other queries
        lazily (the JIIS efficiency solution).
    backend:
        Mining backend for the support-only passes (``eclat`` /
        ``fpgrowth`` / ``apriori``); covers always come from eclat.
    codec:
        Cover representation used when encoding the table
        (``packed`` / ``bool`` / ``ewah``); results are identical
        across codecs.
    engine:
        Fill strategy: ``"columnar"`` (default) batches all cells
        through the count-matrix and vectorized index kernels;
        ``"percell"`` is the scalar reference path; ``"parallel"``
        partitions the context groups across ``workers`` processes
        (see :mod:`repro.cube.parallel`).  All produce bit-identical
        cubes.
    workers:
        Process count for ``engine="parallel"`` (None = one per CPU);
        ignored by the other engines.
    mine_workers:
        Process count for the mining passes (see
        :mod:`repro.itemsets.parallel`): both passes of
        :meth:`mine_coordinates` fan their DFS roots across this many
        workers, with bit-identical mined coordinates.  ``None``
        (default) mines in-process; independent of the fill engine.
    """

    def __init__(
        self,
        indexes: "list[str] | None" = None,
        min_population: "int | float" = 20,
        min_minority: "int | float" = 5,
        max_sa_items: "int | None" = None,
        max_ca_items: "int | None" = None,
        mode: str = "all",
        backend: str = "eclat",
        codec: str = "packed",
        engine: str = "columnar",
        workers: "int | None" = None,
        mine_workers: "int | None" = None,
    ):
        if mode not in ("all", "closed"):
            raise CubeError(f"mode must be 'all' or 'closed', got {mode!r}")
        if engine not in ("columnar", "percell", "incremental", "parallel"):
            raise CubeError(
                "engine must be 'columnar', 'percell', 'incremental' or "
                f"'parallel', got {engine!r}"
            )
        if workers is not None and int(workers) < 1:
            raise CubeError(f"workers must be >= 1, got {workers!r}")
        if mine_workers is not None and int(mine_workers) < 1:
            raise CubeError(
                f"mine_workers must be >= 1, got {mine_workers!r}"
            )
        self.indexes: list[IndexSpec] = resolve_indexes(indexes)
        self.min_population = min_population
        self.min_minority = min_minority
        self.max_sa_items = max_sa_items
        self.max_ca_items = max_ca_items
        self.mode = mode
        self.backend = backend
        self.codec = codec
        self.engine = engine
        self.workers = None if workers is None else int(workers)
        self.mine_workers = (
            None if mine_workers is None else int(mine_workers)
        )

    # ------------------------------------------------------------------

    def build(self, table: Table, schema: Schema) -> SegregationCube:
        """Encode, mine and fill the cube."""
        if not schema.sa_names:
            raise CubeError("schema declares no segregation attributes")
        schema.unit_name  # raises SchemaError when missing
        db = encode_table(table, schema, codec=self.codec)
        if len(db) == 0:
            raise CubeError("finalTable is empty")
        return self.build_from_transactions(db)

    def build_from_transactions(self, db: TransactionDatabase) -> SegregationCube:
        """Build from an already-encoded transaction database."""
        cube, _ = self._build_mined(db)
        return cube

    def _build_mined(
        self, db: TransactionDatabase
    ) -> "tuple[SegregationCube, MinedCoordinates]":
        """Build and also return the mined coordinates.

        The incremental engine's cold start needs the mining byproducts
        (context tvecs, closed flags) alongside the cube; everyone else
        goes through :meth:`build_from_transactions`.
        """
        if db.units is None:
            raise CubeError("transaction database has no unit labels")
        started = time.perf_counter()
        mined = self.mine_coordinates(db)
        extra_meta: "dict[str, object]" = {}
        if self.engine == "percell":
            store = self._fill_percell(db, mined)
        elif self.engine == "parallel":
            from repro.cube.parallel import fill_parallel, resolve_workers

            store = fill_parallel(self, db, mined)
            extra_meta["workers"] = resolve_workers(self.workers)
        else:
            # "incremental" cold-starts (and plain-builds) through the
            # columnar fill; its delta path lives in cube/incremental.py.
            store = self._fill_columnar(db, mined)
        if self.mine_workers is not None:
            extra_meta["mine_workers"] = self.mine_workers

        metadata = CubeMetadata(
            index_names=[spec.name for spec in self.indexes],
            min_population=mined.minsup_pop,
            min_minority=mined.minsup_min,
            n_rows=db.n_active,
            n_units=db.n_units,
            mode=self.mode,
            backend=self.backend,
            build_seconds=time.perf_counter() - started,
            extra={
                "n_contexts": mined.n_contexts,
                "n_mined_itemsets": len(mined.mixed_covers),
                "engine": self.engine,
                **extra_meta,
            },
        )
        resolver = _LazyResolver(
            self, db, mined.minsup_pop, mined.minsup_min
        )
        cube = SegregationCube(store, db.dictionary, metadata,
                               resolver=resolver)
        return cube, mined

    def build_snapshot(
        self,
        table: Table,
        schema: Schema,
        path,
        mmap: bool = True,
    ) -> SegregationCube:
        """Build the cube, persist it, and return the *snapshot-backed* cube.

        The expensive ETL → mining → fill work runs once; what is
        returned reads from the on-disk columns exactly as any later
        :func:`repro.store.open_snapshot` caller will (so serving what
        was just built and serving a reopened snapshot are the same
        code path).

        Note for ``mode="closed"``: snapshots carry cells, not covers,
        so the returned cube has **no lazy resolver** — point queries
        for frequent-but-not-closed coordinates answer None/nan.  Use
        :meth:`build` (and :meth:`~repro.cube.cube.SegregationCube.dump`
        separately) when the live resolver semantics are needed.
        """
        from repro.store.snapshot import dump_snapshot, open_snapshot

        cube = self.build(table, schema)
        dump_snapshot(cube, path)
        return open_snapshot(path, mmap=mmap)

    def mine_coordinates(self, db: TransactionDatabase) -> MinedCoordinates:
        """Run the two mining passes; no cells are filled yet.

        Pass 1 mines frequent CA-only itemsets (the contexts) with
        covers; a context below ``min_population`` never reaches the
        per-unit counting stage (mined contexts satisfy the threshold by
        eclat's frequency bound, and the hand-added root context — the
        only other cover — is skipped when the table itself is too
        small).  The per-context population and non-empty-unit count are
        derived once here — every cell of a context shares them.

        Pass 2 mines frequent typed itemsets (the candidate cells) with
        covers, DFS-constrained to the coordinate lattice (at most
        ``max_sa_items`` SA and ``max_ca_items`` CA items), at the
        smaller of the two thresholds so that context-only cells (SA
        part empty, filtered by ``min_population`` later) are not lost
        when ``min_minority`` exceeds ``min_population``.
        """
        minsup_pop = absolute_minsup(self.min_population, db.n_active)
        minsup_min = absolute_minsup(self.min_minority, db.n_active)

        context_covers = mine_eclat(
            db,
            minsup_pop,
            items=db.dictionary.ca_ids,
            max_len=self.max_ca_items,
            with_covers=True,
            workers=self.mine_workers,
        )
        if db.n_active >= minsup_pop:
            # The root (empty) context is added by hand, so it is the
            # only cover that can sit below min_population — mined
            # contexts already satisfy it via eclat's frequency bound.
            # Skipping it here means no context that cannot produce a
            # cell ever pays for its per-unit counts.
            context_covers[frozenset()] = db.full_cover()
        tvec_matrix = db.unit_counts_many(list(context_covers.values()))
        pops_vec = tvec_matrix.sum(axis=1)
        nunits_vec = (tvec_matrix > 0).sum(axis=1)
        context_tvecs = {
            b: tvec_matrix[i] for i, b in enumerate(context_covers)
        }
        context_pops = {
            b: int(pops_vec[i]) for i, b in enumerate(context_covers)
        }
        context_nunits = {
            b: int(nunits_vec[i]) for i, b in enumerate(context_covers)
        }

        mixed_minsup = min(minsup_min, minsup_pop)
        mixed_covers = mine_eclat_typed(
            db,
            mixed_minsup,
            sa_ids=db.dictionary.sa_ids,
            ca_ids=db.dictionary.ca_ids,
            max_sa=self.max_sa_items,
            max_ca=self.max_ca_items,
            workers=self.mine_workers,
        )
        closed_info: "dict[Itemset, tuple[bytes, bool]] | None" = None
        if self.mode == "closed":
            supports = {k: v.support() for k, v in mixed_covers.items()}
            closed = filter_closed(supports)
            if self.engine == "incremental":
                # Seed the closure-diff pass: flags for *every* mined
                # itemset, non-closed ones included, so a later update
                # can reuse any flag whose cover digest is unchanged.
                closed_info = {
                    k: (cover_digest(v), k in closed)
                    for k, v in mixed_covers.items()
                }
            kept = {k: v for k, v in mixed_covers.items() if k in closed}
            kept[frozenset()] = mixed_covers[frozenset()]
            mixed_covers = kept

        return MinedCoordinates(
            mixed_covers=mixed_covers,
            context_tvecs=context_tvecs,
            context_pops=context_pops,
            context_nunits=context_nunits,
            minsup_pop=minsup_pop,
            minsup_min=minsup_min,
            n_contexts=len(context_covers),
            closed_info=closed_info,
        )

    # ------------------------------------------------------------------
    # Fill engines
    # ------------------------------------------------------------------

    def _candidates(self, db: TransactionDatabase, mined: MinedCoordinates):
        """Yield ``(key, ca_part, cover)`` for every in-lattice itemset
        whose context survived the population threshold."""
        for itemset, cover in mined.mixed_covers.items():
            sa_part, ca_part = db.dictionary.split(itemset)
            if (self.max_sa_items is not None
                    and len(sa_part) > self.max_sa_items):
                continue
            if (self.max_ca_items is not None
                    and len(ca_part) > self.max_ca_items):
                continue
            if ca_part not in mined.context_tvecs:
                # Context below the population threshold: no cell.
                continue
            key: CellKey = (sa_part, ca_part)
            yield key, ca_part, cover

    def _enumerate_candidates(
        self, db: TransactionDatabase, mined: MinedCoordinates
    ) -> CandidateArrays:
        """Phase A — enumerate candidates in mining order (the order the
        per-cell path inserts cells in).  Context-only cells (empty SA
        part) need no counting; SA-bearing cells queue their covers."""
        cand_keys: "list[CellKey]" = []
        cand_ctx: "list[Itemset]" = []
        sa_covers: "list[Cover]" = []
        sa_row: "list[int]" = []       # candidate -> matrix row (-1 = ctx)
        for key, ca_part, cover in self._candidates(db, mined):
            cand_keys.append(key)
            cand_ctx.append(ca_part)
            if key[0]:
                sa_row.append(len(sa_covers))
                sa_covers.append(cover)
            else:
                sa_row.append(-1)
        n_cand = len(cand_keys)
        return CandidateArrays(
            keys=cand_keys,
            contexts=cand_ctx,
            sa_covers=sa_covers,
            rows_of=np.array(sa_row, dtype=np.int64),
            pops=np.fromiter(
                (mined.context_pops[b] for b in cand_ctx),
                dtype=np.int64, count=n_cand,
            ),
            units_of=np.fromiter(
                (mined.context_nunits[b] for b in cand_ctx),
                dtype=np.int64, count=n_cand,
            ),
        )

    def _assemble_cells(
        self,
        db: TransactionDatabase,
        cand: CandidateArrays,
        minority_totals: np.ndarray,
        kept_rows: np.ndarray,
        values: np.ndarray,
    ) -> CellTable:
        """Phase D — scatter the surviving candidates into the store,
        keeping mining order."""
        rows_of, pops = cand.rows_of, cand.pops
        is_ctx = rows_of < 0
        emit = is_ctx.copy()
        emit[~is_ctx] = kept_rows[rows_of[~is_ctx]]
        out_idx = np.flatnonzero(emit)
        out_rows = rows_of[out_idx]
        out_is_ctx = out_rows < 0
        minority = np.empty(len(out_idx), dtype=np.int64)
        minority[out_is_ctx] = pops[out_idx][out_is_ctx]
        minority[~out_is_ctx] = minority_totals[out_rows[~out_is_ctx]]
        columns = {}
        for j, spec in enumerate(self.indexes):
            col = np.full(len(out_idx), np.nan)
            col[~out_is_ctx] = values[j, out_rows[~out_is_ctx]]
            columns[spec.name] = col
        return CellTable(
            [cand.keys[i] for i in out_idx],
            pops[out_idx],
            minority,
            cand.units_of[out_idx],
            columns,
            len(db.dictionary),
        )

    def _fill_columnar(
        self, db: TransactionDatabase, mined: MinedCoordinates
    ) -> CellTable:
        """Batch-evaluate every candidate cell through count matrices.

        SA-bearing candidates are grouped by context and processed in
        bounded batches of contexts: each batch gets its minority-count
        matrix from one ``unit_counts_many`` pass, rows below
        ``min_minority`` are dropped with one mask, and each index is
        evaluated per context with a single batched kernel call over
        that context's surviving rows (:func:`eval_context_block`).
        Only per-cell scalars (minority totals, index values) persist
        across batches, so peak memory is bounded by the batch size,
        not ``n_cells * n_units``.
        """
        specs = self.indexes
        cand = self._enumerate_candidates(db, mined)
        sa_covers = cand.sa_covers

        # Phase B/C — count and evaluate per bounded batch of contexts.
        # Grouping by context lets each batch share one grouped
        # ``unit_counts_many`` pass and one kernel-input preparation per
        # context; the count matrix of a batch is discarded once its
        # minority totals and index values are extracted.
        by_context = cand.rows_by_context()
        minority_totals = np.zeros(len(sa_covers), dtype=np.int64)
        kept_rows = np.zeros(len(sa_covers), dtype=bool)
        values = np.full((len(specs), len(sa_covers)), np.nan)
        n_units = max(1, db.n_units)
        max_batch_cells = max(1, _FILL_BATCH_CELLS // n_units)
        for batch in plan_context_batches(by_context, max_batch_cells):
            matrix = db.unit_counts_many(
                [sa_covers[r] for _, rows in batch for r in rows]
            )
            offset = 0
            for ca_part, rows in batch:
                sub_all = matrix[offset:offset + len(rows)]
                offset += len(rows)
                totals, keep_cells, block = eval_context_block(
                    specs, mined.context_tvecs[ca_part], sub_all,
                    mined.minsup_min,
                )
                minority_totals[rows] = totals
                kept_rows[rows] = keep_cells
                values[:, rows] = block

        return self._assemble_cells(
            db, cand, minority_totals, kept_rows, values
        )

    def _fill_percell(
        self, db: TransactionDatabase, mined: MinedCoordinates
    ) -> "dict[CellKey, CellStats]":
        """Reference fill: one scalar ``_make_cell`` per candidate."""
        cells: dict[CellKey, CellStats] = {}
        for key, ca_part, cover in self._candidates(db, mined):
            stats = self._make_cell(
                key,
                cover,
                mined.context_tvecs[ca_part],
                db,
                mined.minsup_pop,
                mined.minsup_min,
                population=mined.context_pops[ca_part],
                n_units=mined.context_nunits[ca_part],
            )
            if stats is not None:
                cells[stats.key] = stats
        return cells

    # ------------------------------------------------------------------

    def _make_cell(
        self,
        key: CellKey,
        minority_cover: "Cover | None",
        context_tvec: np.ndarray,
        db: TransactionDatabase,
        minsup_pop: int,
        minsup_min: int,
        population: "int | None" = None,
        n_units: "int | None" = None,
    ) -> "CellStats | None":
        """Fill one cell from covers; None when below thresholds.

        ``population`` / ``n_units`` take the per-context values already
        derived by :meth:`mine_coordinates`; when None (the lazy
        resolver's ad-hoc queries) they are computed from the vector.
        """
        if population is None:
            population = int(context_tvec.sum())
        if population < minsup_pop:
            return None
        if n_units is None:
            n_units = int((context_tvec > 0).sum())
        sa_part, _ = key
        if not sa_part:
            # Context-only navigation cell: indexes undefined by design.
            return CellStats(
                key=key,
                population=population,
                minority=population,
                n_units=n_units,
                indexes={spec.name: float("nan") for spec in self.indexes},
            )
        mvec = db.unit_counts(minority_cover)
        minority = int(mvec.sum())
        if minority < minsup_min:
            return None
        counts = UnitCounts(context_tvec, mvec)
        indexes = {spec.name: spec.compute(counts) for spec in self.indexes}
        return CellStats(
            key=key,
            population=population,
            minority=minority,
            n_units=n_units,
            indexes=indexes,
        )


class _LazyResolver:
    """Answers point queries for cells absent from the materialised cube.

    Works directly on the item covers: exact, and O(|items| * rows) per
    query.  Returns None when the queried cell is below the builder's
    thresholds (so lazy answers agree with materialisation).
    """

    def __init__(
        self,
        builder: SegregationDataCubeBuilder,
        db: TransactionDatabase,
        minsup_pop: int,
        minsup_min: int,
    ):
        self._builder = builder
        self._db = db
        self._minsup_pop = minsup_pop
        self._minsup_min = minsup_min

    def warm(self) -> None:
        """Force the database's lazily built shared state.

        The item covers and the unit→rows grouping are cached on first
        use without a lock; building them up front (the serving layer
        calls this) makes every later resolver call a pure read, safe
        for concurrent reader threads.
        """
        self._db.covers()
        self._db.unit_counts(self._db.full_cover())

    def __call__(self, key: CellKey) -> "CellStats | None":
        sa_part, ca_part = key
        context_cover = self._db.cover_of(ca_part)
        tvec = self._db.unit_counts(context_cover)
        minority_cover = (
            context_cover & self._db.cover_of(sa_part) if sa_part
            else context_cover
        )
        return self._builder._make_cell(
            key, minority_cover, tvec, self._db, self._minsup_pop,
            self._minsup_min
        )


def build_cube(
    table: Table,
    schema: Schema,
    indexes: "list[str] | None" = None,
    min_population: "int | float" = 20,
    min_minority: "int | float" = 5,
    max_sa_items: "int | None" = None,
    max_ca_items: "int | None" = None,
    mode: str = "all",
    codec: str = "packed",
    engine: str = "columnar",
    workers: "int | None" = None,
    mine_workers: "int | None" = None,
    snapshot_path=None,
) -> SegregationCube:
    """One-call convenience wrapper around the builder.

    When ``snapshot_path`` is given the built cube is also persisted
    there as a reopenable snapshot (see :mod:`repro.store`).
    """
    builder = SegregationDataCubeBuilder(
        indexes=indexes,
        min_population=min_population,
        min_minority=min_minority,
        max_sa_items=max_sa_items,
        max_ca_items=max_ca_items,
        mode=mode,
        codec=codec,
        engine=engine,
        workers=workers,
        mine_workers=mine_workers,
    )
    cube = builder.build(table, schema)
    if snapshot_path is not None:
        from repro.store.snapshot import dump_snapshot

        dump_snapshot(cube, snapshot_path)
    return cube
