"""CellTable: the struct-of-arrays store backing the segregation cube.

Instead of one :class:`~repro.cube.cell.CellStats` object per cell, the
cube keeps parallel columns over all cells at once:

* ``keys`` — the (SA itemset, CA itemset) cell keys, one per row, with a
  hash index for O(1) point lookup;
* ``sa_masks`` / ``ca_masks`` — the same keys *encoded* as packed
  ``uint64`` bitmasks over item ids, so slicing and roll-up/drill-down
  become word-wise subset tests over whole columns;
* ``population`` / ``minority`` / ``n_units`` — int64 count columns;
* one float64 column per segregation index.

Query primitives (:meth:`superset_mask`, :meth:`top_rows`) are array
operations — boolean masks and ``argpartition`` top-k — and
:class:`CellStats` survives as a lazily materialised per-cell view
(:meth:`stats`), so the object-per-cell API keeps working unchanged.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from itertools import chain

import numpy as np

from repro.cube.cell import CellStats
from repro.cube.coordinates import CellKey

_WORD_BITS = 64


def _n_words(n_items: int) -> int:
    return max(1, (n_items + _WORD_BITS - 1) // _WORD_BITS)


def pack_items(items: Iterable[int], n_words: int) -> np.ndarray:
    """Encode an itemset as a packed ``uint64`` bitmask over item ids."""
    mask = np.zeros(n_words, dtype=np.uint64)
    for item in items:
        mask[item >> 6] |= np.uint64(1) << np.uint64(item & 63)
    return mask


class CellTable:
    """Columnar storage of cube cells (one array element per cell)."""

    def __init__(
        self,
        keys: Sequence[CellKey],
        population: "Sequence[int] | np.ndarray",
        minority: "Sequence[int] | np.ndarray",
        n_units: "Sequence[int] | np.ndarray",
        columns: "dict[str, np.ndarray]",
        n_items: int,
    ):
        self.keys: list[CellKey] = list(keys)
        n = len(self.keys)
        self.population = np.asarray(population, dtype=np.int64)
        self.minority = np.asarray(minority, dtype=np.int64)
        self.n_units = np.asarray(n_units, dtype=np.int64)
        self.columns = {
            name: np.asarray(col, dtype=np.float64)
            for name, col in columns.items()
        }
        for label, arr in (
            ("population", self.population),
            ("minority", self.minority),
            ("n_units", self.n_units),
            *self.columns.items(),
        ):
            if len(arr) != n:
                raise ValueError(
                    f"column {label!r} has {len(arr)} rows for {n} cells"
                )
        self._row_of = {key: i for i, key in enumerate(self.keys)}
        self.sa_sizes = np.fromiter(
            (len(k[0]) for k in self.keys), dtype=np.int64, count=n
        )
        self.ca_sizes = np.fromiter(
            (len(k[1]) for k in self.keys), dtype=np.int64, count=n
        )
        # Size the key bitmasks to the largest id actually present:
        # hand-built cubes may carry keys beyond the dictionary, which
        # the old dict-backed store accepted.
        max_item = max(
            (item for key in self.keys for part in key for item in part),
            default=-1,
        )
        n_words = _n_words(max(n_items, max_item + 1))
        self.sa_masks = self._pack_parts([k[0] for k in self.keys], n_words)
        self.ca_masks = self._pack_parts([k[1] for k in self.keys], n_words)

    @staticmethod
    def _pack_parts(
        parts: "list[frozenset[int]]", n_words: int
    ) -> np.ndarray:
        """Pack every itemset into one row of a ``uint64`` mask matrix."""
        n = len(parts)
        masks = np.zeros((n, n_words), dtype=np.uint64)
        lengths = np.fromiter(
            (len(p) for p in parts), dtype=np.int64, count=n
        )
        rows = np.repeat(np.arange(n, dtype=np.int64), lengths)
        items = np.fromiter(
            chain.from_iterable(parts), dtype=np.int64,
            count=int(lengths.sum()),
        )
        np.bitwise_or.at(
            masks,
            (rows, items >> 6),
            np.uint64(1) << (items & 63).astype(np.uint64),
        )
        return masks

    @classmethod
    def from_cells(
        cls,
        cells: "dict[CellKey, CellStats]",
        index_names: "list[str]",
        n_items: int,
    ) -> "CellTable":
        """Convert a per-object cell dict (e.g. the naive builder's)."""
        keys = list(cells.keys())
        stats = [cells[k] for k in keys]
        # Hand-built cells may carry index entries beyond the declared
        # names; keep them as extra columns so point lookups still see
        # them (declared names first, extras in sorted order).
        extra = sorted(
            {name for s in stats for name in s.indexes}
            - set(index_names)
        )
        return cls(
            keys,
            [s.population for s in stats],
            [s.minority for s in stats],
            [s.n_units for s in stats],
            {
                name: np.array(
                    [s.indexes.get(name, float("nan")) for s in stats],
                    dtype=np.float64,
                )
                for name in list(index_names) + extra
            },
            n_items,
        )

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.keys)

    def __contains__(self, key: CellKey) -> bool:
        return key in self._row_of

    def row_of(self, key: CellKey) -> "int | None":
        """Row index of a cell key, or None when not materialised."""
        return self._row_of.get(key)

    def stats(self, row: int) -> CellStats:
        """Materialise one row as a :class:`CellStats` view."""
        return CellStats(
            key=self.keys[row],
            population=int(self.population[row]),
            minority=int(self.minority[row]),
            n_units=int(self.n_units[row]),
            indexes={
                name: float(col[row]) for name, col in self.columns.items()
            },
        )

    def value_at(self, row: int, index_name: str) -> float:
        """One index value without materialising the row."""
        col = self.columns.get(index_name)
        return float(col[row]) if col is not None else float("nan")

    # ------------------------------------------------------------------
    # Columnar masks
    # ------------------------------------------------------------------

    @property
    def depths(self) -> np.ndarray:
        """Per-cell coordinate count (``|A| + |B|``)."""
        return self.sa_sizes + self.ca_sizes

    def context_only_mask(self) -> np.ndarray:
        """True for cells with an all-``⋆`` SA part."""
        return self.sa_sizes == 0

    def defined_mask(self, index_name: str) -> np.ndarray:
        """True where the index value is a proper number."""
        col = self.columns.get(index_name)
        if col is None:
            return np.zeros(len(self), dtype=bool)
        return ~np.isnan(col)

    def superset_mask(self, sa_items: Iterable[int],
                      ca_items: Iterable[int]) -> np.ndarray:
        """True for cells whose coordinates include the given itemsets.

        Word-wise containment: row ``r`` passes when
        ``sa_masks[r] & want_sa == want_sa`` (and likewise for CA) —
        the array form of ``want_sa <= key[0] and want_ca <= key[1]``.
        Item ids beyond the mask capacity (e.g. keys borrowed from
        another cube's dictionary) cannot be contained in any cell, so
        they yield an all-False mask, like the frozenset subset test.
        """
        sa_items = list(sa_items)
        ca_items = list(ca_items)
        n_words = self.sa_masks.shape[1]
        capacity = n_words * _WORD_BITS
        if any(
            item < 0 or item >= capacity
            for item in chain(sa_items, ca_items)
        ):
            return np.zeros(len(self), dtype=bool)
        want_sa = pack_items(sa_items, n_words)
        want_ca = pack_items(ca_items, n_words)
        return (
            ((self.sa_masks & want_sa) == want_sa).all(axis=1)
            & ((self.ca_masks & want_ca) == want_ca).all(axis=1)
        )

    def top_rows(
        self,
        index_name: str,
        k: int,
        mask: np.ndarray,
        descending: bool,
        tie_break,
    ) -> "list[int]":
        """Top-``k`` rows of ``mask`` by one index column.

        ``argpartition`` narrows the candidates to the boundary value
        before any per-cell work; only rows tied around the cut-off are
        ranked with the (Python-level) ``tie_break`` description key, so
        the expensive decode runs on O(k) cells, not O(n).
        """
        col = self.columns.get(index_name)
        if col is None or k <= 0:
            return []
        rows = np.flatnonzero(mask)
        if len(rows) == 0:
            return []
        # NaN (undefined) cells cannot rank; drop them here so the
        # partition boundary is always a real value even when the
        # caller's mask did not pre-filter them.
        defined = ~np.isnan(col[rows])
        rows = rows[defined]
        if len(rows) == 0:
            return []
        order_vals = col[rows] if not descending else -col[rows]
        if len(rows) > k:
            kth = np.partition(order_vals, k - 1)[k - 1]
            keep = order_vals <= kth
            rows, order_vals = rows[keep], order_vals[keep]
        ranked = sorted(
            zip(order_vals.tolist(), rows.tolist()),
            key=lambda pair: (pair[0], tie_break(pair[1])),
        )
        return [row for _, row in ranked[:k]]
