"""CellTable: the struct-of-arrays store backing the segregation cube.

Instead of one :class:`~repro.cube.cell.CellStats` object per cell, the
cube keeps parallel columns over all cells at once:

* ``keys`` — the (SA itemset, CA itemset) cell keys, one per row, with a
  hash index for O(1) point lookup;
* ``sa_masks`` / ``ca_masks`` — the same keys *encoded* as packed
  ``uint64`` bitmasks over item ids, so slicing and roll-up/drill-down
  become word-wise subset tests over whole columns;
* ``population`` / ``minority`` / ``n_units`` — int64 count columns;
* one float64 column per segregation index.

The arrays live behind a thin storage record (:class:`TableArrays`), so
the same table — and the same query primitives (:meth:`superset_mask`,
:meth:`top_rows`, :meth:`stats`) — runs over arrays it owns (a freshly
built cube) or over read-only memory-mapped arrays reopened from a
:mod:`repro.store` snapshot.  In the snapshot case the keys and the
hash index are *derived* state: keys are decoded lazily from the packed
bitmasks, and the index is built on first point lookup (both under a
lock, so concurrent readers are safe).

Query primitives are array operations — boolean masks and
``argpartition`` top-k — and :class:`CellStats` survives as a lazily
materialised per-cell view (:meth:`stats`), so the object-per-cell API
keeps working unchanged.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from itertools import chain

import numpy as np

from repro.cube.cell import CellStats
from repro.cube.coordinates import CellKey

_WORD_BITS = 64


def _n_words(n_items: int) -> int:
    return max(1, (n_items + _WORD_BITS - 1) // _WORD_BITS)


def pack_items(items: Iterable[int], n_words: int) -> np.ndarray:
    """Encode an itemset as a packed ``uint64`` bitmask over item ids."""
    mask = np.zeros(n_words, dtype=np.uint64)
    for item in items:
        mask[item >> 6] |= np.uint64(1) << np.uint64(item & 63)
    return mask


def unpack_masks(masks: np.ndarray) -> "list[frozenset[int]]":
    """Decode each row of a packed mask matrix back into an itemset.

    The inverse of :meth:`CellTable._pack_parts`, used when a table is
    reopened from stored arrays and its keys must be reconstructed.
    Endian-safe: bits are extracted by shifting, never by reinterpreting
    the word bytes.
    """
    n, n_words = masks.shape
    out: "list[list[int]]" = [[] for _ in range(n)]
    shifts = np.arange(_WORD_BITS, dtype=np.uint64)
    one = np.uint64(1)
    for word in range(n_words):
        column = np.asarray(masks[:, word])
        if not column.any():
            continue
        bits = (column[:, None] >> shifts) & one
        rows, offsets = np.nonzero(bits)
        base = word * _WORD_BITS
        for row, offset in zip(rows.tolist(), offsets.tolist()):
            out[row].append(base + offset)
    return [frozenset(items) for items in out]


def _mask_sizes(masks: np.ndarray) -> np.ndarray:
    """Per-row popcount of a packed mask matrix (itemset sizes)."""
    n = len(masks)
    if n == 0 or masks.size == 0:
        return np.zeros(n, dtype=np.int64)
    sizes = np.zeros(n, dtype=np.int64)
    shifts = np.arange(_WORD_BITS, dtype=np.uint64)
    one = np.uint64(1)
    for word in range(masks.shape[1]):
        column = np.asarray(masks[:, word])
        bits = (column[:, None] >> shifts) & one
        sizes += bits.sum(axis=1).astype(np.int64)
    return sizes


@dataclass(frozen=True)
class TableArrays:
    """The raw column arrays of one :class:`CellTable`.

    A plain record with no behaviour: the table's query primitives only
    read these attributes, so the arrays can equally be freshly
    allocated (builder path) or read-only ``np.memmap`` views over a
    snapshot directory (store path).
    """

    population: np.ndarray
    minority: np.ndarray
    n_units: np.ndarray
    sa_masks: np.ndarray
    ca_masks: np.ndarray
    columns: "dict[str, np.ndarray]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = len(self.population)
        for label, arr in (
            ("minority", self.minority),
            ("n_units", self.n_units),
            ("sa_masks", self.sa_masks),
            ("ca_masks", self.ca_masks),
            *self.columns.items(),
        ):
            if len(arr) != n:
                raise ValueError(
                    f"column {label!r} has {len(arr)} rows for {n} cells"
                )


class CellTable:
    """Columnar storage of cube cells (one array element per cell)."""

    def __init__(
        self,
        keys: Sequence[CellKey],
        population: "Sequence[int] | np.ndarray",
        minority: "Sequence[int] | np.ndarray",
        n_units: "Sequence[int] | np.ndarray",
        columns: "dict[str, np.ndarray]",
        n_items: int,
    ):
        keys = list(keys)
        n = len(keys)
        for label, col in columns.items():
            if len(col) != n:
                raise ValueError(
                    f"column {label!r} has {len(col)} rows for {n} cells"
                )
        # Size the key bitmasks to the largest id actually present:
        # hand-built cubes may carry keys beyond the dictionary, which
        # the old dict-backed store accepted.
        max_item = max(
            (item for key in keys for part in key for item in part),
            default=-1,
        )
        n_words = _n_words(max(n_items, max_item + 1))
        arrays = TableArrays(
            population=np.asarray(population, dtype=np.int64),
            minority=np.asarray(minority, dtype=np.int64),
            n_units=np.asarray(n_units, dtype=np.int64),
            sa_masks=self._pack_parts([k[0] for k in keys], n_words),
            ca_masks=self._pack_parts([k[1] for k in keys], n_words),
            columns={
                name: np.asarray(col, dtype=np.float64)
                for name, col in columns.items()
            },
        )
        self._attach(arrays, keys=keys)

    @classmethod
    def from_arrays(
        cls, arrays: TableArrays, keys: "Sequence[CellKey] | None" = None
    ) -> "CellTable":
        """Wrap already-built (possibly memory-mapped) column arrays.

        The snapshot-open path: no packing happens; when ``keys`` is
        omitted they are decoded lazily from the stored bitmasks the
        first time key-level access is needed.
        """
        self = cls.__new__(cls)
        self._attach(arrays, keys=list(keys) if keys is not None else None)
        return self

    def _attach(
        self, arrays: TableArrays, keys: "list[CellKey] | None"
    ) -> None:
        """Bind the storage record; derived state stays lazy."""
        self._arrays = arrays
        self._keys = keys
        self._index: "dict[CellKey, int] | None" = None
        # Sizes stay lazy on both paths: _ensure_sizes derives them from
        # the keys when decoded, from the mask popcounts otherwise.
        self._sizes: "tuple[np.ndarray, np.ndarray] | None" = None
        self._lock = threading.Lock()

    @staticmethod
    def _pack_parts(
        parts: "list[frozenset[int]]", n_words: int
    ) -> np.ndarray:
        """Pack every itemset into one row of a ``uint64`` mask matrix."""
        n = len(parts)
        masks = np.zeros((n, n_words), dtype=np.uint64)
        lengths = np.fromiter(
            (len(p) for p in parts), dtype=np.int64, count=n
        )
        rows = np.repeat(np.arange(n, dtype=np.int64), lengths)
        items = np.fromiter(
            chain.from_iterable(parts), dtype=np.int64,
            count=int(lengths.sum()),
        )
        np.bitwise_or.at(
            masks,
            (rows, items >> 6),
            np.uint64(1) << (items & 63).astype(np.uint64),
        )
        return masks

    @classmethod
    def from_cells(
        cls,
        cells: "dict[CellKey, CellStats]",
        index_names: "list[str]",
        n_items: int,
    ) -> "CellTable":
        """Convert a per-object cell dict (e.g. the naive builder's)."""
        keys = list(cells.keys())
        stats = [cells[k] for k in keys]
        # Hand-built cells may carry index entries beyond the declared
        # names; keep them as extra columns so point lookups still see
        # them (declared names first, extras in sorted order).
        extra = sorted(
            {name for s in stats for name in s.indexes}
            - set(index_names)
        )
        return cls(
            keys,
            [s.population for s in stats],
            [s.minority for s in stats],
            [s.n_units for s in stats],
            {
                name: np.array(
                    [s.indexes.get(name, float("nan")) for s in stats],
                    dtype=np.float64,
                )
                for name in list(index_names) + extra
            },
            n_items,
        )

    # ------------------------------------------------------------------
    # Storage access
    # ------------------------------------------------------------------

    @property
    def arrays(self) -> TableArrays:
        """The underlying storage record (owned or mmapped)."""
        return self._arrays

    @property
    def population(self) -> np.ndarray:
        return self._arrays.population

    @property
    def minority(self) -> np.ndarray:
        return self._arrays.minority

    @property
    def n_units(self) -> np.ndarray:
        return self._arrays.n_units

    @property
    def sa_masks(self) -> np.ndarray:
        return self._arrays.sa_masks

    @property
    def ca_masks(self) -> np.ndarray:
        return self._arrays.ca_masks

    @property
    def columns(self) -> "dict[str, np.ndarray]":
        return self._arrays.columns

    @property
    def keys(self) -> "list[CellKey]":
        """Cell keys by row (decoded from the bitmasks when reopened)."""
        if self._keys is None:
            with self._lock:
                if self._keys is None:
                    sa = unpack_masks(self._arrays.sa_masks)
                    ca = unpack_masks(self._arrays.ca_masks)
                    self._keys = list(zip(sa, ca))
        return self._keys

    @property
    def sa_sizes(self) -> np.ndarray:
        """Per-cell SA itemset size."""
        return self._ensure_sizes()[0]

    @property
    def ca_sizes(self) -> np.ndarray:
        """Per-cell CA itemset size."""
        return self._ensure_sizes()[1]

    def _ensure_sizes(self) -> "tuple[np.ndarray, np.ndarray]":
        if self._sizes is None:
            with self._lock:
                if self._sizes is None:
                    keys = self._keys
                    if keys is not None:
                        # Keys already decoded: sizes are plain lengths,
                        # no second bit-expansion over the masks.
                        n = len(keys)
                        self._sizes = (
                            np.fromiter((len(k[0]) for k in keys),
                                        dtype=np.int64, count=n),
                            np.fromiter((len(k[1]) for k in keys),
                                        dtype=np.int64, count=n),
                        )
                    else:
                        self._sizes = (
                            _mask_sizes(self._arrays.sa_masks),
                            _mask_sizes(self._arrays.ca_masks),
                        )
        return self._sizes

    def _ensure_index(self) -> "dict[CellKey, int]":
        if self._index is None:
            keys = self.keys
            with self._lock:
                if self._index is None:
                    self._index = {key: i for i, key in enumerate(keys)}
        return self._index

    def warm(self) -> "CellTable":
        """Force-build all lazy derived state (keys, sizes, hash index).

        Called by the serving layer before the table is shared across
        threads: afterwards every query path is read-only.
        """
        self._ensure_index()
        self._ensure_sizes()
        return self

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._arrays.population)

    def __contains__(self, key: CellKey) -> bool:
        return key in self._ensure_index()

    def row_of(self, key: CellKey) -> "int | None":
        """Row index of a cell key, or None when not materialised."""
        return self._ensure_index().get(key)

    def stats(self, row: int) -> CellStats:
        """Materialise one row as a :class:`CellStats` view."""
        return CellStats(
            key=self.keys[row],
            population=int(self.population[row]),
            minority=int(self.minority[row]),
            n_units=int(self.n_units[row]),
            indexes={
                name: float(col[row]) for name, col in self.columns.items()
            },
        )

    def value_at(self, row: int, index_name: str) -> float:
        """One index value without materialising the row."""
        col = self.columns.get(index_name)
        return float(col[row]) if col is not None else float("nan")

    # ------------------------------------------------------------------
    # Columnar masks
    # ------------------------------------------------------------------

    @property
    def depths(self) -> np.ndarray:
        """Per-cell coordinate count (``|A| + |B|``)."""
        return self.sa_sizes + self.ca_sizes

    def context_only_mask(self) -> np.ndarray:
        """True for cells with an all-``⋆`` SA part."""
        return self.sa_sizes == 0

    def defined_mask(self, index_name: str) -> np.ndarray:
        """True where the index value is a proper number."""
        col = self.columns.get(index_name)
        if col is None:
            return np.zeros(len(self), dtype=bool)
        return ~np.isnan(col)

    def superset_mask(self, sa_items: Iterable[int],
                      ca_items: Iterable[int]) -> np.ndarray:
        """True for cells whose coordinates include the given itemsets.

        Word-wise containment: row ``r`` passes when
        ``sa_masks[r] & want_sa == want_sa`` (and likewise for CA) —
        the array form of ``want_sa <= key[0] and want_ca <= key[1]``.
        Item ids beyond the mask capacity (e.g. keys borrowed from
        another cube's dictionary) cannot be contained in any cell, so
        they yield an all-False mask, like the frozenset subset test.
        """
        sa_items = list(sa_items)
        ca_items = list(ca_items)
        n_words = self.sa_masks.shape[1]
        capacity = n_words * _WORD_BITS
        if any(
            item < 0 or item >= capacity
            for item in chain(sa_items, ca_items)
        ):
            return np.zeros(len(self), dtype=bool)
        want_sa = pack_items(sa_items, n_words)
        want_ca = pack_items(ca_items, n_words)
        return (
            ((self.sa_masks & want_sa) == want_sa).all(axis=1)
            & ((self.ca_masks & want_ca) == want_ca).all(axis=1)
        )

    def top_rows(
        self,
        index_name: str,
        k: int,
        mask: np.ndarray,
        descending: bool,
        tie_break,
    ) -> "list[int]":
        """Top-``k`` rows of ``mask`` by one index column.

        ``argpartition`` narrows the candidates to the boundary value
        before any per-cell work; only rows tied around the cut-off are
        ranked with the (Python-level) ``tie_break`` description key, so
        the expensive decode runs on O(k) cells, not O(n).
        """
        col = self.columns.get(index_name)
        if col is None or k <= 0:
            return []
        rows = np.flatnonzero(mask)
        if len(rows) == 0:
            return []
        # NaN (undefined) cells cannot rank; drop them here so the
        # partition boundary is always a real value even when the
        # caller's mask did not pre-filter them.
        defined = ~np.isnan(col[rows])
        rows = rows[defined]
        if len(rows) == 0:
            return []
        order_vals = col[rows] if not descending else -col[rows]
        if len(rows) > k:
            kth = np.partition(order_vals, k - 1)[k - 1]
            keep = order_vals <= kth
            rows, order_vals = rows[keep], order_vals[keep]
        ranked = sorted(
            zip(order_vals.tolist(), rows.tolist()),
            key=lambda pair: (pair[0], tie_break(pair[1])),
        )
        return [row for _, row in ranked[:k]]
