"""Naive cube materialisation by exhaustive coordinate enumeration.

The baseline the paper's "computational efficiency challenges" allude
to: enumerate *every* candidate coordinate pair — all item combinations
up to the granularity caps — and run a cover scan for each, without any
support-based pruning of the lattice.  Exponential in the number of
items; it exists as (a) the correctness oracle for the itemset-driven
builder and (b) the baseline of benchmark E10.
"""

from __future__ import annotations

import time
from itertools import combinations

from repro.cube.builder import SegregationDataCubeBuilder
from repro.cube.cell import CellStats
from repro.cube.coordinates import CellKey
from repro.cube.cube import CubeMetadata, SegregationCube
from repro.errors import CubeError
from repro.etl.schema import Schema
from repro.etl.table import Table
from repro.itemsets.miner import absolute_minsup
from repro.itemsets.transactions import TransactionDatabase, encode_table


class NaiveCubeBuilder:
    """Full-enumeration cube builder (oracle / baseline).

    Accepts the same thresholds as
    :class:`~repro.cube.builder.SegregationDataCubeBuilder` and produces
    a cube with *identical* cells (property-tested); only the search
    strategy differs: every combination of up to ``max_sa_items`` SA
    items and ``max_ca_items`` CA items is tried, and supports are
    computed by intersecting single-item covers — no Apriori pruning, no
    sharing of partial intersections.
    """

    def __init__(
        self,
        indexes: "list[str] | None" = None,
        min_population: "int | float" = 20,
        min_minority: "int | float" = 5,
        max_sa_items: "int | None" = None,
        max_ca_items: "int | None" = None,
    ):
        # Reuse the cell-filling logic so only enumeration differs.
        self._inner = SegregationDataCubeBuilder(
            indexes=indexes,
            min_population=min_population,
            min_minority=min_minority,
            max_sa_items=max_sa_items,
            max_ca_items=max_ca_items,
            mode="all",
        )

    def build(self, table: Table, schema: Schema) -> SegregationCube:
        """Encode and enumerate the full coordinate space."""
        if not schema.sa_names:
            raise CubeError("schema declares no segregation attributes")
        db = encode_table(table, schema)
        if len(db) == 0:
            raise CubeError("finalTable is empty")
        return self.build_from_transactions(db)

    def build_from_transactions(self, db: TransactionDatabase) -> SegregationCube:
        """Enumerate every coordinate combination and scan its cover."""
        if db.units is None:
            raise CubeError("transaction database has no unit labels")
        started = time.perf_counter()
        inner = self._inner
        minsup_pop = absolute_minsup(inner.min_population, db.n_active)
        minsup_min = absolute_minsup(inner.min_minority, db.n_active)

        sa_ids = db.dictionary.sa_ids
        ca_ids = db.dictionary.ca_ids
        max_sa = inner.max_sa_items if inner.max_sa_items is not None else len(sa_ids)
        max_ca = inner.max_ca_items if inner.max_ca_items is not None else len(ca_ids)
        covers = db.covers()
        full = db.full_cover()

        cells: dict[CellKey, CellStats] = {}
        n_candidates = 0
        for ca_size in range(0, max_ca + 1):
            for ca_combo in combinations(ca_ids, ca_size):
                context_cover = full
                for item in ca_combo:
                    context_cover = context_cover & covers[item]
                tvec = db.unit_counts(context_cover)
                if int(tvec.sum()) < minsup_pop:
                    n_candidates += 1
                    continue
                for sa_size in range(0, max_sa + 1):
                    for sa_combo in combinations(sa_ids, sa_size):
                        n_candidates += 1
                        minority_cover = context_cover
                        for item in sa_combo:
                            minority_cover = minority_cover & covers[item]
                        key = (frozenset(sa_combo), frozenset(ca_combo))
                        stats = inner._make_cell(
                            key, minority_cover, tvec, db, minsup_pop,
                            minsup_min
                        )
                        if stats is not None:
                            cells[key] = stats

        metadata = CubeMetadata(
            index_names=[spec.name for spec in inner.indexes],
            min_population=minsup_pop,
            min_minority=minsup_min,
            n_rows=db.n_active,
            n_units=db.n_units,
            mode="naive",
            backend="enumeration",
            build_seconds=time.perf_counter() - started,
            extra={"n_candidates": n_candidates},
        )
        return SegregationCube(cells, db.dictionary, metadata)
