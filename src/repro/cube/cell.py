"""Cube cells: per-(subgroup, context) segregation statistics."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cube.coordinates import CellKey


@dataclass(frozen=True)
class CellStats:
    """The content of one segregation-cube cell.

    Attributes
    ----------
    key:
        The (SA itemset, CA itemset) address.
    population:
        ``T`` — individuals satisfying the context coordinates ``B``.
    minority:
        ``M`` — individuals additionally satisfying the subgroup
        coordinates ``A``.
    n_units:
        Organizational units with population inside the context.
    indexes:
        Segregation index values by short name (``nan`` for degenerate
        cells, rendered "-" by the reports).
    """

    key: CellKey
    population: int
    minority: int
    n_units: int
    indexes: dict[str, float] = field(default_factory=dict)

    @property
    def sa_items(self) -> frozenset[int]:
        return self.key[0]

    @property
    def ca_items(self) -> frozenset[int]:
        return self.key[1]

    @property
    def proportion(self) -> float:
        """Minority fraction ``P = M / T`` (nan when the context is empty)."""
        if self.population <= 0:
            return float("nan")
        return self.minority / self.population

    @property
    def is_context_only(self) -> bool:
        """True for cells with an all-``⋆`` SA part (navigation cells)."""
        return not self.key[0]

    def value(self, index_name: str) -> float:
        """Value of one index (nan when not computed or degenerate)."""
        return self.indexes.get(index_name, float("nan"))

    def is_defined(self, index_name: str) -> bool:
        """True when the index value is a proper number."""
        return not math.isnan(self.value(index_name))

    def depth(self) -> int:
        """Number of non-``⋆`` coordinates (cell granularity)."""
        return len(self.key[0]) + len(self.key[1])
