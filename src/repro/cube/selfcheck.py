"""Cube engine self-checks: parallel-fill parity, CI-runnable.

One smoke for the fill engines, runnable anywhere::

    python -m repro.cube.selfcheck --workers 2

Builds two cubes — the bundled schools dataset and a skewed synthetic
table with a multi-valued context attribute — once with the
single-process columnar engine and once with ``engine="parallel"`` at
the requested worker count, and fails loudly (exit 1) unless every cell
is **bit-identical** (``check_same_cells`` at atol=0) in both ``all``
and ``closed`` modes.  The worker edge cases the test suite covers
(1 worker, more workers than contexts) ride on whatever ``--workers``
the caller picks; CI runs 2.
"""

from __future__ import annotations

import argparse
import sys

from repro.cube.builder import SegregationDataCubeBuilder
from repro.cube.cube import check_same_cells
from repro.data.schools import generate_schools
from repro.data.synthetic import random_final_table


def run(workers: int) -> int:
    """Columnar vs parallel parity over two datasets and both modes."""
    synthetic = random_final_table(
        3000, 12,
        sa_attributes={"g": 2, "eth": 4},
        ca_attributes={"r": 3, "s": 4},
        multi_valued_ca={"tag": 3},
        seed=3, skew=0.4,
    )
    datasets = [
        ("schools", generate_schools(),
         {"min_population": 10, "min_minority": 3}),
        ("synthetic", synthetic,
         {"min_population": 30, "min_minority": 8}),
    ]
    failures = 0
    checked = []
    for name, (table, schema), limits in datasets:
        for mode in ("all", "closed"):
            columnar = SegregationDataCubeBuilder(
                mode=mode, **limits
            ).build(table, schema)
            parallel = SegregationDataCubeBuilder(
                mode=mode, engine="parallel", workers=workers, **limits
            ).build(table, schema)
            problems = check_same_cells(columnar, parallel, atol=0.0)
            for problem in problems[:10]:
                print(
                    f"PARALLEL PARITY FAILURE ({name}, mode={mode}): "
                    f"{problem}",
                    file=sys.stderr,
                )
            failures += len(problems)
            checked.append(f"{name}/{mode}: {len(parallel)} cells")
    if failures:
        return 1
    print(
        f"cube selfcheck OK: parallel({workers} workers) == columnar "
        f"at atol=0 [{'; '.join(checked)}]"
    )
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cube.selfcheck",
        description="assert engine='parallel' is bit-exact vs columnar",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="process count for the parallel engine (default 2)",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    return run(args.workers)


if __name__ == "__main__":
    sys.exit(main())
