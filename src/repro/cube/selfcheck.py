"""Cube engine self-checks: parallel fill + parallel mine parity.

One smoke for the multiprocess paths, runnable anywhere::

    python -m repro.cube.selfcheck --workers 2 --mine-workers 2

Builds cubes over two datasets — the bundled schools dataset and a
skewed synthetic table with a multi-valued context attribute — in both
``all`` and ``closed`` modes, and fails loudly (exit 1) unless every
cell is **bit-identical** (``check_same_cells`` at atol=0) between:

* the single-process columnar engine (the reference);
* ``engine="parallel"`` at the requested ``--workers``;
* a build whose *mining* passes ran across ``--mine-workers``
  processes (:mod:`repro.itemsets.parallel`) on top of the parallel
  fill — the full multiprocess pipeline.

The worker edge cases the test suite covers (1 worker, more workers
than roots/contexts) ride on whatever counts the caller picks; CI
runs 2/2.
"""

from __future__ import annotations

import argparse
import sys

from repro.cube.builder import SegregationDataCubeBuilder
from repro.cube.cube import check_same_cells
from repro.data.schools import generate_schools
from repro.data.synthetic import random_final_table


def run(workers: int, mine_workers: "int | None" = None) -> int:
    """Columnar vs parallel-fill vs parallel-mine parity, both modes."""
    synthetic = random_final_table(
        3000, 12,
        sa_attributes={"g": 2, "eth": 4},
        ca_attributes={"r": 3, "s": 4},
        multi_valued_ca={"tag": 3},
        seed=3, skew=0.4,
    )
    datasets = [
        ("schools", generate_schools(),
         {"min_population": 10, "min_minority": 3}),
        ("synthetic", synthetic,
         {"min_population": 30, "min_minority": 8}),
    ]
    variants = [
        ("parallel-fill",
         {"engine": "parallel", "workers": workers}),
    ]
    if mine_workers is not None:
        variants.append(
            ("parallel-mine+fill",
             {"engine": "parallel", "workers": workers,
              "mine_workers": mine_workers}),
        )
    failures = 0
    checked = []
    for name, (table, schema), limits in datasets:
        for mode in ("all", "closed"):
            columnar = SegregationDataCubeBuilder(
                mode=mode, **limits
            ).build(table, schema)
            for label, opts in variants:
                candidate = SegregationDataCubeBuilder(
                    mode=mode, **opts, **limits
                ).build(table, schema)
                problems = check_same_cells(columnar, candidate, atol=0.0)
                for problem in problems[:10]:
                    print(
                        f"PARALLEL PARITY FAILURE ({name}, mode={mode}, "
                        f"{label}): {problem}",
                        file=sys.stderr,
                    )
                failures += len(problems)
            checked.append(f"{name}/{mode}: {len(columnar)} cells")
    if failures:
        return 1
    mine_note = (
        f", mine_workers={mine_workers}" if mine_workers is not None else ""
    )
    print(
        f"cube selfcheck OK: parallel({workers} workers{mine_note}) == "
        f"columnar at atol=0 [{'; '.join(checked)}]"
    )
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cube.selfcheck",
        description=(
            "assert engine='parallel' fills and workers= mining are "
            "bit-exact vs the columnar single-process build"
        ),
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="process count for the parallel fill engine (default 2)",
    )
    parser.add_argument(
        "--mine-workers", type=int, default=None,
        help=(
            "also check a build whose mining passes ran across this "
            "many processes (default: skip the mining variant)"
        ),
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.mine_workers is not None and args.mine_workers < 1:
        parser.error("--mine-workers must be >= 1")
    return run(args.workers, args.mine_workers)


if __name__ == "__main__":
    sys.exit(main())
