"""Multiprocess columnar fill: ``engine="parallel"``.

The columnar fill's phases B/C — per-unit counting plus batched index
kernels — are embarrassingly parallel across *context groups*: every
candidate cell of a context needs only that context's population vector,
its own cover, and the unit labels.  This module partitions the context
groups across ``multiprocessing`` workers:

* the packed ``uint64`` cover words of all SA-bearing candidates and the
  per-row unit labels are written **once** into
  :mod:`multiprocessing.shared_memory` segments — workers map them
  read-only instead of receiving pickled copies;
* each worker rebuilds a *units-only* counting database over the shared
  labels and runs the exact kernels of the single-process engine
  (:meth:`~repro.itemsets.transactions.TransactionDatabase.unit_counts_many`
  plus the shared :func:`~repro.cube.builder.eval_context_block`) over
  its contexts, in the same ``_FILL_BATCH_CELLS``-bounded batches;
* the parent scatters the returned column slabs into the candidate
  arrays and assembles one :class:`~repro.cube.table.CellTable` through
  the same phase D as ``engine="columnar"``.

Because every number is produced by the very same NumPy call sequence on
the very same inputs, the parallel cube is **bit-exact** (``atol=0``)
against the columnar one — ``python -m repro.cube.selfcheck`` asserts
this end to end.

Workers are forked when the platform supports it (inheriting the index
registry, so runtime-registered custom indexes keep working) and spawned
otherwise; in that case index specs travel pickled, which all built-in
specs support.
"""

from __future__ import annotations

import multiprocessing
import os
from multiprocessing import shared_memory

import numpy as np

from repro.cube.builder import (
    _FILL_BATCH_CELLS,
    CandidateArrays,
    MinedCoordinates,
    SegregationDataCubeBuilder,
    eval_context_block,
)
from repro.cube.table import CellTable
from repro.itemsets.coverset import WORD_BITS, WORD_DTYPE, Cover, CoverSet
from repro.itemsets.items import ItemDictionary
from repro.itemsets.transactions import TransactionDatabase

#: One context group shipped to a worker: the context's per-unit
#: population vector and the SA-matrix rows (= cover-matrix rows) of
#: its candidate cells.
GroupTask = "tuple[np.ndarray, np.ndarray]"


def resolve_workers(workers: "int | None") -> int:
    """Effective worker count: ``workers`` or one per CPU, at least 1."""
    if workers is None:
        return max(1, os.cpu_count() or 1)
    return max(1, int(workers))


def _mp_context():
    """Fork when available (inherits the index registry), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _pack_cover_matrix(covers: "list[Cover]", n_bits: int) -> np.ndarray:
    """All candidate covers as one ``(n_covers, n_words)`` uint64 matrix.

    Packed covers contribute their words directly; other codecs (bool /
    ewah) are packed row by row — the counting result only depends on
    the bits, so cross-codec builds stay identical.
    """
    n_words = (n_bits + WORD_BITS - 1) // WORD_BITS
    out = np.zeros((len(covers), n_words), dtype=WORD_DTYPE)
    for i, cover in enumerate(covers):
        if isinstance(cover, CoverSet):
            out[i] = cover.words
        else:
            out[i] = CoverSet.from_bools(cover.to_bools()).words
    return out


def _partition_groups(
    groups: "list[GroupTask]", n_parts: int
) -> "list[list[GroupTask]]":
    """Greedy balanced partition of context groups by cell count.

    Groups are placed largest-first onto the least-loaded partition, so
    one popular context cannot serialise the fill behind it.  Never
    produces an empty partition: ``n_parts`` is clamped to the number of
    groups (the ``n_contexts < workers`` edge).
    """
    n_parts = max(1, min(n_parts, len(groups)))
    parts: "list[list[GroupTask]]" = [[] for _ in range(n_parts)]
    loads = [0] * n_parts
    order = sorted(range(len(groups)), key=lambda i: -len(groups[i][1]))
    for i in order:
        j = loads.index(min(loads))
        parts[j].append(groups[i])
        loads[j] += len(groups[i][1])
    return parts


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Per-process fill configuration, set once by the pool initializer.
_WORKER_CFG: "dict | None" = None


def _init_worker(cfg: dict) -> None:
    global _WORKER_CFG
    _WORKER_CFG = cfg


def _compute_groups(
    cover_buf, units_buf, cfg: dict, groups: "list[GroupTask]"
) -> list:
    """Run phases B/C over this partition's context groups.

    All shared-memory views live only inside this frame, so the caller
    can close its segments the moment it returns (closing with live
    array exports raises ``BufferError``).
    """
    cover_words = np.ndarray(
        (cfg["n_covers"], cfg["n_words"]), dtype=WORD_DTYPE,
        buffer=cover_buf,
    )
    units = np.ndarray((cfg["n_rows"],), dtype=np.int64, buffer=units_buf)
    # A units-only counting database: no items, same unit->rows
    # grouping — unit_counts_many runs verbatim.
    empty = np.empty(0, dtype=np.int64)
    db = TransactionDatabase.from_item_arrays(
        empty, empty, cfg["n_rows"], ItemDictionary(), units=units
    )
    specs = cfg["specs"]
    minsup_min = cfg["minsup_min"]
    n_bits = cfg["n_bits"]
    max_batch = max(1, _FILL_BATCH_CELLS // max(1, db.n_units))
    out = []
    for tvec, rows in groups:
        totals = np.empty(len(rows), dtype=np.int64)
        keep = np.empty(len(rows), dtype=bool)
        values = np.empty((len(specs), len(rows)))
        for a in range(0, len(rows), max_batch):
            block_rows = rows[a:a + max_batch]
            sub_all = db.unit_counts_many(
                [CoverSet(cover_words[r], n_bits) for r in block_rows]
            )
            t, k, v = eval_context_block(specs, tvec, sub_all, minsup_min)
            b = a + len(block_rows)
            totals[a:b] = t
            keep[a:b] = k
            values[:, a:b] = v
        out.append((rows, totals, keep, values))
    return out


def _fill_partition(groups: "list[GroupTask]") -> list:
    """Pool task: attach the shared segments, fill one partition.

    Returns ``[(rows, totals, keep, values), ...]`` per context group —
    plain arrays owned by the worker, safe to pickle back.
    """
    cfg = _WORKER_CFG
    # Attaching re-registers the segments with the resource tracker;
    # pool workers share the parent's tracker process, whose cache has
    # set semantics, so the re-registration is a no-op and the parent's
    # unlink() stays the single point of cleanup.
    shm_covers = shared_memory.SharedMemory(name=cfg["cover_shm"])
    shm_units = shared_memory.SharedMemory(name=cfg["units_shm"])
    try:
        return _compute_groups(shm_covers.buf, shm_units.buf, cfg, groups)
    finally:
        shm_covers.close()
        shm_units.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

def fill_parallel(
    builder: SegregationDataCubeBuilder,
    db: TransactionDatabase,
    mined: MinedCoordinates,
) -> CellTable:
    """Fill the cube with ``builder.workers`` processes; bit-exact vs
    the columnar engine.

    Shares phase A (candidate enumeration) and phase D (assembly) with
    ``_fill_columnar``; phases B/C run in the worker pool.  With no
    SA-bearing candidates there is nothing to count and no pool is
    spawned; otherwise the pool runs even for one worker, so a
    ``workers=1`` build exercises the genuine multiprocess path.
    """
    specs = builder.indexes
    cand = builder._enumerate_candidates(db, mined)
    n_sa = len(cand.sa_covers)
    minority_totals = np.zeros(n_sa, dtype=np.int64)
    kept_rows = np.zeros(n_sa, dtype=bool)
    values = np.full((len(specs), n_sa), np.nan)
    groups = [
        (mined.context_tvecs[ctx], np.asarray(rows, dtype=np.int64))
        for ctx, rows in cand.rows_by_context().items()
    ]
    if groups:
        partitions = _partition_groups(
            groups, resolve_workers(builder.workers)
        )
        for rows, totals, keep, vals in _run_pool(
            db, specs, mined.minsup_min, cand.sa_covers, partitions
        ):
            minority_totals[rows] = totals
            kept_rows[rows] = keep
            values[:, rows] = vals
    return builder._assemble_cells(
        db, cand, minority_totals, kept_rows, values
    )


def _run_pool(
    db: TransactionDatabase,
    specs: list,
    minsup_min: int,
    sa_covers: "list[Cover]",
    partitions: "list[list[GroupTask]]",
) -> list:
    """Ship covers + units via shared memory, map partitions over a pool."""
    n_bits = len(db)
    matrix = _pack_cover_matrix(sa_covers, n_bits)
    units = np.ascontiguousarray(db.units, dtype=np.int64)
    shm_covers = shared_memory.SharedMemory(
        create=True, size=max(1, matrix.nbytes)
    )
    shm_units = shared_memory.SharedMemory(
        create=True, size=max(1, units.nbytes)
    )
    try:
        # The temporaries viewing shm buffers die with each statement,
        # leaving the segments export-free for close()/unlink().
        np.ndarray(matrix.shape, WORD_DTYPE, buffer=shm_covers.buf)[:] = \
            matrix
        np.ndarray(units.shape, np.int64, buffer=shm_units.buf)[:] = units
        cfg = {
            "cover_shm": shm_covers.name,
            "units_shm": shm_units.name,
            "n_covers": matrix.shape[0],
            "n_words": matrix.shape[1],
            "n_bits": n_bits,
            "n_rows": len(units),
            "specs": specs,
            "minsup_min": minsup_min,
        }
        del matrix
        results: list = []
        ctx = _mp_context()
        with ctx.Pool(
            processes=len(partitions),
            initializer=_init_worker,
            initargs=(cfg,),
        ) as pool:
            for part in pool.imap_unordered(_fill_partition, partitions):
                results.extend(part)
        return results
    finally:
        shm_covers.close()
        shm_covers.unlink()
        shm_units.close()
        shm_units.unlink()
