"""Exploratory analysis over a built cube: discovery and paradox checks.

Segregation *discovery* (paper §2) is the ranking of cube cells in
search of a-priori unknown segregation contexts.  This module adds the
two analyst-facing primitives the demo walks the audience through:

* :func:`top_contexts` — ranked candidate contexts with minimum-size
  guards and optional per-cell randomisation p-values;
* :func:`simpson_reversals` — granularity warnings: cells whose index
  jumps sharply when drilling one coordinate down from a parent cell,
  the Simpson's-paradox instance the paper warns hypothesis-testing
  workflows about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cube.cell import CellStats
from repro.cube.coordinates import parents_of
from repro.cube.protocol import CubeLike
from repro.errors import CubeError


@dataclass(frozen=True)
class Discovery:
    """One ranked segregation context."""

    rank: int
    description: str
    index_name: str
    value: float
    population: int
    minority: int
    proportion: float
    n_units: int


def top_contexts(
    cube: CubeLike,
    index_name: str = "D",
    k: int = 10,
    min_minority: int = 0,
    min_population: int = 0,
    min_units: int = 2,
) -> "list[Discovery]":
    """Rank cells by an index and decode them into report-ready records."""
    cells = cube.top(
        index_name,
        k=k,
        min_minority=min_minority,
        min_population=min_population,
        min_units=min_units,
    )
    return [
        Discovery(
            rank=rank + 1,
            description=cube.describe(stats.key),
            index_name=index_name,
            value=stats.value(index_name),
            population=stats.population,
            minority=stats.minority,
            proportion=stats.proportion,
            n_units=stats.n_units,
        )
        for rank, stats in enumerate(cells)
    ]


@dataclass(frozen=True)
class Reversal:
    """A granularity warning: drilling down flips the conclusion."""

    parent_description: str
    child_description: str
    index_name: str
    parent_value: float
    child_value: float

    @property
    def jump(self) -> float:
        return self.child_value - self.parent_value


def simpson_reversals(
    cube: CubeLike,
    index_name: str = "D",
    low: float = 0.3,
    high: float = 0.6,
    min_minority: int = 0,
) -> "list[Reversal]":
    """Find (parent, child) cell pairs where segregation appears only at
    the finer granularity.

    A pair qualifies when the parent's index is at most ``low`` (looks
    unsegregated), the direct child's is at least ``high`` (clearly
    segregated), and the child satisfies the minority-size guard.  This
    is the cube-level manifestation of analysing data "at wrong
    granularity" (paper §2).
    """
    if low > high:
        raise CubeError(f"low ({low}) must not exceed high ({high})")
    out: list[Reversal] = []
    # Candidate children come from one columnar filter; only qualifying
    # cells are materialised and pay for parent lookups.
    table = cube.table
    col = table.columns.get(index_name)
    if col is None:
        return out
    mask = (
        ~table.context_only_mask()
        & ~np.isnan(col)
        & (table.minority >= min_minority)
        & (col >= high)
    )
    for row in np.flatnonzero(mask):
        stats = cube.table.stats(int(row))
        child_value = stats.value(index_name)
        for parent_key in parents_of(stats.key):
            parent = cube.cell_by_key(parent_key)
            if parent is None or parent.is_context_only:
                continue
            parent_value = parent.value(index_name)
            if math.isnan(parent_value) or parent_value > low:
                continue
            out.append(
                Reversal(
                    parent_description=cube.describe(parent_key),
                    child_description=cube.describe(stats.key),
                    index_name=index_name,
                    parent_value=parent_value,
                    child_value=child_value,
                )
            )
    out.sort(key=lambda r: -r.jump)
    return out


def summarize_cube(cube: CubeLike) -> dict[str, object]:
    """Headline numbers for logs and reports (columnar column scans)."""
    table = cube.table
    defined = {
        name: int(table.defined_mask(name).sum())
        for name in cube.metadata.index_names
    }
    return {
        "cells": len(cube),
        "context_only_cells": int(table.context_only_mask().sum()),
        "defined_cells_per_index": defined,
        "mode": cube.metadata.mode,
        "min_population": cube.metadata.min_population,
        "min_minority": cube.metadata.min_minority,
        "build_seconds": round(cube.metadata.build_seconds, 4),
    }
