"""Cross-cube comparison: the demo's Italy-vs-Estonia discussion, as code.

The demonstration closes with "a cross-comparison of the Italian vs
Estonian segregation findings" (paper §4).  Two cubes built over
different populations cannot be joined on item ids (their dictionaries
differ); cells are aligned on their *decoded* coordinates —
``attribute=value`` pairs — and compared index by index.  Counts and
index values are read straight off the cubes' columnar stores; no
per-cell objects are materialised during the join.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cube.coordinates import decode_part
from repro.cube.protocol import CubeLike

AlignedKey = tuple[tuple[tuple[str, str], ...], tuple[tuple[str, str], ...]]


def _aligned_key(cube: CubeLike, key) -> AlignedKey:
    sa, ca = key

    def decode(items) -> tuple[tuple[str, str], ...]:
        decoded = decode_part(items, cube.dictionary)
        return tuple(
            sorted(
                (attr, ",".join(value) if isinstance(value, tuple)
                 else str(value))
                for attr, value in decoded.items()
            )
        )

    return (decode(sa), decode(ca))


def describe_aligned(key: AlignedKey) -> str:
    """Human-readable rendering of an aligned coordinate key."""
    sa, ca = key
    left = ", ".join(f"{a}={v}" for a, v in sa) or "*"
    right = ", ".join(f"{a}={v}" for a, v in ca) or "*"
    return f"[{left} | {right}]"


@dataclass(frozen=True)
class CellComparison:
    """One coordinate present in both cubes."""

    description: str
    index_name: str
    left_value: float
    right_value: float
    left_population: int
    right_population: int

    @property
    def delta(self) -> float:
        """right minus left."""
        return self.right_value - self.left_value


def compare_cubes(
    left: CubeLike,
    right: CubeLike,
    index_name: str = "D",
    min_minority: int = 0,
) -> "list[CellComparison]":
    """Align two cubes on decoded coordinates and compare one index.

    Only coordinates materialised in *both* cubes, with the index
    defined on both sides and the minority-size guard satisfied on both
    sides, are returned — sorted by absolute delta, largest divergence
    first.
    """
    lt, rt = left.table, right.table
    l_col = lt.columns.get(index_name)
    r_col = rt.columns.get(index_name)
    if l_col is None or r_col is None:
        return []
    # Pre-filter each side columnar-ly: defined index + minority guard.
    l_ok = ~np.isnan(l_col) & (lt.minority >= min_minority)
    r_ok = ~np.isnan(r_col) & (rt.minority >= min_minority)
    left_rows = {
        _aligned_key(left, lt.keys[i]): i for i in np.flatnonzero(l_ok)
    }
    out: list[CellComparison] = []
    for j in np.flatnonzero(r_ok):
        aligned = _aligned_key(right, rt.keys[j])
        i = left_rows.get(aligned)
        if i is None:
            continue
        out.append(
            CellComparison(
                description=describe_aligned(aligned),
                index_name=index_name,
                left_value=float(l_col[i]),
                right_value=float(r_col[j]),
                left_population=int(lt.population[i]),
                right_population=int(rt.population[j]),
            )
        )
    out.sort(key=lambda c: -abs(c.delta))
    return out


def comparison_rows(
    comparisons: "list[CellComparison]", k: "int | None" = None
) -> "list[list[object]]":
    """Report-ready rows (description, left, right, delta)."""
    selected = comparisons if k is None else comparisons[:k]
    return [
        [c.description, c.left_value, c.right_value, c.delta]
        for c in selected
    ]
