"""Cross-cube comparison: two populations, or one population over time.

The demonstration closes with "a cross-comparison of the Italian vs
Estonian segregation findings" (paper §4).  Two cubes built over
different populations cannot be joined on item ids (their dictionaries
differ); cells are aligned on their *decoded* coordinates —
``attribute=value`` pairs — and compared index by index.  Counts and
index values are read straight off the cubes' columnar stores; no
per-cell objects are materialised during the join.

The same alignment generalises a pairwise comparison to a **timeline
mode**: :func:`timeline_series` walks a
:class:`~repro.store.timeline.CubeTimeline` (a dated sequence of
snapshots, typically incremental deltas) and emits one
:class:`CellSeries` per aligned coordinate — the per-cell trend the
temporal workload (paper §3) asks for, with the biggest movers first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cube.coordinates import decode_part
from repro.cube.protocol import CubeLike

AlignedKey = tuple[tuple[tuple[str, str], ...], tuple[tuple[str, str], ...]]


def _aligned_key(cube: CubeLike, key) -> AlignedKey:
    sa, ca = key

    def decode(items) -> tuple[tuple[str, str], ...]:
        decoded = decode_part(items, cube.dictionary)
        return tuple(
            sorted(
                (attr, ",".join(value) if isinstance(value, tuple)
                 else str(value))
                for attr, value in decoded.items()
            )
        )

    return (decode(sa), decode(ca))


def describe_aligned(key: AlignedKey) -> str:
    """Human-readable rendering of an aligned coordinate key."""
    sa, ca = key
    left = ", ".join(f"{a}={v}" for a, v in sa) or "*"
    right = ", ".join(f"{a}={v}" for a, v in ca) or "*"
    return f"[{left} | {right}]"


@dataclass(frozen=True)
class CellComparison:
    """One coordinate present in both cubes."""

    description: str
    index_name: str
    left_value: float
    right_value: float
    left_population: int
    right_population: int

    @property
    def delta(self) -> float:
        """right minus left."""
        return self.right_value - self.left_value


def compare_cubes(
    left: CubeLike,
    right: CubeLike,
    index_name: str = "D",
    min_minority: int = 0,
) -> "list[CellComparison]":
    """Align two cubes on decoded coordinates and compare one index.

    Only coordinates materialised in *both* cubes, with the index
    defined on both sides and the minority-size guard satisfied on both
    sides, are returned — sorted by absolute delta, largest divergence
    first.
    """
    lt, rt = left.table, right.table
    l_col = lt.columns.get(index_name)
    r_col = rt.columns.get(index_name)
    if l_col is None or r_col is None:
        return []
    # Pre-filter each side columnar-ly: defined index + minority guard.
    l_ok = ~np.isnan(l_col) & (lt.minority >= min_minority)
    r_ok = ~np.isnan(r_col) & (rt.minority >= min_minority)
    left_rows = {
        _aligned_key(left, lt.keys[i]): i for i in np.flatnonzero(l_ok)
    }
    out: list[CellComparison] = []
    for j in np.flatnonzero(r_ok):
        aligned = _aligned_key(right, rt.keys[j])
        i = left_rows.get(aligned)
        if i is None:
            continue
        out.append(
            CellComparison(
                description=describe_aligned(aligned),
                index_name=index_name,
                left_value=float(l_col[i]),
                right_value=float(r_col[j]),
                left_population=int(lt.population[i]),
                right_population=int(rt.population[j]),
            )
        )
    out.sort(key=lambda c: -abs(c.delta))
    return out


def comparison_rows(
    comparisons: "list[CellComparison]", k: "int | None" = None
) -> "list[list[object]]":
    """Report-ready rows (description, left, right, delta)."""
    selected = comparisons if k is None else comparisons[:k]
    return [
        [c.description, c.left_value, c.right_value, c.delta]
        for c in selected
    ]


# ----------------------------------------------------------------------
# Timeline mode: one coordinate tracked across a dated cube sequence
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CellSeries:
    """One aligned coordinate's index trajectory across timeline dates.

    ``values[k]`` is the index at ``dates[k]`` — nan where the cell is
    not materialised (or the index undefined) at that date; likewise
    ``populations[k]`` is 0 there.
    """

    description: str
    index_name: str
    dates: "tuple[int, ...]"
    values: "tuple[float, ...]"
    populations: "tuple[int, ...]"

    @property
    def n_defined(self) -> int:
        """Dates at which the cell exists with a defined index."""
        return sum(1 for v in self.values if not math.isnan(v))

    @property
    def spread(self) -> float:
        """Max minus min defined value (nan when fewer than 2 points)."""
        defined = [v for v in self.values if not math.isnan(v)]
        if len(defined) < 2:
            return float("nan")
        return max(defined) - min(defined)

    @property
    def delta(self) -> float:
        """Last defined value minus first defined value (nan if < 2)."""
        defined = [v for v in self.values if not math.isnan(v)]
        if len(defined) < 2:
            return float("nan")
        return defined[-1] - defined[0]


def timeline_series(
    timeline,
    index_name: str = "D",
    min_minority: int = 0,
    min_points: int = 2,
) -> "list[CellSeries]":
    """Per-cell trend series over a dated sequence of cubes.

    ``timeline`` is anything yielding ``(date, cube)`` pairs in date
    order — a :class:`~repro.store.timeline.CubeTimeline`, or a plain
    list of pairs.  Cells are aligned on decoded coordinates exactly as
    :func:`compare_cubes` aligns two cubes; a coordinate must be
    materialised (index defined, minority guard satisfied) at
    ``min_points`` dates or more to produce a series.  The result is
    sorted by :attr:`CellSeries.spread` descending — the biggest movers
    first — with the cell description breaking ties.
    """
    dates: "list[int]" = []
    per_key: "dict[AlignedKey, dict[int, tuple[float, int]]]" = {}
    for date, cube in timeline:
        dates.append(int(date))
        table = cube.table
        col = table.columns.get(index_name)
        if col is None:
            continue
        ok = ~np.isnan(col) & (table.minority >= min_minority)
        for i in np.flatnonzero(ok):
            aligned = _aligned_key(cube, table.keys[i])
            per_key.setdefault(aligned, {})[int(date)] = (
                float(col[i]), int(table.population[i])
            )
    out: "list[CellSeries]" = []
    for aligned, by_date in per_key.items():
        if len(by_date) < min_points:
            continue
        values = tuple(
            by_date[d][0] if d in by_date else float("nan") for d in dates
        )
        populations = tuple(
            by_date[d][1] if d in by_date else 0 for d in dates
        )
        out.append(
            CellSeries(
                description=describe_aligned(aligned),
                index_name=index_name,
                dates=tuple(dates),
                values=values,
                populations=populations,
            )
        )
    out.sort(
        key=lambda s: (
            -s.spread if not math.isnan(s.spread) else float("inf"),
            s.description,
        )
    )
    return out
