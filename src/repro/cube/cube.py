"""The multi-dimensional segregation data cube (paper Fig. 1).

A :class:`SegregationCube` maps cell keys — (SA itemset, CA itemset)
pairs, with absent attributes at ``⋆`` — to :class:`CellStats`.  It
supports the OLAP-style exploration the demo walks through: point
lookups, slicing, roll-up/drill-down navigation, top-k ranking and
tabular export.

Cubes built in ``closed`` mode materialise only closed coordinates; an
attached *resolver* (provided by the builder) answers point queries for
any other frequent coordinate exactly, by intersecting item covers on
demand.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cube.cell import CellStats
from repro.cube.coordinates import (
    CellKey,
    coordinate_columns,
    describe_key,
    encode_query,
    parents_of,
)
from repro.errors import CubeError
from repro.itemsets.items import ItemDictionary, ItemKind

Resolver = Callable[[CellKey], Optional[CellStats]]


@dataclass
class CubeMetadata:
    """Provenance of a cube build."""

    index_names: list[str]
    min_population: int
    min_minority: int
    n_rows: int
    n_units: int
    mode: str
    backend: str
    build_seconds: float = 0.0
    extra: dict[str, object] = field(default_factory=dict)


class SegregationCube:
    """Container and query interface of the segregation data cube."""

    def __init__(
        self,
        cells: dict[CellKey, CellStats],
        dictionary: ItemDictionary,
        metadata: CubeMetadata,
        resolver: "Resolver | None" = None,
    ):
        self._cells = cells
        self.dictionary = dictionary
        self.metadata = metadata
        self._resolver = resolver

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[CellStats]:
        return iter(self._cells.values())

    def __contains__(self, key: CellKey) -> bool:
        return key in self._cells

    def keys(self) -> Iterator[CellKey]:
        return iter(self._cells)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def cell_by_key(self, key: CellKey) -> "CellStats | None":
        """Materialised cell, or resolver-computed cell, or None."""
        found = self._cells.get(key)
        if found is not None:
            return found
        if self._resolver is not None:
            return self._resolver(key)
        return None

    def cell(
        self,
        sa: "Mapping[str, object] | None" = None,
        ca: "Mapping[str, object] | None" = None,
    ) -> "CellStats | None":
        """Point query with user-level coordinates.

        ``sa={'sex': 'F', 'age': 'young'}, ca={'region': 'north'}``
        addresses the Fig. 1 cell for young women in the north; attributes
        left out are at ``⋆``.
        """
        key = encode_query(self.dictionary, sa=sa, ca=ca)
        return self.cell_by_key(key)

    def value(
        self,
        index_name: str,
        sa: "Mapping[str, object] | None" = None,
        ca: "Mapping[str, object] | None" = None,
    ) -> float:
        """Index value at the given coordinates (nan when absent)."""
        stats = self.cell(sa=sa, ca=ca)
        return stats.value(index_name) if stats is not None else float("nan")

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------

    def children(self, key: CellKey) -> "list[CellStats]":
        """Materialised cells refining ``key`` by exactly one item."""
        sa, ca = key
        out = []
        for other_key, stats in self._cells.items():
            o_sa, o_ca = other_key
            if not (sa <= o_sa and ca <= o_ca):
                continue
            if (len(o_sa) - len(sa)) + (len(o_ca) - len(ca)) == 1:
                out.append(stats)
        return out

    def parents(self, key: CellKey) -> "list[CellStats]":
        """Materialised roll-up neighbours of ``key``."""
        out = []
        for parent_key in parents_of(key):
            stats = self.cell_by_key(parent_key)
            if stats is not None:
                out.append(stats)
        return out

    def slice(
        self,
        sa: "Mapping[str, object] | None" = None,
        ca: "Mapping[str, object] | None" = None,
    ) -> "list[CellStats]":
        """All materialised cells whose coordinates *include* the given ones."""
        want_sa, want_ca = encode_query(self.dictionary, sa=sa, ca=ca)
        return [
            stats
            for key, stats in self._cells.items()
            if want_sa <= key[0] and want_ca <= key[1]
        ]

    def top(
        self,
        index_name: str,
        k: int = 10,
        min_minority: int = 0,
        min_population: int = 0,
        min_units: int = 2,
        ascending: bool = False,
    ) -> "list[CellStats]":
        """Rank proper cells by one index (the discovery primitive).

        Context-only cells and cells whose index is undefined are
        excluded; ties break deterministically on the cell description.
        """
        candidates = [
            stats
            for stats in self._cells.values()
            if not stats.is_context_only
            and stats.is_defined(index_name)
            and stats.minority >= min_minority
            and stats.population >= min_population
            and stats.n_units >= min_units
        ]
        candidates.sort(
            key=lambda s: (
                s.value(index_name) if ascending else -s.value(index_name),
                describe_key(s.key, self.dictionary),
            )
        )
        return candidates[:k]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def sa_attributes(self) -> "list[str]":
        """SA attribute names present in the dictionary."""
        return sorted(
            {
                self.dictionary.item(i).attribute
                for i in self.dictionary.ids_of_kind(ItemKind.SA)
            }
        )

    def ca_attributes(self) -> "list[str]":
        """CA attribute names present in the dictionary."""
        return sorted(
            {
                self.dictionary.item(i).attribute
                for i in self.dictionary.ids_of_kind(ItemKind.CA)
            }
        )

    def to_rows(self) -> "list[dict[str, object]]":
        """Flatten the cube for CSV/xlsx export (the ``cube.csv`` artefact).

        One row per cell: attribute columns (``*`` for wildcards), then
        T, M, P, n_units and one column per index.
        """
        sa_attrs = self.sa_attributes()
        ca_attrs = self.ca_attributes()
        rows = []
        for key, stats in sorted(
            self._cells.items(),
            key=lambda kv: (kv[1].depth(), describe_key(kv[0], self.dictionary)),
        ):
            row: dict[str, object] = coordinate_columns(
                key, self.dictionary, sa_attrs, ca_attrs
            )
            row["T"] = stats.population
            row["M"] = stats.minority
            row["P"] = (
                round(stats.proportion, 6)
                if not math.isnan(stats.proportion)
                else ""
            )
            row["units"] = stats.n_units
            for name in self.metadata.index_names:
                value = stats.value(name)
                row[name] = round(value, 6) if not math.isnan(value) else ""
            rows.append(row)
        return rows

    def describe(self, key: CellKey) -> str:
        """Human-readable address of a cell."""
        return describe_key(key, self.dictionary)

    def __repr__(self) -> str:
        return (
            f"SegregationCube({len(self._cells)} cells, "
            f"indexes={self.metadata.index_names}, mode={self.metadata.mode})"
        )


def check_same_cells(a: SegregationCube, b: SegregationCube,
                     atol: float = 1e-9) -> "list[str]":
    """Compare two cubes cell-by-cell; return human-readable differences.

    Used by the equivalence tests (itemset-driven vs naive builder) and
    by the ablation benchmarks; an empty list means the cubes agree.
    """
    problems = []
    keys_a, keys_b = set(a.keys()), set(b.keys())
    for key in keys_a - keys_b:
        problems.append(f"only in first: {a.describe(key)}")
    for key in keys_b - keys_a:
        problems.append(f"only in second: {b.describe(key)}")
    for key in keys_a & keys_b:
        cell_a = a.cell_by_key(key)
        cell_b = b.cell_by_key(key)
        assert cell_a is not None and cell_b is not None
        if (cell_a.population, cell_a.minority) != (
            cell_b.population,
            cell_b.minority,
        ):
            problems.append(
                f"{a.describe(key)}: counts differ "
                f"({cell_a.population},{cell_a.minority}) vs "
                f"({cell_b.population},{cell_b.minority})"
            )
            continue
        for name in a.metadata.index_names:
            va, vb = cell_a.value(name), cell_b.value(name)
            if math.isnan(va) and math.isnan(vb):
                continue
            if math.isnan(va) != math.isnan(vb) or abs(va - vb) > atol:
                problems.append(
                    f"{a.describe(key)}: index {name} differs {va} vs {vb}"
                )
    return problems
