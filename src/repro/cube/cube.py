"""The multi-dimensional segregation data cube (paper Fig. 1).

A :class:`SegregationCube` answers the OLAP-style exploration the demo
walks through — point lookups, slicing, roll-up/drill-down navigation,
top-k ranking and tabular export — over a **columnar** cell store: cells
live in a :class:`~repro.cube.table.CellTable` (struct-of-arrays: packed
coordinate bitmasks, int64 count columns, one float64 column per index),
and every bulk query runs as array operations over whole columns —
subset-mask slicing, ``argpartition`` top-k — instead of walking
per-cell objects.  :class:`~repro.cube.cell.CellStats` remains the
per-cell API, materialised lazily from table rows on demand.

Cubes built in ``closed`` mode materialise only closed coordinates; an
attached *resolver* (provided by the builder) answers point queries for
any other frequent coordinate exactly, by intersecting item covers on
demand.

A built cube can be persisted with :meth:`SegregationCube.dump` (or
:func:`repro.store.dump_snapshot`) and reopened — optionally
memory-mapped — by :func:`repro.store.open_snapshot` without re-running
ETL, mining or fill; the reopened cube answers every query above from
the stored columns (no resolver: snapshots carry cells, not covers).
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np

from repro.cube.cell import CellStats
from repro.cube.coordinates import (
    CellKey,
    coordinate_columns,
    describe_key,
    encode_query,
    parents_of,
)
from repro.cube.table import CellTable
from repro.errors import CubeError
from repro.itemsets.items import ItemDictionary, ItemKind

Resolver = Callable[[CellKey], Optional[CellStats]]


@dataclass
class CubeMetadata:
    """Provenance of a cube build."""

    index_names: list[str]
    min_population: int
    min_minority: int
    n_rows: int
    n_units: int
    mode: str
    backend: str
    build_seconds: float = 0.0
    extra: dict[str, object] = field(default_factory=dict)


class SegregationCube:
    """Container and query interface of the segregation data cube."""

    def __init__(
        self,
        cells: "Union[CellTable, dict[CellKey, CellStats]]",
        dictionary: ItemDictionary,
        metadata: CubeMetadata,
        resolver: "Resolver | None" = None,
    ):
        if isinstance(cells, CellTable):
            self._table = cells
        else:
            # Per-object dicts (naive builder, hand-built cubes) are
            # converted into the columnar store at construction.
            self._table = CellTable.from_cells(
                cells, metadata.index_names, len(dictionary)
            )
        self.dictionary = dictionary
        self.metadata = metadata
        self._resolver = resolver

    @property
    def table(self) -> CellTable:
        """The underlying struct-of-arrays cell store."""
        return self._table

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[CellStats]:
        return (self._table.stats(i) for i in range(len(self._table)))

    def __contains__(self, key: CellKey) -> bool:
        return key in self._table

    def keys(self) -> Iterator[CellKey]:
        return iter(self._table.keys)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def cell_by_key(self, key: CellKey) -> "CellStats | None":
        """Materialised cell, or resolver-computed cell, or None."""
        row = self._table.row_of(key)
        if row is not None:
            return self._table.stats(row)
        if self._resolver is not None:
            return self._resolver(key)
        return None

    def cell(
        self,
        sa: "Mapping[str, object] | None" = None,
        ca: "Mapping[str, object] | None" = None,
    ) -> "CellStats | None":
        """Point query with user-level coordinates.

        ``sa={'sex': 'F', 'age': 'young'}, ca={'region': 'north'}``
        addresses the Fig. 1 cell for young women in the north; attributes
        left out are at ``⋆``.
        """
        key = encode_query(self.dictionary, sa=sa, ca=ca)
        return self.cell_by_key(key)

    def value(
        self,
        index_name: str,
        sa: "Mapping[str, object] | None" = None,
        ca: "Mapping[str, object] | None" = None,
    ) -> float:
        """Index value at the given coordinates (nan when absent)."""
        key = encode_query(self.dictionary, sa=sa, ca=ca)
        return self.value_by_key(index_name, key)

    def value_by_key(self, index_name: str, key: CellKey) -> float:
        """Index value at an encoded key, read straight off the column.

        Materialised cells cost one array access — no
        :class:`CellStats` is built; missing cells go through the lazy
        resolver (nan when below thresholds or absent).
        """
        row = self._table.row_of(key)
        if row is not None:
            return self._table.value_at(row, index_name)
        if self._resolver is not None:
            stats = self._resolver(key)
            if stats is not None:
                return stats.value(index_name)
        return float("nan")

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------

    def children(self, key: CellKey) -> "list[CellStats]":
        """Materialised cells refining ``key`` by exactly one item."""
        sa, ca = key
        mask = self._table.superset_mask(sa, ca)
        mask &= self._table.depths == (len(sa) + len(ca) + 1)
        return [self._table.stats(i) for i in np.flatnonzero(mask)]

    def parents(self, key: CellKey) -> "list[CellStats]":
        """Materialised roll-up neighbours of ``key``."""
        out = []
        for parent_key in parents_of(key):
            stats = self.cell_by_key(parent_key)
            if stats is not None:
                out.append(stats)
        return out

    def slice(
        self,
        sa: "Mapping[str, object] | None" = None,
        ca: "Mapping[str, object] | None" = None,
    ) -> "list[CellStats]":
        """All materialised cells whose coordinates *include* the given ones."""
        want_sa, want_ca = encode_query(self.dictionary, sa=sa, ca=ca)
        mask = self._table.superset_mask(want_sa, want_ca)
        return [self._table.stats(i) for i in np.flatnonzero(mask)]

    def top(
        self,
        index_name: str,
        k: int = 10,
        min_minority: int = 0,
        min_population: int = 0,
        min_units: int = 2,
        ascending: bool = False,
    ) -> "list[CellStats]":
        """Rank proper cells by one index (the discovery primitive).

        Context-only cells and cells whose index is undefined are
        excluded; ties break deterministically on the cell description.
        The ranking is columnar: filters are boolean masks and the
        top-``k`` cut is an ``argpartition``, so only cells tied at the
        boundary pay for coordinate decoding.
        """
        table = self._table
        mask = (
            ~table.context_only_mask()
            & table.defined_mask(index_name)
            & (table.minority >= min_minority)
            & (table.population >= min_population)
            & (table.n_units >= min_units)
        )
        rows = table.top_rows(
            index_name,
            k,
            mask,
            descending=not ascending,
            tie_break=lambda row: describe_key(
                table.keys[row], self.dictionary
            ),
        )
        return [self._table.stats(i) for i in rows]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def sa_attributes(self) -> "list[str]":
        """SA attribute names present in the dictionary."""
        return sorted(
            {
                self.dictionary.item(i).attribute
                for i in self.dictionary.ids_of_kind(ItemKind.SA)
            }
        )

    def ca_attributes(self) -> "list[str]":
        """CA attribute names present in the dictionary."""
        return sorted(
            {
                self.dictionary.item(i).attribute
                for i in self.dictionary.ids_of_kind(ItemKind.CA)
            }
        )

    def to_rows(self) -> "list[dict[str, object]]":
        """Flatten the cube for CSV/xlsx export (the ``cube.csv`` artefact).

        One row per cell: attribute columns (``*`` for wildcards), then
        T, M, P, n_units and one column per index — read straight from
        the table columns, no per-cell objects.
        """
        sa_attrs = self.sa_attributes()
        ca_attrs = self.ca_attributes()
        table = self._table
        depths = table.depths
        order = sorted(
            range(len(table)),
            key=lambda i: (
                int(depths[i]),
                describe_key(table.keys[i], self.dictionary),
            ),
        )
        rows = []
        for i in order:
            row: dict[str, object] = coordinate_columns(
                table.keys[i], self.dictionary, sa_attrs, ca_attrs
            )
            population = int(table.population[i])
            minority = int(table.minority[i])
            row["T"] = population
            row["M"] = minority
            row["P"] = (
                round(minority / population, 6) if population > 0 else ""
            )
            row["units"] = int(table.n_units[i])
            for name in self.metadata.index_names:
                value = table.value_at(i, name)
                row[name] = round(value, 6) if not math.isnan(value) else ""
            rows.append(row)
        return rows

    def describe(self, key: CellKey) -> str:
        """Human-readable address of a cell."""
        return describe_key(key, self.dictionary)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def dump(self, path) -> "object":
        """Persist this cube as an on-disk snapshot directory.

        Convenience wrapper around :func:`repro.store.dump_snapshot`;
        reopen with :func:`repro.store.open_snapshot` (no rebuild).
        """
        from repro.store.snapshot import dump_snapshot

        return dump_snapshot(self, path)

    def __repr__(self) -> str:
        return (
            f"SegregationCube({len(self._table)} cells, "
            f"indexes={self.metadata.index_names}, mode={self.metadata.mode})"
        )


def check_same_cells(a: "SegregationCube", b: "SegregationCube",
                     atol: float = 1e-9) -> "list[str]":
    """Compare two cubes cell-by-cell; return human-readable differences.

    Used by the equivalence tests (itemset-driven vs naive builder), by
    the ablation benchmarks and by the snapshot parity checks (live
    cube vs reopened snapshot); an empty list means the cubes agree.
    Shared cells are located with O(1) :meth:`CellTable.row_of` lookups
    and compared straight off the columns — no per-cell objects.
    """
    problems = []
    ta, tb = a.table, b.table
    keys_a, keys_b = set(a.keys()), set(b.keys())
    for key in keys_a - keys_b:
        problems.append(f"only in first: {a.describe(key)}")
    for key in keys_b - keys_a:
        problems.append(f"only in second: {b.describe(key)}")
    for key in keys_a & keys_b:
        i, j = ta.row_of(key), tb.row_of(key)
        assert i is not None and j is not None
        counts_a = (int(ta.population[i]), int(ta.minority[i]))
        counts_b = (int(tb.population[j]), int(tb.minority[j]))
        if counts_a != counts_b:
            problems.append(
                f"{a.describe(key)}: counts differ "
                f"({counts_a[0]},{counts_a[1]}) vs "
                f"({counts_b[0]},{counts_b[1]})"
            )
            continue
        for name in a.metadata.index_names:
            va, vb = ta.value_at(i, name), tb.value_at(j, name)
            if math.isnan(va) and math.isnan(vb):
                continue
            if math.isnan(va) != math.isnan(vb) or abs(va - vb) > atol:
                problems.append(
                    f"{a.describe(key)}: index {name} differs {va} vs {vb}"
                )
    return problems
