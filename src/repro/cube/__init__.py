"""The segregation data cube — the paper's core contribution.

Cells are addressed by (SA itemset, CA itemset) coordinate pairs with
``⋆`` wildcards; metrics are segregation indexes.  The itemset-driven
:class:`SegregationDataCubeBuilder` materialises the cube; the
:class:`NaiveCubeBuilder` is the enumeration oracle/baseline; the
explorer ranks cells and flags Simpson-style granularity reversals.
"""

from repro.cube.builder import SegregationDataCubeBuilder, build_cube
from repro.cube.cell import CellStats
from repro.cube.compare import (
    CellComparison,
    CellSeries,
    compare_cubes,
    comparison_rows,
    describe_aligned,
    timeline_series,
)
from repro.cube.incremental import TemporalBuildState, TemporalCubeEngine
from repro.cube.coordinates import (
    STAR,
    CellKey,
    coordinate_columns,
    decode_part,
    describe_key,
    encode_query,
    is_parent,
    key_of_itemset,
    make_key,
    parents_of,
)
from repro.cube.cube import (
    CubeMetadata,
    SegregationCube,
    check_same_cells,
)
from repro.cube.protocol import CubeLike
from repro.cube.table import CellTable, TableArrays
from repro.cube.explorer import (
    Discovery,
    Reversal,
    simpson_reversals,
    summarize_cube,
    top_contexts,
)
from repro.cube.naive import NaiveCubeBuilder

__all__ = [
    "CellComparison",
    "CellKey",
    "CellSeries",
    "CellStats",
    "CellTable",
    "CubeLike",
    "CubeMetadata",
    "Discovery",
    "NaiveCubeBuilder",
    "Reversal",
    "STAR",
    "SegregationCube",
    "TableArrays",
    "TemporalBuildState",
    "TemporalCubeEngine",
    "SegregationDataCubeBuilder",
    "build_cube",
    "check_same_cells",
    "compare_cubes",
    "comparison_rows",
    "describe_aligned",
    "coordinate_columns",
    "decode_part",
    "describe_key",
    "encode_query",
    "is_parent",
    "key_of_itemset",
    "make_key",
    "parents_of",
    "simpson_reversals",
    "summarize_cube",
    "timeline_series",
    "top_contexts",
]
