"""CubeLike: the one protocol shared by live cubes and opened snapshots.

Everything downstream of the cube — the explorer, the report writers
(text, pivot, html, xlsx), cross-cube comparison, the serving layer —
consumes cubes through this read-only surface.  Both providers satisfy
it with the same class (:class:`~repro.cube.cube.SegregationCube`), but
through two very different storage paths:

* a **live cube** straight out of
  :class:`~repro.cube.builder.SegregationDataCubeBuilder`, owning its
  arrays (and, in ``closed`` mode, carrying a lazy resolver);
* an **opened snapshot** from :func:`repro.store.open_snapshot`, whose
  arrays are read-only (optionally memory-mapped) views over a
  snapshot directory, with keys decoded from the stored bitmasks.

Annotating consumers with :class:`CubeLike` (instead of the concrete
class) documents that they must not rely on builder-only state — the
transaction database, covers, or the lazy resolver — which is exactly
what makes zero-rebuild serving possible.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:
    from repro.cube.cell import CellStats
    from repro.cube.coordinates import CellKey
    from repro.cube.cube import CubeMetadata
    from repro.cube.table import CellTable
    from repro.itemsets.items import ItemDictionary


@runtime_checkable
class CubeLike(Protocol):
    """Read-only query surface of a segregation cube."""

    dictionary: "ItemDictionary"
    metadata: "CubeMetadata"

    @property
    def table(self) -> "CellTable": ...

    def __len__(self) -> int: ...

    def __contains__(self, key: "CellKey") -> bool: ...

    def keys(self) -> "Iterator[CellKey]": ...

    def cell_by_key(self, key: "CellKey") -> "CellStats | None": ...

    def cell(
        self,
        sa: "Mapping[str, object] | None" = None,
        ca: "Mapping[str, object] | None" = None,
    ) -> "CellStats | None": ...

    def value(
        self,
        index_name: str,
        sa: "Mapping[str, object] | None" = None,
        ca: "Mapping[str, object] | None" = None,
    ) -> float: ...

    def value_by_key(self, index_name: str, key: "CellKey") -> float: ...

    def children(self, key: "CellKey") -> "list[CellStats]": ...

    def parents(self, key: "CellKey") -> "list[CellStats]": ...

    def slice(
        self,
        sa: "Mapping[str, object] | None" = None,
        ca: "Mapping[str, object] | None" = None,
    ) -> "list[CellStats]": ...

    def top(
        self,
        index_name: str,
        k: int = 10,
        min_minority: int = 0,
        min_population: int = 0,
        min_units: int = 2,
        ascending: bool = False,
    ) -> "list[CellStats]": ...

    def sa_attributes(self) -> "list[str]": ...

    def ca_attributes(self) -> "list[str]": ...

    def to_rows(self) -> "list[dict[str, object]]": ...

    def describe(self, key: "CellKey") -> str: ...
