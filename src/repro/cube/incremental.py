"""Incremental temporal cube fills: re-evaluate only what changed.

A timeline of snapshot dates (paper §3; the Estonian case study spans
20 years) re-pays the full ETL → mining → fill cost at every date when
each snapshot is built from scratch.  This module applies incremental
view maintenance to the columnar cube instead:

1. the *union* table (one row per membership edge, whatever its
   validity) is encoded into one :class:`TransactionDatabase`; a date
   is a boolean row mask over it
   (:meth:`~repro.itemsets.transactions.TransactionDatabase.restrict`),
   so the covers of two dates index the same rows and are directly
   comparable;
2. between two dates only the rows in ``valid_old XOR valid_new``
   changed.  A context whose union cover misses every changed row has a
   bit-identical cover — hence bit-identical per-unit counts, cell set
   and index values — at both dates, so its cube rows are **carried
   over verbatim** from the previous :class:`~repro.cube.table.CellTable`;
3. inside the remaining *affected* contexts, the carry argument applies
   **per cell**: a candidate coordinate whose static union cover misses
   every changed row has an unchanged minority vector, and when the
   context's population vector is also bit-identical (compared by
   blake2b digest) the whole cube row is carried verbatim from the
   parent table — only genuinely changed cells re-enter the columnar
   counting + ``eval_context_block`` path.  The provenance records the
   split as ``n_carried_cells`` (whole contexts),
   ``n_carried_cells_within_affected`` and ``n_recomputed_cells``;
4. ``mode="closed"`` rides the same machinery through a *closure diff*:
   capped closedness of a coordinate is a function of its cover and the
   static item covers only (:mod:`repro.itemsets.closed`), so flags are
   re-derived only for candidates whose ``cover_digest`` changed under
   the new row mask — every other flag is reused from the previous
   date.  The result is bit-exact (``check_same_cells`` at ``atol=0``)
   with a from-scratch closed build at every date.

The correctness argument for carrying a context ``B`` forward: a cell
``(A, B)`` has cover ``cover(A∪B) ⊆ cover(B)``; if ``cover(B)`` (on the
union rows) misses every changed row, so does every subset, so every
cell's support, per-unit minority vector and context population vector
are unchanged — and the index kernels are deterministic functions of
those integers.  In closed mode the same inclusion freezes every
closedness flag of the context's candidates (their covers are
digest-identical).  Conversely a context that became frequent must have
gained rows, so its union cover touches an added (changed) row and all
its items appear on that row — which is why mining only over
*affected items* finds every context that needs recomputation.

Fractional thresholds resolve against the live row count, which moves
with the date; if either resolved threshold differs from the previous
date's, carried cells are no longer guaranteed valid and the engine
transparently falls back to a full (columnar) build for that date.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.cube.builder import (
    MinedCoordinates,
    SegregationDataCubeBuilder,
    _LazyResolver,
)
from repro.cube.cube import CubeMetadata, SegregationCube
from repro.cube.table import CellTable
from repro.errors import CubeError
from repro.etl.diff import TableDiff
from repro.itemsets.closed import closure_diff
from repro.itemsets.coverset import Cover
from repro.itemsets.eclat import mine_eclat
from repro.itemsets.miner import absolute_minsup
from repro.itemsets.transactions import TransactionDatabase

Itemset = frozenset[int]

#: Closure memo: candidate itemset -> (cover digest, capped-closed flag).
ClosedInfo = "dict[Itemset, tuple[bytes, bool]]"


def _tvec_digest(tvec: np.ndarray) -> bytes:
    """16-byte blake2b of a context's per-unit population vector."""
    data = np.ascontiguousarray(tvec, dtype=np.int64).tobytes()
    return hashlib.blake2b(data, digest_size=16).digest()


@dataclass(frozen=True)
class TemporalBuildState:
    """Everything one dated build hands to the next incremental step."""

    #: Snapshot date this state describes (None for undated builds).
    date: "int | None"
    #: Valid-row cover over the union database at this date.
    active: Cover
    #: Frequent contexts (CA itemsets, root included) at this date.
    contexts: "frozenset[Itemset]"
    #: The cube at this date (live, resolver-backed).
    cube: SegregationCube
    #: The union database restricted to this date.
    db: TransactionDatabase
    #: Thresholds as resolved at this date (guard the carry-over).
    minsup_pop: int
    minsup_min: int
    #: Context -> blake2b digest of its population vector; equality
    #: against the next date's digest is what licenses carrying a cell
    #: of an affected context verbatim.
    context_digests: "dict[Itemset, bytes]" = field(default_factory=dict)
    #: Closed mode only: context -> closure memo of its candidates
    #: (closed *and* non-closed — digests gate reuse).  None in ``all``
    #: mode.
    closed_info: "dict[Itemset, ClosedInfo] | None" = None


class TemporalCubeEngine:
    """Drives a dated sequence of cubes over one union database.

    Parameters
    ----------
    db:
        The *union* transaction database: every row of the temporal
        table, valid or not; per-date validity arrives as covers/masks.
    builder:
        The cube builder supplying thresholds, index specs and the
        columnar fill.  Must use ``engine="incremental"``; both
        ``mode="all"`` and ``mode="closed"`` are supported (closed mode
        maintains closedness flags through the closure diff).
    """

    def __init__(
        self,
        db: TransactionDatabase,
        builder: "SegregationDataCubeBuilder | None" = None,
    ):
        if db.units is None:
            raise CubeError("temporal engine needs unit-labelled rows")
        if builder is None:
            builder = SegregationDataCubeBuilder(engine="incremental")
        if builder.engine != "incremental":
            raise CubeError(
                "temporal engine requires a builder with "
                f"engine='incremental', got {builder.engine!r}"
            )
        self.db = db
        self.builder = builder

    # ------------------------------------------------------------------

    def _as_cover(self, valid: "Cover | np.ndarray") -> Cover:
        if isinstance(valid, Cover):
            return valid
        return self.db.as_cover(np.asarray(valid, dtype=bool))

    def _group_closed_info(
        self,
        flat: "ClosedInfo | None",
        contexts: "frozenset[Itemset]",
    ) -> "dict[Itemset, ClosedInfo] | None":
        """Nest a flat closure memo under the frequent contexts."""
        if flat is None:
            return None
        grouped: "dict[Itemset, ClosedInfo]" = {
            context: {} for context in contexts
        }
        split = self.db.dictionary.split
        for itemset, entry in flat.items():
            sub = grouped.get(split(itemset)[1])
            if sub is not None:
                sub[itemset] = entry
        return grouped

    def build_at(
        self, valid: "Cover | np.ndarray", date: "int | None" = None
    ) -> TemporalBuildState:
        """Full (cold) columnar build at one date; seeds the timeline."""
        active = self._as_cover(valid)
        db = self.db.restrict(active)
        cube, mined = self.builder._build_mined(db)
        contexts = frozenset(mined.context_tvecs)
        return TemporalBuildState(
            date=date,
            active=active,
            contexts=contexts,
            cube=cube,
            db=db,
            minsup_pop=cube.metadata.min_population,
            minsup_min=cube.metadata.min_minority,
            context_digests={
                context: _tvec_digest(tvec)
                for context, tvec in mined.context_tvecs.items()
            },
            closed_info=self._group_closed_info(
                mined.closed_info, contexts
            ),
        )

    def _unchanged_cube(
        self, state: TemporalBuildState, started: float
    ) -> SegregationCube:
        """A zero-work update's cube: previous cells, incremental extra.

        The table, dictionary and resolver are shared with the previous
        cube (nothing changed); only the provenance is fresh, so
        consumers of the incremental ``extra`` keys (carried/recomputed
        counts, changed rows) see a consistent all-carried record
        instead of the previous date's.
        """
        previous = state.cube.metadata
        metadata = replace(
            previous,
            build_seconds=time.perf_counter() - started,
            extra={
                "engine": "incremental",
                "n_contexts": len(state.contexts),
                "n_carried_contexts": len(state.contexts),
                "n_recomputed_contexts": 0,
                "n_changed_rows": 0,
                "n_carried_cells": len(state.cube),
                "n_carried_cells_within_affected": 0,
                "n_recomputed_cells": 0,
            },
        )
        resolver = _LazyResolver(
            self.builder, state.db, state.minsup_pop, state.minsup_min
        )
        return SegregationCube(
            state.cube.table, self.db.dictionary, metadata,
            resolver=resolver,
        )

    def update(
        self,
        state: TemporalBuildState,
        valid: "Cover | np.ndarray",
        date: "int | None" = None,
    ) -> TemporalBuildState:
        """Advance the timeline one date, recomputing only what changed."""
        started = time.perf_counter()
        active = self._as_cover(valid)
        diff = TableDiff(
            old_date=state.date if state.date is not None else 0,
            new_date=date if date is not None else 0,
            valid_old=state.active.to_bools(),
            valid_new=active.to_bools(),
        )
        if diff.n_changed == 0:
            return replace(
                state,
                date=date,
                active=active,
                cube=self._unchanged_cube(state, started),
            )

        db = self.db.restrict(active)
        minsup_pop = absolute_minsup(
            self.builder.min_population, db.n_active
        )
        minsup_min = absolute_minsup(self.builder.min_minority, db.n_active)
        if (minsup_pop, minsup_min) != (state.minsup_pop, state.minsup_min):
            # Fractional thresholds resolved to new absolutes: an
            # untouched cover no longer implies an unchanged cell set.
            return self.build_at(active, date)

        changed = self.db.as_cover(diff.changed_mask)
        affected_items = frozenset(diff.affected_items(self.db))

        # Split the previous frequent contexts into carried (provably
        # untouched by the change) and dropped-for-recomputation.  The
        # root context is affected whenever anything changed at all.
        carried: "list[Itemset]" = []
        for context in state.contexts:
            if not context:
                continue
            if not set(context) <= affected_items:
                carried.append(context)
            elif (self.db.cover_of(context) & changed).support() == 0:
                carried.append(context)
        carried_set = set(carried)

        # Re-mine the affected part of the context lattice at the new
        # date: every changed-or-new frequent context is made entirely
        # of affected items, so mining over them alone is exhaustive.
        affected_ca = [
            i for i in self.db.dictionary.ca_ids if i in affected_items
        ]
        recompute = mine_eclat(
            db,
            minsup_pop,
            items=affected_ca,
            max_len=self.builder.max_ca_items,
            with_covers=True,
            workers=self.builder.mine_workers,
        )
        if db.n_active >= minsup_pop:
            recompute[frozenset()] = db.full_cover()
        recompute = {
            context: cover for context, cover in recompute.items()
            if context not in carried_set
        }

        # Count the recomputed contexts' population vectors up front:
        # their digests against the previous date's are what licenses
        # carrying individual cells inside an affected context.
        recompute_list = list(recompute)
        tvec_matrix = db.unit_counts_many(
            [recompute[context] for context in recompute_list]
        )
        pops_vec = tvec_matrix.sum(axis=1)
        nunits_vec = (tvec_matrix > 0).sum(axis=1)
        new_digests = {
            context: _tvec_digest(tvec_matrix[i])
            for i, context in enumerate(recompute_list)
        }

        # Enumerate the candidate cells of each recomputed context: SA
        # refinements inside the context's cover, at the mixed threshold
        # the full pass-2 mine uses.
        mixed_minsup = min(minsup_min, minsup_pop)
        sa_ids = list(self.db.dictionary.sa_ids)
        candidates: "dict[Itemset, dict[Itemset, Cover]]" = {}
        for context, context_cover in recompute.items():
            cands: "dict[Itemset, Cover]" = {context: context_cover}
            if sa_ids:
                refinements = mine_eclat(
                    db,
                    mixed_minsup,
                    items=sa_ids,
                    max_len=self.builder.max_sa_items,
                    with_covers=True,
                    within=context_cover,
                    workers=self.builder.mine_workers,
                )
                for sa_part, cell_cover in refinements.items():
                    cands[sa_part | context] = cell_cover
            candidates[context] = cands

        # Closed mode: one closure-diff pass decides candidacy.  Flags
        # are re-derived only where the cover digest moved; everything
        # else reuses the previous date's flag (closedness is a function
        # of the cover and the static item covers alone).
        closed_mode = self.builder.mode == "closed"
        flags: "ClosedInfo | None" = None
        new_closed_info: "dict[Itemset, ClosedInfo] | None" = None
        if closed_mode:
            prev_info = state.closed_info or {}
            flat_prev: ClosedInfo = {}
            for sub in prev_info.values():
                flat_prev.update(sub)
            flags = closure_diff(
                db,
                {
                    itemset: cover
                    for cands in candidates.values()
                    for itemset, cover in cands.items()
                },
                previous=flat_prev,
                max_sa=self.builder.max_sa_items,
                max_ca=self.builder.max_ca_items,
                workers=self.builder.mine_workers,
            )
            new_closed_info = {
                context: prev_info.get(context, {})
                for context in carried_set
            }
            for context, cands in candidates.items():
                new_closed_info[context] = {
                    itemset: flags[itemset] for itemset in cands
                }

        # Cell-level carry inside the recomputed contexts: a candidate
        # whose static union cover misses every changed row has an
        # unchanged minority vector; when the context's tvec digest is
        # also unchanged the previous cube row is reused verbatim (or,
        # if the cell did not exist, it is dropped without counting —
        # its minority total is still below the threshold).  Everything
        # else goes through the ordinary columnar count + eval path.
        prev_digests = state.context_digests or {}
        prev_table = state.cube.table
        carried_within_rows: "list[int]" = []
        mixed_covers: "dict[Itemset, Cover]" = {}
        sa_static: "dict[Itemset, Cover]" = {}
        for context, cands in candidates.items():
            tvec_same = (
                context in prev_digests
                and prev_digests[context] == new_digests[context]
            )
            changed_ctx: "Cover | None" = None
            for itemset, cover in cands.items():
                if closed_mode and itemset and not flags[itemset][1]:
                    # Not closed at this date: not a candidate, exactly
                    # as the from-scratch closed filter would decide.
                    continue
                sa_part = itemset - context
                if not sa_part:
                    # Context-only cell: its row is a function of the
                    # tvec alone, so digest equality carries it.
                    prev_row = (
                        prev_table.row_of((sa_part, context))
                        if tvec_same else None
                    )
                    if prev_row is not None:
                        carried_within_rows.append(prev_row)
                    else:
                        mixed_covers[itemset] = cover
                    continue
                # Untouched when any single item misses every changed
                # row (item-level screen, no cover work), or when the
                # joint static cover does.
                untouched = not sa_part <= affected_items
                if not untouched:
                    if changed_ctx is None:
                        changed_ctx = self.db.cover_of(context) & changed
                    sa_cover = sa_static.get(sa_part)
                    if sa_cover is None:
                        sa_cover = self.db.cover_of(sa_part)
                        sa_static[sa_part] = sa_cover
                    untouched = (changed_ctx & sa_cover).support() == 0
                if untouched:
                    prev_row = prev_table.row_of((sa_part, context))
                    if prev_row is not None and tvec_same:
                        carried_within_rows.append(prev_row)
                        continue
                    if prev_row is None and context in state.contexts:
                        # The cell was a candidate at the previous date
                        # too (same support, same closedness flag) and
                        # was dropped by the minority threshold — its
                        # unchanged total drops it again.
                        continue
                mixed_covers[itemset] = cover

        # Count and fill the recomputed cells through the ordinary
        # columnar engine (bit-exact with a from-scratch build).
        mined = MinedCoordinates(
            mixed_covers=mixed_covers,
            context_tvecs={
                context: tvec_matrix[i]
                for i, context in enumerate(recompute_list)
            },
            context_pops={
                context: int(pops_vec[i])
                for i, context in enumerate(recompute_list)
            },
            context_nunits={
                context: int(nunits_vec[i])
                for i, context in enumerate(recompute_list)
            },
            minsup_pop=minsup_pop,
            minsup_min=minsup_min,
            n_contexts=len(carried) + len(recompute),
        )
        fresh = self.builder._fill_columnar(db, mined)

        # Merge: carried rows — whole contexts and individual cells of
        # affected contexts — keep their previous-table order and sit
        # ahead of the freshly evaluated rows.
        prev_keys = prev_table.keys
        ctx_keep = [
            i for i, key in enumerate(prev_keys)
            if key[1] in carried_set
        ]
        keep = np.array(
            sorted(set(ctx_keep).union(carried_within_rows)),
            dtype=np.int64,
        )
        keys = [prev_keys[i] for i in keep] + list(fresh.keys)
        table = CellTable(
            keys,
            np.concatenate([prev_table.population[keep], fresh.population]),
            np.concatenate([prev_table.minority[keep], fresh.minority]),
            np.concatenate([prev_table.n_units[keep], fresh.n_units]),
            {
                name: np.concatenate(
                    [prev_table.columns[name][keep], column]
                )
                for name, column in fresh.columns.items()
            },
            len(self.db.dictionary),
        )

        metadata = CubeMetadata(
            index_names=[spec.name for spec in self.builder.indexes],
            min_population=minsup_pop,
            min_minority=minsup_min,
            n_rows=db.n_active,
            n_units=db.n_units,
            mode=self.builder.mode,
            backend=self.builder.backend,
            build_seconds=time.perf_counter() - started,
            extra={
                "engine": "incremental",
                "n_contexts": len(carried) + len(recompute),
                "n_carried_contexts": len(carried),
                "n_recomputed_contexts": len(recompute),
                "n_changed_rows": diff.n_changed,
                "n_carried_cells": len(ctx_keep),
                "n_carried_cells_within_affected": len(
                    carried_within_rows
                ),
                "n_recomputed_cells": len(fresh),
            },
        )
        resolver = _LazyResolver(self.builder, db, minsup_pop, minsup_min)
        cube = SegregationCube(
            table, self.db.dictionary, metadata, resolver=resolver
        )
        context_digests = {
            context: prev_digests[context]
            for context in carried_set if context in prev_digests
        }
        context_digests.update(new_digests)
        return TemporalBuildState(
            date=date,
            active=active,
            contexts=frozenset(carried_set | set(recompute)),
            cube=cube,
            db=db,
            minsup_pop=minsup_pop,
            minsup_min=minsup_min,
            context_digests=context_digests,
            closed_info=new_closed_info,
        )

    # ------------------------------------------------------------------

    def run(
        self,
        dated_covers: "list[tuple[int, Cover | np.ndarray]]",
    ) -> "list[TemporalBuildState]":
        """Build the whole dated sequence: cold start, then deltas."""
        states: "list[TemporalBuildState]" = []
        for date, valid in dated_covers:
            if not states:
                states.append(self.build_at(valid, date))
            else:
                states.append(self.update(states[-1], valid, date))
        return states
