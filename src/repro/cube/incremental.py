"""Incremental temporal cube fills: re-evaluate only what changed.

A timeline of snapshot dates (paper §3; the Estonian case study spans
20 years) re-pays the full ETL → mining → fill cost at every date when
each snapshot is built from scratch.  This module applies incremental
view maintenance to the columnar cube instead:

1. the *union* table (one row per membership edge, whatever its
   validity) is encoded into one :class:`TransactionDatabase`; a date
   is a boolean row mask over it
   (:meth:`~repro.itemsets.transactions.TransactionDatabase.restrict`),
   so the covers of two dates index the same rows and are directly
   comparable;
2. between two dates only the rows in ``valid_old XOR valid_new``
   changed.  A context whose union cover misses every changed row has a
   bit-identical cover — hence bit-identical per-unit counts, cell set
   and index values — at both dates, so its cube rows are **carried
   over verbatim** from the previous :class:`~repro.cube.table.CellTable`;
3. the remaining *affected* contexts (provably: contexts made entirely
   of items that appear on changed rows, whose joint cover touches a
   changed row) are re-mined with covers restricted to the new date and
   re-filled through the ordinary columnar engine — the same
   ``unit_counts_many`` + ``IndexSpec.compute_batch`` path a from-scratch
   build uses, so the merged cube is bit-exact (``check_same_cells`` at
   ``atol=0``) with a from-scratch columnar build at the new date.

The correctness argument for carrying a context ``B`` forward: a cell
``(A, B)`` has cover ``cover(A∪B) ⊆ cover(B)``; if ``cover(B)`` (on the
union rows) misses every changed row, so does every subset, so every
cell's support, per-unit minority vector and context population vector
are unchanged — and the index kernels are deterministic functions of
those integers.  Conversely a context that became frequent must have
gained rows, so its union cover touches an added (changed) row and all
its items appear on that row — which is why mining only over
*affected items* finds every context that needs recomputation.

Fractional thresholds resolve against the live row count, which moves
with the date; if either resolved threshold differs from the previous
date's, carried cells are no longer guaranteed valid and the engine
transparently falls back to a full (columnar) build for that date.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.cube.builder import (
    MinedCoordinates,
    SegregationDataCubeBuilder,
    _LazyResolver,
)
from repro.cube.cube import CubeMetadata, SegregationCube
from repro.cube.table import CellTable
from repro.errors import CubeError
from repro.etl.diff import TableDiff
from repro.itemsets.coverset import Cover
from repro.itemsets.eclat import mine_eclat
from repro.itemsets.miner import absolute_minsup
from repro.itemsets.transactions import TransactionDatabase

Itemset = frozenset[int]


@dataclass(frozen=True)
class TemporalBuildState:
    """Everything one dated build hands to the next incremental step."""

    #: Snapshot date this state describes (None for undated builds).
    date: "int | None"
    #: Valid-row cover over the union database at this date.
    active: Cover
    #: Frequent contexts (CA itemsets, root included) at this date.
    contexts: "frozenset[Itemset]"
    #: The cube at this date (live, resolver-backed).
    cube: SegregationCube
    #: The union database restricted to this date.
    db: TransactionDatabase
    #: Thresholds as resolved at this date (guard the carry-over).
    minsup_pop: int
    minsup_min: int


class TemporalCubeEngine:
    """Drives a dated sequence of cubes over one union database.

    Parameters
    ----------
    db:
        The *union* transaction database: every row of the temporal
        table, valid or not; per-date validity arrives as covers/masks.
    builder:
        The cube builder supplying thresholds, index specs and the
        columnar fill.  Must use ``engine="incremental"`` and
        ``mode="all"`` (closed-mode closures are a global property of
        the snapshot and cannot be carried per context).
    """

    def __init__(
        self,
        db: TransactionDatabase,
        builder: "SegregationDataCubeBuilder | None" = None,
    ):
        if db.units is None:
            raise CubeError("temporal engine needs unit-labelled rows")
        if builder is None:
            builder = SegregationDataCubeBuilder(engine="incremental")
        if builder.engine != "incremental":
            raise CubeError(
                "temporal engine requires a builder with "
                f"engine='incremental', got {builder.engine!r}"
            )
        if builder.mode != "all":
            raise CubeError(
                "incremental fills support mode='all' only "
                f"(got {builder.mode!r})"
            )
        self.db = db
        self.builder = builder

    # ------------------------------------------------------------------

    def _as_cover(self, valid: "Cover | np.ndarray") -> Cover:
        if isinstance(valid, Cover):
            return valid
        return self.db.as_cover(np.asarray(valid, dtype=bool))

    def build_at(
        self, valid: "Cover | np.ndarray", date: "int | None" = None
    ) -> TemporalBuildState:
        """Full (cold) columnar build at one date; seeds the timeline."""
        active = self._as_cover(valid)
        db = self.db.restrict(active)
        cube = self.builder.build_from_transactions(db)
        # Every frequent context owns exactly one context-only cell, so
        # the frequent-context set is recoverable from the cube itself.
        contexts = frozenset(
            key[1] for key in cube.keys() if not key[0]
        )
        return TemporalBuildState(
            date=date,
            active=active,
            contexts=contexts,
            cube=cube,
            db=db,
            minsup_pop=cube.metadata.min_population,
            minsup_min=cube.metadata.min_minority,
        )

    def _unchanged_cube(
        self, state: TemporalBuildState, started: float
    ) -> SegregationCube:
        """A zero-work update's cube: previous cells, incremental extra.

        The table, dictionary and resolver are shared with the previous
        cube (nothing changed); only the provenance is fresh, so
        consumers of the incremental ``extra`` keys (carried/recomputed
        counts, changed rows) see a consistent all-carried record
        instead of the previous date's.
        """
        previous = state.cube.metadata
        metadata = replace(
            previous,
            build_seconds=time.perf_counter() - started,
            extra={
                "engine": "incremental",
                "n_contexts": len(state.contexts),
                "n_carried_contexts": len(state.contexts),
                "n_recomputed_contexts": 0,
                "n_changed_rows": 0,
                "n_carried_cells": len(state.cube),
                "n_recomputed_cells": 0,
            },
        )
        resolver = _LazyResolver(
            self.builder, state.db, state.minsup_pop, state.minsup_min
        )
        return SegregationCube(
            state.cube.table, self.db.dictionary, metadata,
            resolver=resolver,
        )

    def update(
        self,
        state: TemporalBuildState,
        valid: "Cover | np.ndarray",
        date: "int | None" = None,
    ) -> TemporalBuildState:
        """Advance the timeline one date, recomputing only what changed."""
        started = time.perf_counter()
        active = self._as_cover(valid)
        diff = TableDiff(
            old_date=state.date if state.date is not None else 0,
            new_date=date if date is not None else 0,
            valid_old=state.active.to_bools(),
            valid_new=active.to_bools(),
        )
        if diff.n_changed == 0:
            return replace(
                state,
                date=date,
                active=active,
                cube=self._unchanged_cube(state, started),
            )

        db = self.db.restrict(active)
        minsup_pop = absolute_minsup(
            self.builder.min_population, db.n_active
        )
        minsup_min = absolute_minsup(self.builder.min_minority, db.n_active)
        if (minsup_pop, minsup_min) != (state.minsup_pop, state.minsup_min):
            # Fractional thresholds resolved to new absolutes: an
            # untouched cover no longer implies an unchanged cell set.
            return self.build_at(active, date)

        changed = self.db.as_cover(diff.changed_mask)
        affected_items = frozenset(diff.affected_items(self.db))

        # Split the previous frequent contexts into carried (provably
        # untouched by the change) and dropped-for-recomputation.  The
        # root context is affected whenever anything changed at all.
        carried: "list[Itemset]" = []
        for context in state.contexts:
            if not context:
                continue
            if not set(context) <= affected_items:
                carried.append(context)
            elif (self.db.cover_of(context) & changed).support() == 0:
                carried.append(context)
        carried_set = set(carried)

        # Re-mine the affected part of the context lattice at the new
        # date: every changed-or-new frequent context is made entirely
        # of affected items, so mining over them alone is exhaustive.
        affected_ca = [
            i for i in self.db.dictionary.ca_ids if i in affected_items
        ]
        recompute = mine_eclat(
            db,
            minsup_pop,
            items=affected_ca,
            max_len=self.builder.max_ca_items,
            with_covers=True,
            workers=self.builder.mine_workers,
        )
        if db.n_active >= minsup_pop:
            recompute[frozenset()] = db.full_cover()
        recompute = {
            context: cover for context, cover in recompute.items()
            if context not in carried_set
        }

        # Mine the cells of each recomputed context: SA refinements
        # inside the context's cover, at the mixed threshold the full
        # pass-2 mine uses.
        mixed_minsup = min(minsup_min, minsup_pop)
        sa_ids = list(self.db.dictionary.sa_ids)
        mixed_covers: "dict[Itemset, Cover]" = {}
        for context, context_cover in recompute.items():
            mixed_covers[context] = context_cover
            if not sa_ids:
                continue
            refinements = mine_eclat(
                db,
                mixed_minsup,
                items=sa_ids,
                max_len=self.builder.max_sa_items,
                with_covers=True,
                within=context_cover,
                workers=self.builder.mine_workers,
            )
            for sa_part, cell_cover in refinements.items():
                mixed_covers[sa_part | context] = cell_cover

        # Count and fill the recomputed contexts through the ordinary
        # columnar engine (bit-exact with a from-scratch build).
        recompute_list = list(recompute)
        tvec_matrix = db.unit_counts_many(
            [recompute[context] for context in recompute_list]
        )
        pops_vec = tvec_matrix.sum(axis=1)
        nunits_vec = (tvec_matrix > 0).sum(axis=1)
        mined = MinedCoordinates(
            mixed_covers=mixed_covers,
            context_tvecs={
                context: tvec_matrix[i]
                for i, context in enumerate(recompute_list)
            },
            context_pops={
                context: int(pops_vec[i])
                for i, context in enumerate(recompute_list)
            },
            context_nunits={
                context: int(nunits_vec[i])
                for i, context in enumerate(recompute_list)
            },
            minsup_pop=minsup_pop,
            minsup_min=minsup_min,
            n_contexts=len(carried) + len(recompute),
        )
        fresh = self.builder._fill_columnar(db, mined)

        # Merge: carried contexts keep their previous rows verbatim.
        prev_table = state.cube.table
        prev_keys = prev_table.keys
        keep = np.fromiter(
            (
                i for i, key in enumerate(prev_keys)
                if key[1] in carried_set
            ),
            dtype=np.int64,
        )
        keys = [prev_keys[i] for i in keep] + list(fresh.keys)
        table = CellTable(
            keys,
            np.concatenate([prev_table.population[keep], fresh.population]),
            np.concatenate([prev_table.minority[keep], fresh.minority]),
            np.concatenate([prev_table.n_units[keep], fresh.n_units]),
            {
                name: np.concatenate(
                    [prev_table.columns[name][keep], column]
                )
                for name, column in fresh.columns.items()
            },
            len(self.db.dictionary),
        )

        metadata = CubeMetadata(
            index_names=[spec.name for spec in self.builder.indexes],
            min_population=minsup_pop,
            min_minority=minsup_min,
            n_rows=db.n_active,
            n_units=db.n_units,
            mode=self.builder.mode,
            backend=self.builder.backend,
            build_seconds=time.perf_counter() - started,
            extra={
                "engine": "incremental",
                "n_contexts": len(carried) + len(recompute),
                "n_carried_contexts": len(carried),
                "n_recomputed_contexts": len(recompute),
                "n_changed_rows": diff.n_changed,
                "n_carried_cells": int(len(keep)),
                "n_recomputed_cells": len(fresh),
            },
        )
        resolver = _LazyResolver(self.builder, db, minsup_pop, minsup_min)
        cube = SegregationCube(
            table, self.db.dictionary, metadata, resolver=resolver
        )
        return TemporalBuildState(
            date=date,
            active=active,
            contexts=frozenset(carried_set | set(recompute)),
            cube=cube,
            db=db,
            minsup_pop=minsup_pop,
            minsup_min=minsup_min,
        )

    # ------------------------------------------------------------------

    def run(
        self,
        dated_covers: "list[tuple[int, Cover | np.ndarray]]",
    ) -> "list[TemporalBuildState]":
        """Build the whole dated sequence: cold start, then deltas."""
        states: "list[TemporalBuildState]" = []
        for date, valid in dated_covers:
            if not states:
                states.append(self.build_at(valid, date))
            else:
                states.append(self.update(states[-1], valid, date))
        return states
