"""Cube coordinates: typed itemsets with ``⋆`` wildcards.

A cube cell is addressed by a pair of itemsets (paper §2): ``A`` over
segregation attributes (the minority subgroup) and ``B`` over context
attributes (the context).  An attribute absent from the itemset is at
the wildcard granularity ``⋆``.  Multi-valued attributes may contribute
several items (``sector ⊇ {electricity, transports}``).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import CubeError
from repro.itemsets.items import Item, ItemDictionary, ItemKind

#: Rendering of the wildcard coordinate.
STAR = "*"

CellKey = tuple[frozenset[int], frozenset[int]]


def make_key(sa_items: Iterable[int], ca_items: Iterable[int]) -> CellKey:
    """Canonical cell key from SA and CA item ids."""
    return (frozenset(sa_items), frozenset(ca_items))


def key_of_itemset(itemset: Iterable[int], dictionary: ItemDictionary) -> CellKey:
    """Split a mixed itemset into the (SA, CA) cell key."""
    sa, ca = dictionary.split(itemset)
    return (sa, ca)


def encode_query(
    dictionary: ItemDictionary,
    sa: "Mapping[str, object] | None" = None,
    ca: "Mapping[str, object] | None" = None,
) -> CellKey:
    """Encode user-level coordinates into a cell key.

    ``sa`` / ``ca`` map attribute names to a single value or an iterable
    of values (for multi-valued containment constraints).  Attributes not
    mentioned are at ``⋆``.  Unknown attribute=value pairs raise
    :class:`CubeError` — they can never match a cell.
    """

    def encode(mapping: "Mapping[str, object] | None",
               kind: ItemKind) -> frozenset[int]:
        if not mapping:
            return frozenset()
        ids = set()
        for attr, value in mapping.items():
            values = (
                value
                if isinstance(value, (list, tuple, set, frozenset))
                else [value]
            )
            for v in values:
                item = Item(attr, v)  # type: ignore[arg-type]
                if item not in dictionary:
                    raise CubeError(f"unknown coordinate {item}")
                item_id = dictionary.id_of(item)
                if dictionary.kind(item_id) is not kind:
                    raise CubeError(
                        f"coordinate {item} is a {dictionary.kind(item_id).value} "
                        f"item, used as {kind.value}"
                    )
                ids.add(item_id)
        return frozenset(ids)

    return (encode(sa, ItemKind.SA), encode(ca, ItemKind.CA))


def decode_part(items: frozenset[int], dictionary: ItemDictionary
                ) -> dict[str, object]:
    """Decode item ids into ``{attribute: value-or-tuple}``.

    Single-item attributes decode to their value; attributes hit by
    several items (multi-valued containment) decode to a sorted tuple.
    """
    by_attr: dict[str, list] = {}
    for item_id in items:
        item = dictionary.item(item_id)
        by_attr.setdefault(item.attribute, []).append(item.value)
    return {
        attr: values[0] if len(values) == 1 else tuple(sorted(map(str, values)))
        for attr, values in by_attr.items()
    }


def describe_key(key: CellKey, dictionary: ItemDictionary) -> str:
    """Human-readable cell address, e.g. ``[sex=female | region=north]``."""
    sa, ca = key
    return (
        f"[{dictionary.describe(sa)} | {dictionary.describe(ca)}]"
    )


def coordinate_columns(
    key: CellKey,
    dictionary: ItemDictionary,
    sa_attrs: "list[str]",
    ca_attrs: "list[str]",
) -> dict[str, str]:
    """Flatten a key into per-attribute display columns with ``*`` defaults."""
    sa, ca = key
    decoded = decode_part(sa, dictionary)
    decoded.update(decode_part(ca, dictionary))
    out = {}
    for attr in sa_attrs + ca_attrs:
        value = decoded.get(attr, STAR)
        if isinstance(value, tuple):
            value = "{" + ",".join(value) + "}"
        out[attr] = str(value)
    return out


def is_parent(parent: CellKey, child: CellKey) -> bool:
    """True when ``child`` refines ``parent`` by exactly one item."""
    p_sa, p_ca = parent
    c_sa, c_ca = child
    if not (p_sa <= c_sa and p_ca <= c_ca):
        return False
    return (len(c_sa) - len(p_sa)) + (len(c_ca) - len(p_ca)) == 1


def parents_of(key: CellKey) -> "list[CellKey]":
    """All keys obtained by removing one item (roll-up neighbours)."""
    sa, ca = key
    out: list[CellKey] = []
    for item in sa:
        out.append((sa - {item}, ca))
    for item in ca:
        out.append((sa, ca - {item}))
    return out
