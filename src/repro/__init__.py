"""repro: a full reproduction of SCube (EDBT 2019).

SCube is a tool for *segregation discovery*: it materialises a
multi-dimensional data cube whose dimensions are segregation attributes
(sex, age, ...) and context attributes (region, sector, ...), and whose
metrics are social-science segregation indexes, computed over
organizational units derived from relational or graph data.

Quickstart::

    from repro import generate_schools, run_tabular, top_contexts

    table, schema = generate_schools()
    result = run_tabular(table, schema, unit_attr="school")
    for found in top_contexts(result.cube, "D", k=5):
        print(found.description, round(found.value, 3))

Subpackages
-----------
``repro.indexes``   segregation indexes (D, Gini, H, Isolation,
                    Interaction, Atkinson; multigroup; inference)
``repro.itemsets``  frequent/closed itemset mining, EWAH bitmaps
``repro.cube``      the segregation data cube and its builders
``repro.graph``     bipartite projection and graph clustering
``repro.etl``       tables, schemas, CSV I/O, temporal membership
``repro.data``      synthetic case-study generators
``repro.report``    xlsx writer, pivots, radial series
``repro.store``     versioned on-disk cube snapshots (dump/open, mmap)
``repro.serve``     zero-rebuild query serving: CLI, HTTP, shards, cache
``repro.core``      pipeline orchestration, scenarios, CLI
"""

from repro.core.config import (
    ClusteringConfig,
    CubeConfig,
    PipelineConfig,
    ProjectionConfig,
)
from repro.core.pipeline import PipelineResult, SCubePipeline, cube_workbook
from repro.core.trend import segregation_trend
from repro.core.scenarios import (
    ScenarioResult,
    run_bipartite,
    run_director_graph,
    run_tabular,
)
from repro.cube.builder import SegregationDataCubeBuilder, build_cube
from repro.cube.cube import SegregationCube
from repro.cube.explorer import simpson_reversals, top_contexts
from repro.cube.incremental import TemporalCubeEngine
from repro.cube.naive import NaiveCubeBuilder
from repro.cube.protocol import CubeLike
from repro.data.estonia import EstoniaConfig, generate_estonia
from repro.data.italy import BoardsDataset, ItalyConfig, generate_italy
from repro.data.schools import generate_schools
from repro.errors import ReproError
from repro.etl.schema import Schema
from repro.etl.table import Table
from repro.indexes.counts import UnitCounts
from repro.serve.cache import CachedCubeService
from repro.serve.router import ShardedCubeService, open_service
from repro.serve.service import CubeService
from repro.store.shards import dump_sharded_snapshot
from repro.store.snapshot import (
    dump_delta_snapshot,
    dump_snapshot,
    open_snapshot,
    validate_snapshot,
)
from repro.store.timeline import CubeTimeline, dump_into_timeline

__version__ = "1.0.0"

__all__ = [
    "BoardsDataset",
    "CachedCubeService",
    "ClusteringConfig",
    "CubeConfig",
    "CubeLike",
    "CubeService",
    "CubeTimeline",
    "EstoniaConfig",
    "ItalyConfig",
    "NaiveCubeBuilder",
    "PipelineConfig",
    "PipelineResult",
    "ProjectionConfig",
    "ReproError",
    "SCubePipeline",
    "ScenarioResult",
    "Schema",
    "SegregationCube",
    "SegregationDataCubeBuilder",
    "ShardedCubeService",
    "Table",
    "TemporalCubeEngine",
    "UnitCounts",
    "__version__",
    "build_cube",
    "cube_workbook",
    "dump_delta_snapshot",
    "dump_into_timeline",
    "dump_sharded_snapshot",
    "dump_snapshot",
    "generate_estonia",
    "generate_italy",
    "generate_schools",
    "open_service",
    "open_snapshot",
    "run_bipartite",
    "run_director_graph",
    "run_tabular",
    "segregation_trend",
    "simpson_reversals",
    "top_contexts",
    "validate_snapshot",
]
