"""CubeTimeline: a dated directory of cube snapshots, deltas included.

A timeline is a directory whose integer-named children are snapshot
directories, one per snapshot date::

    timeline/
      1998/   full snapshot (the timeline root)
      2003/   delta, parent ../1998
      2008/   delta, parent ../2003
      ...

Each child is an ordinary :mod:`repro.store` snapshot — full or delta —
so every date reopens through :func:`~repro.store.snapshot.open_snapshot`
with the usual validation, and the whole tree relocates as one unit
(delta parents are relative paths).  :class:`CubeTimeline` lists the
dates, opens cubes lazily (caching them), and is what the serving layer
(``CubeService(..., date=...)``), the timeline comparison
(:func:`repro.cube.compare.timeline_series`) and the cube-backed trend
(:func:`repro.core.trend.segregation_trend`) consume.

:func:`dump_into_timeline` writes one dated entry: a full snapshot for
the first date, a delta against the previous date's entry afterwards —
the persistence half of the incremental temporal fill
(:mod:`repro.cube.incremental`).
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.cube.cube import SegregationCube
from repro.errors import SnapshotError
from repro.store.manifest import MANIFEST_NAME
from repro.store.snapshot import (
    dump_delta_snapshot,
    dump_snapshot,
    open_snapshot,
)


def timeline_dates(root: "str | Path") -> "list[int]":
    """Sorted snapshot dates found under a timeline directory."""
    directory = Path(root)
    if not directory.is_dir():
        raise SnapshotError(f"timeline directory {directory} does not exist")
    dates = []
    for child in directory.iterdir():
        if not child.is_dir() or not (child / MANIFEST_NAME).is_file():
            continue
        try:
            dates.append(int(child.name))
        except ValueError:
            continue
    return sorted(dates)


def dump_into_timeline(
    root: "str | Path",
    date: int,
    cube: SegregationCube,
    parent_date: "int | None" = None,
    parent: "SegregationCube | None" = None,
) -> Path:
    """Write one dated snapshot into a timeline directory.

    With ``parent_date`` the entry is a *delta* against that date's
    snapshot (pass ``parent`` when that cube is already open to skip
    re-reading it); without, a full snapshot.
    """
    directory = Path(root) / str(int(date))
    if parent_date is None:
        return dump_snapshot(cube, directory)
    parent_dir = Path(root) / str(int(parent_date))
    return dump_delta_snapshot(cube, directory, parent_dir, parent=parent)


class CubeTimeline:
    """Read-only access to a dated sequence of cube snapshots.

    Cubes open lazily on first access and are cached — including every
    parent resolved along a delta chain, so walking an N-date timeline
    composes each snapshot once (O(N) total, not O(N²)).  Opening is
    serialized by a lock, making concurrent ``at()`` calls (e.g. the
    serving layer's ``trend``) safe; once a cube is cached, access is a
    pure read.
    """

    def __init__(self, root: "str | Path", mmap: bool = True):
        self._root = Path(root)
        self._mmap = mmap
        self._dates = timeline_dates(self._root)
        if not self._dates:
            raise SnapshotError(
                f"no dated snapshots under timeline directory {self._root}"
            )
        self._cubes: "dict[int, SegregationCube]" = {}
        #: Every snapshot resolved so far, keyed by resolved directory —
        #: shared with open_snapshot so delta chains reuse it.
        self._resolved: "dict[Path, SegregationCube]" = {}
        self._lock = threading.Lock()

    @property
    def root(self) -> Path:
        return self._root

    @property
    def dates(self) -> "list[int]":
        """All snapshot dates, ascending."""
        return list(self._dates)

    def __len__(self) -> int:
        return len(self._dates)

    def __contains__(self, date: int) -> bool:
        return date in set(self._dates)

    def path_of(self, date: int) -> Path:
        """Directory of one date's snapshot."""
        if date not in self:
            raise SnapshotError(
                f"timeline {self._root} has no snapshot for date {date}; "
                f"available dates: {self._dates}"
            )
        return self._root / str(int(date))

    def at(self, date: int) -> SegregationCube:
        """The cube at one date (opened on first use, then cached)."""
        path = self.path_of(date)
        with self._lock:
            if date not in self._cubes:
                self._cubes[date] = open_snapshot(
                    path, mmap=self._mmap, parents=self._resolved
                )
            return self._cubes[date]

    def latest(self) -> SegregationCube:
        """The cube at the most recent date."""
        return self.at(self._dates[-1])

    def __iter__(self):
        """Yield ``(date, cube)`` pairs in date order."""
        for date in self._dates:
            yield date, self.at(date)

    def __repr__(self) -> str:
        first, last = self._dates[0], self._dates[-1]
        return (
            f"CubeTimeline({self._root}, {len(self._dates)} dates "
            f"[{first}..{last}])"
        )
