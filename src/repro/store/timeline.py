"""CubeTimeline: a dated directory of cube snapshots, deltas included.

A timeline is a directory whose integer-named children are snapshot
directories, one per snapshot date::

    timeline/
      timeline.json   freshness + compaction manifest (advisory)
      1998/   full snapshot (the timeline root)
      2003/   delta, parent ../1998
      2008/   delta, parent ../2003
      ...

Each child is an ordinary :mod:`repro.store` snapshot — full or delta —
so every date reopens through :func:`~repro.store.snapshot.open_snapshot`
with the usual validation, and the whole tree relocates as one unit
(delta parents are relative paths).  :class:`CubeTimeline` lists the
dates, opens cubes lazily (caching them), and is what the serving layer
(``CubeService(..., date=...)``), the timeline comparison
(:func:`repro.cube.compare.timeline_series`) and the cube-backed trend
(:func:`repro.core.trend.segregation_trend`) consume.

:func:`dump_into_timeline` writes one dated entry: a full snapshot for
the first date, a delta against the previous date's entry afterwards —
the persistence half of the incremental temporal fill
(:mod:`repro.cube.incremental`).

**Compaction.**  Delta chains grow one hop per published date, so the
chain-resolution cost of opening the newest date grows linearly with
timeline length.  ``timeline.json`` tracks the *measured* per-date
chain length, own byte size and resolved-open wall time (plus the last
publish timestamp, the serving tier's staleness metric); a
:class:`CompactionPolicy` turns those measurements into a re-rooting
decision, and :func:`compact_date` rewrites one date as a fresh full
snapshot **crash-safely**:

1. the resolved cube is dumped into ``<date>.compacting`` (manifest
   written last, as for any snapshot);
2. the new root is reopened and its ``content_digest`` compared against
   the old chain's recorded digest — any mismatch aborts with the old
   chain untouched;
3. only then is the old directory renamed to ``<date>.pre-compact``,
   the new root renamed into place, and the old chain deleted.

A crash between the two renames leaves ``<date>`` missing and
``<date>.pre-compact`` intact; the next :func:`compact_date` restores
it before doing anything else.  Scratch directories never shadow a
date: :func:`timeline_dates` only accepts integer-named children, so
readers cannot observe a half-written root.  Children deltas stay valid
across a parent's compaction because the re-rooted snapshot is
digest-identical to the chain it replaces — superseded-key lookups and
the children's own content digests resolve exactly as before.

Compaction assumes a single writer (the publisher); concurrent readers
of *other* dates are unaffected, but a reader opening a child delta in
the instant between the two renames can observe a missing parent and
should retry.
"""

from __future__ import annotations

import json
import shutil
import threading
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

from repro.cube.cube import SegregationCube
from repro.errors import SnapshotError
from repro.store.manifest import MANIFEST_NAME, SnapshotManifest
from repro.store.snapshot import (
    delta_chain_length,
    dump_delta_snapshot,
    dump_snapshot,
    open_snapshot,
    snapshot_disk_bytes,
)

#: The timeline-level manifest file (freshness + per-date chain stats).
TIMELINE_MANIFEST_NAME = "timeline.json"
TIMELINE_FORMAT_VERSION = 1


def timeline_dates(root: "str | Path") -> "list[int]":
    """Sorted snapshot dates found under a timeline directory."""
    directory = Path(root)
    if not directory.is_dir():
        raise SnapshotError(f"timeline directory {directory} does not exist")
    dates = []
    for child in directory.iterdir():
        if not child.is_dir() or not (child / MANIFEST_NAME).is_file():
            continue
        try:
            dates.append(int(child.name))
        except ValueError:
            continue
    return sorted(dates)


# ----------------------------------------------------------------------
# Timeline manifest (freshness + measured chain stats)
# ----------------------------------------------------------------------

def read_timeline_manifest(root: "str | Path") -> dict:
    """The timeline's ``timeline.json`` payload (defaults when absent).

    The manifest is advisory — a timeline without one (pre-compaction
    trees, hand-built fixtures) reads as an empty record — but a
    *corrupt* one raises :class:`~repro.errors.SnapshotError` rather
    than silently resetting measured history.
    """
    path = Path(root) / TIMELINE_MANIFEST_NAME
    if not path.is_file():
        return {
            "format_version": TIMELINE_FORMAT_VERSION,
            "last_publish_at": None,
            "dates": {},
        }
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(
            f"unreadable timeline manifest {path}: {exc}"
        ) from exc
    if not isinstance(payload, dict) or not isinstance(
        payload.get("dates", {}), dict
    ):
        raise SnapshotError(f"malformed timeline manifest {path}")
    payload.setdefault("format_version", TIMELINE_FORMAT_VERSION)
    payload.setdefault("last_publish_at", None)
    payload.setdefault("dates", {})
    return payload


def write_timeline_manifest(root: "str | Path", payload: dict) -> Path:
    path = Path(root) / TIMELINE_MANIFEST_NAME
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def measure_open_ms(path: "str | Path", mmap: bool = True) -> float:
    """Wall-clock milliseconds of a fresh, cache-free chain-resolved open."""
    start = time.perf_counter()
    open_snapshot(path, mmap=mmap)
    return (time.perf_counter() - start) * 1e3


def _chain_root(path: Path) -> Path:
    """Directory of the full snapshot a delta chain bottoms out on."""
    directory = Path(path).resolve()
    seen = {directory}
    manifest = SnapshotManifest.read(directory)
    while manifest.delta is not None:
        directory = (directory / str(manifest.delta["parent"])).resolve()
        if directory in seen:
            loop = " -> ".join(str(p) for p in sorted(seen))
            raise SnapshotError(f"cyclic snapshot parent chain: {loop}")
        seen.add(directory)
        manifest = SnapshotManifest.read(directory)
    return directory


def record_date_stats(
    root: "str | Path", date: int, measure_open: bool = True
) -> dict:
    """Measure one date's chain stats and persist them in ``timeline.json``."""
    root = Path(root)
    directory = root / str(int(date))
    entry = {
        "chain_length": delta_chain_length(directory),
        "own_bytes": snapshot_disk_bytes(directory),
        "open_ms": (
            round(measure_open_ms(directory), 3) if measure_open else None
        ),
    }
    manifest = read_timeline_manifest(root)
    manifest["dates"][str(int(date))] = entry
    write_timeline_manifest(root, manifest)
    return entry


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CompactionPolicy:
    """When does a delta date get re-rooted onto a full snapshot?

    All three triggers are measured, not guessed: a date compacts when
    its parent chain exceeds ``max_chain`` hops, when a fresh
    chain-resolved open exceeds ``max_open_ms``, or when its own delta
    bytes reach ``min_byte_ratio`` of the chain root's full-snapshot
    bytes (the delta is barely saving anything, so the chain hop is
    pure cost).  A full root (chain length 0) never re-compacts.
    """

    max_chain: int = 8
    max_open_ms: float = 250.0
    min_byte_ratio: float = 0.5

    def should_compact(
        self,
        chain_length: int,
        open_ms: "float | None" = None,
        own_bytes: "int | None" = None,
        root_bytes: "int | None" = None,
    ) -> bool:
        if chain_length <= 0:
            return False
        if chain_length > self.max_chain:
            return True
        if open_ms is not None and open_ms > self.max_open_ms:
            return True
        if own_bytes is not None and root_bytes:
            if own_bytes / root_bytes >= self.min_byte_ratio:
                return True
        return False


def compact_date(
    root: "str | Path",
    date: int,
    policy: "CompactionPolicy | None" = None,
    force: bool = False,
    measure_open: bool = True,
) -> bool:
    """Re-root one date onto a fresh full snapshot when the policy says so.

    Crash-safe (see the module docstring): the old chain stays intact —
    and stays the live snapshot — until the replacement root has been
    written, reopened and digest-verified.  Returns True when the date
    was compacted.  The measured stats land in ``timeline.json`` either
    way, so every call keeps the manifest fresh.
    """
    root = Path(root)
    d = int(date)
    directory = root / str(d)
    pre = root / f"{d}.pre-compact"
    scratch = root / f"{d}.compacting"
    # Crash recovery: a previous run renamed the old chain away but died
    # before the new root landed — restore the chain, then clean up any
    # scratch leftovers (they are unreferenced by construction).
    if not directory.exists() and pre.exists():
        pre.rename(directory)
    if scratch.exists():
        shutil.rmtree(scratch)
    if pre.exists():
        shutil.rmtree(pre)

    chain = delta_chain_length(directory)
    own_bytes = snapshot_disk_bytes(directory)
    open_ms = measure_open_ms(directory) if measure_open else None
    compacting = False
    if chain > 0:
        if force:
            compacting = True
        else:
            policy = policy or CompactionPolicy()
            compacting = policy.should_compact(
                chain,
                open_ms=open_ms,
                own_bytes=own_bytes,
                root_bytes=snapshot_disk_bytes(_chain_root(directory)),
            )
    if compacting:
        expected = SnapshotManifest.read(directory).content_digest
        resolved = open_snapshot(directory, mmap=True)
        # The open-time provenance describes the *old* chain; the fresh
        # root gets its own on reopen.
        resolved.metadata.extra.pop("snapshot", None)
        dump_snapshot(resolved, scratch)
        fresh = SnapshotManifest.read(scratch)
        if expected is not None and fresh.content_digest != expected:
            shutil.rmtree(scratch)
            raise SnapshotError(
                f"compaction of {directory} produced content digest "
                f"{fresh.content_digest}, expected {expected}; "
                "old chain left intact"
            )
        # Full reopen (arrays validated, digest re-verified) before the
        # old chain is touched at all.
        open_snapshot(scratch, mmap=False)
        directory.rename(pre)
        scratch.rename(directory)
        shutil.rmtree(pre)
        chain = 0
        own_bytes = snapshot_disk_bytes(directory)
        open_ms = measure_open_ms(directory) if measure_open else None

    manifest = read_timeline_manifest(root)
    manifest["dates"][str(d)] = {
        "chain_length": chain,
        "own_bytes": own_bytes,
        "open_ms": None if open_ms is None else round(open_ms, 3),
    }
    write_timeline_manifest(root, manifest)
    return compacting


def compact_timeline(
    root: "str | Path",
    policy: "CompactionPolicy | None" = None,
    dates: "list[int] | None" = None,
    force: bool = False,
    measure_open: bool = True,
) -> "list[int]":
    """Apply the compaction policy across a timeline's dates.

    Dates are visited in ascending order so that compacting an early
    date shortens every descendant's chain *before* its own decision is
    measured.  Returns the dates that were compacted.
    """
    root = Path(root)
    todo = sorted(
        int(d) for d in (dates if dates is not None else timeline_dates(root))
    )
    compacted = []
    for date in todo:
        if compact_date(
            root, date, policy=policy, force=force,
            measure_open=measure_open,
        ):
            compacted.append(date)
    return compacted


def dump_into_timeline(
    root: "str | Path",
    date: int,
    cube: SegregationCube,
    parent_date: "int | None" = None,
    parent: "SegregationCube | None" = None,
    compact: "CompactionPolicy | bool | None" = None,
) -> Path:
    """Write one dated snapshot into a timeline directory.

    With ``parent_date`` the entry is a *delta* against that date's
    snapshot (pass ``parent`` when that cube is already open to skip
    re-reading it); without, a full snapshot.  ``compact=`` runs the
    compaction policy on the new date right after the dump (``True``
    for the default :class:`CompactionPolicy`); every publish also
    refreshes the date's chain stats and the timeline's
    ``last_publish_at`` in ``timeline.json``.
    """
    directory = Path(root) / str(int(date))
    if parent_date is None:
        result = dump_snapshot(cube, directory)
    else:
        parent_dir = Path(root) / str(int(parent_date))
        result = dump_delta_snapshot(
            cube, directory, parent_dir, parent=parent
        )
    policy: "CompactionPolicy | None" = None
    if compact is True:
        policy = CompactionPolicy()
    elif isinstance(compact, CompactionPolicy):
        policy = compact
    if policy is not None:
        # Records the (possibly post-compaction) stats itself.
        compact_date(Path(root), date, policy=policy)
    else:
        record_date_stats(Path(root), date, measure_open=False)
    manifest = read_timeline_manifest(root)
    manifest["last_publish_at"] = datetime.now(timezone.utc).isoformat()
    write_timeline_manifest(root, manifest)
    return result


class CubeTimeline:
    """Read-only access to a dated sequence of cube snapshots.

    Cubes open lazily on first access and are cached — including every
    parent resolved along a delta chain, so walking an N-date timeline
    composes each snapshot once (O(N) total, not O(N²)).  Opening is
    serialized by a lock, making concurrent ``at()`` calls (e.g. the
    serving layer's ``trend``) safe; once a cube is cached, access is a
    pure read.
    """

    def __init__(self, root: "str | Path", mmap: bool = True):
        self._root = Path(root)
        self._mmap = mmap
        self._dates = timeline_dates(self._root)
        if not self._dates:
            raise SnapshotError(
                f"no dated snapshots under timeline directory {self._root}"
            )
        self._cubes: "dict[int, SegregationCube]" = {}
        #: Every snapshot resolved so far, keyed by resolved directory —
        #: shared with open_snapshot so delta chains reuse it.
        self._resolved: "dict[Path, SegregationCube]" = {}
        self._lock = threading.Lock()

    @property
    def root(self) -> Path:
        return self._root

    @property
    def dates(self) -> "list[int]":
        """All snapshot dates, ascending."""
        return list(self._dates)

    def __len__(self) -> int:
        return len(self._dates)

    def __contains__(self, date: int) -> bool:
        return date in set(self._dates)

    def path_of(self, date: int) -> Path:
        """Directory of one date's snapshot."""
        if date not in self:
            raise SnapshotError(
                f"timeline {self._root} has no snapshot for date {date}; "
                f"available dates: {self._dates}"
            )
        return self._root / str(int(date))

    def manifest(self) -> dict:
        """The timeline's freshness/compaction manifest (advisory)."""
        return read_timeline_manifest(self._root)

    def at(self, date: int) -> SegregationCube:
        """The cube at one date (opened on first use, then cached)."""
        path = self.path_of(date)
        with self._lock:
            if date not in self._cubes:
                self._cubes[date] = open_snapshot(
                    path, mmap=self._mmap, parents=self._resolved
                )
            return self._cubes[date]

    def latest(self) -> SegregationCube:
        """The cube at the most recent date."""
        return self.at(self._dates[-1])

    def __iter__(self):
        """Yield ``(date, cube)`` pairs in date order."""
        for date in self._dates:
            yield date, self.at(date)

    def __repr__(self) -> str:
        first, last = self._dates[0], self._dates[-1]
        return (
            f"CubeTimeline({self._root}, {len(self._dates)} dates "
            f"[{first}..{last}])"
        )
