"""Timeline compaction CLI.

Usage::

    python -m repro.store.compact <timeline-dir> [--max-chain N]
        [--max-open-ms MS] [--min-byte-ratio R] [--date D ...]
        [--force] [--dry-run]

Walks the timeline's dates in ascending order, measures each date's
delta-chain length, own byte size and fresh resolved-open latency, and
re-roots every date the :class:`~repro.store.timeline.CompactionPolicy`
flags onto a full snapshot (crash-safely; see
:mod:`repro.store.timeline`).  ``--dry-run`` prints the measurements
and decisions without touching anything; ``--force`` compacts every
delta date regardless of policy.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.store.snapshot import (
    delta_chain_length,
    snapshot_disk_bytes,
)
from repro.store.timeline import (
    CompactionPolicy,
    _chain_root,
    compact_date,
    measure_open_ms,
    read_timeline_manifest,
    timeline_dates,
)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store.compact",
        description="Re-root long delta chains in a cube timeline.",
    )
    parser.add_argument("timeline", help="timeline directory")
    parser.add_argument(
        "--max-chain", type=int, default=CompactionPolicy.max_chain,
        help="compact when the parent chain exceeds this many hops",
    )
    parser.add_argument(
        "--max-open-ms", type=float, default=CompactionPolicy.max_open_ms,
        help="compact when a fresh resolved open takes longer than this",
    )
    parser.add_argument(
        "--min-byte-ratio", type=float,
        default=CompactionPolicy.min_byte_ratio,
        help="compact when delta bytes reach this fraction of the root's",
    )
    parser.add_argument(
        "--date", type=int, action="append", default=None,
        help="only consider this date (repeatable; default: all)",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="compact every delta date regardless of policy",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="measure and report decisions without compacting",
    )
    args = parser.parse_args(argv)

    policy = CompactionPolicy(
        max_chain=args.max_chain,
        max_open_ms=args.max_open_ms,
        min_byte_ratio=args.min_byte_ratio,
    )
    dates = sorted(args.date) if args.date else timeline_dates(args.timeline)
    compacted = []
    root = Path(args.timeline)
    for date in dates:
        directory = root / str(date)
        if args.dry_run:
            chain = delta_chain_length(directory)
            own = snapshot_disk_bytes(directory)
            open_ms = measure_open_ms(directory)
            root_bytes = (
                snapshot_disk_bytes(_chain_root(directory)) if chain else own
            )
            would = (chain > 0 and args.force) or policy.should_compact(
                chain, open_ms=open_ms, own_bytes=own, root_bytes=root_bytes
            )
            verdict = "compact" if would else "keep"
            print(
                f"{date}: chain={chain} own_bytes={own} "
                f"open_ms={open_ms:.1f} -> {verdict}"
            )
            if would:
                compacted.append(date)
            continue
        if compact_date(root, date, policy=policy, force=args.force):
            compacted.append(date)
            print(f"{date}: compacted to full snapshot")
        else:
            print(f"{date}: kept")
    action = "would compact" if args.dry_run else "compacted"
    print(f"{action} {len(compacted)}/{len(dates)} dates: {compacted}")
    manifest = read_timeline_manifest(root)
    if manifest.get("last_publish_at"):
        print(f"last publish: {manifest['last_publish_at']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
