"""The snapshot manifest: schema, vocabulary and provenance as JSON.

A snapshot directory is self-describing: everything needed to reopen a
cube without the original process — the format version, the typed item
vocabulary (so cell keys decode back to ``attribute=value`` pairs), the
declared index names, the :class:`~repro.cube.cube.CubeMetadata`
provenance of the build, and one entry per stored array recording its
file name, dtype and shape (validated on open).

Every malformed-manifest condition raises
:class:`~repro.errors.SnapshotError` with a message naming the missing
or mismatching field, so a corrupted or future-versioned snapshot fails
loudly instead of serving garbage.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from repro.cube.cube import CubeMetadata
from repro.errors import SnapshotError
from repro.itemsets.items import Item, ItemDictionary, ItemKind

#: Current snapshot format.  Bump on any incompatible layout change;
#: readers refuse snapshots written under a different version.
FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"

_METADATA_FIELDS = (
    "index_names",
    "min_population",
    "min_minority",
    "n_rows",
    "n_units",
    "mode",
    "backend",
    "build_seconds",
    "extra",
)

_VALUE_DECODERS = {"str": str, "int": int, "float": float, "bool": bool}


def _jsonable(obj: object) -> object:
    """Best-effort conversion of provenance values to JSON-safe types."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, bool, type(None))):
        return obj
    if isinstance(obj, (int, float)):
        return obj
    item = getattr(obj, "item", None)  # numpy scalars
    if callable(item):
        return _jsonable(item())
    return str(obj)


def _encode_item(item: Item, kind: ItemKind) -> "dict[str, object]":
    """One vocabulary entry; the value keeps an explicit type tag so the
    exact Python type (bool before int!) survives the JSON round trip."""
    value = item.value
    if not isinstance(value, (str, bool, int, float)):
        # numpy scalars (np.int64 categories etc.) are not JSON
        # serializable and would otherwise fall into the str branch;
        # unwrap them to their Python equivalent first.
        unwrap = getattr(value, "item", None)
        if callable(unwrap):
            value = unwrap()
    if isinstance(value, bool):
        value_type = "bool"
    elif isinstance(value, int):
        value_type = "int"
    elif isinstance(value, float):
        value_type = "float"
        value = repr(value)   # survives nan/inf, parsed back by float()
    else:
        # Anything else serialises through its str() form — exactly
        # what _decode_item will rebuild, and always JSON-safe.
        value_type = "str"
        value = str(value)
    return {
        "attribute": item.attribute,
        "value": value,
        "value_type": value_type,
        "kind": kind.value,
    }


def _decode_item(entry: "dict[str, object]") -> "tuple[Item, ItemKind]":
    try:
        attribute = str(entry["attribute"])
        value_type = str(entry["value_type"])
        raw = entry["value"]
        kind = ItemKind(str(entry["kind"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"malformed vocabulary entry {entry!r}") from exc
    decoder = _VALUE_DECODERS.get(value_type)
    if decoder is None:
        raise SnapshotError(
            f"unknown vocabulary value type {value_type!r} in {entry!r}"
        )
    if value_type == "bool":
        # bool(raw) would turn any non-empty corruption into True.
        if not isinstance(raw, bool):
            raise SnapshotError(
                f"vocabulary value {raw!r} is not a bool in {entry!r}"
            )
        return Item(attribute, raw), kind
    try:
        value = decoder(raw)
    except (TypeError, ValueError) as exc:
        raise SnapshotError(
            f"vocabulary value {raw!r} is not a valid {value_type} "
            f"in {entry!r}"
        ) from exc
    return Item(attribute, value), kind


@dataclass
class ArrayInfo:
    """Where one column array lives and what it must look like."""

    file: str
    dtype: str
    shape: "list[int]"


@dataclass
class SnapshotManifest:
    """Everything a reader needs to reopen and validate a snapshot."""

    format_version: int
    created_at: str
    n_cells: int
    n_items: int
    n_words: int
    column_names: "list[str]"          # stored float columns, in order
    items: "list[dict[str, object]]"   # typed vocabulary, id order
    metadata: "dict[str, object]"      # CubeMetadata fields
    arrays: "dict[str, ArrayInfo]" = field(default_factory=dict)
    #: Delta snapshots only: ``{"parent": <relative path>,
    #: "n_superseded": <parent rows replaced or deleted>}``.  A delta
    #: directory stores just its own (new/changed) cell rows plus the
    #: packed key bitmasks of the parent rows it supersedes; readers
    #: resolve the parent chain (see repro.store.snapshot).
    delta: "dict[str, object] | None" = None
    #: Row-order-independent digest of the snapshot's *resolved* cell
    #: content (for a delta: the full composed table, not just the rows
    #: stored here).  Lets a delta writer verify a caller-supplied
    #: parent cube against the on-disk parent without resolving its
    #: chain, and lets readers verify a composed chain end-to-end.
    content_digest: "str | None" = None

    # -- construction ---------------------------------------------------

    @classmethod
    def for_cube(cls, cube) -> "SnapshotManifest":
        """Describe a live cube (arrays are registered by the writer)."""
        dictionary: ItemDictionary = cube.dictionary
        table = cube.table
        metadata = {
            name: _jsonable(getattr(cube.metadata, name))
            for name in _METADATA_FIELDS
        }
        return cls(
            format_version=FORMAT_VERSION,
            created_at=datetime.now(timezone.utc).isoformat(),
            n_cells=len(table),
            n_items=len(dictionary),
            n_words=int(table.sa_masks.shape[1]),
            column_names=list(table.columns),
            items=[
                _encode_item(dictionary.item(i), dictionary.kind(i))
                for i in range(len(dictionary))
            ],
            metadata=metadata,
        )

    # -- vocabulary / provenance reconstruction ------------------------

    def dictionary(self) -> ItemDictionary:
        """Rebuild the typed item vocabulary, ids in stored order."""
        dictionary = ItemDictionary()
        for i, entry in enumerate(self.items):
            item, kind = _decode_item(entry)
            got = dictionary.add(item, kind)
            if got != i:
                raise SnapshotError(
                    f"duplicate vocabulary entry {entry!r} (id {got} != {i})"
                )
        return dictionary

    def cube_metadata(self) -> CubeMetadata:
        """Rebuild the build provenance carried by the snapshot."""
        meta = dict(self.metadata)
        try:
            return CubeMetadata(
                index_names=list(meta["index_names"]),
                min_population=int(meta["min_population"]),
                min_minority=int(meta["min_minority"]),
                n_rows=int(meta["n_rows"]),
                n_units=int(meta["n_units"]),
                mode=str(meta["mode"]),
                backend=str(meta["backend"]),
                build_seconds=float(meta.get("build_seconds", 0.0)),
                extra=dict(meta.get("extra", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"manifest metadata is incomplete or malformed: {exc}"
            ) from exc

    # -- (de)serialisation ---------------------------------------------

    def to_json(self) -> str:
        payload = asdict(self)
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SnapshotManifest":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"manifest is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise SnapshotError("manifest must be a JSON object")
        version = payload.get("format_version")
        if version != FORMAT_VERSION:
            raise SnapshotError(
                f"snapshot format version {version!r} is not supported "
                f"(this library reads version {FORMAT_VERSION})"
            )
        required = (
            "created_at", "n_cells", "n_items", "n_words",
            "column_names", "items", "metadata", "arrays",
        )
        missing = [name for name in required if name not in payload]
        if missing:
            raise SnapshotError(
                f"manifest is missing required fields: {', '.join(missing)}"
            )
        delta_raw = payload.get("delta")
        delta: "dict[str, object] | None" = None
        if delta_raw is not None:
            if not isinstance(delta_raw, dict):
                raise SnapshotError("manifest 'delta' must be an object")
            try:
                delta = {
                    "parent": str(delta_raw["parent"]),
                    "n_superseded": int(delta_raw["n_superseded"]),
                }
            except (KeyError, TypeError, ValueError) as exc:
                raise SnapshotError(
                    f"malformed delta section {delta_raw!r}"
                ) from exc
            if int(delta["n_superseded"]) < 0:
                raise SnapshotError(
                    "delta 'n_superseded' must be non-negative"
                )
        arrays_raw = payload["arrays"]
        if not isinstance(arrays_raw, dict):
            raise SnapshotError("manifest 'arrays' must be an object")
        arrays = {}
        for name, info in arrays_raw.items():
            try:
                arrays[name] = ArrayInfo(
                    file=str(info["file"]),
                    dtype=str(info["dtype"]),
                    shape=[int(d) for d in info["shape"]],
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise SnapshotError(
                    f"malformed array entry {name!r}: {info!r}"
                ) from exc
        return cls(
            format_version=int(version),
            created_at=str(payload["created_at"]),
            n_cells=int(payload["n_cells"]),
            n_items=int(payload["n_items"]),
            n_words=int(payload["n_words"]),
            column_names=[str(c) for c in payload["column_names"]],
            items=list(payload["items"]),
            metadata=dict(payload["metadata"]),
            arrays=arrays,
            delta=delta,
            content_digest=(
                str(payload["content_digest"])
                if payload.get("content_digest") is not None else None
            ),
        )

    def write(self, directory: "str | Path") -> Path:
        path = Path(directory) / MANIFEST_NAME
        path.write_text(self.to_json())
        return path

    @classmethod
    def read(cls, directory: "str | Path") -> "SnapshotManifest":
        path = Path(directory) / MANIFEST_NAME
        if not path.is_file():
            raise SnapshotError(f"no snapshot manifest at {path}")
        return cls.from_json(path.read_text())
