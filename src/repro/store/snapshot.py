"""Write, validate and reopen cube snapshots (one ``.npy`` per column).

A snapshot is a directory::

    snapshot/
      manifest.json      format version, vocabulary, provenance, array map
      population.npy     int64  (n_cells,)
      minority.npy       int64  (n_cells,)
      n_units.npy        int64  (n_cells,)
      sa_masks.npy       uint64 (n_cells, n_words)   packed SA key bitmasks
      ca_masks.npy       uint64 (n_cells, n_words)   packed CA key bitmasks
      col_<i>.npy        float64 (n_cells,)          one per index column

The cell *keys* are not stored separately: they are exactly the packed
bitmasks, decoded lazily on reopen by
:meth:`~repro.cube.table.CellTable.keys`.  Reopening therefore costs a
manifest parse plus one ``np.load`` per column — with ``mmap=True``
(the default) no array data is read until a query touches it, which is
what makes cold serving start in milliseconds instead of re-running
ETL → mining → fill (benchmark E18).

A **delta** snapshot (:func:`dump_delta_snapshot`) has the same layout
but stores only the cells that are new or changed relative to a
*parent* snapshot, plus the packed key bitmasks of the parent rows it
supersedes (``superseded_sa.npy`` / ``superseded_ca.npy``) and a
``delta`` manifest section naming the parent directory (a relative
path, so a timeline directory is relocatable as a unit).  Reopening a
delta resolves the parent chain — full snapshot at the root, cycle- and
corruption-checked — and composes the cell table as *parent rows minus
superseded plus own rows*.  A timeline of cubes with small inter-date
churn therefore shares the unchanged column bytes with its root
instead of duplicating them per date (benchmark E19).

Reopened arrays are read-only (memory-mapped ``mode="r"`` or with the
writeable flag cleared), so an opened snapshot can be shared by any
number of concurrent reader threads.  Composed delta cubes own their
(concatenated) arrays; the parent's columns are only read through,
never retained.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

import numpy as np

from repro.cube.cube import SegregationCube
from repro.cube.table import CellTable, TableArrays
from repro.errors import SnapshotError
from repro.store.manifest import MANIFEST_NAME, ArrayInfo, SnapshotManifest

#: Fixed (non-index) arrays every snapshot carries, with their dtypes.
_FIXED_ARRAYS = {
    "population": "int64",
    "minority": "int64",
    "n_units": "int64",
    "sa_masks": "uint64",
    "ca_masks": "uint64",
}

#: Extra arrays a delta snapshot carries: packed key bitmasks of the
#: parent rows this delta replaces or deletes (shape ``(n_superseded,
#: n_words)``, validated against the manifest's ``delta`` section).
_DELTA_ARRAYS = {
    "superseded_sa": "uint64",
    "superseded_ca": "uint64",
}

_COLUMN_DTYPE = "float64"


def _column_file(position: int) -> str:
    return f"col_{position}.npy"


def snapshot_files(manifest: SnapshotManifest) -> "list[str]":
    """All file names a snapshot described by ``manifest`` consists of."""
    return [MANIFEST_NAME] + [info.file for info in manifest.arrays.values()]


def _begin_dump(path: "str | Path") -> Path:
    """Prepare a snapshot directory for (over)writing, crash-safely.

    Any stale manifest is removed *first* (the new one is written
    *last*), so a directory with a readable manifest always describes a
    complete snapshot — a crash mid-dump (even mid-overwrite) leaves a
    manifest-less directory that :func:`open_snapshot` rejects instead
    of a chimera of old and new columns.
    """
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / MANIFEST_NAME).unlink(missing_ok=True)
    return directory


def _finish_dump(directory: Path, manifest: SnapshotManifest) -> Path:
    manifest.write(directory)
    # Overwriting a snapshot that had more index columns (or that was a
    # delta and is now full, or vice versa) leaves orphan .npy files
    # behind; prune anything the new manifest does not claim so the
    # directory *is* the snapshot.
    expected = set(snapshot_files(manifest))
    for stale in directory.glob("*.npy"):
        if stale.name not in expected:
            stale.unlink()
    return directory


def _save_cell_arrays(
    directory: Path,
    manifest: SnapshotManifest,
    table: CellTable,
    rows: "np.ndarray | None" = None,
) -> None:
    """Write the cell rows (all, or the ``rows`` subset) as ``.npy`` files."""

    def save(name: str, file: str, array: np.ndarray, dtype: str) -> None:
        array = np.asarray(array, dtype=dtype)
        if rows is not None:
            array = array[rows]
        array = np.ascontiguousarray(array)
        np.save(directory / file, array)
        manifest.arrays[name] = ArrayInfo(
            file=file, dtype=dtype, shape=list(array.shape)
        )

    save("population", "population.npy", table.population, "int64")
    save("minority", "minority.npy", table.minority, "int64")
    save("n_units", "n_units.npy", table.n_units, "int64")
    save("sa_masks", "sa_masks.npy", table.sa_masks, "uint64")
    save("ca_masks", "ca_masks.npy", table.ca_masks, "uint64")
    for position, (name, column) in enumerate(table.columns.items()):
        save(f"column:{name}", _column_file(position), column, _COLUMN_DTYPE)


def dump_snapshot(cube: SegregationCube, path: "str | Path") -> Path:
    """Persist a built cube to ``path`` (a directory) and return it.

    Existing snapshot files in the directory are overwritten; see
    :func:`_begin_dump` for the crash-safety contract.
    """
    directory = _begin_dump(path)
    manifest = SnapshotManifest.for_cube(cube)
    manifest.content_digest = table_digest(cube.table)
    _save_cell_arrays(directory, manifest, cube.table)
    return _finish_dump(directory, manifest)


def _row_mask_keys(table: CellTable) -> "list[bytes]":
    """One hashable key per cell row: its packed (SA, CA) bitmask bytes."""
    combined = np.ascontiguousarray(
        np.concatenate(
            [np.asarray(table.sa_masks), np.asarray(table.ca_masks)], axis=1
        )
    )
    return [combined[i].tobytes() for i in range(len(combined))]


def table_digest(table: CellTable) -> str:
    """Row-order-independent sha256 of a cell table's full content.

    Rows are hashed in the canonical order of their packed key bitmask
    bytes, so a live cube, its reopened snapshot and a delta chain
    composed in a different row order all digest identically when —
    and only when — they hold bit-identical cells (NaN patterns
    included).
    """
    order = np.asarray(
        sorted(range(len(table)), key=_row_mask_keys(table).__getitem__),
        dtype=np.int64,
    )
    digest = hashlib.sha256()
    for name, array, dtype in (
        ("population", table.population, "int64"),
        ("minority", table.minority, "int64"),
        ("n_units", table.n_units, "int64"),
        ("sa_masks", table.sa_masks, "uint64"),
        ("ca_masks", table.ca_masks, "uint64"),
        *(
            (f"column:{name}", column, _COLUMN_DTYPE)
            for name, column in table.columns.items()
        ),
    ):
        digest.update(name.encode())
        digest.update(
            np.ascontiguousarray(
                np.asarray(array, dtype=dtype)[order]
            ).tobytes()
        )
    return digest.hexdigest()


def snapshot_disk_bytes(path: "str | Path") -> int:
    """On-disk byte size of one snapshot directory's *own* files.

    Sums the manifest plus every array file the manifest claims — a
    delta snapshot therefore reports only the bytes it stores itself,
    not the parent chain it composes against, which is exactly the
    number the serving layer's ``info()`` and a future compaction
    policy need (chain cost vs byte savings).
    """
    directory = Path(path)
    manifest = SnapshotManifest.read(directory)
    total = 0
    for name in snapshot_files(manifest):
        file = directory / name
        if file.is_file():
            total += file.stat().st_size
    return total


def delta_chain_length(path: "str | Path") -> int:
    """Number of parent hops from ``path`` to its full-snapshot root.

    A full snapshot has length 0; a delta directly on a full snapshot
    has length 1; and so on.  Only manifests are read (no array data),
    so the walk is cheap enough to run on every ``info()`` call.  A
    cyclic or unresolvable parent chain raises
    :class:`~repro.errors.SnapshotError`.
    """
    directory = Path(path).resolve()
    seen = {directory}
    length = 0
    manifest = SnapshotManifest.read(directory)
    while manifest.delta is not None:
        directory = (directory / str(manifest.delta["parent"])).resolve()
        if directory in seen:
            loop = " -> ".join(str(p) for p in sorted(seen))
            raise SnapshotError(f"cyclic snapshot parent chain: {loop}")
        seen.add(directory)
        length += 1
        manifest = SnapshotManifest.read(directory)
    return length


def _same_vocabulary(a, b) -> bool:
    if len(a) != len(b):
        return False
    return all(
        a.item(i) == b.item(i) and a.kind(i) == b.kind(i)
        for i in range(len(a))
    )


def dump_delta_snapshot(
    cube: SegregationCube,
    path: "str | Path",
    parent_path: "str | Path",
    parent: "SegregationCube | None" = None,
) -> Path:
    """Persist ``cube`` as a *delta* against the snapshot at ``parent_path``.

    Only the cells that are new or changed relative to the parent are
    written (values compared bit-for-bit, so even a NaN-for-NaN match
    counts as unchanged); parent rows that ``cube`` no longer contains,
    or that it replaces, are recorded by their packed key bitmasks in
    the superseded arrays.  The parent is referenced by a path
    *relative to the delta directory*, so a timeline tree moves as one
    unit.  Pass ``parent`` when the parent cube is already open to skip
    re-reading it.

    The cube and its parent must share the item vocabulary and the
    index-column layout (a delta supersedes rows, not schemas); a
    mismatch raises :class:`~repro.errors.SnapshotError`.
    """
    parent_dir = Path(parent_path)
    if parent_dir.resolve() == Path(path).resolve():
        # Writing the delta over its own parent would unlink the parent
        # manifest and overwrite the very arrays the superseded masks
        # are about to be gathered from.
        raise SnapshotError(
            f"delta snapshot target {path} is its own parent; "
            "deltas must land in a separate directory"
        )
    if parent is None:
        parent = open_snapshot(parent_dir, mmap=True)
    else:
        # The caller-supplied cube must actually be the snapshot at
        # parent_path: readers compose against the on-disk parent, so a
        # stale/mismatched cube here would write a delta that silently
        # reopens to different values.  The manifest's content digest
        # covers the parent's *resolved* cells, so the check needs no
        # chain resolution; snapshots predating the digest fall back to
        # reopening the parent from disk.
        on_disk = SnapshotManifest.read(parent_dir)
        if on_disk.content_digest is None:
            parent = open_snapshot(parent_dir, mmap=True)
        elif on_disk.content_digest != table_digest(parent.table):
            raise SnapshotError(
                f"the supplied parent cube does not match the snapshot "
                f"at {parent_dir}; dump the parent first or omit it"
            )
    if not _same_vocabulary(cube.dictionary, parent.dictionary):
        raise SnapshotError(
            "delta snapshot requires the parent's item vocabulary; "
            "dump a full snapshot instead"
        )
    child_table, parent_table = cube.table, parent.table
    if list(child_table.columns) != list(parent_table.columns):
        raise SnapshotError(
            f"delta column layout {list(child_table.columns)} does not "
            f"match parent {list(parent_table.columns)}"
        )
    if child_table.sa_masks.shape[1] != parent_table.sa_masks.shape[1]:
        raise SnapshotError(
            "delta and parent snapshots pack keys into different widths"
        )

    # Align rows on their packed key bitmasks, then find the changed
    # ones with one bitwise comparison per column (floats are compared
    # through their uint64 bit patterns: deterministic fills make
    # unchanged cells bit-identical, NaNs included).
    parent_rows = {
        key: i for i, key in enumerate(_row_mask_keys(parent_table))
    }
    own_rows: "list[int]" = []
    matched_child: "list[int]" = []
    matched_parent: "list[int]" = []
    for j, key in enumerate(_row_mask_keys(child_table)):
        i = parent_rows.pop(key, None)
        if i is None:
            own_rows.append(j)
        else:
            matched_child.append(j)
            matched_parent.append(i)
    superseded = sorted(parent_rows.values())   # deleted outright
    if matched_child:
        child_idx = np.asarray(matched_child, dtype=np.int64)
        parent_idx = np.asarray(matched_parent, dtype=np.int64)

        def col(table: CellTable, name: str) -> np.ndarray:
            return np.asarray(table.arrays.columns[name])

        differs = (
            (np.asarray(parent_table.population)[parent_idx]
             != np.asarray(child_table.population)[child_idx])
            | (np.asarray(parent_table.minority)[parent_idx]
               != np.asarray(child_table.minority)[child_idx])
            | (np.asarray(parent_table.n_units)[parent_idx]
               != np.asarray(child_table.n_units)[child_idx])
        )
        for name in child_table.columns:
            parent_bits = np.ascontiguousarray(
                col(parent_table, name)[parent_idx]
            ).view(np.uint64)
            child_bits = np.ascontiguousarray(
                col(child_table, name)[child_idx]
            ).view(np.uint64)
            differs |= parent_bits != child_bits
        own_rows.extend(child_idx[differs].tolist())
        superseded.extend(parent_idx[differs].tolist())

    own_idx = np.asarray(sorted(own_rows), dtype=np.int64)
    superseded_idx = np.asarray(sorted(superseded), dtype=np.int64)

    directory = _begin_dump(path)
    manifest = SnapshotManifest.for_cube(cube)
    manifest.n_cells = int(len(own_idx))
    manifest.delta = {
        "parent": os.path.relpath(parent_dir, directory),
        "n_superseded": int(len(superseded_idx)),
    }
    # The digest describes the *resolved* content (the whole child
    # table), not just the delta rows stored here: it is what readers
    # verify after composing the chain, and what a future delta dump
    # checks a caller-supplied parent cube against.
    manifest.content_digest = table_digest(child_table)
    _save_cell_arrays(directory, manifest, child_table, rows=own_idx)
    for name, source in (
        ("superseded_sa", parent_table.sa_masks),
        ("superseded_ca", parent_table.ca_masks),
    ):
        array = np.ascontiguousarray(
            np.asarray(source, dtype="uint64")[superseded_idx]
        )
        file = f"{name}.npy"
        np.save(directory / file, array)
        manifest.arrays[name] = ArrayInfo(
            file=file, dtype="uint64", shape=list(array.shape)
        )
    return _finish_dump(directory, manifest)


def validate_snapshot(path: "str | Path") -> SnapshotManifest:
    """Check that ``path`` holds a complete, consistent snapshot.

    Raises :class:`~repro.errors.SnapshotError` on a missing or
    malformed manifest, an unsupported format version, a missing array
    file, or an array whose dtype/shape disagrees with the manifest.
    Returns the parsed manifest on success.
    """
    directory = Path(path)
    if not directory.is_dir():
        raise SnapshotError(f"snapshot directory {directory} does not exist")
    manifest = SnapshotManifest.read(directory)

    expected = dict(_FIXED_ARRAYS)
    for name in manifest.column_names:
        expected[f"column:{name}"] = _COLUMN_DTYPE
    if manifest.delta is not None:
        expected.update(_DELTA_ARRAYS)
    missing = sorted(set(expected) - set(manifest.arrays))
    if missing:
        raise SnapshotError(
            f"manifest lists no array entry for: {', '.join(missing)}"
        )

    for name, info in manifest.arrays.items():
        file = directory / info.file
        if not file.is_file():
            raise SnapshotError(f"snapshot array file missing: {file}")
        try:
            array = np.load(file, mmap_mode="r", allow_pickle=False)
        except (ValueError, OSError) as exc:
            raise SnapshotError(
                f"snapshot array {info.file} is unreadable: {exc}"
            ) from exc
        if str(array.dtype) != info.dtype or list(array.shape) != info.shape:
            raise SnapshotError(
                f"snapshot array {info.file} is {array.dtype}{array.shape}, "
                f"manifest says {info.dtype}{tuple(info.shape)}"
            )
        want_dtype = expected.get(name)
        if want_dtype is not None and info.dtype != want_dtype:
            raise SnapshotError(
                f"array {name!r} must be {want_dtype}, manifest says "
                f"{info.dtype}"
            )
        if name in _DELTA_ARRAYS:
            if manifest.delta is None:
                raise SnapshotError(
                    f"manifest lists delta array {name!r} without a "
                    "delta section"
                )
            n_superseded = int(manifest.delta["n_superseded"])
            if info.shape[0] != n_superseded:
                raise SnapshotError(
                    f"array {name!r} has {info.shape[0]} rows for "
                    f"{n_superseded} superseded cells"
                )
        elif info.shape[0] != manifest.n_cells:
            raise SnapshotError(
                f"array {name!r} has {info.shape[0]} rows for "
                f"{manifest.n_cells} cells"
            )
    return manifest


def _load(directory: Path, info: ArrayInfo, mmap: bool) -> np.ndarray:
    array = np.load(
        directory / info.file,
        mmap_mode="r" if mmap else None,
        allow_pickle=False,
    )
    if not mmap:
        # Serving is strictly read-only; enforce it on owned arrays the
        # way mode="r" memory maps already do.
        array.flags.writeable = False
    return array


def open_snapshot(
    path: "str | Path",
    mmap: bool = True,
    parents: "dict[Path, SegregationCube] | None" = None,
) -> SegregationCube:
    """Reopen a snapshot as a read-only :class:`SegregationCube`.

    With ``mmap=True`` (default) columns are memory-mapped: the kernel
    pages array data in on demand and shares it between processes
    serving the same snapshot.  With ``mmap=False`` columns are loaded
    into (read-only) process memory.

    A *delta* snapshot resolves its parent chain first (full snapshot
    at the root) and composes the cell table as parent rows minus the
    superseded ones plus its own; a missing or cyclic parent, a
    superseded key absent from the parent, or a parent whose column
    layout/vocabulary disagrees all raise
    :class:`~repro.errors.SnapshotError`.

    ``parents`` (optional) maps *resolved* snapshot directories to
    already-opened cubes: chain resolution reuses them instead of
    re-reading from disk, and every snapshot resolved during this call
    is added to the mapping — how
    :class:`~repro.store.timeline.CubeTimeline` keeps walking an
    N-date delta chain O(N) instead of O(N²).  A wrong cube supplied
    for a directory is caught for delta children by the content-digest
    check.

    The returned cube has no lazy resolver: point queries answer from
    materialised cells only (a snapshot does not carry the transaction
    covers a ``closed``-mode resolver would need).
    """
    return _open_chain(
        Path(path), mmap, chain=(),
        parents=parents if parents is not None else {},
    )


def _open_chain(
    path: Path,
    mmap: bool,
    chain: "tuple[Path, ...]",
    parents: "dict[Path, SegregationCube]",
) -> SegregationCube:
    directory = path.resolve()
    cached = parents.get(directory)
    if cached is not None:
        return cached
    if directory in chain:
        loop = " -> ".join(str(p) for p in chain + (directory,))
        raise SnapshotError(f"cyclic snapshot parent chain: {loop}")
    manifest = validate_snapshot(directory)

    if manifest.delta is None:
        arrays = TableArrays(
            population=_load(directory, manifest.arrays["population"], mmap),
            minority=_load(directory, manifest.arrays["minority"], mmap),
            n_units=_load(directory, manifest.arrays["n_units"], mmap),
            sa_masks=_load(directory, manifest.arrays["sa_masks"], mmap),
            ca_masks=_load(directory, manifest.arrays["ca_masks"], mmap),
            columns={
                name: _load(
                    directory, manifest.arrays[f"column:{name}"], mmap
                )
                for name in manifest.column_names
            },
        )
        table = CellTable.from_arrays(arrays)
    else:
        table = _compose_delta(directory, manifest, mmap, chain, parents)

    metadata = manifest.cube_metadata()
    metadata.extra = dict(metadata.extra)
    metadata.extra["snapshot"] = {
        "path": str(directory),
        "created_at": manifest.created_at,
        "mmap": mmap,
        "format_version": manifest.format_version,
    }
    if manifest.delta is not None:
        metadata.extra["snapshot"]["parent"] = str(
            (directory / str(manifest.delta["parent"])).resolve()
        )
        metadata.extra["snapshot"]["delta_depth"] = len(chain) + 1
    cube = SegregationCube(table, manifest.dictionary(), metadata)
    parents[directory] = cube
    return cube


def _compose_delta(
    directory: Path,
    manifest: SnapshotManifest,
    mmap: bool,
    chain: "tuple[Path, ...]",
    parents: "dict[Path, SegregationCube]",
) -> CellTable:
    """Resolve a delta's parent chain and merge the cell rows."""
    parent_dir = directory / str(manifest.delta["parent"])
    try:
        parent = _open_chain(
            parent_dir, mmap, chain + (directory.resolve(),), parents
        )
    except SnapshotError as exc:
        if "cyclic snapshot parent chain" in str(exc):
            raise
        raise SnapshotError(
            f"delta snapshot {directory} cannot resolve its parent "
            f"{parent_dir}: {exc}"
        ) from exc
    parent_table = parent.table
    if list(parent_table.columns) != manifest.column_names:
        raise SnapshotError(
            f"delta columns {manifest.column_names} do not match parent "
            f"columns {list(parent_table.columns)}"
        )
    if int(parent_table.sa_masks.shape[1]) != manifest.n_words:
        raise SnapshotError(
            "delta and parent snapshots pack keys into different widths"
        )
    if not _same_vocabulary(manifest.dictionary(), parent.dictionary):
        raise SnapshotError(
            f"delta snapshot {directory} and its parent carry different "
            "item vocabularies"
        )

    # Locate the superseded parent rows by their packed key bitmasks.
    sup_sa = np.load(
        directory / manifest.arrays["superseded_sa"].file, allow_pickle=False
    )
    sup_ca = np.load(
        directory / manifest.arrays["superseded_ca"].file, allow_pickle=False
    )
    if sup_sa.shape[1:] != (manifest.n_words,) or \
            sup_ca.shape[1:] != (manifest.n_words,):
        raise SnapshotError(
            f"superseded-row masks in {directory} are not "
            f"{manifest.n_words} words wide"
        )
    parent_index = {
        key: i for i, key in enumerate(_row_mask_keys(parent_table))
    }
    keep = np.ones(len(parent_table), dtype=bool)
    combined = np.ascontiguousarray(np.concatenate([sup_sa, sup_ca], axis=1))
    for row in range(len(combined)):
        i = parent_index.get(combined[row].tobytes())
        if i is None:
            raise SnapshotError(
                f"delta snapshot {directory} supersedes a cell its parent "
                "does not contain (superseded-row mask mismatch)"
            )
        keep[i] = False

    def compose(parent_array: np.ndarray, info: ArrayInfo) -> np.ndarray:
        own = _load(directory, info, mmap)
        merged = np.concatenate([np.asarray(parent_array)[keep], own])
        merged.flags.writeable = False
        return merged

    arrays = TableArrays(
        population=compose(
            parent_table.population, manifest.arrays["population"]
        ),
        minority=compose(parent_table.minority, manifest.arrays["minority"]),
        n_units=compose(parent_table.n_units, manifest.arrays["n_units"]),
        sa_masks=compose(parent_table.sa_masks, manifest.arrays["sa_masks"]),
        ca_masks=compose(parent_table.ca_masks, manifest.arrays["ca_masks"]),
        columns={
            name: compose(
                parent_table.columns[name], manifest.arrays[f"column:{name}"]
            )
            for name in manifest.column_names
        },
    )
    table = CellTable.from_arrays(arrays)
    # End-to-end chain integrity: the digest was taken over the writer's
    # resolved table, so any drift anywhere up the parent chain — not
    # just in this directory — surfaces here instead of serving wrong
    # numbers.  (Composition materialises every byte anyway, so unlike a
    # full snapshot's lazy mmap open this costs no extra I/O.)
    if (
        manifest.content_digest is not None
        and table_digest(table) != manifest.content_digest
    ):
        raise SnapshotError(
            f"delta snapshot {directory} resolved to content that does "
            "not match its recorded digest (parent chain has drifted "
            "or is corrupted)"
        )
    return table
