"""Write, validate and reopen cube snapshots (one ``.npy`` per column).

A snapshot is a directory::

    snapshot/
      manifest.json      format version, vocabulary, provenance, array map
      population.npy     int64  (n_cells,)
      minority.npy       int64  (n_cells,)
      n_units.npy        int64  (n_cells,)
      sa_masks.npy       uint64 (n_cells, n_words)   packed SA key bitmasks
      ca_masks.npy       uint64 (n_cells, n_words)   packed CA key bitmasks
      col_<i>.npy        float64 (n_cells,)          one per index column

The cell *keys* are not stored separately: they are exactly the packed
bitmasks, decoded lazily on reopen by
:meth:`~repro.cube.table.CellTable.keys`.  Reopening therefore costs a
manifest parse plus one ``np.load`` per column — with ``mmap=True``
(the default) no array data is read until a query touches it, which is
what makes cold serving start in milliseconds instead of re-running
ETL → mining → fill (benchmark E18).

Reopened arrays are read-only (memory-mapped ``mode="r"`` or with the
writeable flag cleared), so an opened snapshot can be shared by any
number of concurrent reader threads.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.cube.cube import SegregationCube
from repro.cube.table import CellTable, TableArrays
from repro.errors import SnapshotError
from repro.store.manifest import MANIFEST_NAME, ArrayInfo, SnapshotManifest

#: Fixed (non-index) arrays every snapshot carries, with their dtypes.
_FIXED_ARRAYS = {
    "population": "int64",
    "minority": "int64",
    "n_units": "int64",
    "sa_masks": "uint64",
    "ca_masks": "uint64",
}

_COLUMN_DTYPE = "float64"


def _column_file(position: int) -> str:
    return f"col_{position}.npy"


def snapshot_files(manifest: SnapshotManifest) -> "list[str]":
    """All file names a snapshot described by ``manifest`` consists of."""
    return [MANIFEST_NAME] + [info.file for info in manifest.arrays.values()]


def dump_snapshot(cube: SegregationCube, path: "str | Path") -> Path:
    """Persist a built cube to ``path`` (a directory) and return it.

    Existing snapshot files in the directory are overwritten.  Any
    stale manifest is removed *first* and the new one is written
    *last*, so a directory with a readable manifest always describes a
    complete snapshot — a crash mid-dump (even mid-overwrite) leaves a
    manifest-less directory that :func:`open_snapshot` rejects instead
    of a chimera of old and new columns.
    """
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / MANIFEST_NAME).unlink(missing_ok=True)
    table = cube.table
    manifest = SnapshotManifest.for_cube(cube)

    def save(name: str, file: str, array: np.ndarray, dtype: str) -> None:
        array = np.ascontiguousarray(np.asarray(array, dtype=dtype))
        np.save(directory / file, array)
        manifest.arrays[name] = ArrayInfo(
            file=file, dtype=dtype, shape=list(array.shape)
        )

    save("population", "population.npy", table.population, "int64")
    save("minority", "minority.npy", table.minority, "int64")
    save("n_units", "n_units.npy", table.n_units, "int64")
    save("sa_masks", "sa_masks.npy", table.sa_masks, "uint64")
    save("ca_masks", "ca_masks.npy", table.ca_masks, "uint64")
    for position, (name, column) in enumerate(table.columns.items()):
        save(f"column:{name}", _column_file(position), column, _COLUMN_DTYPE)
    manifest.write(directory)
    # Overwriting a snapshot that had more index columns leaves orphan
    # col_<i>.npy files behind; prune anything the new manifest does
    # not claim so the directory *is* the snapshot.
    expected = set(snapshot_files(manifest))
    for stale in directory.glob("col_*.npy"):
        if stale.name not in expected:
            stale.unlink()
    return directory


def validate_snapshot(path: "str | Path") -> SnapshotManifest:
    """Check that ``path`` holds a complete, consistent snapshot.

    Raises :class:`~repro.errors.SnapshotError` on a missing or
    malformed manifest, an unsupported format version, a missing array
    file, or an array whose dtype/shape disagrees with the manifest.
    Returns the parsed manifest on success.
    """
    directory = Path(path)
    if not directory.is_dir():
        raise SnapshotError(f"snapshot directory {directory} does not exist")
    manifest = SnapshotManifest.read(directory)

    expected = dict(_FIXED_ARRAYS)
    for name in manifest.column_names:
        expected[f"column:{name}"] = _COLUMN_DTYPE
    missing = sorted(set(expected) - set(manifest.arrays))
    if missing:
        raise SnapshotError(
            f"manifest lists no array entry for: {', '.join(missing)}"
        )

    for name, info in manifest.arrays.items():
        file = directory / info.file
        if not file.is_file():
            raise SnapshotError(f"snapshot array file missing: {file}")
        try:
            array = np.load(file, mmap_mode="r", allow_pickle=False)
        except (ValueError, OSError) as exc:
            raise SnapshotError(
                f"snapshot array {info.file} is unreadable: {exc}"
            ) from exc
        if str(array.dtype) != info.dtype or list(array.shape) != info.shape:
            raise SnapshotError(
                f"snapshot array {info.file} is {array.dtype}{array.shape}, "
                f"manifest says {info.dtype}{tuple(info.shape)}"
            )
        want_dtype = expected.get(name)
        if want_dtype is not None and info.dtype != want_dtype:
            raise SnapshotError(
                f"array {name!r} must be {want_dtype}, manifest says "
                f"{info.dtype}"
            )
        if info.shape[0] != manifest.n_cells:
            raise SnapshotError(
                f"array {name!r} has {info.shape[0]} rows for "
                f"{manifest.n_cells} cells"
            )
    return manifest


def _load(directory: Path, info: ArrayInfo, mmap: bool) -> np.ndarray:
    array = np.load(
        directory / info.file,
        mmap_mode="r" if mmap else None,
        allow_pickle=False,
    )
    if not mmap:
        # Serving is strictly read-only; enforce it on owned arrays the
        # way mode="r" memory maps already do.
        array.flags.writeable = False
    return array


def open_snapshot(path: "str | Path", mmap: bool = True) -> SegregationCube:
    """Reopen a snapshot as a read-only :class:`SegregationCube`.

    With ``mmap=True`` (default) columns are memory-mapped: the kernel
    pages array data in on demand and shares it between processes
    serving the same snapshot.  With ``mmap=False`` columns are loaded
    into (read-only) process memory.

    The returned cube has no lazy resolver: point queries answer from
    materialised cells only (a snapshot does not carry the transaction
    covers a ``closed``-mode resolver would need).
    """
    directory = Path(path)
    manifest = validate_snapshot(directory)
    arrays = TableArrays(
        population=_load(directory, manifest.arrays["population"], mmap),
        minority=_load(directory, manifest.arrays["minority"], mmap),
        n_units=_load(directory, manifest.arrays["n_units"], mmap),
        sa_masks=_load(directory, manifest.arrays["sa_masks"], mmap),
        ca_masks=_load(directory, manifest.arrays["ca_masks"], mmap),
        columns={
            name: _load(directory, manifest.arrays[f"column:{name}"], mmap)
            for name in manifest.column_names
        },
    )
    table = CellTable.from_arrays(arrays)
    metadata = manifest.cube_metadata()
    metadata.extra = dict(metadata.extra)
    metadata.extra["snapshot"] = {
        "path": str(directory),
        "created_at": manifest.created_at,
        "mmap": mmap,
        "format_version": manifest.format_version,
    }
    return SegregationCube(table, manifest.dictionary(), metadata)
