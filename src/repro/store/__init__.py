"""Durable cube snapshots: build once, reopen and serve without rebuilding.

The segregation cube is expensive to build (ETL → mining → fill) and
cheap to read: after PR 3 its cells live in plain NumPy columns inside a
:class:`~repro.cube.table.CellTable`.  This subsystem persists those
columns as a **versioned on-disk snapshot** — one ``.npy`` file per
column plus a JSON manifest carrying the schema, the item vocabulary,
the index names and the build provenance — and reopens them, optionally
memory-mapped, as a fully functional read-only
:class:`~repro.cube.cube.SegregationCube`.

* :mod:`repro.store.manifest` — the manifest format (versioned,
  validated, JSON, with an optional ``delta`` section).
* :mod:`repro.store.snapshot` — :func:`dump_snapshot`,
  :func:`dump_delta_snapshot`, :func:`open_snapshot`,
  :func:`validate_snapshot`.
* :mod:`repro.store.shards` — the ``shards.json`` manifest plus
  writers (:func:`dump_sharded_snapshot`,
  :func:`dump_sharded_into_timeline`, :func:`shard_timeline_by_date`)
  that fan one logical cube across many disjoint snapshot/timeline
  shards, partitioned by key hash, by a context attribute's value, or
  by timeline date; :class:`repro.serve.router.ShardedCubeService`
  reopens and merges them.
* :mod:`repro.store.graph` — graph snapshots
  (:func:`dump_graph_snapshot`, :func:`open_graph_snapshot`,
  :func:`validate_graph_snapshot`): scenario 2/3's projected graph +
  clustering as ``.npy`` edge/label arrays behind a
  ``graph_manifest.json``, so graph-derived queries are servable
  without re-projecting.
* :mod:`repro.store.timeline` — :class:`CubeTimeline` /
  :func:`dump_into_timeline`: a dated directory of snapshots where
  each date after the first is a *delta* storing only the cells that
  changed (plus the superseded parent rows, keyed by their packed cell
  bitmasks), so a temporal sequence of cubes shares unchanged column
  bytes instead of duplicating them per date.  A measured
  :class:`CompactionPolicy` (chain length, resolved-open wall time,
  delta-to-root byte ratio, tracked in ``timeline.json``) re-roots
  long chains onto fresh full snapshots crash-safely
  (:func:`compact_date` / :func:`compact_timeline`,
  ``python -m repro.store.compact``).

Invariant: for any built cube, ``open_snapshot(dump_snapshot(cube))``
yields identical cells (``check_same_cells`` at ``atol=0``) and
identical ``top``/``slice``/pivot outputs, whether opened in memory or
memory-mapped — and the same holds for a delta snapshot resolved
through its parent chain.  Lazily-resolved closed-mode queries are the
one exception: the resolver needs the transaction covers, which a
snapshot does not carry, so reopened cubes answer point queries for
*materialised* cells only.
"""

from repro.store.graph import (
    GRAPH_FORMAT_VERSION,
    GRAPH_MANIFEST_NAME,
    GraphArtifact,
    GraphManifest,
    GraphSnapshot,
    dump_graph_snapshot,
    open_graph_snapshot,
    validate_graph_snapshot,
)
from repro.store.manifest import FORMAT_VERSION, MANIFEST_NAME, SnapshotManifest
from repro.store.shards import (
    SHARDS_NAME,
    ShardEntry,
    ShardsManifest,
    dump_sharded_into_timeline,
    dump_sharded_snapshot,
    is_sharded,
    shard_timeline_by_date,
)
from repro.store.snapshot import (
    delta_chain_length,
    dump_delta_snapshot,
    dump_snapshot,
    open_snapshot,
    snapshot_disk_bytes,
    snapshot_files,
    table_digest,
    validate_snapshot,
)
from repro.store.timeline import (
    TIMELINE_MANIFEST_NAME,
    CompactionPolicy,
    CubeTimeline,
    compact_date,
    compact_timeline,
    dump_into_timeline,
    measure_open_ms,
    read_timeline_manifest,
    record_date_stats,
    timeline_dates,
)

__all__ = [
    "CompactionPolicy",
    "CubeTimeline",
    "FORMAT_VERSION",
    "GRAPH_FORMAT_VERSION",
    "GRAPH_MANIFEST_NAME",
    "GraphArtifact",
    "GraphManifest",
    "GraphSnapshot",
    "MANIFEST_NAME",
    "SHARDS_NAME",
    "ShardEntry",
    "ShardsManifest",
    "SnapshotManifest",
    "TIMELINE_MANIFEST_NAME",
    "compact_date",
    "compact_timeline",
    "delta_chain_length",
    "dump_delta_snapshot",
    "dump_graph_snapshot",
    "dump_into_timeline",
    "dump_sharded_into_timeline",
    "dump_sharded_snapshot",
    "dump_snapshot",
    "is_sharded",
    "measure_open_ms",
    "open_graph_snapshot",
    "open_snapshot",
    "read_timeline_manifest",
    "record_date_stats",
    "shard_timeline_by_date",
    "snapshot_disk_bytes",
    "snapshot_files",
    "table_digest",
    "timeline_dates",
    "validate_graph_snapshot",
    "validate_snapshot",
]
