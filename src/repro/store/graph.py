"""Durable graph snapshots: scenario 2/3 outputs as addressable artifacts.

The graph scenarios (director interlock projection, bipartite pipeline)
used to end at an in-process ``ScenarioResult`` — the projected graph
and its clustering were invisible to the snapshot/serving tier.  This
module gives them the same durability contract as cube snapshots: a
self-describing directory of ``.npy`` columns plus a JSON manifest,
crash-safe to write, memory-mappable to reopen, and loudly invalid when
corrupted.

Layout::

    graph_snapshot/
      graph_manifest.json   version, counts, method, provenance, array map
      edges_u.npy           int64   (n_edges,)   edge endpoints, u < v
      edges_v.npy           int64   (n_edges,)   sorted by (u, v)
      edges_w.npy           float64 (n_edges,)   shared-individual weights
      labels.npy            int64   (n_nodes,)   clustering unit per node
      isolated.npy          int64               nodes with no projected edge
      skipped_hubs.npy      int64               sources skipped by the hub guard

The write protocol mirrors ``store/snapshot.py``: the stale manifest is
unlinked *first* and the new one written *last*, so a directory with a
readable manifest always describes a complete snapshot; unclaimed
``.npy`` files are pruned.  :func:`open_graph_snapshot` checks structure
(version, required arrays, dtypes, shapes, count consistency);
:func:`validate_graph_snapshot` additionally checks content (endpoint
ranges, ``u < v`` ordering, positive weights, label range, sha256
digest).  Every failure raises :class:`~repro.errors.SnapshotError`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.errors import SnapshotError
from repro.graph.bipartite import ProjectionResult
from repro.graph.components import Clustering
from repro.graph.graph import Graph
from repro.store.manifest import _jsonable

#: Current graph snapshot format; readers refuse other versions.
GRAPH_FORMAT_VERSION = 1

#: Distinct from the cube's ``manifest.json`` so a graph snapshot can
#: never be mistaken for (or half-open as) a cube snapshot.
GRAPH_MANIFEST_NAME = "graph_manifest.json"

#: Required arrays with their dtypes; shapes are manifest-validated.
_GRAPH_ARRAYS = {
    "edges_u": "int64",
    "edges_v": "int64",
    "edges_w": "float64",
    "labels": "int64",
    "isolated": "int64",
    "skipped_hubs": "int64",
}


@dataclass
class GraphArrayInfo:
    """Where one array lives and what it must look like."""

    file: str
    dtype: str
    shape: "list[int]"


@dataclass
class GraphManifest:
    """Everything a reader needs to reopen and validate a graph snapshot."""

    format_version: int
    created_at: str
    n_nodes: int
    n_edges: int
    n_clusters: int
    method: str
    provenance: "dict[str, object]"
    arrays: "dict[str, GraphArrayInfo]" = field(default_factory=dict)
    content_digest: "str | None" = None

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "GraphManifest":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SnapshotError(
                f"graph manifest is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise SnapshotError("graph manifest must be a JSON object")
        version = payload.get("format_version")
        if version != GRAPH_FORMAT_VERSION:
            raise SnapshotError(
                f"graph snapshot format version {version!r} is not "
                f"supported (this library reads version "
                f"{GRAPH_FORMAT_VERSION})"
            )
        required = ("created_at", "n_nodes", "n_edges", "n_clusters",
                    "method", "provenance", "arrays")
        missing = [name for name in required if name not in payload]
        if missing:
            raise SnapshotError(
                "graph manifest is missing required fields: "
                + ", ".join(missing)
            )
        arrays_raw = payload["arrays"]
        if not isinstance(arrays_raw, dict):
            raise SnapshotError("graph manifest 'arrays' must be an object")
        arrays = {}
        for name, info in arrays_raw.items():
            try:
                arrays[name] = GraphArrayInfo(
                    file=str(info["file"]),
                    dtype=str(info["dtype"]),
                    shape=[int(d) for d in info["shape"]],
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise SnapshotError(
                    f"malformed graph array entry {name!r}: {info!r}"
                ) from exc
        try:
            return cls(
                format_version=int(version),
                created_at=str(payload["created_at"]),
                n_nodes=int(payload["n_nodes"]),
                n_edges=int(payload["n_edges"]),
                n_clusters=int(payload["n_clusters"]),
                method=str(payload["method"]),
                provenance=dict(payload["provenance"]),
                arrays=arrays,
                content_digest=(
                    str(payload["content_digest"])
                    if payload.get("content_digest") is not None else None
                ),
            )
        except (TypeError, ValueError) as exc:
            raise SnapshotError(
                f"graph manifest fields are malformed: {exc}"
            ) from exc

    def write(self, directory: "str | Path") -> Path:
        path = Path(directory) / GRAPH_MANIFEST_NAME
        path.write_text(self.to_json())
        return path

    @classmethod
    def read(cls, directory: "str | Path") -> "GraphManifest":
        path = Path(directory) / GRAPH_MANIFEST_NAME
        if not path.is_file():
            raise SnapshotError(f"no graph snapshot manifest at {path}")
        return cls.from_json(path.read_text())


@dataclass
class GraphArtifact:
    """One scenario's graph output, ready to dump: projection + clustering."""

    graph: Graph
    clustering: Clustering
    isolated: "list[int]"
    skipped_hubs: "list[int]"
    provenance: "dict[str, object]" = field(default_factory=dict)

    @classmethod
    def from_result(
        cls,
        projection: ProjectionResult,
        clustering: Clustering,
        provenance: "dict[str, object] | None" = None,
    ) -> "GraphArtifact":
        """Bundle a GraphBuilder + GraphClustering output pair."""
        if len(clustering.labels) != projection.graph.n_nodes:
            raise SnapshotError(
                "clustering labels do not match the projected graph "
                f"({len(clustering.labels)} labels for "
                f"{projection.graph.n_nodes} nodes)"
            )
        return cls(
            graph=projection.graph,
            clustering=clustering,
            isolated=list(projection.isolated),
            skipped_hubs=list(projection.skipped_hubs),
            provenance=dict(provenance or {}),
        )


def graph_digest(arrays: "dict[str, np.ndarray]") -> str:
    """Order-insensitive-to-storage sha256 over the graph's array content."""
    digest = hashlib.sha256()
    for name in sorted(_GRAPH_ARRAYS):
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(str(array.dtype).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def dump_graph_snapshot(
    artifact: GraphArtifact, path: "str | Path"
) -> Path:
    """Persist a graph artifact to ``path`` (a directory) and return it.

    Crash-safe like the cube dump: stale manifest unlinked first, new
    manifest written last, orphan ``.npy`` files pruned.
    """
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / GRAPH_MANIFEST_NAME).unlink(missing_ok=True)

    u, v, w = artifact.graph.edge_arrays()
    arrays = {
        "edges_u": np.ascontiguousarray(u, dtype=np.int64),
        "edges_v": np.ascontiguousarray(v, dtype=np.int64),
        "edges_w": np.ascontiguousarray(w, dtype=np.float64),
        "labels": np.ascontiguousarray(
            artifact.clustering.labels, dtype=np.int64
        ),
        "isolated": np.asarray(artifact.isolated, dtype=np.int64),
        "skipped_hubs": np.asarray(artifact.skipped_hubs, dtype=np.int64),
    }
    manifest = GraphManifest(
        format_version=GRAPH_FORMAT_VERSION,
        created_at=datetime.now(timezone.utc).isoformat(),
        n_nodes=artifact.graph.n_nodes,
        n_edges=int(len(u)),
        n_clusters=artifact.clustering.n_clusters,
        method=artifact.clustering.method,
        provenance=_jsonable(artifact.provenance),
        content_digest=graph_digest(arrays),
    )
    for name, array in arrays.items():
        file = f"{name}.npy"
        np.save(directory / file, array)
        manifest.arrays[name] = GraphArrayInfo(
            file=file, dtype=_GRAPH_ARRAYS[name], shape=list(array.shape)
        )
    manifest.write(directory)
    expected = {info.file for info in manifest.arrays.values()}
    for stale in directory.glob("*.npy"):
        if stale.name not in expected:
            stale.unlink()
    return directory


class GraphSnapshot:
    """A reopened graph snapshot: lazy arrays + graph/clustering views."""

    def __init__(
        self,
        path: Path,
        manifest: GraphManifest,
        arrays: "dict[str, np.ndarray]",
    ):
        self.path = path
        self.manifest = manifest
        self._arrays = arrays
        self._graph: "Graph | None" = None

    def array(self, name: str) -> np.ndarray:
        return self._arrays[name]

    @property
    def n_nodes(self) -> int:
        return self.manifest.n_nodes

    @property
    def n_edges(self) -> int:
        return self.manifest.n_edges

    def edge_arrays(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        return (
            self._arrays["edges_u"],
            self._arrays["edges_v"],
            self._arrays["edges_w"],
        )

    def graph(self) -> Graph:
        """Rebuild the projected :class:`Graph` (cached)."""
        if self._graph is None:
            u, v, w = self.edge_arrays()
            self._graph = Graph.from_edge_arrays(
                self.manifest.n_nodes, u, v, w
            )
        return self._graph

    def clustering(self) -> Clustering:
        return Clustering(
            labels=self._arrays["labels"],
            n_clusters=self.manifest.n_clusters,
            method=self.manifest.method,
        )

    def info(self) -> "dict[str, object]":
        """Summary dict (the serving tier's ``/graph/info`` body)."""
        w = self._arrays["edges_w"]
        return {
            "path": str(self.path),
            "created_at": self.manifest.created_at,
            "n_nodes": self.manifest.n_nodes,
            "n_edges": self.manifest.n_edges,
            "n_clusters": self.manifest.n_clusters,
            "method": self.manifest.method,
            "n_isolated": int(len(self._arrays["isolated"])),
            "n_skipped_hubs": int(len(self._arrays["skipped_hubs"])),
            "total_weight": float(w.sum()) if len(w) else 0.0,
            "provenance": dict(self.manifest.provenance),
        }


def open_graph_snapshot(
    path: "str | Path", mmap: bool = True
) -> GraphSnapshot:
    """Reopen a graph snapshot with structural validation.

    Checks manifest version and required fields, array presence, dtype
    and shape against the manifest, and count consistency (labels per
    node, one weight per edge).  Content checks (ranges, digest) live in
    :func:`validate_graph_snapshot` so a mmap-opened snapshot stays
    lazy.
    """
    directory = Path(path)
    manifest = GraphManifest.read(directory)
    if manifest.n_nodes < 0 or manifest.n_edges < 0 \
            or manifest.n_clusters < 0:
        raise SnapshotError(
            f"graph manifest counts must be non-negative at {directory}"
        )
    arrays: "dict[str, np.ndarray]" = {}
    for name, dtype in _GRAPH_ARRAYS.items():
        info = manifest.arrays.get(name)
        if info is None:
            raise SnapshotError(
                f"graph manifest is missing array entry {name!r}"
            )
        if info.dtype != dtype:
            raise SnapshotError(
                f"graph array {name!r} declares dtype {info.dtype!r}, "
                f"expected {dtype!r}"
            )
        file = directory / info.file
        if not file.is_file():
            raise SnapshotError(f"graph snapshot is missing file {file}")
        try:
            array = np.load(file, mmap_mode="r" if mmap else None)
        except (ValueError, OSError) as exc:
            raise SnapshotError(
                f"graph array file {file} is unreadable: {exc}"
            ) from exc
        if str(array.dtype) != dtype:
            raise SnapshotError(
                f"graph array {name!r} has dtype {array.dtype}, "
                f"expected {dtype}"
            )
        if list(array.shape) != list(info.shape):
            raise SnapshotError(
                f"graph array {name!r} has shape {list(array.shape)}, "
                f"manifest declares {info.shape}"
            )
        if not mmap:
            array.setflags(write=False)
        arrays[name] = array
    for name in ("edges_u", "edges_v", "edges_w"):
        if arrays[name].shape != (manifest.n_edges,):
            raise SnapshotError(
                f"graph array {name!r} length {arrays[name].shape} does "
                f"not match manifest n_edges={manifest.n_edges}"
            )
    if arrays["labels"].shape != (manifest.n_nodes,):
        raise SnapshotError(
            f"graph labels length {arrays['labels'].shape} does not "
            f"match manifest n_nodes={manifest.n_nodes}"
        )
    return GraphSnapshot(directory, manifest, arrays)


def validate_graph_snapshot(path: "str | Path") -> GraphSnapshot:
    """Deep-check a graph snapshot; return it opened when sound.

    On top of :func:`open_graph_snapshot`'s structural checks: edge
    endpoints in range with ``u < v``, strictly positive weights, labels
    dense in ``[0, n_clusters)``, auxiliary node lists in range, and the
    manifest's sha256 content digest.
    """
    snapshot = open_graph_snapshot(path, mmap=True)
    manifest = snapshot.manifest
    u, v, w = snapshot.edge_arrays()
    n = manifest.n_nodes
    if len(u):
        if int(u.min()) < 0 or int(v.max()) >= n:
            raise SnapshotError(
                f"graph edge endpoints out of range [0, {n})"
            )
        if not (u < v).all():
            raise SnapshotError(
                "graph edges are not in canonical u < v order"
            )
        if not (w > 0).all():
            raise SnapshotError("graph edge weights must be positive")
    labels = snapshot.array("labels")
    if len(labels):
        if int(labels.min()) < 0 or int(labels.max()) >= manifest.n_clusters:
            raise SnapshotError(
                f"graph labels out of range [0, {manifest.n_clusters})"
            )
    elif manifest.n_clusters != 0:
        raise SnapshotError(
            "graph manifest declares clusters for an empty node set"
        )
    for name in ("isolated", "skipped_hubs"):
        aux = snapshot.array(name)
        if len(aux) and (int(aux.min()) < 0):
            raise SnapshotError(f"graph array {name!r} has negative ids")
    if manifest.content_digest is not None:
        actual = graph_digest(
            {name: snapshot.array(name) for name in _GRAPH_ARRAYS}
        )
        if actual != manifest.content_digest:
            raise SnapshotError(
                f"graph snapshot content digest mismatch at {path}: "
                f"manifest {manifest.content_digest[:12]}…, "
                f"computed {actual[:12]}…"
            )
    return snapshot
