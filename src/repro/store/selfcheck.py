"""Snapshot self-checks: round-trip and timeline parity, CI-runnable.

Two smokes for the store/serve stack, runnable anywhere::

    python -m repro.store.selfcheck artifacts/cube_snapshot
    python -m repro.store.selfcheck artifacts/cube_snapshot \
        artifacts/cube_timeline --closed --compact

The snapshot directory drives the single-snapshot check: build a small
cube from the bundled schools dataset, dump it, reopen it
memory-mapped, and fail loudly (exit 1) unless the reopened cube is
cell-identical (``check_same_cells`` at atol=0) with identical top-k
output.

The optional timeline directory drives the timeline check: build three
synthetic snapshot dates through the incremental engine
(:mod:`repro.cube.incremental`), dump date 0 full and the rest as
*delta* snapshots, reopen every date through the parent chain, and fail
unless each reopened cube is bit-identical both to the live incremental
cube and to a from-scratch columnar build at that date.

``--closed`` runs the timeline check in closed mode (the incremental
closure diff and the from-scratch closed build must agree bit-exactly);
``--compact`` additionally force-compacts every delta date onto a fresh
full root (:func:`~repro.store.timeline.compact_timeline`), verifies
the chains collapsed to zero hops and the manifest recorded a publish
time, and reruns the parity sweep against the compacted tree.

Both directories are left in place so the CI job can upload them as
artifacts.
"""

from __future__ import annotations

import argparse
import sys

from repro.cube.builder import SegregationDataCubeBuilder, build_cube
from repro.cube.cube import check_same_cells
from repro.cube.incremental import TemporalCubeEngine
from repro.data.schools import generate_schools
from repro.data.synthetic import random_temporal_final_table
from repro.etl.diff import valid_at
from repro.itemsets.transactions import encode_table
from repro.store.snapshot import (
    delta_chain_length,
    dump_snapshot,
    open_snapshot,
    validate_snapshot,
)
from repro.store.timeline import (
    CubeTimeline,
    compact_timeline,
    dump_into_timeline,
    read_timeline_manifest,
)


def run(path: str) -> int:
    """Single-snapshot check: build → dump → mmap reopen → parity."""
    table, schema = generate_schools()
    live = build_cube(table, schema, min_population=10, min_minority=3)
    dump_snapshot(live, path)
    manifest = validate_snapshot(path)
    reopened = open_snapshot(path, mmap=True)

    problems = check_same_cells(live, reopened, atol=0.0)
    live_top = [s.key for s in live.top("D", k=10, min_minority=5)]
    snap_top = [s.key for s in reopened.top("D", k=10, min_minority=5)]
    if problems or live_top != snap_top:
        for problem in problems[:10]:
            print(f"PARITY FAILURE: {problem}", file=sys.stderr)
        if live_top != snap_top:
            print("PARITY FAILURE: top-10 rankings differ", file=sys.stderr)
        return 1
    print(
        f"snapshot selfcheck OK: {manifest.n_cells} cells, "
        f"{len(manifest.arrays)} arrays, format v{manifest.format_version}, "
        f"live == mmapped at atol=0 (top-10 identical)"
    )
    return 0


def _parity_sweep(timeline, states, scratches, label_prefix="") -> int:
    failures = 0
    for state in states:
        reopened = timeline.at(state.date)
        pairs = (("live", state.cube), ("scratch", scratches[state.date]))
        for label, against in pairs:
            problems = check_same_cells(reopened, against, atol=0.0)
            for problem in problems[:10]:
                print(
                    f"TIMELINE PARITY FAILURE ({label_prefix}date "
                    f"{state.date}, vs {label}): {problem}",
                    file=sys.stderr,
                )
            failures += len(problems)
    return failures


def run_timeline(path: str, mode: str = "all", compact: bool = False) -> int:
    """Timeline check: build → delta-dump → chain reopen → parity x3.

    With ``compact=True``, additionally: force-compact → re-reopen →
    parity x3 against the re-rooted tree.
    """
    dates = (0, 1, 2)
    limits = {"min_population": 10, "min_minority": 3,
              "max_sa_items": 2, "max_ca_items": 2}
    table, schema, starts, ends = random_temporal_final_table(
        n_rows=4000, n_units=12, dates=dates,
        sa_attributes={"g": 2, "a": 3},
        ca_attributes={"r": 4, "s": 3},
        multi_valued_ca={"mv": 3},
        seed=5, skew=0.5,
    )
    db = encode_table(table, schema)
    engine = TemporalCubeEngine(
        db, SegregationDataCubeBuilder(engine="incremental", mode=mode,
                                       **limits)
    )
    states = engine.run(
        [(d, valid_at(starts, ends, d)) for d in dates]
    )
    previous = None
    for state in states:
        dump_into_timeline(
            path, state.date, state.cube,
            parent_date=None if previous is None else previous.date,
            parent=None if previous is None else previous.cube,
        )
        previous = state

    scratches = {
        state.date: SegregationDataCubeBuilder(
            mode=mode, **limits
        ).build_from_transactions(
            db.restrict(valid_at(starts, ends, state.date))
        )
        for state in states
    }
    failures = _parity_sweep(CubeTimeline(path), states, scratches)
    if failures:
        return 1

    if compact:
        compacted = compact_timeline(path, force=True)
        expected = [s.date for s in states[1:]]
        manifest = read_timeline_manifest(path)
        if compacted != expected:
            print(
                f"COMPACTION FAILURE: compacted {compacted}, "
                f"expected {expected}",
                file=sys.stderr,
            )
            return 1
        for state in states:
            chain = delta_chain_length(f"{path}/{state.date}")
            if chain != 0:
                print(
                    f"COMPACTION FAILURE: date {state.date} still has "
                    f"chain length {chain}",
                    file=sys.stderr,
                )
                return 1
        if not manifest.get("last_publish_at"):
            print(
                "COMPACTION FAILURE: timeline manifest lost "
                "last_publish_at",
                file=sys.stderr,
            )
            return 1
        failures = _parity_sweep(
            CubeTimeline(path), states, scratches,
            label_prefix="compacted ",
        )
        if failures:
            return 1

    last = states[-1].cube.metadata.extra
    compact_note = ", force-compacted to chain 0 and re-verified" if (
        compact
    ) else ""
    print(
        f"timeline selfcheck OK (mode={mode}): {len(states)} dates, "
        f"{len(states[-1].cube)} cells at date {states[-1].date} "
        f"({last['n_carried_contexts']} contexts carried, "
        f"{last['n_recomputed_contexts']} recomputed, "
        f"{last['n_carried_cells']} cells carried), chain-reopened "
        f"deltas == live == scratch at atol=0{compact_note}"
    )
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store.selfcheck",
        description="Snapshot round-trip and timeline parity self-checks.",
    )
    parser.add_argument("snapshot_dir", help="single-snapshot check output")
    parser.add_argument(
        "timeline_dir", nargs="?", default=None,
        help="also run the timeline check into this directory",
    )
    parser.add_argument(
        "--closed", action="store_true",
        help="run the timeline check in closed mode",
    )
    parser.add_argument(
        "--compact", action="store_true",
        help="force-compact the timeline and re-verify parity",
    )
    args = parser.parse_args(argv)
    status = run(args.snapshot_dir)
    if status == 0 and args.timeline_dir is not None:
        status = run_timeline(
            args.timeline_dir,
            mode="closed" if args.closed else "all",
            compact=args.compact,
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
