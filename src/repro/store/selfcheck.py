"""Snapshot self-check: build → dump → reopen (mmap) → assert parity.

The CI smoke for the store/serve stack, runnable anywhere::

    python -m repro.store.selfcheck artifacts/cube_snapshot

Builds a small cube from the bundled schools dataset, dumps it to the
given directory, reopens it memory-mapped, and fails loudly (exit 1)
unless the reopened cube is cell-identical (``check_same_cells`` at
atol=0) with identical top-k output.  The snapshot directory is left in
place so the CI job can upload it as an artifact.
"""

from __future__ import annotations

import sys

from repro.cube.builder import build_cube
from repro.cube.cube import check_same_cells
from repro.data.schools import generate_schools
from repro.store.snapshot import dump_snapshot, open_snapshot, validate_snapshot


def run(path: str) -> int:
    table, schema = generate_schools()
    live = build_cube(table, schema, min_population=10, min_minority=3)
    dump_snapshot(live, path)
    manifest = validate_snapshot(path)
    reopened = open_snapshot(path, mmap=True)

    problems = check_same_cells(live, reopened, atol=0.0)
    live_top = [s.key for s in live.top("D", k=10, min_minority=5)]
    snap_top = [s.key for s in reopened.top("D", k=10, min_minority=5)]
    if problems or live_top != snap_top:
        for problem in problems[:10]:
            print(f"PARITY FAILURE: {problem}", file=sys.stderr)
        if live_top != snap_top:
            print("PARITY FAILURE: top-10 rankings differ", file=sys.stderr)
        return 1
    print(
        f"snapshot selfcheck OK: {manifest.n_cells} cells, "
        f"{len(manifest.arrays)} arrays, format v{manifest.format_version}, "
        f"live == mmapped at atol=0 (top-10 identical)"
    )
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print("usage: python -m repro.store.selfcheck <snapshot-dir>",
              file=sys.stderr)
        sys.exit(2)
    sys.exit(run(sys.argv[1]))
