"""Snapshot self-checks: round-trip and timeline parity, CI-runnable.

Two smokes for the store/serve stack, runnable anywhere::

    python -m repro.store.selfcheck artifacts/cube_snapshot
    python -m repro.store.selfcheck artifacts/cube_snapshot artifacts/cube_timeline

The first argument drives the single-snapshot check: build a small cube
from the bundled schools dataset, dump it, reopen it memory-mapped, and
fail loudly (exit 1) unless the reopened cube is cell-identical
(``check_same_cells`` at atol=0) with identical top-k output.

The optional second argument drives the timeline check: build three
synthetic snapshot dates through the incremental engine
(:mod:`repro.cube.incremental`), dump date 0 full and the rest as
*delta* snapshots, reopen every date through the parent chain, and fail
unless each reopened cube is bit-identical both to the live incremental
cube and to a from-scratch columnar build at that date.

Both directories are left in place so the CI job can upload them as
artifacts.
"""

from __future__ import annotations

import sys

from repro.cube.builder import SegregationDataCubeBuilder, build_cube
from repro.cube.cube import check_same_cells
from repro.cube.incremental import TemporalCubeEngine
from repro.data.schools import generate_schools
from repro.data.synthetic import random_temporal_final_table
from repro.etl.diff import valid_at
from repro.itemsets.transactions import encode_table
from repro.store.snapshot import dump_snapshot, open_snapshot, validate_snapshot
from repro.store.timeline import CubeTimeline, dump_into_timeline


def run(path: str) -> int:
    """Single-snapshot check: build → dump → mmap reopen → parity."""
    table, schema = generate_schools()
    live = build_cube(table, schema, min_population=10, min_minority=3)
    dump_snapshot(live, path)
    manifest = validate_snapshot(path)
    reopened = open_snapshot(path, mmap=True)

    problems = check_same_cells(live, reopened, atol=0.0)
    live_top = [s.key for s in live.top("D", k=10, min_minority=5)]
    snap_top = [s.key for s in reopened.top("D", k=10, min_minority=5)]
    if problems or live_top != snap_top:
        for problem in problems[:10]:
            print(f"PARITY FAILURE: {problem}", file=sys.stderr)
        if live_top != snap_top:
            print("PARITY FAILURE: top-10 rankings differ", file=sys.stderr)
        return 1
    print(
        f"snapshot selfcheck OK: {manifest.n_cells} cells, "
        f"{len(manifest.arrays)} arrays, format v{manifest.format_version}, "
        f"live == mmapped at atol=0 (top-10 identical)"
    )
    return 0


def run_timeline(path: str) -> int:
    """Timeline check: build → delta-dump → chain reopen → parity x3."""
    dates = (0, 1, 2)
    limits = {"min_population": 10, "min_minority": 3,
              "max_sa_items": 2, "max_ca_items": 2}
    table, schema, starts, ends = random_temporal_final_table(
        n_rows=4000, n_units=12, dates=dates,
        sa_attributes={"g": 2, "a": 3},
        ca_attributes={"r": 4, "s": 3},
        multi_valued_ca={"mv": 3},
        seed=5, skew=0.5,
    )
    db = encode_table(table, schema)
    engine = TemporalCubeEngine(
        db, SegregationDataCubeBuilder(engine="incremental", **limits)
    )
    states = engine.run(
        [(d, valid_at(starts, ends, d)) for d in dates]
    )
    previous = None
    for state in states:
        dump_into_timeline(
            path, state.date, state.cube,
            parent_date=None if previous is None else previous.date,
            parent=None if previous is None else previous.cube,
        )
        previous = state

    timeline = CubeTimeline(path)
    failures = 0
    for state in states:
        reopened = timeline.at(state.date)
        scratch = SegregationDataCubeBuilder(
            **limits
        ).build_from_transactions(db.restrict(valid_at(starts, ends,
                                                       state.date)))
        for label, against in (("live", state.cube), ("scratch", scratch)):
            problems = check_same_cells(reopened, against, atol=0.0)
            for problem in problems[:10]:
                print(
                    f"TIMELINE PARITY FAILURE (date {state.date}, "
                    f"vs {label}): {problem}",
                    file=sys.stderr,
                )
            failures += len(problems)
    if failures:
        return 1
    last = states[-1].cube.metadata.extra
    print(
        f"timeline selfcheck OK: {len(states)} dates, "
        f"{len(states[-1].cube)} cells at date {states[-1].date} "
        f"({last['n_carried_contexts']} contexts carried, "
        f"{last['n_recomputed_contexts']} recomputed), chain-reopened "
        "deltas == live == scratch at atol=0"
    )
    return 0


def main(argv: "list[str]") -> int:
    if len(argv) not in (2, 3):
        print(
            "usage: python -m repro.store.selfcheck <snapshot-dir> "
            "[<timeline-dir>]",
            file=sys.stderr,
        )
        return 2
    status = run(argv[1])
    if status == 0 and len(argv) == 3:
        status = run_timeline(argv[2])
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
