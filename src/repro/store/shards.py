"""Shard manifests: one logical cube fanned across many snapshots.

A *sharded* cube is a directory holding a ``shards.json`` manifest plus
one child directory per shard::

    sharded/
      shards.json       how the cells are partitioned, one entry/shard
      shard-0/          ordinary repro.store snapshot (or timeline)
      shard-1/
      ...

Each shard is a self-contained :mod:`repro.store` snapshot — or a
timeline of dated snapshots — over a *disjoint subset* of the logical
cube's cells, all sharing the full item vocabulary, so every shard
reopens through the usual validation and answers queries with the
usual code.  The partition function depends only on a cell's key, so a
point query routes to exactly one shard, while scans (``top``,
``slice``, ``children``) fan out and merge — that merging lives in
:class:`repro.serve.router.ShardedCubeService`; this module owns the
on-disk format and the writers.

Three partition schemes:

``hash``
    stable CRC-32 of the cell's packed key bitmask bytes modulo
    ``n_shards`` — balanced, works for any cube.
``attribute:<name>``
    cells grouped by the value of context attribute ``<name>`` in their
    key (``*`` for cells that leave it at the wildcard; multi-valued
    cells go to their lexicographically smallest value) — aligns shards
    with a natural query dimension.
``date``
    one shard per timeline date (:func:`shard_timeline_by_date` writes
    the manifest next to an existing timeline's dated directories) —
    point-in-time queries route to one date, trends fan across all.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import asdict, dataclass, replace
from pathlib import Path

import numpy as np

from repro.cube.cube import SegregationCube
from repro.cube.table import CellTable, TableArrays, pack_items
from repro.errors import SnapshotError
from repro.itemsets.items import ItemDictionary
from repro.store.manifest import MANIFEST_NAME
from repro.store.snapshot import dump_snapshot
from repro.store.timeline import dump_into_timeline, timeline_dates

SHARDS_NAME = "shards.json"

SHARDS_FORMAT_VERSION = 1

#: Shard key of cells whose key leaves the shard attribute at ``⋆``.
WILDCARD_SHARD = "*"


@dataclass(frozen=True)
class ShardEntry:
    """One shard: where it lives and which cells it owns."""

    path: str                 # directory, relative to the manifest dir
    key: str                  # hash bucket, attribute value, or date
    date: "int | None" = None  # date-sharded manifests only


@dataclass
class ShardsManifest:
    """Everything a router needs to open and route across the shards."""

    format_version: int
    sharded_by: str            # "hash" | "attribute:<name>" | "date"
    n_words: int               # packed key width shared by all shards
    entries: "list[ShardEntry]"

    @property
    def n_shards(self) -> int:
        return len(self.entries)

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ShardsManifest":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SnapshotError(
                f"shards manifest is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise SnapshotError("shards manifest must be a JSON object")
        version = payload.get("format_version")
        if version != SHARDS_FORMAT_VERSION:
            raise SnapshotError(
                f"shards format version {version!r} is not supported "
                f"(this library reads version {SHARDS_FORMAT_VERSION})"
            )
        try:
            sharded_by = str(payload["sharded_by"])
            n_words = int(payload["n_words"])
            raw_entries = payload["entries"]
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"shards manifest is missing or malformed: {exc}"
            ) from exc
        if sharded_by != "hash" and sharded_by != "date" and \
                not sharded_by.startswith("attribute:"):
            raise SnapshotError(
                f"unknown sharding scheme {sharded_by!r} (expected 'hash', "
                "'date' or 'attribute:<name>')"
            )
        if not isinstance(raw_entries, list) or not raw_entries:
            raise SnapshotError("shards manifest lists no shard entries")
        entries = []
        for raw in raw_entries:
            try:
                entries.append(ShardEntry(
                    path=str(raw["path"]),
                    key=str(raw["key"]),
                    date=(int(raw["date"])
                          if raw.get("date") is not None else None),
                ))
            except (KeyError, TypeError, ValueError) as exc:
                raise SnapshotError(
                    f"malformed shard entry {raw!r}"
                ) from exc
        keys = [entry.key for entry in entries]
        if len(set(keys)) != len(keys):
            raise SnapshotError(f"duplicate shard keys in manifest: {keys}")
        if sharded_by == "date" and any(e.date is None for e in entries):
            raise SnapshotError(
                "date-sharded manifest has entries without a date"
            )
        return cls(
            format_version=int(version),
            sharded_by=sharded_by,
            n_words=n_words,
            entries=entries,
        )

    def write(self, directory: "str | Path") -> Path:
        path = Path(directory) / SHARDS_NAME
        path.write_text(self.to_json())
        return path

    @classmethod
    def read(cls, directory: "str | Path") -> "ShardsManifest":
        path = Path(directory) / SHARDS_NAME
        if not path.is_file():
            raise SnapshotError(f"no shards manifest at {path}")
        return cls.from_json(path.read_text())


def is_sharded(path: "str | Path") -> bool:
    """True when ``path`` holds a ``shards.json`` manifest."""
    return (Path(path) / SHARDS_NAME).is_file()


# ----------------------------------------------------------------------
# Partition functions (shared by the writers and the query router)
# ----------------------------------------------------------------------


def _key_bytes(sa_mask: np.ndarray, ca_mask: np.ndarray) -> bytes:
    """Endian-stable bytes of one cell's packed (SA, CA) key bitmasks."""
    combined = np.concatenate([np.asarray(sa_mask), np.asarray(ca_mask)])
    return np.ascontiguousarray(combined.astype("<u8")).tobytes()


def hash_shard_of_key(
    sa_items, ca_items, n_words: int, n_shards: int
) -> str:
    """Stable hash-bucket shard key of one cell key."""
    bucket = zlib.crc32(_key_bytes(
        pack_items(sa_items, n_words), pack_items(ca_items, n_words)
    )) % n_shards
    return str(bucket)


def attribute_shard_of_key(
    ca_items, dictionary: ItemDictionary, attribute: str
) -> str:
    """Attribute-value shard key of one cell key (``*`` when absent)."""
    values = sorted(
        str(dictionary.item(item_id).value)
        for item_id in ca_items
        if dictionary.item(item_id).attribute == attribute
    )
    return values[0] if values else WILDCARD_SHARD


def shard_keys_of_table(
    cube: SegregationCube, by: str, n_shards: int
) -> "list[str]":
    """Per-row shard key of every cell in a cube, in row order."""
    table = cube.table
    if by == "hash":
        sa_masks = np.asarray(table.sa_masks)
        ca_masks = np.asarray(table.ca_masks)
        return [
            str(zlib.crc32(_key_bytes(sa_masks[i], ca_masks[i])) % n_shards)
            for i in range(len(table))
        ]
    if by.startswith("attribute:"):
        attribute = by.partition(":")[2]
        ca_attrs = {
            cube.dictionary.item(i).attribute
            for i in cube.dictionary.ca_ids
        }
        if attribute not in ca_attrs:
            raise SnapshotError(
                f"cannot shard by {attribute!r}: not a context attribute "
                f"of this cube (have: {sorted(ca_attrs)})"
            )
        return [
            attribute_shard_of_key(key[1], cube.dictionary, attribute)
            for key in table.keys
        ]
    raise SnapshotError(
        f"unknown sharding scheme {by!r} (expected 'hash' or "
        "'attribute:<name>')"
    )


# ----------------------------------------------------------------------
# Writers
# ----------------------------------------------------------------------


def _subset_cube(cube: SegregationCube, rows: np.ndarray,
                 shard_info: "dict[str, object]") -> SegregationCube:
    """A cube over one shard's rows (columns copied, vocabulary shared)."""
    table = cube.table

    def take(array: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(np.asarray(array)[rows])

    arrays = TableArrays(
        population=take(table.population),
        minority=take(table.minority),
        n_units=take(table.n_units),
        sa_masks=take(table.sa_masks),
        ca_masks=take(table.ca_masks),
        columns={name: take(col) for name, col in table.columns.items()},
    )
    extra = {
        k: v for k, v in cube.metadata.extra.items() if k != "snapshot"
    }
    extra["shard"] = dict(shard_info)
    metadata = replace(cube.metadata, extra=extra)
    return SegregationCube(
        CellTable.from_arrays(arrays), cube.dictionary, metadata
    )


def _partition(cube: SegregationCube, by: str, n_shards: int
               ) -> "dict[str, np.ndarray]":
    """Shard key -> row indices, covering every row exactly once."""
    keys = shard_keys_of_table(cube, by, n_shards)
    groups: "dict[str, list[int]]" = {}
    if by == "hash":
        # Hash buckets exist even when empty, so the routing function
        # (crc32 % n_shards) always lands on a real shard directory.
        for bucket in range(n_shards):
            groups[str(bucket)] = []
    for row, key in enumerate(keys):
        groups.setdefault(key, []).append(row)
    return {
        key: np.asarray(rows, dtype=np.int64)
        for key, rows in groups.items()
    }


def _shard_dir_name(key: str) -> str:
    """Directory name of one shard (attribute values can hold ``/`` etc.)."""
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in key)
    return f"shard-{safe}" if safe else "shard-_"


def dump_sharded_snapshot(
    cube: SegregationCube,
    root: "str | Path",
    by: str = "hash",
    n_shards: int = 4,
) -> Path:
    """Persist one cube as a sharded directory of snapshots.

    The cells are partitioned by ``by`` (``"hash"`` with ``n_shards``
    buckets, or ``"attribute:<name>"``), each partition is dumped as an
    ordinary full snapshot under ``root``, and ``shards.json`` records
    the layout.  Reopen with
    :class:`repro.serve.router.ShardedCubeService`.
    """
    if by == "hash" and n_shards < 1:
        raise SnapshotError(f"n_shards must be >= 1, got {n_shards}")
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    partitions = _partition(cube, by, n_shards)
    entries = []
    for key in sorted(partitions):
        directory = _shard_dir_name(key)
        shard = _subset_cube(
            cube, partitions[key],
            {"by": by, "key": key, "n_shards": len(partitions)},
        )
        dump_snapshot(shard, root / directory)
        entries.append(ShardEntry(path=directory, key=key))
    manifest = ShardsManifest(
        format_version=SHARDS_FORMAT_VERSION,
        sharded_by=by,
        n_words=int(cube.table.sa_masks.shape[1]),
        entries=entries,
    )
    manifest.write(root)
    return root


def dump_sharded_into_timeline(
    root: "str | Path",
    date: int,
    cube: SegregationCube,
    by: str = "hash",
    n_shards: int = 4,
    parent_date: "int | None" = None,
) -> Path:
    """Write one dated entry into every shard's timeline.

    The sharded counterpart of
    :func:`repro.store.timeline.dump_into_timeline`: the cube at
    ``date`` is partitioned with the *same* key-stable function at
    every date, and each partition lands as a dated snapshot inside its
    shard's timeline directory — a delta against ``parent_date`` when
    that date exists in the shard, a full snapshot otherwise (first
    date, or a shard key that first appears at this date).
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    if is_sharded(root):
        manifest = ShardsManifest.read(root)
        if manifest.sharded_by != by:
            raise SnapshotError(
                f"timeline at {root} is sharded by "
                f"{manifest.sharded_by!r}, not {by!r}"
            )
        if by == "hash" and manifest.n_shards != n_shards:
            raise SnapshotError(
                f"timeline at {root} has {manifest.n_shards} hash "
                f"shards, not {n_shards}"
            )
        entries = list(manifest.entries)
    else:
        entries = []
    by_key = {entry.key: entry for entry in entries}
    partitions = _partition(cube, by, n_shards)
    # A shard key present at earlier dates but empty at this one still
    # gets a (cell-less) dated entry, so every shard timeline carries
    # the same date set and per-date trends stay mergeable.
    for key in by_key:
        partitions.setdefault(key, np.asarray([], dtype=np.int64))
    for key in sorted(partitions):
        entry = by_key.get(key)
        if entry is None:
            entry = ShardEntry(path=_shard_dir_name(key), key=key)
            entries.append(entry)
            by_key[key] = entry
        shard = _subset_cube(
            cube, partitions[key],
            {"by": by, "key": key, "n_shards": len(partitions),
             "date": int(date)},
        )
        shard_root = root / entry.path
        parent = parent_date
        if parent is not None and not (
            shard_root / str(int(parent)) / MANIFEST_NAME
        ).is_file():
            parent = None   # new shard: no parent to delta against
        dump_into_timeline(shard_root, date, shard, parent_date=parent)
    manifest = ShardsManifest(
        format_version=SHARDS_FORMAT_VERSION,
        sharded_by=by,
        n_words=int(cube.table.sa_masks.shape[1]),
        entries=entries,
    )
    manifest.write(root)
    return root


def shard_timeline_by_date(timeline_root: "str | Path") -> Path:
    """Write a date-sharding manifest over an existing timeline.

    Each dated snapshot directory becomes one shard; the manifest lands
    inside the timeline directory itself, so the same tree serves both
    as a :class:`~repro.store.timeline.CubeTimeline` and as a
    date-sharded :class:`~repro.serve.router.ShardedCubeService`
    (point-in-time queries route to one date, trends fan across all).
    """
    root = Path(timeline_root)
    dates = timeline_dates(root)
    if not dates:
        raise SnapshotError(
            f"no dated snapshots under timeline directory {root}"
        )
    from repro.store.manifest import SnapshotManifest

    n_words = SnapshotManifest.read(root / str(dates[0])).n_words
    manifest = ShardsManifest(
        format_version=SHARDS_FORMAT_VERSION,
        sharded_by="date",
        n_words=int(n_words),
        entries=[
            ShardEntry(path=str(date), key=str(date), date=int(date))
            for date in dates
        ],
    )
    return manifest.write(root)
