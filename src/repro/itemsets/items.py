"""Items and the typed item dictionary.

The SegregationDataCubeBuilder encodes cube coordinates as itemsets of
``attribute=value`` items (paper §2).  Items are *typed*: an item either
describes the minority subgroup (kind SA) or the context (kind CA); a
mixed itemset therefore splits uniquely into SA and CA parts — the cell
coordinates ``(A, B)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Union

from repro.errors import MiningError

ItemValue = Union[str, int, float, bool]


class ItemKind(enum.Enum):
    """Whether an item constrains the minority (SA) or the context (CA)."""

    SA = "SA"
    CA = "CA"


@dataclass(frozen=True, order=True)
class Item:
    """An ``attribute = value`` pair."""

    attribute: str
    value: ItemValue

    def __str__(self) -> str:
        return f"{self.attribute}={self.value}"


class ItemDictionary:
    """Bidirectional mapping between :class:`Item` and dense integer ids.

    Ids are assigned in insertion order; each id carries an
    :class:`ItemKind`.  The dictionary guarantees one id per distinct
    item and rejects re-registration under a different kind.
    """

    def __init__(self) -> None:
        self._items: list[Item] = []
        self._kinds: list[ItemKind] = []
        self._ids: dict[Item, int] = {}

    def add(self, item: Item, kind: ItemKind) -> int:
        """Register ``item`` (idempotent) and return its id."""
        existing = self._ids.get(item)
        if existing is not None:
            if self._kinds[existing] is not kind:
                raise MiningError(
                    f"item {item} already registered as "
                    f"{self._kinds[existing].value}, cannot re-register as "
                    f"{kind.value}"
                )
            return existing
        new_id = len(self._items)
        self._items.append(item)
        self._kinds.append(kind)
        self._ids[item] = new_id
        return new_id

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Item) -> bool:
        return item in self._ids

    def id_of(self, item: Item) -> int:
        """Return the id of ``item``; raises :class:`MiningError` if absent."""
        try:
            return self._ids[item]
        except KeyError:
            raise MiningError(f"unknown item {item}") from None

    def item(self, item_id: int) -> Item:
        """Return the :class:`Item` with the given id."""
        if not 0 <= item_id < len(self._items):
            raise MiningError(f"item id {item_id} out of range")
        return self._items[item_id]

    def kind(self, item_id: int) -> ItemKind:
        """Return the kind of the item with the given id."""
        if not 0 <= item_id < len(self._kinds):
            raise MiningError(f"item id {item_id} out of range")
        return self._kinds[item_id]

    def ids_of_kind(self, kind: ItemKind) -> list[int]:
        """All item ids of the given kind, ascending."""
        return [i for i, k in enumerate(self._kinds) if k is kind]

    @property
    def sa_ids(self) -> list[int]:
        """Ids of segregation-attribute items."""
        return self.ids_of_kind(ItemKind.SA)

    @property
    def ca_ids(self) -> list[int]:
        """Ids of context-attribute items."""
        return self.ids_of_kind(ItemKind.CA)

    def split(self, itemset: Iterable[int]) -> tuple[frozenset[int], frozenset[int]]:
        """Split an itemset into its (SA, CA) parts."""
        sa, ca = set(), set()
        for i in itemset:
            if self.kind(i) is ItemKind.SA:
                sa.add(i)
            else:
                ca.add(i)
        return frozenset(sa), frozenset(ca)

    def describe(self, itemset: Iterable[int]) -> str:
        """Human-readable rendering, e.g. ``sex=female, region=north``."""
        parts = sorted(str(self._items[i]) for i in itemset)
        return ", ".join(parts) if parts else "*"

    def attributes_of(self, itemset: Iterable[int]) -> list[str]:
        """Attribute names mentioned by an itemset (sorted, unique)."""
        return sorted({self._items[i].attribute for i in itemset})

    def conflicts(self, itemset: Iterable[int]) -> bool:
        """True when two items constrain the same single-valued attribute.

        Used to prune impossible coordinates early; multi-valued
        attributes legitimately contribute several items per attribute,
        so callers decide per-attribute whether to apply this check.
        """
        seen: set[str] = set()
        for i in itemset:
            attr = self._items[i].attribute
            if attr in seen:
                return True
            seen.add(attr)
        return False
