"""Cover sets: the one transaction-mask representation of the system.

A *cover* is the set of transactions containing an itemset.  Every layer
of the pipeline manipulates covers — the Eclat DFS intersects them, the
closed-itemset filter compares their cardinalities, the cube builder
splits them into per-unit counts — so their representation is the single
most performance-critical data-structure choice in the system.

This module defines the :class:`Cover` interface and its codecs:

* :class:`CoverSet` — the default *packed-bitmap* codec: one bit per
  transaction packed into little-endian ``uint64`` words.  Intersection
  is a vectorized word-wise AND over ``n/64`` words and support is a
  vectorized popcount, i.e. 8× less memory traffic and word-level (not
  byte-level) logic compared to a dense ``bool`` array.
* :class:`DenseCover` — the dense NumPy ``bool`` codec, kept as the
  easy-to-inspect reference implementation and the benchmark baseline.
* ``"ewah"`` — :class:`~repro.itemsets.bitmap.EWAHBitmap`, the
  run-length-compressed codec reproducing the original SCube's JavaEWAH
  storage choice (registered lazily to avoid an import cycle).

All codecs implement the same interface, so the miners, the closure
operator and the cube builders are codec-agnostic: pick one with
``TransactionDatabase(..., codec=...)`` and every downstream result is
bit-identical (property-tested in ``tests/test_cover_engine.py``).
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable

import numpy as np

from repro.errors import MiningError

WORD_BITS = 64

# Explicit little-endian words: ``np.packbits(..., bitorder="little")``
# emits bytes in little-endian bit order, so the word view must match on
# big-endian hosts too (same convention as bitmap.py's ``view("<u8")``).
WORD_DTYPE = np.dtype("<u8")

# Bits-set-per-byte lookup table, the popcount fallback for NumPy < 2.0
# (NumPy 2.x has a native vectorized ``np.bitwise_count``).
_POPCOUNT_LUT = np.array(
    [bin(byte).count("1") for byte in range(256)], dtype=np.uint8
)


def popcount_words(words: np.ndarray) -> int:
    """Total number of set bits across an array of ``uint64`` words."""
    if hasattr(np, "bitwise_count"):
        return int(np.bitwise_count(words).sum())
    return int(_POPCOUNT_LUT[words.view(np.uint8)].sum())


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Per-row popcount of a 2-D ``uint64`` word matrix (``int64`` vector)."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words).sum(axis=1, dtype=np.int64)
    per_byte = _POPCOUNT_LUT[words.view(np.uint8)]
    return per_byte.reshape(words.shape[0], -1).sum(axis=1, dtype=np.int64)


class Cover:
    """Abstract cover interface shared by every codec.

    Subclasses provide the representation-specific primitives —
    ``from_bools`` / ``from_indices`` / ``zeros`` / ``ones``
    constructors, ``__and__``, :meth:`support`, :meth:`to_bools` and
    ``__len__`` — and inherit the derived conveniences below, which also
    keep covers duck-compatible with the old dense ``bool`` arrays
    (``sum()``, ``tolist()``, ``all()``).
    """

    __slots__ = ()

    @classmethod
    def from_bools(cls, bits: "Iterable[bool] | np.ndarray") -> "Cover":
        """Build from a dense boolean array."""
        raise NotImplementedError

    @classmethod
    def from_indices(cls, indices: "Iterable[int] | np.ndarray",
                     n_bits: int) -> "Cover":
        """Build from covered-transaction positions."""
        idx = np.asarray(
            indices if isinstance(indices, np.ndarray) else list(indices),
            dtype=np.int64,
        )
        arr = np.zeros(n_bits, dtype=bool)
        if len(idx):
            if idx.min() < 0 or idx.max() >= n_bits:
                raise MiningError("bit index out of range")
            arr[idx] = True
        return cls.from_bools(arr)

    def support(self) -> int:
        """Number of covered transactions (popcount)."""
        raise NotImplementedError

    def to_bools(self) -> np.ndarray:
        """Materialise into a dense boolean array."""
        raise NotImplementedError

    def sum(self) -> int:
        """Alias of :meth:`support` (dense-array compatibility)."""
        return self.support()

    def tolist(self) -> "list[bool]":
        """Dense boolean list (dense-array compatibility)."""
        return self.to_bools().tolist()

    def all(self) -> bool:
        """True when every transaction is covered."""
        return self.support() == len(self)

    def any(self) -> bool:
        """True when at least one transaction is covered."""
        return self.support() > 0

    def to_indices(self) -> np.ndarray:
        """Positions of the covered transactions."""
        return np.flatnonzero(self.to_bools())

    def __len__(self) -> int:
        raise NotImplementedError


class CoverSet(Cover):
    """Packed-bitmap cover: one bit per transaction in ``uint64`` words.

    Words are little-endian: bit ``k`` of the cover lives at bit
    ``k % 64`` of word ``k // 64``.  Bits past ``n_bits`` (the padding of
    the last word) are kept clear by every constructor and operation, so
    :meth:`support` never over-counts.
    """

    __slots__ = ("words", "n_bits")

    def __init__(self, words: np.ndarray, n_bits: int):
        self.words = words
        self.n_bits = n_bits

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_bools(cls, bits: "Iterable[bool] | np.ndarray") -> "CoverSet":
        """Pack a dense boolean array."""
        arr = np.asarray(bits, dtype=bool)
        n = len(arr)
        n_words = (n + WORD_BITS - 1) // WORD_BITS
        packed = np.packbits(arr, bitorder="little")
        buffer = np.zeros(n_words * 8, dtype=np.uint8)
        buffer[: len(packed)] = packed
        return cls(buffer.view(WORD_DTYPE), n)

    @classmethod
    def zeros(cls, n_bits: int) -> "CoverSet":
        """The empty cover."""
        n_words = (n_bits + WORD_BITS - 1) // WORD_BITS
        return cls(np.zeros(n_words, dtype=WORD_DTYPE), n_bits)

    @classmethod
    def ones(cls, n_bits: int) -> "CoverSet":
        """The full cover (padding bits stay clear)."""
        n_words = (n_bits + WORD_BITS - 1) // WORD_BITS
        words = np.full(n_words, 0xFFFFFFFFFFFFFFFF, dtype=WORD_DTYPE)
        tail_bits = n_bits - (n_words - 1) * WORD_BITS if n_words else 0
        if n_words and tail_bits < WORD_BITS:
            words[-1] = (1 << tail_bits) - 1
        return cls(words, n_bits)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def _check_size(self, other: "CoverSet") -> None:
        if self.n_bits != other.n_bits:
            raise MiningError(
                f"cover sizes differ: {self.n_bits} vs {other.n_bits}"
            )

    def __and__(self, other: "CoverSet") -> "CoverSet":
        self._check_size(other)
        return CoverSet(self.words & other.words, self.n_bits)

    def __or__(self, other: "CoverSet") -> "CoverSet":
        self._check_size(other)
        return CoverSet(self.words | other.words, self.n_bits)

    def support(self) -> int:
        return popcount_words(self.words)

    def intersect_support(self, other: "CoverSet") -> int:
        """Popcount of the AND without materialising the result."""
        self._check_size(other)
        return popcount_words(self.words & other.words)

    def to_bools(self) -> np.ndarray:
        bits = np.unpackbits(self.words.view(np.uint8), bitorder="little")
        return bits[: self.n_bits].astype(bool)

    def __len__(self) -> int:
        return self.n_bits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoverSet):
            return NotImplemented
        return self.n_bits == other.n_bits and bool(
            np.array_equal(self.words, other.words)
        )

    def __hash__(self) -> int:
        return hash((self.n_bits, self.words.tobytes()))

    def __repr__(self) -> str:
        return f"CoverSet(n_bits={self.n_bits}, set={self.support()})"


class DenseCover(Cover):
    """Dense boolean-array cover: the pre-packed reference codec."""

    __slots__ = ("bits",)

    def __init__(self, bits: np.ndarray):
        self.bits = np.asarray(bits, dtype=bool)

    @classmethod
    def from_bools(cls, bits: "Iterable[bool] | np.ndarray") -> "DenseCover":
        return cls(np.array(bits, dtype=bool))

    @classmethod
    def zeros(cls, n_bits: int) -> "DenseCover":
        return cls(np.zeros(n_bits, dtype=bool))

    @classmethod
    def ones(cls, n_bits: int) -> "DenseCover":
        return cls(np.ones(n_bits, dtype=bool))

    def __and__(self, other: "DenseCover") -> "DenseCover":
        if len(self.bits) != len(other.bits):
            raise MiningError(
                f"cover sizes differ: {len(self.bits)} vs {len(other.bits)}"
            )
        return DenseCover(self.bits & other.bits)

    def __or__(self, other: "DenseCover") -> "DenseCover":
        if len(self.bits) != len(other.bits):
            raise MiningError(
                f"cover sizes differ: {len(self.bits)} vs {len(other.bits)}"
            )
        return DenseCover(self.bits | other.bits)

    def support(self) -> int:
        return int(np.count_nonzero(self.bits))

    def to_bools(self) -> np.ndarray:
        return self.bits

    def __len__(self) -> int:
        return len(self.bits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DenseCover):
            return NotImplemented
        return bool(np.array_equal(self.bits, other.bits))

    def __hash__(self) -> int:
        return hash((len(self.bits), self.bits.tobytes()))

    def __repr__(self) -> str:
        return f"DenseCover(n_bits={len(self.bits)}, set={self.support()})"


COVER_CODECS = ("packed", "bool", "ewah")


def get_codec(name: str) -> "type[Cover]":
    """Resolve a codec name to its :class:`Cover` implementation."""
    if name == "packed":
        return CoverSet
    if name == "bool":
        return DenseCover
    if name == "ewah":
        # Imported lazily: bitmap.py subclasses Cover from this module.
        from repro.itemsets.bitmap import EWAHBitmap

        return EWAHBitmap
    raise MiningError(
        f"unknown cover codec {name!r}; choose from {COVER_CODECS}"
    )


def cover_digest(cover: Cover) -> bytes:
    """A 16-byte content digest of a cover's bit pattern.

    Covers with equal bits get equal digests, so the digest can key
    cover-equivalence classes (the closed-itemset dedup) across process
    boundaries — unlike Python's ``hash()``, which is salted per
    process.  Packed covers digest their word bytes directly; other
    codecs pack first, so the digest is stable under the DFS's ``&``
    chain within any one codec.
    """
    if isinstance(cover, CoverSet):
        data = cover.words.tobytes()
    else:
        data = np.packbits(cover.to_bools(), bitorder="little").tobytes()
    return hashlib.blake2b(data, digest_size=16).digest()


def as_cover(value: "Cover | np.ndarray | Iterable[bool]",
             codec: str = "packed") -> Cover:
    """Coerce a value into a :class:`Cover` (no-op when it already is one)."""
    if isinstance(value, Cover):
        return value
    return get_codec(codec).from_bools(np.asarray(value, dtype=bool))
