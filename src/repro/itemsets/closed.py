"""Closed-itemset utilities.

An itemset is *closed* when no strict superset has the same support.
SCube materialises cube cells only for closed coordinate itemsets
(paper §2, citing the SegregationDataCubeBuilder of the JIIS paper): a
non-closed coordinate selects exactly the same population as its closure,
so its cell would be redundant.

Given the complete dictionary of frequent itemsets, closedness has a
local characterisation that avoids cover scans: X is closed iff no
(X ∪ {i}) — which is itself frequent whenever its support equals
support(X) — appears in the dictionary with the same support.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.errors import MiningError
from repro.itemsets.coverset import (
    WORD_BITS,
    WORD_DTYPE,
    Cover,
    cover_digest,
    popcount_rows,
)
from repro.itemsets.eclat import closure_of, frequent_triples, mine_root
from repro.itemsets.transactions import TransactionDatabase

Itemset = frozenset[int]


def mine_closed(
    db: TransactionDatabase,
    minsup: int,
    items: "list[int] | None" = None,
    with_covers: bool = False,
    workers: "int | None" = None,
) -> "dict[Itemset, int] | dict[Itemset, Cover]":
    """Mine closed frequent itemsets directly from cover classes.

    Runs the full eclat DFS and groups emissions by cover identity (the
    16-byte :func:`~repro.itemsets.coverset.cover_digest`): every
    itemset of a class selects the same transactions, and — because the
    enumeration is complete — the union of a class's members is its
    closure, the unique maximal member.  The result therefore equals
    ``filter_closed(mine_eclat(db, minsup, items=items))`` as a dict
    (property-tested), without materialising the non-closed entries in
    the output.

    Emission *order* is the first appearance of any class member in DFS
    order (a class is created when its first — possibly non-closed —
    member is emitted), which can differ from ``filter_closed``'s order
    (each closure at its own emission position); it is what the
    ``workers=`` path (:mod:`repro.itemsets.parallel`) reproduces
    bit-identically for every worker count.
    """
    if workers is not None:
        from repro.itemsets.parallel import mine_closed_parallel

        return mine_closed_parallel(
            db, minsup, items=items, with_covers=with_covers,
            workers=workers,
        )
    if minsup < 1:
        raise MiningError(f"minsup must be >= 1, got {minsup}")
    frequent = frequent_triples(db, minsup, items=items)
    # digest -> [member-item union, support, representative cover]
    classes: "dict[bytes, list]" = {}

    def record(its, cover, support):
        entry = classes.get(cover_digest(cover))
        if entry is None:
            classes[cover_digest(cover)] = [
                set(its), support, cover if with_covers else None,
            ]
        else:
            entry[0].update(its)

    for pos in range(len(frequent)):
        mine_root(frequent, pos, minsup, None, record)
    if with_covers:
        return {
            frozenset(e[0]): e[2] for e in classes.values()
        }
    return {frozenset(e[0]): e[1] for e in classes.values()}


def filter_closed(supports: dict[Itemset, int]) -> dict[Itemset, int]:
    """Keep only the closed itemsets of a complete frequent-itemset dict.

    Completeness matters: ``supports`` must contain *every* frequent
    itemset above the mining threshold (the output of any full miner),
    otherwise an absorbing superset may be missed.
    """
    by_size: dict[int, list[Itemset]] = defaultdict(list)
    for itemset in supports:
        by_size[len(itemset)].append(itemset)
    not_closed: set[Itemset] = set()
    for size, itemsets in by_size.items():
        if size == 0:
            continue
        for itemset in itemsets:
            support = supports[itemset]
            for item in itemset:
                subset = itemset - {item}
                if subset and supports.get(subset) == support:
                    not_closed.add(subset)
    return {k: v for k, v in supports.items() if k not in not_closed}


def filter_maximal(supports: dict[Itemset, int]) -> dict[Itemset, int]:
    """Keep only maximal frequent itemsets (no frequent strict superset)."""
    not_maximal: set[Itemset] = set()
    for itemset in supports:
        for item in itemset:
            subset = itemset - {item}
            if subset in supports:
                not_maximal.add(subset)
    return {k: v for k, v in supports.items() if k not in not_maximal}


def verify_closed(
    db: TransactionDatabase, itemsets: "list[Itemset]"
) -> dict[Itemset, bool]:
    """Ground-truth closedness via the closure operator (test oracle)."""
    result = {}
    for itemset in itemsets:
        cover = db.cover_of(itemset)
        result[itemset] = closure_of(db, cover) == itemset
    return result


def closure_map(
    db: TransactionDatabase, supports: dict[Itemset, int]
) -> dict[Itemset, Itemset]:
    """Map every frequent itemset to its closure (computed from covers)."""
    out: dict[Itemset, Itemset] = {}
    for itemset in supports:
        cover = db.cover_of(itemset)
        out[itemset] = closure_of(db, cover)
    return out


def equivalence_classes(
    closures: dict[Itemset, Itemset]
) -> dict[Itemset, list[Itemset]]:
    """Group itemsets by their closure (the cover-equivalence classes)."""
    classes: dict[Itemset, list[Itemset]] = defaultdict(list)
    for itemset, closed in closures.items():
        classes[closed].append(itemset)
    return dict(classes)


def support_of_cover(cover: "Cover | np.ndarray") -> int:
    """Support of a cover (any codec, or a dense boolean array)."""
    if isinstance(cover, Cover):
        return cover.support()
    return int(np.asarray(cover, dtype=bool).sum())


# ----------------------------------------------------------------------
# Capped closedness + closure diffs (the incremental engine's pass)
# ----------------------------------------------------------------------
#
# The cube's closed filter is *capped*: the dictionary of candidates is
# bounded by ``max_sa_items`` / ``max_ca_items``, so "closed" there means
# "no strict superset WITHIN THE CAPS has the same support".  Because
# equal-support supersets chain down to single-item extensions (support
# is antimonotone, and every subset of a capped itemset is capped), the
# predicate has a local form: X is capped-closed iff no single item
# ``i ∉ X`` whose kind still has cap room satisfies
# ``support(X ∪ {i}) == support(X)``.  The empty itemset (the cube's
# root context/coordinate) is always kept, mirroring ``filter_closed``
# which never marks the empty subset non-closed.
#
# The incremental hook is :func:`closure_diff`: closedness of X is a
# function of ``cover(X)`` and the *static* per-item covers only
# (``cover(X) ⊆ active`` already, so intersecting with restricted item
# covers equals intersecting with unrestricted ones) — hence if
# ``cover_digest(cover(X))`` is unchanged between two dates, X's
# closedness flag is unchanged and the previous flag can be reused
# without touching any cover.


def _pack_words(cover: Cover) -> np.ndarray:
    from repro.itemsets.parallel import pack_cover_words

    return pack_cover_words(cover)


def closure_matrix(
    db: TransactionDatabase,
) -> "tuple[np.ndarray, int, dict[int, int]]":
    """Packed per-item cover matrix for bulk closedness tests.

    Returns ``(matrix, n_sa, row_of)``: one packed ``uint64`` row per
    dictionary item — all SA items first (``n_sa`` of them), then all
    CA items — plus the item-id → row map.
    """
    dictionary = db.dictionary
    all_ids = list(dictionary.sa_ids) + list(dictionary.ca_ids)
    n_words = (len(db) + WORD_BITS - 1) // WORD_BITS
    matrix = np.zeros((len(all_ids), n_words), dtype=WORD_DTYPE)
    covers = db.covers()
    for row, item in enumerate(all_ids):
        matrix[row] = _pack_words(covers[item])
    return matrix, len(dictionary.sa_ids), {
        item: row for row, item in enumerate(all_ids)
    }


def closure_flag_entries(
    matrix: np.ndarray,
    n_sa: int,
    max_sa: "int | None",
    max_ca: "int | None",
    entries: "list[tuple]",
) -> "list[tuple]":
    """Bulk capped-closedness kernel over a packed item-cover matrix.

    Each entry is ``(key, member_rows, sa_len, ca_len, words, support)``
    — ``words`` the candidate's packed cover (ndarray or raw bytes, so
    entries pickle cheaply to pool workers), ``member_rows`` its items'
    matrix rows.  One vectorized AND+popcount sweep per candidate finds
    every absorbing item (``|cover(X) ∩ cover(i)| == support(X)``);
    the candidate is closed iff no absorbing item outside X has cap
    room for its kind.  Returns ``[(key, closed_flag), ...]``.
    """
    out = []
    for key, member_rows, sa_len, ca_len, words, support in entries:
        sa_room = max_sa is None or sa_len < max_sa
        ca_room = max_ca is None or ca_len < max_ca
        if not (sa_room or ca_room) or matrix.shape[0] == 0:
            out.append((key, True))
            continue
        if isinstance(words, (bytes, bytearray)):
            words = np.frombuffer(words, dtype=WORD_DTYPE)
        absorbing = popcount_rows(matrix & words[None, :]) == support
        if member_rows:
            absorbing[np.asarray(member_rows, dtype=np.int64)] = False
        if not sa_room:
            absorbing[:n_sa] = False
        if not ca_room:
            absorbing[n_sa:] = False
        out.append((key, not bool(absorbing.any())))
    return out


def closure_flags(
    db: TransactionDatabase,
    candidates: "dict[Itemset, Cover]",
    max_sa: "int | None" = None,
    max_ca: "int | None" = None,
    workers: "int | None" = None,
) -> "dict[Itemset, bool]":
    """Capped closedness of each candidate itemset, vectorized.

    Agrees with membership in ``filter_closed`` over the complete capped
    frequent dictionary (see the module note above; property-tested),
    without mining that dictionary.  ``workers=`` fans the candidates
    across a process pool over one shared-memory copy of the item-cover
    matrix (:func:`repro.itemsets.parallel.closure_flags_parallel`).
    """
    if not candidates:
        return {}
    if workers is not None and len(candidates) > 1:
        from repro.itemsets.parallel import closure_flags_parallel

        return closure_flags_parallel(
            db, candidates, max_sa=max_sa, max_ca=max_ca, workers=workers,
        )
    matrix, n_sa, row_of = closure_matrix(db)
    entries = []
    out: "dict[Itemset, bool]" = {}
    split = db.dictionary.split
    for itemset, cover in candidates.items():
        if not itemset:
            out[itemset] = True
            continue
        sa_part, ca_part = split(itemset)
        entries.append((
            itemset,
            tuple(row_of[i] for i in itemset),
            len(sa_part), len(ca_part),
            _pack_words(cover), cover.support(),
        ))
    out.update(
        closure_flag_entries(matrix, n_sa, max_sa, max_ca, entries)
    )
    return out


def closed_under_caps(
    db: TransactionDatabase,
    itemset: Itemset,
    cover: "Cover | None" = None,
    max_sa: "int | None" = None,
    max_ca: "int | None" = None,
) -> bool:
    """Scalar capped-closedness reference (via the closure operator)."""
    if not itemset:
        return True
    if cover is None:
        cover = db.cover_of(itemset)
    dictionary = db.dictionary
    sa_part, ca_part = dictionary.split(itemset)
    eligible: "list[int]" = []
    if max_sa is None or len(sa_part) < max_sa:
        eligible.extend(dictionary.sa_ids)
    if max_ca is None or len(ca_part) < max_ca:
        eligible.extend(dictionary.ca_ids)
    eligible = [i for i in eligible if i not in itemset]
    if not eligible:
        return True
    return not closure_of(db, cover, candidate_items=eligible)


def closure_diff(
    db: TransactionDatabase,
    candidates: "dict[Itemset, Cover]",
    previous: "dict[Itemset, tuple[bytes, bool]] | None" = None,
    max_sa: "int | None" = None,
    max_ca: "int | None" = None,
    workers: "int | None" = None,
) -> "dict[Itemset, tuple[bytes, bool]]":
    """Re-derive closedness only where the cover digest changed.

    Maps every candidate to ``(cover_digest, closed_flag)``.  A
    candidate whose digest matches its ``previous`` entry keeps the
    previous flag untouched (closedness depends only on the cover and
    the static item covers — see the module note); the rest go through
    one bulk :func:`closure_flags` pass.
    """
    previous = previous or {}
    out: "dict[Itemset, tuple[bytes, bool]]" = {}
    pending: "dict[Itemset, tuple[bytes, Cover]]" = {}
    for itemset, cover in candidates.items():
        digest = cover_digest(cover)
        if not itemset:
            out[itemset] = (digest, True)
            continue
        prev = previous.get(itemset)
        if prev is not None and prev[0] == digest:
            out[itemset] = (digest, prev[1])
        else:
            pending[itemset] = (digest, cover)
    if pending:
        flags = closure_flags(
            db, {k: cover for k, (_, cover) in pending.items()},
            max_sa=max_sa, max_ca=max_ca, workers=workers,
        )
        for itemset, (digest, _) in pending.items():
            out[itemset] = (digest, flags[itemset])
    return out
