"""Closed-itemset utilities.

An itemset is *closed* when no strict superset has the same support.
SCube materialises cube cells only for closed coordinate itemsets
(paper §2, citing the SegregationDataCubeBuilder of the JIIS paper): a
non-closed coordinate selects exactly the same population as its closure,
so its cell would be redundant.

Given the complete dictionary of frequent itemsets, closedness has a
local characterisation that avoids cover scans: X is closed iff no
(X ∪ {i}) — which is itself frequent whenever its support equals
support(X) — appears in the dictionary with the same support.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.errors import MiningError
from repro.itemsets.coverset import Cover, cover_digest
from repro.itemsets.eclat import closure_of, frequent_triples, mine_root
from repro.itemsets.transactions import TransactionDatabase

Itemset = frozenset[int]


def mine_closed(
    db: TransactionDatabase,
    minsup: int,
    items: "list[int] | None" = None,
    with_covers: bool = False,
    workers: "int | None" = None,
) -> "dict[Itemset, int] | dict[Itemset, Cover]":
    """Mine closed frequent itemsets directly from cover classes.

    Runs the full eclat DFS and groups emissions by cover identity (the
    16-byte :func:`~repro.itemsets.coverset.cover_digest`): every
    itemset of a class selects the same transactions, and — because the
    enumeration is complete — the union of a class's members is its
    closure, the unique maximal member.  The result therefore equals
    ``filter_closed(mine_eclat(db, minsup, items=items))`` as a dict
    (property-tested), without materialising the non-closed entries in
    the output.

    Emission *order* is the first appearance of any class member in DFS
    order (a class is created when its first — possibly non-closed —
    member is emitted), which can differ from ``filter_closed``'s order
    (each closure at its own emission position); it is what the
    ``workers=`` path (:mod:`repro.itemsets.parallel`) reproduces
    bit-identically for every worker count.
    """
    if workers is not None:
        from repro.itemsets.parallel import mine_closed_parallel

        return mine_closed_parallel(
            db, minsup, items=items, with_covers=with_covers,
            workers=workers,
        )
    if minsup < 1:
        raise MiningError(f"minsup must be >= 1, got {minsup}")
    frequent = frequent_triples(db, minsup, items=items)
    # digest -> [member-item union, support, representative cover]
    classes: "dict[bytes, list]" = {}

    def record(its, cover, support):
        entry = classes.get(cover_digest(cover))
        if entry is None:
            classes[cover_digest(cover)] = [
                set(its), support, cover if with_covers else None,
            ]
        else:
            entry[0].update(its)

    for pos in range(len(frequent)):
        mine_root(frequent, pos, minsup, None, record)
    if with_covers:
        return {
            frozenset(e[0]): e[2] for e in classes.values()
        }
    return {frozenset(e[0]): e[1] for e in classes.values()}


def filter_closed(supports: dict[Itemset, int]) -> dict[Itemset, int]:
    """Keep only the closed itemsets of a complete frequent-itemset dict.

    Completeness matters: ``supports`` must contain *every* frequent
    itemset above the mining threshold (the output of any full miner),
    otherwise an absorbing superset may be missed.
    """
    by_size: dict[int, list[Itemset]] = defaultdict(list)
    for itemset in supports:
        by_size[len(itemset)].append(itemset)
    not_closed: set[Itemset] = set()
    for size, itemsets in by_size.items():
        if size == 0:
            continue
        for itemset in itemsets:
            support = supports[itemset]
            for item in itemset:
                subset = itemset - {item}
                if subset and supports.get(subset) == support:
                    not_closed.add(subset)
    return {k: v for k, v in supports.items() if k not in not_closed}


def filter_maximal(supports: dict[Itemset, int]) -> dict[Itemset, int]:
    """Keep only maximal frequent itemsets (no frequent strict superset)."""
    not_maximal: set[Itemset] = set()
    for itemset in supports:
        for item in itemset:
            subset = itemset - {item}
            if subset in supports:
                not_maximal.add(subset)
    return {k: v for k, v in supports.items() if k not in not_maximal}


def verify_closed(
    db: TransactionDatabase, itemsets: "list[Itemset]"
) -> dict[Itemset, bool]:
    """Ground-truth closedness via the closure operator (test oracle)."""
    result = {}
    for itemset in itemsets:
        cover = db.cover_of(itemset)
        result[itemset] = closure_of(db, cover) == itemset
    return result


def closure_map(
    db: TransactionDatabase, supports: dict[Itemset, int]
) -> dict[Itemset, Itemset]:
    """Map every frequent itemset to its closure (computed from covers)."""
    out: dict[Itemset, Itemset] = {}
    for itemset in supports:
        cover = db.cover_of(itemset)
        out[itemset] = closure_of(db, cover)
    return out


def equivalence_classes(
    closures: dict[Itemset, Itemset]
) -> dict[Itemset, list[Itemset]]:
    """Group itemsets by their closure (the cover-equivalence classes)."""
    classes: dict[Itemset, list[Itemset]] = defaultdict(list)
    for itemset, closed in closures.items():
        classes[closed].append(itemset)
    return dict(classes)


def support_of_cover(cover: "Cover | np.ndarray") -> int:
    """Support of a cover (any codec, or a dense boolean array)."""
    if isinstance(cover, Cover):
        return cover.support()
    return int(np.asarray(cover, dtype=bool).sum())
