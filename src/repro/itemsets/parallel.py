"""Parallel shared-memory eclat: fan the DFS roots across processes.

The eclat search tree decomposes by root item (see
:mod:`repro.itemsets.eclat`): the subtree below ``frequent[pos]`` reads
only the root's cover and the tail ``frequent[pos + 1:]``, so disjoint
root ranges can mine concurrently with no shared state.  This module is
the ``workers=`` backend of :func:`~repro.itemsets.eclat.mine_eclat`,
:func:`~repro.itemsets.eclat.mine_eclat_typed` and
:func:`~repro.itemsets.closed.mine_closed`:

* the parent computes the frequent 1-items (including the ``within=``
  restriction — root covers ship already intersected, so workers never
  see the restriction at all) and packs their covers into **one**
  ``(1 + n_frequent, n_words)`` uint64 matrix in a
  :mod:`multiprocessing.shared_memory` segment (row 0 is the full
  cover, used by the typed mine) — workers map it read-only instead of
  receiving pickled copies;
* root positions are partitioned greedy largest-first by estimated
  subtree cost — root support × candidate-sibling count — so one heavy
  root cannot serialise the mine behind it (:func:`partition_roots`);
* every worker rebuilds its ``frequent`` list in the database's own
  codec over the shared words and runs the *identical* sequential
  kernels (:func:`~repro.itemsets.eclat.mine_root` /
  :func:`~repro.itemsets.eclat.mine_typed_root`) over its positions;
* the parent splices the per-root emission lists back in root-position
  order, which — because every itemset is emitted in exactly one root
  subtree — reproduces the sequential emission order **bit for bit**:
  same itemsets, same dict order, same supports, same cover bits, for
  any worker count.

Closed mode is the one place dedup is global: each worker keeps a local
closure map keyed by the packed cover digest (classes of equal covers;
the class's item union is its closure) and the parent merge-dedups the
per-worker maps vectorized — ``np.bitwise_or.at`` unions the item
masks, ``np.maximum.at`` keeps the max support (supports inside a class
are equal, so this is a no-op safety), ``np.minimum.at`` keeps the
earliest global emission key — then orders classes by that key, which
is exactly sequential ``mine_closed``'s insertion order.

Shared-memory discipline follows :mod:`repro.cube.parallel`: worker
views live only inside the compute frame so ``close()`` never hits
``BufferError`` (recorded covers are exported — copied out of the
segment — at emission time), attach/close in ``finally``, and the
parent's ``close()+unlink()`` in ``finally`` is the single cleanup
point on success *and* failure.  Worker exceptions surface as
:class:`~repro.errors.MiningError` in the parent; the pool's context
manager tears the workers down, so a raising worker cannot hang the
mine.  Workers are forked when the platform supports it and spawned
otherwise.
"""

from __future__ import annotations

import multiprocessing
import os
from itertools import count as _count
from multiprocessing import shared_memory

import numpy as np

from repro.errors import MiningError
from repro.itemsets import eclat
from repro.itemsets.coverset import (
    WORD_BITS,
    WORD_DTYPE,
    Cover,
    CoverSet,
    cover_digest,
    get_codec,
)
from repro.itemsets.transactions import TransactionDatabase

Itemset = frozenset[int]


def resolve_workers(workers: "int | None") -> int:
    """Effective worker count: ``workers`` or one per CPU, at least 1."""
    if workers is None:
        return max(1, os.cpu_count() or 1)
    return max(1, int(workers))


def _mp_context():
    """Fork when available (cheap, inherits monkeypatches), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


_SEGMENT_SEQ = _count()


def _segment_name(tag: str) -> str:
    """A fresh, recognisably-ours shared-memory segment name.

    Naming segments explicitly (rather than letting the stdlib pick)
    lets the leak tests probe by name that every segment is unlinked on
    both the success and the failure path.
    """
    return f"repro-mine-{tag}-{os.getpid()}-{next(_SEGMENT_SEQ)}"


def pack_cover_words(cover: Cover) -> np.ndarray:
    """A cover's bits as packed little-endian ``uint64`` words."""
    if isinstance(cover, CoverSet):
        return cover.words
    return CoverSet.from_bools(cover.to_bools()).words


def partition_roots(
    supports: "list[int]", n_parts: int
) -> "list[list[int]]":
    """Greedy balanced partition of root positions by subtree cost.

    The cost estimate for root ``pos`` is ``support * siblings`` — the
    root's support times the number of candidate tail items — the
    classic proxy for eclat subtree work (a high-support root near the
    front of the sorted order has both a heavy cover and a long tail).
    Roots go largest-first onto the least-loaded partition; partitions
    are never empty (``n_parts`` is clamped) and each keeps its
    positions in ascending order.
    """
    n = len(supports)
    n_parts = max(1, min(n_parts, n))
    costs = [supports[pos] * (n - pos - 1) + 1 for pos in range(n)]
    parts: "list[list[int]]" = [[] for _ in range(n_parts)]
    loads = [0] * n_parts
    for pos in sorted(range(n), key=lambda p: -costs[p]):
        j = loads.index(min(loads))
        parts[j].append(pos)
        loads[j] += costs[pos]
    for part in parts:
        part.sort()
    return parts


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Per-process mining configuration, set once by the pool initializer.
_WORKER_CFG: "dict | None" = None


def _init_worker(cfg: dict) -> None:
    global _WORKER_CFG
    _WORKER_CFG = cfg


def _export_cover(cover: Cover) -> Cover:
    """A recorded cover with no shared-memory backing.

    DFS intersection results own their words already; only depth-1 root
    covers (views straight into the shared matrix) need copying.  The
    export is what makes results safe to pickle after the worker's
    segment is closed.
    """
    if isinstance(cover, CoverSet) and not cover.words.flags.owndata:
        return CoverSet(cover.words.copy(), cover.n_bits)
    return cover


def _frequent_from_matrix(matrix: np.ndarray, cfg: dict) -> list:
    """Rebuild the parent's ``frequent`` triples over the shared words.

    Covers come back in the database's own codec, so the worker runs
    the very same kernel over the very same cover types as the
    sequential mine (packed covers view the segment zero-copy; bool /
    ewah covers are re-encoded from the shared bits).
    """
    n_bits = cfg["n_bits"]
    items = cfg["items"]
    supports = cfg["supports"]
    if cfg["codec"] == "packed":
        covers = [
            CoverSet(matrix[i + 1], n_bits) for i in range(len(items))
        ]
    else:
        cls = get_codec(cfg["codec"])
        covers = [
            cls.from_bools(CoverSet(matrix[i + 1], n_bits).to_bools())
            for i in range(len(items))
        ]
    return [
        (item, covers[i], support)
        for i, (item, support) in enumerate(zip(items, supports))
    ]


def _compute_partition(buf, cfg: dict, positions: "list[int]"):
    """Mine one partition's root positions against the shared matrix.

    All views of ``buf`` live only inside this frame (and covers are
    exported at record time), so the caller can close its segment the
    moment this returns.
    """
    matrix = np.ndarray(
        (cfg["n_matrix_rows"], cfg["n_words"]), dtype=WORD_DTYPE,
        buffer=buf,
    )
    frequent = _frequent_from_matrix(matrix, cfg)
    minsup = cfg["minsup"]
    mode = cfg["mode"]

    if mode == "plain":
        out = []
        for pos in positions:
            emissions: list = []
            if cfg["with_covers"]:
                def record(its, cover, support):
                    emissions.append((its, _export_cover(cover), support))
            else:
                def record(its, cover, support):
                    emissions.append((its, support))
            eclat.mine_root(frequent, pos, minsup, cfg["max_len"], record)
            out.append((pos, emissions))
        return ("roots", out)

    if mode == "typed":
        n_bits = cfg["n_bits"]
        if cfg["codec"] == "packed":
            full_cover = CoverSet(matrix[0], n_bits)
        else:
            full_cover = get_codec(cfg["codec"]).from_bools(
                CoverSet(matrix[0], n_bits).to_bools()
            )
        sa_set = frozenset(cfg["sa_ids"])
        out = []
        for pos in positions:
            emissions = []

            def record(its, cover, support):
                emissions.append((its, _export_cover(cover), support))

            eclat.mine_typed_root(
                frequent, pos, full_cover, sa_set, minsup,
                cfg["max_sa"], cfg["max_ca"], record,
            )
            out.append((pos, emissions))
        return ("roots", out)

    # mode == "closed": a local closure map for this partition's roots,
    # exported as flat arrays for the parent's vectorized merge.
    mask_bytes = cfg["mask_bytes"]
    with_covers = cfg["with_covers"]
    classes: "dict[bytes, list]" = {}
    for pos in positions:
        ordinal = [0]

        def record(its, cover, support, pos=pos, ordinal=ordinal):
            key = cover_digest(cover)
            # Global emission rank of this itemset: root position in the
            # high bits, emission ordinal inside the root subtree below.
            order_key = (pos << 40) | ordinal[0]
            ordinal[0] += 1
            mask = 0
            for i in its:
                mask |= 1 << i
            entry = classes.get(key)
            if entry is None:
                classes[key] = [
                    mask, support, order_key,
                    _export_cover(cover) if with_covers else None,
                ]
            else:
                entry[0] |= mask
                if support > entry[1]:
                    entry[1] = support
                if order_key < entry[2]:
                    entry[2] = order_key

        eclat.mine_root(frequent, pos, minsup, None, record)

    k = len(classes)
    if k:
        digests = np.frombuffer(
            b"".join(classes.keys()), dtype=np.uint8
        ).reshape(k, 16)
        masks = np.frombuffer(
            b"".join(
                e[0].to_bytes(mask_bytes, "little")
                for e in classes.values()
            ),
            dtype=np.uint8,
        ).reshape(k, mask_bytes)
    else:
        digests = np.zeros((0, 16), dtype=np.uint8)
        masks = np.zeros((0, mask_bytes), dtype=np.uint8)
    supports = np.fromiter(
        (e[1] for e in classes.values()), dtype=np.int64, count=k
    )
    order_keys = np.fromiter(
        (e[2] for e in classes.values()), dtype=np.int64, count=k
    )
    covers = [e[3] for e in classes.values()] if with_covers else None
    return ("closed", digests, masks, supports, order_keys, covers)


def _mine_partition(positions: "list[int]"):
    """Pool task: attach the shared matrix, mine one root partition."""
    cfg = _WORKER_CFG
    # Attaching re-registers the segment with the resource tracker; pool
    # workers share the parent's tracker, whose cache has set semantics,
    # so the parent's unlink() stays the single point of cleanup.
    shm = shared_memory.SharedMemory(name=cfg["covers_shm"])
    try:
        return _compute_partition(shm.buf, cfg, positions)
    finally:
        shm.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

def _run_pool(
    db: TransactionDatabase,
    frequent: list,
    cfg: dict,
    workers: "int | None",
) -> "tuple[list, list[int]]":
    """Ship the cover matrix via shared memory, map root partitions.

    Returns the raw per-partition results plus the partition sizes (for
    benchmark reporting).  The segment is closed and unlinked in
    ``finally`` — success or failure — and any worker exception is
    re-raised as :class:`MiningError` after the pool has been torn
    down by its context manager.
    """
    n_bits = len(db)
    n_words = (n_bits + WORD_BITS - 1) // WORD_BITS
    matrix = np.zeros((1 + len(frequent), n_words), dtype=WORD_DTYPE)
    matrix[0] = pack_cover_words(db.full_cover())
    for i, (_, cover, _) in enumerate(frequent):
        matrix[i + 1] = pack_cover_words(cover)
    partitions = partition_roots(
        [support for _, _, support in frequent],
        resolve_workers(workers),
    )
    shm = shared_memory.SharedMemory(
        create=True, name=_segment_name("covers"),
        size=max(1, matrix.nbytes),
    )
    try:
        # The temporary viewing the shm buffer dies with the statement,
        # leaving the segment export-free for close()/unlink().
        np.ndarray(matrix.shape, WORD_DTYPE, buffer=shm.buf)[:] = matrix
        cfg = {
            **cfg,
            "covers_shm": shm.name,
            "n_matrix_rows": matrix.shape[0],
            "n_words": n_words,
            "n_bits": n_bits,
            "codec": db.codec,
            "items": [item for item, _, _ in frequent],
            "supports": [support for _, _, support in frequent],
        }
        del matrix
        results: list = []
        ctx = _mp_context()
        with ctx.Pool(
            processes=len(partitions),
            initializer=_init_worker,
            initargs=(cfg,),
        ) as pool:
            try:
                for part in pool.imap_unordered(
                    _mine_partition, partitions
                ):
                    results.append(part)
            except MiningError:
                raise
            except Exception as exc:
                raise MiningError(
                    f"parallel mining worker failed: {exc!r}"
                ) from exc
        return results, [len(p) for p in partitions]
    finally:
        shm.close()
        shm.unlink()


def _splice_roots(parts: list) -> "list[tuple]":
    """Per-root emission lists in ascending root-position order."""
    by_pos: "dict[int, list]" = {}
    for tag, root_results in parts:
        for pos, emissions in root_results:
            by_pos[pos] = emissions
    return [by_pos[pos] for pos in sorted(by_pos)]


def mine_eclat_parallel(
    db: TransactionDatabase,
    minsup: int,
    items: "list[int] | None" = None,
    max_len: "int | None" = None,
    with_covers: bool = False,
    within: "Cover | None" = None,
    workers: "int | None" = None,
) -> "dict[Itemset, int] | dict[Itemset, Cover]":
    """``mine_eclat`` across a worker pool; bit-identical output.

    The pool runs even for ``workers=1``, so a one-worker mine
    exercises the genuine multiprocess path (the parity baseline in
    tests and the selfcheck).
    """
    if minsup < 1:
        raise MiningError(f"minsup must be >= 1, got {minsup}")
    frequent = eclat.frequent_triples(db, minsup, items=items, within=within)
    if not frequent:
        return {}
    cfg = {
        "mode": "plain",
        "minsup": minsup,
        "max_len": max_len,
        "with_covers": with_covers,
    }
    parts, _ = _run_pool(db, frequent, cfg, workers)
    out: dict = {}
    for emissions in _splice_roots(parts):
        if with_covers:
            for its, cover, _ in emissions:
                out[frozenset(its)] = cover
        else:
            for its, support in emissions:
                out[frozenset(its)] = support
    return out


def mine_eclat_typed_parallel(
    db: TransactionDatabase,
    minsup: int,
    sa_ids: "list[int]",
    ca_ids: "list[int]",
    max_sa: "int | None" = None,
    max_ca: "int | None" = None,
    workers: "int | None" = None,
) -> "dict[Itemset, Cover]":
    """``mine_eclat_typed`` across a worker pool; bit-identical output."""
    if minsup < 1:
        raise MiningError(f"minsup must be >= 1, got {minsup}")
    frequent = eclat.typed_frequent_triples(db, minsup, sa_ids, ca_ids)
    out: "dict[Itemset, Cover]" = {frozenset(): db.full_cover()}
    if not frequent:
        return out
    cfg = {
        "mode": "typed",
        "minsup": minsup,
        "with_covers": True,
        "sa_ids": list(sa_ids),
        "max_sa": max_sa,
        "max_ca": max_ca,
    }
    parts, _ = _run_pool(db, frequent, cfg, workers)
    for emissions in _splice_roots(parts):
        for its, cover, _ in emissions:
            out[frozenset(its)] = cover
    return out


def _closure_partition(entries: "list[tuple]"):
    """Pool task: bulk closedness flags for one candidate chunk."""
    from repro.itemsets.closed import closure_flag_entries

    cfg = _WORKER_CFG
    shm = shared_memory.SharedMemory(name=cfg["covers_shm"])
    try:
        matrix = np.ndarray(
            (cfg["n_matrix_rows"], cfg["n_words"]), dtype=WORD_DTYPE,
            buffer=shm.buf,
        )
        return closure_flag_entries(
            matrix, cfg["n_sa"], cfg["max_sa"], cfg["max_ca"], entries,
        )
    finally:
        shm.close()


def closure_flags_parallel(
    db: TransactionDatabase,
    candidates: "dict[Itemset, Cover]",
    max_sa: "int | None" = None,
    max_ca: "int | None" = None,
    workers: "int | None" = None,
) -> "dict[Itemset, bool]":
    """``closure_flags`` across a worker pool; identical output.

    The parent packs the per-item cover matrix
    (:func:`repro.itemsets.closed.closure_matrix`) into one
    shared-memory segment; candidate entries — key, member rows, cover
    words as raw bytes, support — chunk round-robin across the pool and
    each worker runs the same :func:`closure_flag_entries` kernel.
    Same segment discipline as :func:`_run_pool`: views die inside the
    worker frame, parent ``close()+unlink()`` in ``finally``.
    """
    from repro.itemsets.closed import closure_matrix

    out: "dict[Itemset, bool]" = {}
    split = db.dictionary.split
    matrix, n_sa, row_of = closure_matrix(db)
    entries: "list[tuple]" = []
    for itemset, cover in candidates.items():
        if not itemset:
            out[itemset] = True
            continue
        sa_part, ca_part = split(itemset)
        entries.append((
            itemset,
            tuple(row_of[i] for i in itemset),
            len(sa_part), len(ca_part),
            pack_cover_words(cover).tobytes(), cover.support(),
        ))
    if not entries:
        return out
    n_parts = max(1, min(resolve_workers(workers), len(entries)))
    chunks = [entries[i::n_parts] for i in range(n_parts)]
    shm = shared_memory.SharedMemory(
        create=True, name=_segment_name("closure"),
        size=max(1, matrix.nbytes),
    )
    try:
        np.ndarray(matrix.shape, WORD_DTYPE, buffer=shm.buf)[:] = matrix
        cfg = {
            "covers_shm": shm.name,
            "n_matrix_rows": matrix.shape[0],
            "n_words": matrix.shape[1],
            "n_sa": n_sa,
            "max_sa": max_sa,
            "max_ca": max_ca,
        }
        del matrix
        ctx = _mp_context()
        with ctx.Pool(
            processes=n_parts,
            initializer=_init_worker,
            initargs=(cfg,),
        ) as pool:
            try:
                for part in pool.imap_unordered(
                    _closure_partition, chunks
                ):
                    out.update(part)
            except MiningError:
                raise
            except Exception as exc:
                raise MiningError(
                    f"parallel closure worker failed: {exc!r}"
                ) from exc
        return out
    finally:
        shm.close()
        shm.unlink()


def mine_closed_parallel(
    db: TransactionDatabase,
    minsup: int,
    items: "list[int] | None" = None,
    with_covers: bool = False,
    workers: "int | None" = None,
) -> "dict[Itemset, int] | dict[Itemset, Cover]":
    """``mine_closed`` across a worker pool; bit-identical output.

    Workers return closure classes keyed by cover digest; the parent
    merges them vectorized (item-mask unions, max support, earliest
    emission key) and emits classes in first-emission order — exactly
    the sequential insertion order, for any worker count.
    """
    if minsup < 1:
        raise MiningError(f"minsup must be >= 1, got {minsup}")
    frequent = eclat.frequent_triples(db, minsup, items=items)
    if not frequent:
        return {}
    mask_bytes = max(1, (db.n_items + 7) // 8)
    cfg = {
        "mode": "closed",
        "minsup": minsup,
        "with_covers": with_covers,
        "mask_bytes": mask_bytes,
    }
    parts, _ = _run_pool(db, frequent, cfg, workers)
    digests = np.concatenate([p[1] for p in parts])
    masks = np.concatenate([p[2] for p in parts])
    supports = np.concatenate([p[3] for p in parts])
    order_keys = np.concatenate([p[4] for p in parts])
    covers: "list | None" = None
    if with_covers:
        covers = [c for p in parts for c in p[5]]
    if len(digests) == 0:
        return {}

    void = np.ascontiguousarray(digests).view(
        np.dtype((np.void, digests.shape[1]))
    ).ravel()
    uniq, inverse = np.unique(void, return_inverse=True)
    k = len(uniq)
    merged_masks = np.zeros((k, mask_bytes), dtype=np.uint8)
    np.bitwise_or.at(merged_masks, inverse, masks)
    merged_supports = np.zeros(k, dtype=np.int64)
    np.maximum.at(merged_supports, inverse, supports)
    merged_keys = np.full(k, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(merged_keys, inverse, order_keys)

    cover_of_class: "dict[int, Cover]" = {}
    if with_covers:
        # Deterministic representative: the entry carrying the class's
        # earliest emission key (emission keys are globally unique, so
        # this does not depend on pool arrival order).
        for j in range(len(order_keys)):
            c = int(inverse[j])
            if order_keys[j] == merged_keys[c]:
                cover_of_class[c] = covers[j]

    bits = np.unpackbits(merged_masks, axis=1, bitorder="little")
    out: dict = {}
    for c in np.argsort(merged_keys, kind="stable"):
        itemset = frozenset(np.flatnonzero(bits[c]).tolist())
        out[itemset] = (
            cover_of_class[int(c)] if with_covers
            else int(merged_supports[c])
        )
    return out
