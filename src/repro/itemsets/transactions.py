"""Transaction databases: the mining-ready encoding of ``finalTable``.

"Relational data is transformed into transaction database for itemset
mining" (paper §2): every row of ``finalTable`` becomes a transaction
whose items are the ``attribute=value`` pairs of its SA and CA columns;
multi-valued attributes contribute one item per member "for free".
The unit id is *not* an item — it rides along as a per-transaction label
so the builder can split any cover into per-unit counts.

Storage is columnar throughout: transactions live in a CSR-style pair of
arrays (``indptr`` offsets into a flat, per-row-sorted ``indices`` item
array), and the vertical layout — one cover per item — is served as
packed-bitmap :class:`~repro.itemsets.coverset.CoverSet` objects (or the
``"bool"`` / ``"ewah"`` codecs) rather than dense byte-per-transaction
boolean arrays.  Encoding, per-item supports and per-unit splitting are
all vectorized; no per-row Python loop touches the hot path.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from itertools import chain

import numpy as np

from repro.errors import MiningError
from repro.etl.schema import Role, Schema
from repro.etl.table import CategoricalColumn, MultiValuedColumn, Table
from repro.itemsets.coverset import Cover, as_cover, get_codec
from repro.itemsets.items import Item, ItemDictionary, ItemKind


class TransactionDatabase:
    """An immutable transaction database with per-transaction unit labels.

    Attributes
    ----------
    rows:
        One sorted tuple of item ids per transaction (materialised lazily
        from the CSR arrays; the horizontal view used by FP-growth and
        Apriori).
    dictionary:
        The :class:`~repro.itemsets.items.ItemDictionary` describing ids.
    units:
        Optional ``int64`` array with the unit id of each transaction.
    codec:
        Cover representation: ``"packed"`` (default), ``"bool"`` or
        ``"ewah"`` — see :mod:`repro.itemsets.coverset`.
    """

    def __init__(
        self,
        rows: Sequence[tuple[int, ...]],
        dictionary: ItemDictionary,
        units: np.ndarray | None = None,
        codec: str = "packed",
    ):
        normalized = [tuple(sorted(set(r))) for r in rows]
        lengths = np.fromiter(
            (len(r) for r in normalized), dtype=np.int64, count=len(normalized)
        )
        indptr = np.zeros(len(normalized) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        indices = np.fromiter(
            chain.from_iterable(normalized), dtype=np.int64,
            count=int(indptr[-1]),
        )
        self._init(indptr, indices, dictionary, units, codec)
        self._rows = normalized

    @classmethod
    def from_item_arrays(
        cls,
        row_ids: np.ndarray,
        item_ids: np.ndarray,
        n_rows: int,
        dictionary: ItemDictionary,
        units: np.ndarray | None = None,
        codec: str = "packed",
    ) -> "TransactionDatabase":
        """Build from flat ``(row, item)`` pair arrays (vectorized path).

        Pairs may arrive unsorted and with duplicates; they are sorted by
        ``(row, item)`` and deduplicated here, so encoders can simply
        concatenate per-column contributions.
        """
        row_ids = np.asarray(row_ids, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        if len(row_ids) != len(item_ids):
            raise MiningError(
                f"{len(row_ids)} row ids for {len(item_ids)} item ids"
            )
        if len(row_ids):
            if row_ids.min() < 0 or row_ids.max() >= n_rows:
                raise MiningError("transaction row id out of range")
            if item_ids.min() < 0 or item_ids.max() >= len(dictionary):
                raise MiningError("item id out of range for dictionary")
        order = np.lexsort((item_ids, row_ids))
        r, it = row_ids[order], item_ids[order]
        if len(r):
            keep = np.ones(len(r), dtype=bool)
            keep[1:] = (r[1:] != r[:-1]) | (it[1:] != it[:-1])
            r, it = r[keep], it[keep]
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(np.bincount(r, minlength=n_rows), out=indptr[1:])
        db = cls.__new__(cls)
        db._init(indptr, it, dictionary, units, codec)
        db._rows = None
        return db

    def _init(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        dictionary: ItemDictionary,
        units: np.ndarray | None,
        codec: str,
    ) -> None:
        get_codec(codec)  # validate the name eagerly
        self._indptr = indptr
        self._indices = indices
        self.dictionary = dictionary
        self.codec = codec
        if units is not None:
            units = np.asarray(units, dtype=np.int64)
            if len(units) != len(indptr) - 1:
                raise MiningError(
                    f"{len(units)} unit labels for {len(indptr) - 1} "
                    "transactions"
                )
            if len(units) and units.min() < 0:
                raise MiningError("unit ids must be non-negative")
        self.units = units
        self._covers: dict[int, Cover] | None = None
        self._unit_order: np.ndarray | None = None
        self._unit_indptr: np.ndarray | None = None
        self._active: Cover | None = None

    def restrict(self, active: "Cover | np.ndarray") -> "TransactionDatabase":
        """A view of this database with only ``active`` rows live.

        The restricted view keeps the *same row universe* (covers stay
        ``len(self)`` bits wide, unit labels and item ids are shared),
        but every item cover is intersected with ``active`` and the
        empty itemset's cover *is* ``active`` — so supports, mined
        itemsets and per-unit counts all describe the active subset
        only.  This is the temporal-snapshot primitive: encode the
        union-of-all-dates table once, then restrict it per snapshot
        date; covers of two dates remain directly comparable because
        they index the same rows (see :mod:`repro.cube.incremental`).

        Construction is cheap — one cover AND per item — and the
        unit→rows grouping is shared with the base database.  The
        horizontal ``rows`` view is not available on a restricted
        database (it would expose inactive rows), so the cover-free
        mining backends (fpgrowth/apriori) reject it.
        """
        flags = (
            active.to_bools() if isinstance(active, Cover)
            else np.asarray(active, dtype=bool)
        )
        if len(flags) != len(self):
            raise MiningError(
                f"active mask of {len(flags)} rows does not match "
                f"database of {len(self)}"
            )
        active_cover = self.as_cover(flags)
        if self._active is not None:
            # Restricting a restricted view composes: the item covers
            # below are already intersected with the base restriction,
            # so the active set must be too.
            active_cover = self._active & active_cover
        db = TransactionDatabase.__new__(TransactionDatabase)
        db._indptr = self._indptr
        db._indices = self._indices
        db.dictionary = self.dictionary
        db.codec = self.codec
        db.units = self.units
        db._rows = None
        db._covers = {
            i: cover & active_cover for i, cover in self.covers().items()
        }
        if self.units is not None:
            self._unit_grouping()
        db._unit_order = self._unit_order
        db._unit_indptr = self._unit_indptr
        db._active = active_cover
        return db

    @property
    def n_active(self) -> int:
        """Number of live transactions (all of them unless restricted)."""
        if self._active is None:
            return len(self)
        return self._active.support()

    @property
    def rows(self) -> "list[tuple[int, ...]]":
        """Horizontal view: one sorted item-id tuple per transaction."""
        if self._active is not None:
            raise MiningError(
                "the horizontal rows view is unavailable on a restricted "
                "database (it would expose inactive rows); mine restricted "
                "databases with the cover-based eclat backend"
            )
        if self._rows is None:
            indptr, indices = self._indptr, self._indices
            self._rows = [
                tuple(indices[indptr[t]:indptr[t + 1]].tolist())
                for t in range(len(self))
            ]
        return self._rows

    def __len__(self) -> int:
        return len(self._indptr) - 1

    @property
    def n_items(self) -> int:
        return len(self.dictionary)

    @property
    def n_units(self) -> int:
        """Number of distinct unit labels (0 when unlabelled)."""
        if self.units is None or len(self.units) == 0:
            return 0
        return int(self.units.max()) + 1

    def item_supports(self) -> np.ndarray:
        """Support (transaction count) of every single item, vectorized."""
        if self._active is not None:
            covers = self.covers()
            return np.fromiter(
                (covers[i].support() for i in range(self.n_items)),
                dtype=np.int64, count=self.n_items,
            )
        return np.bincount(self._indices, minlength=self.n_items)

    def covers(self) -> "dict[int, Cover]":
        """Vertical layout: one :class:`Cover` per item id (cached).

        Built in one vectorized pass: the CSR item array is argsorted by
        item, handing every item its covered-row list, which the active
        codec packs into its cover representation.
        """
        if self._covers is None:
            codec = get_codec(self.codec)
            n = len(self)
            order = np.argsort(self._indices, kind="stable")
            row_of = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(self._indptr)
            )
            sorted_rows = row_of[order]
            sorted_items = self._indices[order]
            bounds = np.searchsorted(
                sorted_items, np.arange(self.n_items + 1)
            )
            self._covers = {
                i: codec.from_indices(sorted_rows[bounds[i]:bounds[i + 1]], n)
                for i in range(self.n_items)
            }
        return self._covers

    def full_cover(self) -> Cover:
        """The empty itemset's cover: every live transaction.

        All rows for a plain database; the active subset for a
        restricted view (see :meth:`restrict`).
        """
        if self._active is not None:
            return self._active
        return get_codec(self.codec).ones(len(self))

    def as_cover(self, value: "Cover | np.ndarray") -> Cover:
        """Coerce a boolean array into this database's cover codec."""
        return as_cover(value, self.codec)

    def cover_of(self, itemset: Iterable[int]) -> Cover:
        """Cover of an itemset (word-wise AND of its item covers)."""
        covers = self.covers()
        result: Cover | None = None
        for i in itemset:
            if i not in covers:
                raise MiningError(f"item id {i} out of range")
            result = covers[i] if result is None else result & covers[i]
        if result is None:
            return self.full_cover()
        return result

    def support_of(self, itemset: Iterable[int]) -> int:
        """Absolute support of an itemset."""
        return self.cover_of(itemset).support()

    def _unit_grouping(self) -> tuple[np.ndarray, np.ndarray]:
        """Precomputed unit→rows grouping: permutation + group offsets."""
        if self._unit_order is None:
            self._unit_order = np.argsort(self.units, kind="stable")
            sizes = np.bincount(self.units, minlength=self.n_units)
            indptr = np.zeros(self.n_units + 1, dtype=np.int64)
            np.cumsum(sizes, out=indptr[1:])
            self._unit_indptr = indptr
        return self._unit_order, self._unit_indptr

    def unit_counts(self, cover: "Cover | np.ndarray") -> np.ndarray:
        """Per-unit transaction counts restricted to ``cover``.

        Uses the cached unit→rows grouping: the cover's flags are
        permuted into unit order once and summed per contiguous group
        (``np.add.reduceat``), instead of fancy-indexing the unit array
        by the cover on every call.
        """
        if self.units is None:
            raise MiningError("transaction database has no unit labels")
        flags = (
            cover.to_bools() if isinstance(cover, Cover)
            else np.asarray(cover, dtype=bool)
        )
        if len(flags) != len(self):
            raise MiningError(
                f"cover of {len(flags)} transactions does not match "
                f"database of {len(self)}"
            )
        order, indptr = self._unit_grouping()
        counts = np.zeros(self.n_units, dtype=np.int64)
        starts = indptr[:-1]
        nonempty = indptr[1:] > starts
        if nonempty.any():
            grouped = flags[order].astype(np.int64)
            # Empty units occupy zero width between consecutive nonempty
            # starts, so reducing over nonempty starts alone is exact.
            counts[nonempty] = np.add.reduceat(grouped, starts[nonempty])
        return counts

    def unit_counts_many(
        self,
        covers: "Sequence[Cover | np.ndarray]",
        max_chunk_indices: int = 1 << 22,
    ) -> np.ndarray:
        """Per-unit counts of many covers in one grouped pass.

        Returns an ``(len(covers), n_units)`` int64 matrix whose row
        ``j`` equals ``unit_counts(covers[j])`` — the minority-count
        matrix the columnar cube fill batches its index kernels over.
        Instead of N separate permute-and-reduce passes (each a full
        int64 permutation plus ``reduceat``), every cover contributes
        the unit labels of its covered rows with one masked gather —
        still an O(n_rows) mask scan per cover, but the cheapest one —
        and a chunk of covers is then counted with a single flat
        ``bincount`` over combined ``(cover, unit)`` keys, whose cost
        is proportional to the covers' total support.  Chunking bounds
        the gather *scratch* at ``max_chunk_indices`` labels (default
        ~4M, i.e. ~32 MB); the returned matrix itself still scales
        with ``len(covers) * n_units``, so callers needing bounded
        peak memory batch their cover lists (as the columnar cube
        fill does per context group).
        """
        if self.units is None:
            raise MiningError("transaction database has no unit labels")
        covers = list(covers)
        n = len(self)
        n_units = self.n_units
        out = np.zeros((len(covers), n_units), dtype=np.int64)

        def flush(start: int, parts: "list[np.ndarray]") -> None:
            k = len(parts)
            lengths = np.fromiter(
                (len(p) for p in parts), dtype=np.int64, count=k
            )
            flat = np.concatenate(parts)
            base = np.repeat(
                np.arange(k, dtype=np.int64) * n_units, lengths
            )
            out[start:start + k] = np.bincount(
                base + flat, minlength=k * n_units
            ).reshape(k, n_units)

        chunk_start = 0
        chunk_parts: list[np.ndarray] = []
        budget = 0
        for idx, cover in enumerate(covers):
            flags = (
                cover.to_bools() if isinstance(cover, Cover)
                else np.asarray(cover, dtype=bool)
            )
            if len(flags) != n:
                raise MiningError(
                    f"cover of {len(flags)} transactions does not "
                    f"match database of {n}"
                )
            labels = self.units[flags]
            # Flush the pending chunk before this cover would overflow
            # it: flushed chunks never exceed the scratch bound unless
            # one cover alone does.
            if chunk_parts and budget + len(labels) > max_chunk_indices:
                flush(chunk_start, chunk_parts)
                chunk_start, chunk_parts, budget = idx, [], 0
            chunk_parts.append(labels)
            budget += len(labels)
        if chunk_parts:
            flush(chunk_start, chunk_parts)
        return out


def encode_table(
    table: Table, schema: Schema, codec: str = "packed"
) -> TransactionDatabase:
    """Encode a ``finalTable`` into a :class:`TransactionDatabase`.

    Each SA/CA column contributes items of the matching kind; the schema's
    unit column becomes the per-transaction unit label.  Rows keep their
    order, so covers index directly into the original table.

    Encoding is vectorized: each categorical column is translated in one
    shot by indexing a category→item-id array with its code array, and
    multi-valued columns flatten their code tuples once; no intermediate
    per-row item lists are built.
    """
    schema.validate(table)
    dictionary = ItemDictionary()
    n = len(table)
    all_rows = np.arange(n, dtype=np.int64)
    row_parts: list[np.ndarray] = []
    item_parts: list[np.ndarray] = []
    for spec in schema.specs:
        if spec.role is Role.SEGREGATION:
            kind = ItemKind.SA
        elif spec.role is Role.CONTEXT:
            kind = ItemKind.CA
        else:
            continue
        col = table.column(spec.name)
        if isinstance(col, CategoricalColumn):
            ids = np.array(
                [dictionary.add(Item(spec.name, value), kind)
                 for value in col.categories],
                dtype=np.int64,
            )
            row_parts.append(all_rows)
            item_parts.append(ids[col.codes])
        elif isinstance(col, MultiValuedColumn):
            ids = np.array(
                [dictionary.add(Item(spec.name, value), kind)
                 for value in col.categories],
                dtype=np.int64,
            )
            lengths = np.fromiter(
                (len(r) for r in col.rows), dtype=np.int64, count=n
            )
            flat = np.fromiter(
                chain.from_iterable(col.rows), dtype=np.int64,
                count=int(lengths.sum()),
            )
            row_parts.append(np.repeat(all_rows, lengths))
            item_parts.append(ids[flat])
        else:
            raise MiningError(
                f"cannot encode column {spec.name!r} of kind {col.kind}"
            )
    if row_parts:
        row_ids = np.concatenate(row_parts)
        item_ids = np.concatenate(item_parts)
    else:
        row_ids = np.zeros(0, dtype=np.int64)
        item_ids = np.zeros(0, dtype=np.int64)
    units: np.ndarray | None = None
    unit_names = [s.name for s in schema.specs if s.role is Role.UNIT]
    if unit_names:
        units = table.ints(unit_names[0]).data
    return TransactionDatabase.from_item_arrays(
        row_ids, item_ids, n, dictionary, units, codec
    )
