"""Transaction databases: the mining-ready encoding of ``finalTable``.

"Relational data is transformed into transaction database for itemset
mining" (paper §2): every row of ``finalTable`` becomes a transaction
whose items are the ``attribute=value`` pairs of its SA and CA columns;
multi-valued attributes contribute one item per member "for free".
The unit id is *not* an item — it rides along as a per-transaction label
so the builder can split any cover into per-unit counts.

Storage is columnar throughout: transactions live in a CSR-style pair of
arrays (``indptr`` offsets into a flat, per-row-sorted ``indices`` item
array), and the vertical layout — one cover per item — is served as
packed-bitmap :class:`~repro.itemsets.coverset.CoverSet` objects (or the
``"bool"`` / ``"ewah"`` codecs) rather than dense byte-per-transaction
boolean arrays.  Encoding, per-item supports and per-unit splitting are
all vectorized; no per-row Python loop touches the hot path.

Two encoding paths produce the same database bit for bit:

* :func:`encode_table` — one-shot, for tables that fit in memory;
* :class:`EncodeAccumulator` / :meth:`TransactionDatabase.from_chunks` —
  append-only, folding fixed-size table chunks (see
  :mod:`repro.etl.stream`) into the CSR store as they arrive, with an
  optional ``np.memmap`` disk spill once the accumulated index buffers
  exceed a byte budget.  This is the out-of-core path: no per-row
  Python lists and no full-input item arrays are ever held in memory.
"""

from __future__ import annotations

import shutil
import tempfile
from collections.abc import Iterable, Iterator, Sequence
from itertools import chain
from pathlib import Path

import numpy as np

from repro.errors import MiningError
from repro.etl.schema import Role, Schema
from repro.etl.table import CategoricalColumn, MultiValuedColumn, Table
from repro.itemsets.coverset import Cover, as_cover, get_codec
from repro.itemsets.items import Item, ItemDictionary, ItemKind

#: Target entry count of one merge window in the chunked-encode
#: finalisation (bounds scratch at a few dozen MB regardless of input).
_ENCODE_WINDOW_ENTRIES = 1 << 22


class TransactionDatabase:
    """An immutable transaction database with per-transaction unit labels.

    Attributes
    ----------
    rows:
        One sorted tuple of item ids per transaction (materialised lazily
        from the CSR arrays; the horizontal view used by FP-growth and
        Apriori).
    dictionary:
        The :class:`~repro.itemsets.items.ItemDictionary` describing ids.
    units:
        Optional ``int64`` array with the unit id of each transaction.
    codec:
        Cover representation: ``"packed"`` (default), ``"bool"`` or
        ``"ewah"`` — see :mod:`repro.itemsets.coverset`.
    """

    def __init__(
        self,
        rows: Sequence[tuple[int, ...]],
        dictionary: ItemDictionary,
        units: np.ndarray | None = None,
        codec: str = "packed",
    ):
        normalized = [tuple(sorted(set(r))) for r in rows]
        lengths = np.fromiter(
            (len(r) for r in normalized), dtype=np.int64, count=len(normalized)
        )
        indptr = np.zeros(len(normalized) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        indices = np.fromiter(
            chain.from_iterable(normalized), dtype=np.int64,
            count=int(indptr[-1]),
        )
        self._init(indptr, indices, dictionary, units, codec)
        self._rows = normalized

    @classmethod
    def from_item_arrays(
        cls,
        row_ids: np.ndarray,
        item_ids: np.ndarray,
        n_rows: int,
        dictionary: ItemDictionary,
        units: np.ndarray | None = None,
        codec: str = "packed",
    ) -> "TransactionDatabase":
        """Build from flat ``(row, item)`` pair arrays (vectorized path).

        Pairs may arrive unsorted and with duplicates; they are sorted by
        ``(row, item)`` and deduplicated here, so encoders can simply
        concatenate per-column contributions.
        """
        row_ids = np.asarray(row_ids, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        if len(row_ids) != len(item_ids):
            raise MiningError(
                f"{len(row_ids)} row ids for {len(item_ids)} item ids"
            )
        if len(row_ids):
            if row_ids.min() < 0 or row_ids.max() >= n_rows:
                raise MiningError("transaction row id out of range")
            if item_ids.min() < 0 or item_ids.max() >= len(dictionary):
                raise MiningError("item id out of range for dictionary")
        order = np.lexsort((item_ids, row_ids))
        r, it = row_ids[order], item_ids[order]
        if len(r):
            keep = np.ones(len(r), dtype=bool)
            keep[1:] = (r[1:] != r[:-1]) | (it[1:] != it[:-1])
            r, it = r[keep], it[keep]
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(np.bincount(r, minlength=n_rows), out=indptr[1:])
        db = cls.__new__(cls)
        db._init(indptr, it, dictionary, units, codec)
        db._rows = None
        return db

    @classmethod
    def from_chunks(
        cls,
        chunks: "Iterable[Table]",
        schema: Schema,
        codec: str = "packed",
        spill_bytes: "int | None" = None,
        scratch_dir: "str | Path | None" = None,
    ) -> "TransactionDatabase":
        """Encode a stream of table chunks into one database.

        The chunks are folded append-only through an
        :class:`EncodeAccumulator`; the result is **bit-identical** to
        :func:`encode_table` on the concatenated table (same item ids,
        same CSR arrays, same unit labels), but the full input never has
        to exist in memory at once.  ``spill_bytes`` bounds the RAM the
        accumulated item-index buffers may occupy before they spill to
        ``np.memmap`` scratch files under ``scratch_dir`` (a temporary
        directory by default, removed when encoding completes).
        """
        accumulator = EncodeAccumulator(
            schema, codec=codec, spill_bytes=spill_bytes,
            scratch_dir=scratch_dir,
        )
        for chunk in chunks:
            accumulator.add_chunk(chunk)
        return accumulator.finalize()

    def _init(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        dictionary: ItemDictionary,
        units: np.ndarray | None,
        codec: str,
    ) -> None:
        get_codec(codec)  # validate the name eagerly
        self._indptr = indptr
        self._indices = indices
        self.dictionary = dictionary
        self.codec = codec
        if units is not None:
            units = np.asarray(units, dtype=np.int64)
            if len(units) != len(indptr) - 1:
                raise MiningError(
                    f"{len(units)} unit labels for {len(indptr) - 1} "
                    "transactions"
                )
            if len(units) and units.min() < 0:
                raise MiningError("unit ids must be non-negative")
        self.units = units
        self._covers: dict[int, Cover] | None = None
        self._item_supports: np.ndarray | None = None
        self._unit_order: np.ndarray | None = None
        self._unit_indptr: np.ndarray | None = None
        self._active: Cover | None = None

    def restrict(self, active: "Cover | np.ndarray") -> "TransactionDatabase":
        """A view of this database with only ``active`` rows live.

        The restricted view keeps the *same row universe* (covers stay
        ``len(self)`` bits wide, unit labels and item ids are shared),
        but every item cover is intersected with ``active`` and the
        empty itemset's cover *is* ``active`` — so supports, mined
        itemsets and per-unit counts all describe the active subset
        only.  This is the temporal-snapshot primitive: encode the
        union-of-all-dates table once, then restrict it per snapshot
        date; covers of two dates remain directly comparable because
        they index the same rows (see :mod:`repro.cube.incremental`).

        Construction is cheap — one cover AND per item — and the
        unit→rows grouping is shared with the base database.  The
        horizontal ``rows`` view is not available on a restricted
        database (it would expose inactive rows), so the cover-free
        mining backends (fpgrowth/apriori) reject it.
        """
        flags = (
            active.to_bools() if isinstance(active, Cover)
            else np.asarray(active, dtype=bool)
        )
        if len(flags) != len(self):
            raise MiningError(
                f"active mask of {len(flags)} rows does not match "
                f"database of {len(self)}"
            )
        active_cover = self.as_cover(flags)
        if self._active is not None:
            # Restricting a restricted view composes: the item covers
            # below are already intersected with the base restriction,
            # so the active set must be too.
            active_cover = self._active & active_cover
        db = TransactionDatabase.__new__(TransactionDatabase)
        db._indptr = self._indptr
        db._indices = self._indices
        db.dictionary = self.dictionary
        db.codec = self.codec
        db.units = self.units
        db._rows = None
        db._covers = {
            i: cover & active_cover for i, cover in self.covers().items()
        }
        db._item_supports = None
        if self.units is not None:
            self._unit_grouping()
        db._unit_order = self._unit_order
        db._unit_indptr = self._unit_indptr
        db._active = active_cover
        return db

    @property
    def n_active(self) -> int:
        """Number of live transactions (all of them unless restricted)."""
        if self._active is None:
            return len(self)
        return self._active.support()

    @property
    def rows(self) -> "list[tuple[int, ...]]":
        """Horizontal view: one sorted item-id tuple per transaction."""
        if self._active is not None:
            raise MiningError(
                "the horizontal rows view is unavailable on a restricted "
                "database (it would expose inactive rows); mine restricted "
                "databases with the cover-based eclat backend"
            )
        if self._rows is None:
            indptr, indices = self._indptr, self._indices
            self._rows = [
                tuple(indices[indptr[t]:indptr[t + 1]].tolist())
                for t in range(len(self))
            ]
        return self._rows

    def __len__(self) -> int:
        return len(self._indptr) - 1

    @property
    def n_items(self) -> int:
        return len(self.dictionary)

    @property
    def n_units(self) -> int:
        """Number of distinct unit labels (0 when unlabelled)."""
        if self.units is None or len(self.units) == 0:
            return 0
        return int(self.units.max()) + 1

    def item_supports(self) -> np.ndarray:
        """Support (transaction count) of every single item, vectorized."""
        if self._active is not None:
            covers = self.covers()
            return np.fromiter(
                (covers[i].support() for i in range(self.n_items)),
                dtype=np.int64, count=self.n_items,
            )
        return np.bincount(self._indices, minlength=self.n_items)

    def cached_item_supports(self) -> np.ndarray:
        """:meth:`item_supports`, computed once and cached.

        Mining entry points consult per-item supports on every call; the
        incremental engine in particular mines once per affected context
        against the *same* restricted snapshot view, so caching turns
        its per-context support scans into a single one.  The array is
        owned by the database — callers must not mutate it.
        """
        if self._item_supports is None:
            self._item_supports = self.item_supports()
        return self._item_supports

    def covers(self) -> "dict[int, Cover]":
        """Vertical layout: one :class:`Cover` per item id (cached).

        Built in one vectorized pass: the CSR item array is argsorted by
        item, handing every item its covered-row list, which the active
        codec packs into its cover representation.
        """
        if self._covers is None:
            codec = get_codec(self.codec)
            n = len(self)
            order = np.argsort(self._indices, kind="stable")
            row_of = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(self._indptr)
            )
            sorted_rows = row_of[order]
            sorted_items = self._indices[order]
            bounds = np.searchsorted(
                sorted_items, np.arange(self.n_items + 1)
            )
            self._covers = {
                i: codec.from_indices(sorted_rows[bounds[i]:bounds[i + 1]], n)
                for i in range(self.n_items)
            }
        return self._covers

    def full_cover(self) -> Cover:
        """The empty itemset's cover: every live transaction.

        All rows for a plain database; the active subset for a
        restricted view (see :meth:`restrict`).
        """
        if self._active is not None:
            return self._active
        return get_codec(self.codec).ones(len(self))

    def as_cover(self, value: "Cover | np.ndarray") -> Cover:
        """Coerce a boolean array into this database's cover codec."""
        return as_cover(value, self.codec)

    def cover_of(self, itemset: Iterable[int]) -> Cover:
        """Cover of an itemset (word-wise AND of its item covers)."""
        covers = self.covers()
        result: Cover | None = None
        for i in itemset:
            if i not in covers:
                raise MiningError(f"item id {i} out of range")
            result = covers[i] if result is None else result & covers[i]
        if result is None:
            return self.full_cover()
        return result

    def support_of(self, itemset: Iterable[int]) -> int:
        """Absolute support of an itemset."""
        return self.cover_of(itemset).support()

    def _unit_grouping(self) -> tuple[np.ndarray, np.ndarray]:
        """Precomputed unit→rows grouping: permutation + group offsets."""
        if self._unit_order is None:
            self._unit_order = np.argsort(self.units, kind="stable")
            sizes = np.bincount(self.units, minlength=self.n_units)
            indptr = np.zeros(self.n_units + 1, dtype=np.int64)
            np.cumsum(sizes, out=indptr[1:])
            self._unit_indptr = indptr
        return self._unit_order, self._unit_indptr

    def unit_counts(self, cover: "Cover | np.ndarray") -> np.ndarray:
        """Per-unit transaction counts restricted to ``cover``.

        Uses the cached unit→rows grouping: the cover's flags are
        permuted into unit order once and summed per contiguous group
        (``np.add.reduceat``), instead of fancy-indexing the unit array
        by the cover on every call.
        """
        if self.units is None:
            raise MiningError("transaction database has no unit labels")
        flags = (
            cover.to_bools() if isinstance(cover, Cover)
            else np.asarray(cover, dtype=bool)
        )
        if len(flags) != len(self):
            raise MiningError(
                f"cover of {len(flags)} transactions does not match "
                f"database of {len(self)}"
            )
        order, indptr = self._unit_grouping()
        counts = np.zeros(self.n_units, dtype=np.int64)
        starts = indptr[:-1]
        nonempty = indptr[1:] > starts
        if nonempty.any():
            grouped = flags[order].astype(np.int64)
            # Empty units occupy zero width between consecutive nonempty
            # starts, so reducing over nonempty starts alone is exact.
            counts[nonempty] = np.add.reduceat(grouped, starts[nonempty])
        return counts

    def unit_counts_many(
        self,
        covers: "Sequence[Cover | np.ndarray]",
        max_chunk_indices: int = 1 << 22,
    ) -> np.ndarray:
        """Per-unit counts of many covers in one grouped pass.

        Returns an ``(len(covers), n_units)`` int64 matrix whose row
        ``j`` equals ``unit_counts(covers[j])`` — the minority-count
        matrix the columnar cube fill batches its index kernels over.
        Instead of N separate permute-and-reduce passes (each a full
        int64 permutation plus ``reduceat``), every cover contributes
        the unit labels of its covered rows with one masked gather —
        still an O(n_rows) mask scan per cover, but the cheapest one —
        and a chunk of covers is then counted with a single flat
        ``bincount`` over combined ``(cover, unit)`` keys, whose cost
        is proportional to the covers' total support.  Chunking bounds
        the gather *scratch* at ``max_chunk_indices`` labels (default
        ~4M, i.e. ~32 MB); the returned matrix itself still scales
        with ``len(covers) * n_units``, so callers needing bounded
        peak memory batch their cover lists (as the columnar cube
        fill does per context group).
        """
        if self.units is None:
            raise MiningError("transaction database has no unit labels")
        covers = list(covers)
        n = len(self)
        n_units = self.n_units
        out = np.zeros((len(covers), n_units), dtype=np.int64)

        def flush(start: int, parts: "list[np.ndarray]") -> None:
            k = len(parts)
            lengths = np.fromiter(
                (len(p) for p in parts), dtype=np.int64, count=k
            )
            flat = np.concatenate(parts)
            base = np.repeat(
                np.arange(k, dtype=np.int64) * n_units, lengths
            )
            out[start:start + k] = np.bincount(
                base + flat, minlength=k * n_units
            ).reshape(k, n_units)

        chunk_start = 0
        chunk_parts: list[np.ndarray] = []
        budget = 0
        for idx, cover in enumerate(covers):
            flags = (
                cover.to_bools() if isinstance(cover, Cover)
                else np.asarray(cover, dtype=bool)
            )
            if len(flags) != n:
                raise MiningError(
                    f"cover of {len(flags)} transactions does not "
                    f"match database of {n}"
                )
            labels = self.units[flags]
            # Flush the pending chunk before this cover would overflow
            # it: flushed chunks never exceed the scratch bound unless
            # one cover alone does.
            if chunk_parts and budget + len(labels) > max_chunk_indices:
                flush(chunk_start, chunk_parts)
                chunk_start, chunk_parts, budget = idx, [], 0
            chunk_parts.append(labels)
            budget += len(labels)
        if chunk_parts:
            flush(chunk_start, chunk_parts)
        return out


def encode_table(
    table: Table, schema: Schema, codec: str = "packed"
) -> TransactionDatabase:
    """Encode a ``finalTable`` into a :class:`TransactionDatabase`.

    Each SA/CA column contributes items of the matching kind; the schema's
    unit column becomes the per-transaction unit label.  Rows keep their
    order, so covers index directly into the original table.

    Encoding is vectorized: each categorical column is translated in one
    shot by indexing a category→item-id array with its code array, and
    multi-valued columns flatten their code tuples once; no intermediate
    per-row item lists are built.
    """
    schema.validate(table)
    dictionary = ItemDictionary()
    n = len(table)
    all_rows = np.arange(n, dtype=np.int64)
    row_parts: list[np.ndarray] = []
    item_parts: list[np.ndarray] = []
    for spec in schema.specs:
        if spec.role is Role.SEGREGATION:
            kind = ItemKind.SA
        elif spec.role is Role.CONTEXT:
            kind = ItemKind.CA
        else:
            continue
        col = table.column(spec.name)
        if isinstance(col, CategoricalColumn):
            ids = np.array(
                [dictionary.add(Item(spec.name, value), kind)
                 for value in col.categories],
                dtype=np.int64,
            )
            row_parts.append(all_rows)
            item_parts.append(ids[col.codes])
        elif isinstance(col, MultiValuedColumn):
            ids = np.array(
                [dictionary.add(Item(spec.name, value), kind)
                 for value in col.categories],
                dtype=np.int64,
            )
            lengths, flat = _mv_lengths_flat(col.rows, n)
            row_parts.append(np.repeat(all_rows, lengths))
            item_parts.append(ids[flat])
        else:
            raise MiningError(
                f"cannot encode column {spec.name!r} of kind {col.kind}"
            )
    if row_parts:
        row_ids = np.concatenate(row_parts)
        item_ids = np.concatenate(item_parts)
    else:
        row_ids = np.zeros(0, dtype=np.int64)
        item_ids = np.zeros(0, dtype=np.int64)
    units: np.ndarray | None = None
    unit_names = [s.name for s in schema.specs if s.role is Role.UNIT]
    if unit_names:
        units = table.ints(unit_names[0]).data
    return TransactionDatabase.from_item_arrays(
        row_ids, item_ids, n, dictionary, units, codec
    )


def _mv_lengths_flat(
    rows: "Sequence[tuple[int, ...]]", n: int
) -> "tuple[np.ndarray, np.ndarray]":
    """Per-row set sizes and flattened codes in one pass over ``rows``.

    Single traversal of the code tuples (lengths and flat values are
    collected together), instead of one ``np.fromiter`` pass for the
    lengths and a second full ``chain.from_iterable`` materialisation
    for the values.  Output is bit-identical to the two-pass form.
    """
    lengths = np.empty(n, dtype=np.int64)
    flat_list: "list[int]" = []
    for i, row in enumerate(rows):
        lengths[i] = len(row)
        flat_list.extend(row)
    flat = np.asarray(flat_list, dtype=np.int64)
    return lengths, flat


class _SpillBuffer:
    """Append-only ``int64`` sequence with an optional disk spill.

    Arrays are appended in RAM; :meth:`spill` moves everything pending
    to a scratch file (raw little-endian int64, appended), and
    :meth:`finalize` hands back the whole logical sequence — either a
    single in-memory array or a read-only ``np.memmap`` over the
    scratch file.  The accumulator owns the scratch directory lifetime.
    """

    def __init__(self, path: Path):
        self._path = path
        self._file = None
        self._parts: "list[np.ndarray]" = []
        self.pending_bytes = 0
        self._spilled_len = 0

    @property
    def spilled(self) -> bool:
        return self._file is not None

    def append(self, arr: np.ndarray) -> None:
        arr = np.ascontiguousarray(arr, dtype=np.int64)
        if len(arr) == 0:
            return
        self._parts.append(arr)
        self.pending_bytes += arr.nbytes

    def spill(self) -> None:
        if not self._parts:
            return
        if self._file is None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self._path.open("wb")
        for arr in self._parts:
            arr.tofile(self._file)
            self._spilled_len += len(arr)
        self._file.flush()
        self._parts = []
        self.pending_bytes = 0

    def finalize(self) -> np.ndarray:
        """The whole appended sequence, memmapped when spilled."""
        if self._file is not None:
            self.spill()
            self._file.close()
            self._file = None
            if self._spilled_len == 0:
                return np.zeros(0, dtype=np.int64)
            return np.memmap(
                self._path, dtype=np.int64, mode="r",
                shape=(self._spilled_len,),
            )
        if not self._parts:
            return np.zeros(0, dtype=np.int64)
        if len(self._parts) == 1:
            return self._parts[0]
        return np.concatenate(self._parts)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class _SpecState:
    """Per-attribute accumulation state: category universe + buffers."""

    __slots__ = ("spec", "kind", "multi", "index", "categories", "codes",
                 "rows")

    def __init__(self, spec, kind: ItemKind, multi: bool, scratch: Path):
        self.spec = spec
        self.kind = kind
        self.multi = multi
        self.index: "dict[object, int]" = {}
        self.categories: "list[object]" = []
        self.codes = _SpillBuffer(scratch / f"{spec.name}.codes.i64")
        self.rows = (
            _SpillBuffer(scratch / f"{spec.name}.rows.i64") if multi
            else None
        )

    def translate(self, chunk_categories: "Sequence[object]") -> np.ndarray:
        """Chunk-local category codes -> global per-column codes.

        Global codes are assigned in first-seen order across the whole
        stream, which — because chunks arrive in row order — is exactly
        the order :class:`~repro.etl.table.CategoricalColumn.from_values`
        assigns them on the concatenated table.  That is what makes the
        chunked encode bit-identical to the one-shot encode.
        """
        mapping = np.empty(len(chunk_categories), dtype=np.int64)
        for local, value in enumerate(chunk_categories):
            code = self.index.get(value)
            if code is None:
                code = len(self.categories)
                self.index[value] = code
                self.categories.append(value)
            mapping[local] = code
        return mapping


class EncodeAccumulator:
    """Append-only encoder: fold table chunks into one CSR database.

    The out-of-core counterpart of :func:`encode_table`: chunks stream
    through :meth:`add_chunk` (each validated against the schema), the
    per-column category universes accumulate in first-seen order, and
    the per-item index buffers either stay in RAM or — once they exceed
    ``spill_bytes`` — spill to ``np.memmap`` scratch files.
    :meth:`finalize` merges the buffers into the CSR arrays in bounded
    row windows (one small ``lexsort`` per window, never a full-input
    sort) and returns a :class:`TransactionDatabase` **bit-identical**
    to ``encode_table`` on the concatenated table.

    Notes
    -----
    * The category universe is the *observed* values: a category carried
      by a column but appearing in no row contributes no item (identical
      to ``encode_table`` on any ``from_values``-built table).
    * ``spill_bytes`` budgets the item-index buffers only; the unit
      labels (8 bytes/row) and the final CSR arrays are in-memory.
    * Scratch files live in a private temporary directory (or under
      ``scratch_dir``) and are removed when :meth:`finalize` returns or
      :meth:`close` is called.
    """

    def __init__(
        self,
        schema: Schema,
        codec: str = "packed",
        spill_bytes: "int | None" = None,
        scratch_dir: "str | Path | None" = None,
    ):
        get_codec(codec)  # validate the name eagerly
        if spill_bytes is not None and spill_bytes < 0:
            raise MiningError("spill_bytes must be non-negative")
        self.schema = schema
        self.codec = codec
        self._spill_bytes = spill_bytes
        self._scratch = Path(tempfile.mkdtemp(
            prefix="repro-encode-",
            dir=None if scratch_dir is None else str(scratch_dir),
        ))
        self._states: "list[_SpecState]" = []
        for spec in schema.specs:
            if spec.role is Role.SEGREGATION:
                kind = ItemKind.SA
            elif spec.role is Role.CONTEXT:
                kind = ItemKind.CA
            else:
                continue
            self._states.append(
                _SpecState(spec, kind, spec.multi_valued, self._scratch)
            )
        unit_names = [s.name for s in schema.specs if s.role is Role.UNIT]
        self._unit_name = unit_names[0] if unit_names else None
        self._units_parts: "list[np.ndarray]" = []
        self._n_rows = 0
        self._finalized = False

    @property
    def n_rows(self) -> int:
        """Rows accumulated so far."""
        return self._n_rows

    @property
    def spilled(self) -> bool:
        """True once any index buffer has spilled to disk."""
        return any(
            state.codes.spilled or (state.rows is not None
                                    and state.rows.spilled)
            for state in self._states
        )

    def add_chunk(self, table: Table) -> None:
        """Fold one table chunk into the accumulated encoding."""
        if self._finalized:
            raise MiningError("accumulator already finalized")
        self.schema.validate(table)
        n = len(table)
        start = self._n_rows
        for state in self._states:
            col = table.column(state.spec.name)
            mapping = state.translate(col.categories)
            if state.multi:
                lengths, flat = _mv_lengths_flat(col.rows, n)
                state.rows.append(np.repeat(
                    np.arange(start, start + n, dtype=np.int64), lengths
                ))
                state.codes.append(mapping[flat] if len(flat)
                                   else flat)
            else:
                state.codes.append(mapping[col.codes])
        if self._unit_name is not None:
            self._units_parts.append(
                np.asarray(table.ints(self._unit_name).data, dtype=np.int64)
            )
        self._n_rows += n
        if self._spill_bytes is not None:
            pending = sum(
                state.codes.pending_bytes
                + (state.rows.pending_bytes if state.rows is not None else 0)
                for state in self._states
            )
            if pending > self._spill_bytes:
                for state in self._states:
                    state.codes.spill()
                    if state.rows is not None:
                        state.rows.spill()

    def finalize(self) -> TransactionDatabase:
        """Merge the accumulated buffers into one database.

        The item dictionary is built exactly as :func:`encode_table`
        builds it — per schema spec, categories in first-seen order —
        so every spec's items occupy one contiguous id range starting at
        a per-spec base.  Final item ids are therefore
        ``base + column code``, and the CSR ``indices`` array is filled
        window by window: each row window gathers its per-spec segments
        (categorical buffers index directly, multi-valued buffers via
        ``searchsorted`` on their row arrays, both memmap-friendly) and
        sorts them with one bounded ``lexsort``.
        """
        if self._finalized:
            raise MiningError("accumulator already finalized")
        self._finalized = True
        try:
            dictionary = ItemDictionary()
            bases: "list[int]" = []
            for state in self._states:
                bases.append(len(dictionary))
                for value in state.categories:
                    dictionary.add(Item(state.spec.name, value), state.kind)

            n = self._n_rows
            cat = [(s, b) for s, b in zip(self._states, bases) if not s.multi]
            mv = [(s, b) for s, b in zip(self._states, bases) if s.multi]
            cat_arrays = [(s.codes.finalize(), b) for s, b in cat]
            mv_arrays = [
                (s.rows.finalize(), s.codes.finalize(), b) for s, b in mv
            ]

            counts = np.full(n, len(cat), dtype=np.int64)
            for rows_arr, _, _ in mv_arrays:
                if len(rows_arr):
                    counts += np.bincount(rows_arr, minlength=n)
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            total = int(indptr[-1])
            indices = np.empty(total, dtype=np.int64)

            per_row = max(1, total // n) if n else 1
            window = max(1, _ENCODE_WINDOW_ENTRIES // per_row)
            for a in range(0, n, window):
                b = min(n, a + window)
                ids_parts: "list[np.ndarray]" = []
                rows_parts: "list[np.ndarray]" = []
                for codes_arr, base in cat_arrays:
                    ids_parts.append(
                        np.asarray(codes_arr[a:b], dtype=np.int64) + base
                    )
                    rows_parts.append(np.arange(a, b, dtype=np.int64))
                for rows_arr, codes_arr, base in mv_arrays:
                    lo, hi = np.searchsorted(rows_arr, [a, b])
                    ids_parts.append(
                        np.asarray(codes_arr[lo:hi], dtype=np.int64) + base
                    )
                    rows_parts.append(
                        np.asarray(rows_arr[lo:hi], dtype=np.int64)
                    )
                if not ids_parts:
                    continue
                ids_w = np.concatenate(ids_parts)
                rows_w = np.concatenate(rows_parts)
                order = np.lexsort((ids_w, rows_w))
                indices[indptr[a]:indptr[b]] = ids_w[order]

            units: "np.ndarray | None" = None
            if self._unit_name is not None:
                units = (
                    np.concatenate(self._units_parts) if self._units_parts
                    else np.zeros(0, dtype=np.int64)
                )
            db = TransactionDatabase.__new__(TransactionDatabase)
            db._init(indptr, indices, dictionary, units, self.codec)
            db._rows = None
            return db
        finally:
            self.close()

    def close(self) -> None:
        """Release scratch files (idempotent; finalize calls it)."""
        for state in self._states:
            state.codes.close()
            if state.rows is not None:
                state.rows.close()
        shutil.rmtree(self._scratch, ignore_errors=True)

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        try:
            self.close()
        except Exception:
            pass
