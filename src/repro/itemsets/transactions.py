"""Transaction databases: the mining-ready encoding of ``finalTable``.

"Relational data is transformed into transaction database for itemset
mining" (paper §2): every row of ``finalTable`` becomes a transaction
whose items are the ``attribute=value`` pairs of its SA and CA columns;
multi-valued attributes contribute one item per member "for free".
The unit id is *not* an item — it rides along as a per-transaction label
so the builder can split any cover into per-unit counts.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import MiningError
from repro.etl.schema import Role, Schema
from repro.etl.table import CategoricalColumn, MultiValuedColumn, Table
from repro.itemsets.items import Item, ItemDictionary, ItemKind


class TransactionDatabase:
    """An immutable transaction database with per-transaction unit labels.

    Attributes
    ----------
    rows:
        One sorted tuple of item ids per transaction.
    dictionary:
        The :class:`~repro.itemsets.items.ItemDictionary` describing ids.
    units:
        Optional ``int64`` array with the unit id of each transaction.
    """

    def __init__(
        self,
        rows: Sequence[tuple[int, ...]],
        dictionary: ItemDictionary,
        units: np.ndarray | None = None,
    ):
        self.rows: list[tuple[int, ...]] = [tuple(sorted(set(r))) for r in rows]
        self.dictionary = dictionary
        if units is not None:
            units = np.asarray(units, dtype=np.int64)
            if len(units) != len(self.rows):
                raise MiningError(
                    f"{len(units)} unit labels for {len(self.rows)} transactions"
                )
            if len(units) and units.min() < 0:
                raise MiningError("unit ids must be non-negative")
        self.units = units
        self._covers: dict[int, np.ndarray] | None = None

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def n_items(self) -> int:
        return len(self.dictionary)

    @property
    def n_units(self) -> int:
        """Number of distinct unit labels (0 when unlabelled)."""
        if self.units is None or len(self.units) == 0:
            return 0
        return int(self.units.max()) + 1

    def item_supports(self) -> np.ndarray:
        """Support (transaction count) of every single item."""
        supports = np.zeros(self.n_items, dtype=np.int64)
        for row in self.rows:
            for i in row:
                supports[i] += 1
        return supports

    def covers(self) -> dict[int, np.ndarray]:
        """Vertical layout: boolean cover array per item id (cached)."""
        if self._covers is None:
            n = len(self.rows)
            covers = {i: np.zeros(n, dtype=bool) for i in range(self.n_items)}
            for t, row in enumerate(self.rows):
                for i in row:
                    covers[i][t] = True
            self._covers = covers
        return self._covers

    def cover_of(self, itemset: Iterable[int]) -> np.ndarray:
        """Boolean cover of an itemset (AND of its item covers)."""
        covers = self.covers()
        result: np.ndarray | None = None
        for i in itemset:
            if i not in covers:
                raise MiningError(f"item id {i} out of range")
            result = covers[i] if result is None else result & covers[i]
        if result is None:
            return np.ones(len(self.rows), dtype=bool)
        return result

    def support_of(self, itemset: Iterable[int]) -> int:
        """Absolute support of an itemset."""
        return int(self.cover_of(itemset).sum())

    def unit_counts(self, cover: np.ndarray) -> np.ndarray:
        """Per-unit transaction counts restricted to ``cover``."""
        if self.units is None:
            raise MiningError("transaction database has no unit labels")
        return np.bincount(self.units[cover], minlength=self.n_units)


def encode_table(table: Table, schema: Schema) -> TransactionDatabase:
    """Encode a ``finalTable`` into a :class:`TransactionDatabase`.

    Each SA/CA column contributes items of the matching kind; the schema's
    unit column becomes the per-transaction unit label.  Rows keep their
    order, so covers index directly into the original table.
    """
    schema.validate(table)
    dictionary = ItemDictionary()
    n = len(table)
    row_items: list[list[int]] = [[] for _ in range(n)]
    for spec in schema.specs:
        if spec.role is Role.SEGREGATION:
            kind = ItemKind.SA
        elif spec.role is Role.CONTEXT:
            kind = ItemKind.CA
        else:
            continue
        col = table.column(spec.name)
        if isinstance(col, CategoricalColumn):
            ids = [
                dictionary.add(Item(spec.name, value), kind)
                for value in col.categories
            ]
            for t in range(n):
                row_items[t].append(ids[col.codes[t]])
        elif isinstance(col, MultiValuedColumn):
            ids = [
                dictionary.add(Item(spec.name, value), kind)
                for value in col.categories
            ]
            for t in range(n):
                row_items[t].extend(ids[c] for c in col.rows[t])
        else:
            raise MiningError(
                f"cannot encode column {spec.name!r} of kind {col.kind}"
            )
    units: np.ndarray | None = None
    unit_names = [s.name for s in schema.specs if s.role is Role.UNIT]
    if unit_names:
        units = table.ints(unit_names[0]).data
    return TransactionDatabase(
        [tuple(sorted(set(items))) for items in row_items], dictionary, units
    )
