"""Frequent (closed) itemset mining substrate.

Reimplements, in pure Python/NumPy, the mining stack the original SCube
borrows from external libraries: FP-growth (Borgelt), a vertical Eclat
miner with covers, a level-wise Apriori baseline, closed-itemset
filtering, and pluggable cover codecs — packed ``uint64`` bitmaps
(default), dense booleans, and EWAH-style compressed bitmaps (JavaEWAH).
"""

from repro.itemsets.apriori import mine_apriori
from repro.itemsets.bitmap import EWAHBitmap
from repro.itemsets.closed import (
    closure_map,
    equivalence_classes,
    filter_closed,
    filter_maximal,
    verify_closed,
)
from repro.itemsets.coverset import (
    COVER_CODECS,
    Cover,
    CoverSet,
    DenseCover,
    get_codec,
)
from repro.itemsets.eclat import closure_of, mine_eclat
from repro.itemsets.fpgrowth import FPTree, mine_fpgrowth
from repro.itemsets.items import Item, ItemDictionary, ItemKind
from repro.itemsets.miner import (
    BACKENDS,
    MiningResult,
    absolute_minsup,
    mine,
)
from repro.itemsets.transactions import (
    EncodeAccumulator,
    TransactionDatabase,
    encode_table,
)

__all__ = [
    "BACKENDS",
    "EncodeAccumulator",
    "COVER_CODECS",
    "Cover",
    "CoverSet",
    "DenseCover",
    "EWAHBitmap",
    "FPTree",
    "get_codec",
    "Item",
    "ItemDictionary",
    "ItemKind",
    "MiningResult",
    "TransactionDatabase",
    "absolute_minsup",
    "closure_map",
    "closure_of",
    "encode_table",
    "equivalence_classes",
    "filter_closed",
    "filter_maximal",
    "mine",
    "mine_apriori",
    "mine_eclat",
    "mine_fpgrowth",
    "verify_closed",
]
