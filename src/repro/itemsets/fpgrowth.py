"""FP-growth frequent-itemset mining over an FP-tree.

The original SCube delegates mining to Borgelt's FPGrowth (paper
footnote 6); this module is a from-scratch reimplementation of the
classic Han et al. algorithm: compress the database into a prefix tree
ordered by descending item frequency, then recursively mine conditional
trees.  It returns exactly the same itemsets and supports as
:func:`repro.itemsets.apriori.mine_apriori` and
:func:`repro.itemsets.eclat.mine_eclat` (property-tested).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import MiningError
from repro.itemsets.transactions import TransactionDatabase

Itemset = frozenset[int]


class _Node:
    """One FP-tree node."""

    __slots__ = ("item", "count", "parent", "children", "next_link")

    def __init__(self, item: int, parent: "_Node | None"):
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict[int, _Node] = {}
        self.next_link: _Node | None = None


class FPTree:
    """An FP-tree with a header table of per-item node chains."""

    def __init__(self) -> None:
        self.root = _Node(-1, None)
        self.header: dict[int, _Node] = {}
        self.counts: dict[int, int] = {}

    def insert(self, ordered_items: Iterable[int], count: int) -> None:
        """Insert one (ordered) transaction with multiplicity ``count``."""
        node = self.root
        for item in ordered_items:
            child = node.children.get(item)
            if child is None:
                child = _Node(item, node)
                node.children[item] = child
                child.next_link = self.header.get(item)
                self.header[item] = child
            child.count += count
            self.counts[item] = self.counts.get(item, 0) + count
            node = child

    def is_single_path(self) -> "list[tuple[int, int]] | None":
        """If the tree is one chain, return its [(item, count)] else None."""
        path: list[tuple[int, int]] = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            node = next(iter(node.children.values()))
            path.append((node.item, node.count))
        return path

    def prefix_paths(self, item: int) -> list[tuple[list[int], int]]:
        """Conditional pattern base of ``item``: (path-to-root, count) pairs."""
        paths = []
        node = self.header.get(item)
        while node is not None:
            path: list[int] = []
            parent = node.parent
            while parent is not None and parent.item != -1:
                path.append(parent.item)
                parent = parent.parent
            path.reverse()
            if path:
                paths.append((path, node.count))
            node = node.next_link
        return paths


def _build_tree(
    transactions: Iterable[tuple[list[int], int]], minsup: int
) -> tuple[FPTree, list[int]]:
    """Build an FP-tree keeping only items frequent within ``transactions``."""
    freq: dict[int, int] = {}
    materialised = []
    for items, count in transactions:
        materialised.append((items, count))
        for i in items:
            freq[i] = freq.get(i, 0) + count
    keep = {i for i, c in freq.items() if c >= minsup}
    # Descending frequency, ties by item id for determinism.
    order = sorted(keep, key=lambda i: (-freq[i], i))
    rank = {item: r for r, item in enumerate(order)}
    tree = FPTree()
    for items, count in materialised:
        filtered = sorted((i for i in items if i in keep), key=rank.__getitem__)
        if filtered:
            tree.insert(filtered, count)
    return tree, order


def _combinations_of_path(
    path: list[tuple[int, int]], suffix: tuple[int, ...], minsup: int,
    max_len: "int | None", out: dict[Itemset, int]
) -> None:
    """Enumerate all subsets of a single path (with min count along it)."""

    def recurse(idx: int, chosen: tuple[int, ...], min_count: int) -> None:
        for k in range(idx, len(path)):
            item, count = path[k]
            new_count = min(min_count, count)
            if new_count < minsup:
                continue
            new_chosen = chosen + (item,)
            itemset = frozenset(new_chosen + suffix)
            if max_len is None or len(itemset) <= max_len:
                out[itemset] = new_count
                if max_len is None or len(itemset) < max_len:
                    recurse(k + 1, new_chosen, new_count)

    recurse(0, (), 1 << 62)


def _mine_tree(
    tree: FPTree,
    order: list[int],
    suffix: tuple[int, ...],
    minsup: int,
    max_len: "int | None",
    out: dict[Itemset, int],
) -> None:
    if max_len is not None and len(suffix) >= max_len:
        return
    single = tree.is_single_path()
    if single is not None:
        _combinations_of_path(single, suffix, minsup, max_len, out)
        return
    # Bottom-up over the header (ascending frequency).
    for item in reversed(order):
        support = tree.counts.get(item, 0)
        if support < minsup:
            continue
        new_suffix = (item,) + suffix
        out[frozenset(new_suffix)] = support
        if max_len is not None and len(new_suffix) >= max_len:
            continue
        conditional = tree.prefix_paths(item)
        if not conditional:
            continue
        sub_tree, sub_order = _build_tree(conditional, minsup)
        if sub_order:
            _mine_tree(sub_tree, sub_order, new_suffix, minsup, max_len, out)


def mine_fpgrowth(
    db: TransactionDatabase,
    minsup: int,
    items: "list[int] | None" = None,
    max_len: "int | None" = None,
) -> dict[Itemset, int]:
    """Mine all frequent itemsets with absolute support >= ``minsup``."""
    if minsup < 1:
        raise MiningError(f"minsup must be >= 1, got {minsup}")
    allowed = set(items) if items is not None else None
    transactions = []
    for row in db.rows:
        filtered = [i for i in row if allowed is None or i in allowed]
        if filtered:
            transactions.append((filtered, 1))
    tree, order = _build_tree(transactions, minsup)
    out: dict[Itemset, int] = {}
    if order:
        _mine_tree(tree, order, (), minsup, max_len, out)
    return out
