"""Eclat: vertical (cover-based) frequent-itemset mining.

This is the default mining backend of the cube builder: its depth-first
search carries the *cover* (transaction mask) of every itemset, which the
SegregationDataCubeBuilder needs anyway to split supports into per-unit
counts.  Covers are :class:`~repro.itemsets.coverset.Cover` objects —
packed ``uint64`` bitmaps by default, so intersection is a word-wise AND
and support a vectorized popcount; the dense-boolean and EWAH-compressed
codecs run through the identical code path (the DFS only needs ``&`` and
``support()``).
"""

from __future__ import annotations

from repro.errors import MiningError
from repro.itemsets.coverset import Cover
from repro.itemsets.transactions import TransactionDatabase

Itemset = frozenset[int]


def mine_eclat(
    db: TransactionDatabase,
    minsup: int,
    items: "list[int] | None" = None,
    max_len: "int | None" = None,
    with_covers: bool = False,
    within: "Cover | None" = None,
) -> "dict[Itemset, int] | dict[Itemset, Cover]":
    """Mine all frequent itemsets (support >= ``minsup``), depth-first.

    Parameters
    ----------
    items:
        Restrict mining to these item ids (default: all items).
    max_len:
        Maximum itemset length.
    with_covers:
        When True the result maps itemsets to their covers
        (support = ``cover.support()``); otherwise to integer supports.
    within:
        Optional root cover: supports and covers are evaluated inside
        this transaction subset only (every item cover is intersected
        with it before the DFS).  The incremental cube fill uses this
        to mine the SA refinements of one context without touching
        rows outside the context's cover.

    Notes
    -----
    Items are ordered by ascending support before the DFS — the classic
    heuristic that keeps conditional covers small near the root.  Each
    item's support is computed exactly once and reused for both the
    frequency filter and the ordering.
    """
    if minsup < 1:
        raise MiningError(f"minsup must be >= 1, got {minsup}")
    covers = db.covers()
    candidate_ids = list(items) if items is not None else list(range(db.n_items))

    frequent = []
    for i in candidate_ids:
        cover = covers[i] if within is None else covers[i] & within
        support = cover.support()
        if support >= minsup:
            frequent.append((i, cover, support))
    frequent.sort(key=lambda triple: triple[2])

    out_covers: dict[Itemset, Cover] = {}
    out_supports: dict[Itemset, int] = {}

    def record(itemset: tuple[int, ...], cover: Cover, support: int) -> None:
        key = frozenset(itemset)
        if with_covers:
            out_covers[key] = cover
        else:
            out_supports[key] = support

    def dfs(prefix: tuple[int, ...], prefix_cover: Cover,
            tail: "list[tuple[int, Cover, int]]") -> None:
        if max_len is not None and len(prefix) >= max_len:
            return
        for pos, (item, item_cover, _) in enumerate(tail):
            cover = prefix_cover & item_cover
            support = cover.support()
            if support < minsup:
                continue
            itemset = prefix + (item,)
            record(itemset, cover, support)
            dfs(itemset, cover, tail[pos + 1:])

    for pos, (item, item_cover, support) in enumerate(frequent):
        record((item,), item_cover, support)
        dfs((item,), item_cover, frequent[pos + 1:])
    return out_covers if with_covers else out_supports


def mine_eclat_typed(
    db: TransactionDatabase,
    minsup: int,
    sa_ids: "list[int]",
    ca_ids: "list[int]",
    max_sa: "int | None" = None,
    max_ca: "int | None" = None,
) -> "dict[Itemset, Cover]":
    """Eclat DFS constrained by per-kind item caps (the cube's lattice).

    Cube coordinates are typed: a cell has at most ``max_sa`` SA items
    and ``max_ca`` CA items.  Enforcing the caps *during* the DFS — not
    by post-filtering an unconstrained mine — keeps the search inside
    the exact coordinate lattice the cube materialises, which is where
    the builder's advantage over naive enumeration comes from (support
    pruning cuts subtrees, cover intersections are shared with the
    parent prefix).

    Returns covers for every frequent itemset within the caps,
    including the empty itemset's all-true cover.
    """
    if minsup < 1:
        raise MiningError(f"minsup must be >= 1, got {minsup}")
    covers = db.covers()
    sa_set = set(sa_ids)

    def kind_cost(item: int) -> tuple[int, int]:
        return (1, 0) if item in sa_set else (0, 1)

    frequent = [
        (i, covers[i], support)
        for i, support in (
            (i, covers[i].support()) for i in list(sa_ids) + list(ca_ids)
        )
        if support >= minsup
    ]
    frequent.sort(key=lambda triple: triple[2])

    out: dict[Itemset, Cover] = {frozenset(): db.full_cover()}

    def fits(n_sa: int, n_ca: int) -> bool:
        if max_sa is not None and n_sa > max_sa:
            return False
        if max_ca is not None and n_ca > max_ca:
            return False
        return True

    def dfs(prefix: tuple[int, ...], prefix_cover: Cover,
            n_sa: int, n_ca: int,
            tail: "list[tuple[int, Cover, int]]") -> None:
        for pos, (item, item_cover, _) in enumerate(tail):
            d_sa, d_ca = kind_cost(item)
            if not fits(n_sa + d_sa, n_ca + d_ca):
                continue
            cover = prefix_cover & item_cover
            if cover.support() < minsup:
                continue
            itemset = prefix + (item,)
            out[frozenset(itemset)] = cover
            dfs(itemset, cover, n_sa + d_sa, n_ca + d_ca, tail[pos + 1:])

    dfs((), db.full_cover(), 0, 0, frequent)
    return out


def closure_of(
    db: TransactionDatabase,
    cover: "Cover",
    candidate_items: "list[int] | None" = None,
) -> Itemset:
    """The closure of a cover: all items present in *every* covered row.

    For an itemset X with cover c, ``closure_of(db, c)`` is the unique
    maximal itemset with the same cover — the canonical representative the
    closed-itemset cube stores.  ``cover`` may also be a dense boolean
    array; it is coerced into the database's codec.
    """
    covers = db.covers()
    cover = db.as_cover(cover)
    support = cover.support()
    ids = candidate_items if candidate_items is not None else range(db.n_items)
    closed = [
        i for i in ids if (cover & covers[i]).support() == support
    ]
    return frozenset(closed)
