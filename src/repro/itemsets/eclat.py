"""Eclat: vertical (cover-based) frequent-itemset mining.

This is the default mining backend of the cube builder: its depth-first
search carries the *cover* (transaction mask) of every itemset, which the
SegregationDataCubeBuilder needs anyway to split supports into per-unit
counts.  Covers are :class:`~repro.itemsets.coverset.Cover` objects —
packed ``uint64`` bitmaps by default, so intersection is a word-wise AND
and support a vectorized popcount; the dense-boolean and EWAH-compressed
codecs run through the identical code path (the DFS only needs ``&`` and
``support()``).

The search tree decomposes by *root item*: once the frequent 1-items are
sorted by ascending support, the subtree rooted at position ``pos`` only
touches the root's cover and the tail ``frequent[pos + 1:]`` — no state
is shared between subtrees.  The module therefore exposes the DFS as
per-root kernels (:func:`mine_root`, :func:`mine_typed_root`) over a
shared :func:`frequent_triples` preparation step; ``mine_eclat`` and
``mine_eclat_typed`` are thin sequential loops over those kernels, and
:mod:`repro.itemsets.parallel` fans the *identical* kernels across
``multiprocessing`` workers (``workers=`` here delegates to it), so the
parallel mine is bit-identical — same itemsets, same emission order,
same supports — to the sequential one.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import MiningError
from repro.itemsets.coverset import Cover
from repro.itemsets.transactions import TransactionDatabase

Itemset = frozenset[int]

#: One frequent 1-item: ``(item id, cover, support)``.
FrequentTriple = "tuple[int, Cover, int]"

#: Emission callback: ``record(itemset_tuple, cover, support)``.
Record = "Callable[[tuple[int, ...], Cover, int], None]"


def frequent_triples(
    db: TransactionDatabase,
    minsup: int,
    items: "list[int] | None" = None,
    within: "Cover | None" = None,
) -> "list[FrequentTriple]":
    """The frequent 1-items as ``(item, cover, support)``, support-sorted.

    This is the shared preparation step of every eclat entry point: the
    DFS roots in ascending-support order (the classic heuristic that
    keeps conditional covers small near the root).  Each item's support
    is computed exactly once and reused for both the frequency filter
    and the ordering.

    With ``within=`` the covers are intersected with the given root
    cover first; an item's restricted support can only shrink, so
    candidates are pre-pruned by the database's cached unrestricted
    supports before paying for any AND — the incremental engine calls
    this once per affected context on the same restricted view, and the
    cache makes those calls share one support scan instead of
    recomputing per context.
    """
    covers = db.covers()
    candidate_ids = list(items) if items is not None else list(range(db.n_items))

    frequent: "list[FrequentTriple]" = []
    if within is None:
        supports = db.cached_item_supports()
        for i in candidate_ids:
            support = int(supports[i])
            if support >= minsup:
                frequent.append((i, covers[i], support))
    else:
        base_supports = db.cached_item_supports()
        for i in candidate_ids:
            if base_supports[i] < minsup:
                # support(cover & within) <= support(cover): hopeless
                # items never pay for the intersection.
                continue
            cover = covers[i] & within
            support = cover.support()
            if support >= minsup:
                frequent.append((i, cover, support))
    frequent.sort(key=lambda triple: triple[2])
    return frequent


def _dfs(
    prefix: "tuple[int, ...]",
    prefix_cover: Cover,
    tail: "list[FrequentTriple]",
    minsup: int,
    max_len: "int | None",
    record: "Record",
) -> None:
    """The eclat DFS over one conditional tail (the single shared kernel)."""
    if max_len is not None and len(prefix) >= max_len:
        return
    for pos, (item, item_cover, _) in enumerate(tail):
        cover = prefix_cover & item_cover
        support = cover.support()
        if support < minsup:
            continue
        itemset = prefix + (item,)
        record(itemset, cover, support)
        _dfs(itemset, cover, tail[pos + 1:], minsup, max_len, record)


def mine_root(
    frequent: "list[FrequentTriple]",
    pos: int,
    minsup: int,
    max_len: "int | None",
    record: "Record",
) -> None:
    """Emit the subtree rooted at ``frequent[pos]`` in sequential order.

    ``mine_eclat`` is exactly ``for pos in range(len(frequent)):
    mine_root(...)``; a parallel driver may call the same kernel for any
    subset of root positions and splice the per-root emissions back in
    position order to reproduce the sequential output bit for bit.
    """
    item, item_cover, support = frequent[pos]
    record((item,), item_cover, support)
    _dfs((item,), item_cover, frequent[pos + 1:], minsup, max_len, record)


def mine_eclat(
    db: TransactionDatabase,
    minsup: int,
    items: "list[int] | None" = None,
    max_len: "int | None" = None,
    with_covers: bool = False,
    within: "Cover | None" = None,
    workers: "int | None" = None,
) -> "dict[Itemset, int] | dict[Itemset, Cover]":
    """Mine all frequent itemsets (support >= ``minsup``), depth-first.

    Parameters
    ----------
    items:
        Restrict mining to these item ids (default: all items).
    max_len:
        Maximum itemset length.
    with_covers:
        When True the result maps itemsets to their covers
        (support = ``cover.support()``); otherwise to integer supports.
    within:
        Optional root cover: supports and covers are evaluated inside
        this transaction subset only (every item cover is intersected
        with it before the DFS).  The incremental cube fill uses this
        to mine the SA refinements of one context without touching
        rows outside the context's cover.
    workers:
        When given, fan the root subtrees across a ``multiprocessing``
        pool (see :mod:`repro.itemsets.parallel`); the result —
        itemsets, emission order, supports, covers — is bit-identical
        to the sequential mine.  ``None`` (default) mines in-process.
    """
    if minsup < 1:
        raise MiningError(f"minsup must be >= 1, got {minsup}")
    if workers is not None:
        from repro.itemsets.parallel import mine_eclat_parallel

        return mine_eclat_parallel(
            db, minsup, items=items, max_len=max_len,
            with_covers=with_covers, within=within, workers=workers,
        )
    frequent = frequent_triples(db, minsup, items=items, within=within)

    out_covers: dict[Itemset, Cover] = {}
    out_supports: dict[Itemset, int] = {}

    def record(itemset: "tuple[int, ...]", cover: Cover, support: int) -> None:
        key = frozenset(itemset)
        if with_covers:
            out_covers[key] = cover
        else:
            out_supports[key] = support

    for pos in range(len(frequent)):
        mine_root(frequent, pos, minsup, max_len, record)
    return out_covers if with_covers else out_supports


def typed_frequent_triples(
    db: TransactionDatabase,
    minsup: int,
    sa_ids: "list[int]",
    ca_ids: "list[int]",
) -> "list[FrequentTriple]":
    """Frequent 1-items of the typed lattice, support-sorted.

    Candidates are the SA ids followed by the CA ids (the order
    ``mine_eclat_typed`` has always used); the stable support sort makes
    the resulting root order — and with it the whole emission order —
    deterministic and codec-independent.
    """
    covers = db.covers()
    supports = db.cached_item_supports()
    frequent = [
        (i, covers[i], int(supports[i]))
        for i in list(sa_ids) + list(ca_ids)
        if supports[i] >= minsup
    ]
    frequent.sort(key=lambda triple: triple[2])
    return frequent


def _dfs_typed(
    prefix: "tuple[int, ...]",
    prefix_cover: Cover,
    n_sa: int,
    n_ca: int,
    tail: "list[FrequentTriple]",
    sa_set: "frozenset[int] | set[int]",
    minsup: int,
    max_sa: "int | None",
    max_ca: "int | None",
    record: "Record",
) -> None:
    """The typed eclat DFS kernel (per-kind caps enforced mid-search)."""
    for pos, (item, item_cover, _) in enumerate(tail):
        if item in sa_set:
            d_sa, d_ca = 1, 0
        else:
            d_sa, d_ca = 0, 1
        if max_sa is not None and n_sa + d_sa > max_sa:
            continue
        if max_ca is not None and n_ca + d_ca > max_ca:
            continue
        cover = prefix_cover & item_cover
        support = cover.support()
        if support < minsup:
            continue
        itemset = prefix + (item,)
        record(itemset, cover, support)
        _dfs_typed(itemset, cover, n_sa + d_sa, n_ca + d_ca,
                   tail[pos + 1:], sa_set, minsup, max_sa, max_ca, record)


def mine_typed_root(
    frequent: "list[FrequentTriple]",
    pos: int,
    full_cover: Cover,
    sa_set: "frozenset[int] | set[int]",
    minsup: int,
    max_sa: "int | None",
    max_ca: "int | None",
    record: "Record",
) -> None:
    """Emit the typed subtree rooted at ``frequent[pos]``.

    This is the top-level iteration of the typed DFS unrolled to one
    root position, so a parallel driver can run disjoint root ranges
    through the identical kernel and splice in position order.
    """
    item, item_cover, _ = frequent[pos]
    if item in sa_set:
        n_sa, n_ca = 1, 0
    else:
        n_sa, n_ca = 0, 1
    if max_sa is not None and n_sa > max_sa:
        return
    if max_ca is not None and n_ca > max_ca:
        return
    cover = full_cover & item_cover
    support = cover.support()
    if support < minsup:
        return
    record((item,), cover, support)
    _dfs_typed((item,), cover, n_sa, n_ca, frequent[pos + 1:],
               sa_set, minsup, max_sa, max_ca, record)


def mine_eclat_typed(
    db: TransactionDatabase,
    minsup: int,
    sa_ids: "list[int]",
    ca_ids: "list[int]",
    max_sa: "int | None" = None,
    max_ca: "int | None" = None,
    workers: "int | None" = None,
) -> "dict[Itemset, Cover]":
    """Eclat DFS constrained by per-kind item caps (the cube's lattice).

    Cube coordinates are typed: a cell has at most ``max_sa`` SA items
    and ``max_ca`` CA items.  Enforcing the caps *during* the DFS — not
    by post-filtering an unconstrained mine — keeps the search inside
    the exact coordinate lattice the cube materialises, which is where
    the builder's advantage over naive enumeration comes from (support
    pruning cuts subtrees, cover intersections are shared with the
    parent prefix).

    Returns covers for every frequent itemset within the caps,
    including the empty itemset's all-true cover.  ``workers=`` fans
    the root subtrees across processes with bit-identical output (see
    :mod:`repro.itemsets.parallel`).
    """
    if minsup < 1:
        raise MiningError(f"minsup must be >= 1, got {minsup}")
    if workers is not None:
        from repro.itemsets.parallel import mine_eclat_typed_parallel

        return mine_eclat_typed_parallel(
            db, minsup, sa_ids=sa_ids, ca_ids=ca_ids,
            max_sa=max_sa, max_ca=max_ca, workers=workers,
        )
    frequent = typed_frequent_triples(db, minsup, sa_ids, ca_ids)
    sa_set = set(sa_ids)
    full_cover = db.full_cover()

    out: dict[Itemset, Cover] = {frozenset(): full_cover}

    def record(itemset: "tuple[int, ...]", cover: Cover, support: int) -> None:
        out[frozenset(itemset)] = cover

    for pos in range(len(frequent)):
        mine_typed_root(frequent, pos, full_cover, sa_set, minsup,
                        max_sa, max_ca, record)
    return out


def closure_of(
    db: TransactionDatabase,
    cover: "Cover",
    candidate_items: "list[int] | None" = None,
) -> Itemset:
    """The closure of a cover: all items present in *every* covered row.

    For an itemset X with cover c, ``closure_of(db, c)`` is the unique
    maximal itemset with the same cover — the canonical representative the
    closed-itemset cube stores.  ``cover`` may also be a dense boolean
    array; it is coerced into the database's codec.
    """
    covers = db.covers()
    cover = db.as_cover(cover)
    support = cover.support()
    ids = candidate_items if candidate_items is not None else range(db.n_items)
    closed = [
        i for i in ids if (cover & covers[i]).support() == support
    ]
    return frozenset(closed)
