"""EWAH-style word-aligned compressed bitmaps: the ``"ewah"`` cover codec.

The original SCube uses JavaEWAH compressed bitmaps for item covers
(paper footnote 6).  This module reimplements the scheme in pure Python:
a bitmap is a sequence of *segments*, each a run-length word (a run of
``fill_words`` identical 64-bit words, all-zero or all-one) followed by a
list of literal 64-bit words.  Sparse or clustered covers compress to a
handful of words; logical operations stream over words.

:class:`EWAHBitmap` implements the :class:`~repro.itemsets.coverset.Cover`
interface, so the whole pipeline — miners, closure operator, cube
builders — runs unchanged on compressed covers via
``TransactionDatabase(..., codec="ewah")``.  The packed-word
:class:`~repro.itemsets.coverset.CoverSet` remains the default fast
path; EWAH reproduces the paper's engineering choice and trades
throughput (pure-Python word streaming) for compressed storage, a
trade-off quantified in benchmarks E13 and ``bench_cover_engine``.
Bits past ``size`` are kept at zero by every constructor and operation,
so :meth:`count` never over-counts.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import MiningError
from repro.itemsets.coverset import Cover

WORD_BITS = 64
FULL_WORD = (1 << WORD_BITS) - 1


class EWAHBitmap(Cover):
    """A compressed bitmap over ``size`` bits."""

    __slots__ = ("size", "_segments")

    def __init__(self, size: int = 0):
        if size < 0:
            raise MiningError("bitmap size must be non-negative")
        self.size = size
        # Each segment: [fill_bit, fill_words, literal_words]
        self._segments: list[list] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_bools(cls, bits: Iterable[bool] | np.ndarray) -> "EWAHBitmap":
        """Build from a boolean array."""
        arr = np.asarray(bits, dtype=bool)
        bitmap = cls(size=len(arr))
        n_words = (len(arr) + WORD_BITS - 1) // WORD_BITS
        if n_words == 0:
            return bitmap
        padded = np.zeros(n_words * WORD_BITS, dtype=bool)
        padded[: len(arr)] = arr
        words = np.packbits(padded, bitorder="little").view("<u8")
        for w in words:
            bitmap._append_word(int(w))
        return bitmap

    # from_indices is inherited from Cover (bool-array build + bounds check).

    @classmethod
    def zeros(cls, size: int) -> "EWAHBitmap":
        """An all-clear bitmap."""
        bitmap = cls(size=size)
        n_words = (size + WORD_BITS - 1) // WORD_BITS
        if n_words:
            bitmap._append_fill(0, n_words)
        return bitmap

    @classmethod
    def ones(cls, size: int) -> "EWAHBitmap":
        """An all-set bitmap (bits past ``size`` stay clear)."""
        return cls.zeros(size).logical_not()

    # ------------------------------------------------------------------
    # Internal word-level builders
    # ------------------------------------------------------------------

    def _append_word(self, word: int) -> None:
        if word == 0:
            self._append_fill(0, 1)
        elif word == FULL_WORD:
            self._append_fill(1, 1)
        else:
            if not self._segments:
                self._segments.append([0, 0, []])
            self._segments[-1][2].append(word)

    def _append_fill(self, bit: int, n_words: int) -> None:
        if self._segments:
            last = self._segments[-1]
            if not last[2] and (last[0] == bit or last[1] == 0):
                last[0] = bit
                last[1] += n_words
                return
        self._segments.append([bit, n_words, []])

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def n_words(self) -> int:
        """Number of (uncompressed) 64-bit words covering ``size`` bits."""
        return (self.size + WORD_BITS - 1) // WORD_BITS

    def memory_words(self) -> int:
        """Compressed footprint: one marker word per segment plus literals."""
        return sum(1 + len(seg[2]) for seg in self._segments)

    def compression_ratio(self) -> float:
        """Uncompressed / compressed word counts (higher = better)."""
        used = self.memory_words()
        return self.n_words / used if used else float("inf")

    def iter_words(self) -> Iterator[int]:
        """Yield every 64-bit word, fills expanded."""
        for bit, fill_words, literals in self._segments:
            fill = FULL_WORD if bit else 0
            for _ in range(fill_words):
                yield fill
            yield from literals

    def count(self) -> int:
        """Number of set bits (popcount)."""
        total = 0
        for bit, fill_words, literals in self._segments:
            if bit:
                total += fill_words * WORD_BITS
            for word in literals:
                total += word.bit_count()
        return total

    def support(self) -> int:
        """:class:`~repro.itemsets.coverset.Cover` interface: popcount."""
        return self.count()

    def get(self, index: int) -> bool:
        """Value of bit ``index``."""
        if not 0 <= index < self.size:
            raise MiningError(f"bit index {index} out of range [0, {self.size})")
        word_idx, bit_idx = divmod(index, WORD_BITS)
        pos = 0
        for bit, fill_words, literals in self._segments:
            if word_idx < pos + fill_words:
                return bool(bit)
            pos += fill_words
            if word_idx < pos + len(literals):
                return bool((literals[word_idx - pos] >> bit_idx) & 1)
            pos += len(literals)
        return False

    def to_bools(self) -> np.ndarray:
        """Materialise into a dense boolean array of length ``size``."""
        words = np.fromiter(self.iter_words(), dtype=np.uint64, count=self.n_words)
        if len(words) == 0:
            return np.zeros(self.size, dtype=bool)
        bits = np.unpackbits(words.view(np.uint8), bitorder="little")
        return bits[: self.size].astype(bool)

    def to_indices(self) -> np.ndarray:
        """Positions of set bits."""
        return np.flatnonzero(self.to_bools())

    # ------------------------------------------------------------------
    # Logical operations
    # ------------------------------------------------------------------

    def _check_size(self, other: "EWAHBitmap") -> None:
        if self.size != other.size:
            raise MiningError(
                f"bitmap sizes differ: {self.size} vs {other.size}"
            )

    def logical_and(self, other: "EWAHBitmap") -> "EWAHBitmap":
        """Bitwise AND."""
        self._check_size(other)
        out = EWAHBitmap(self.size)
        for a, b in zip(self.iter_words(), other.iter_words()):
            out._append_word(a & b)
        return out

    def logical_or(self, other: "EWAHBitmap") -> "EWAHBitmap":
        """Bitwise OR."""
        self._check_size(other)
        out = EWAHBitmap(self.size)
        for a, b in zip(self.iter_words(), other.iter_words()):
            out._append_word(a | b)
        return out

    def logical_xor(self, other: "EWAHBitmap") -> "EWAHBitmap":
        """Bitwise XOR."""
        self._check_size(other)
        out = EWAHBitmap(self.size)
        for a, b in zip(self.iter_words(), other.iter_words()):
            out._append_word(a ^ b)
        return out

    def logical_andnot(self, other: "EWAHBitmap") -> "EWAHBitmap":
        """Bitwise AND NOT (``self & ~other``)."""
        self._check_size(other)
        out = EWAHBitmap(self.size)
        for a, b in zip(self.iter_words(), other.iter_words()):
            out._append_word(a & ~b & FULL_WORD)
        return out

    def logical_not(self) -> "EWAHBitmap":
        """Bitwise NOT within ``size`` (padding bits stay clear)."""
        out = EWAHBitmap(self.size)
        n_words = self.n_words
        tail_bits = self.size - (n_words - 1) * WORD_BITS if n_words else 0
        tail_mask = (1 << tail_bits) - 1 if tail_bits else FULL_WORD
        for k, word in enumerate(self.iter_words()):
            flipped = ~word & FULL_WORD
            if k == n_words - 1:
                flipped &= tail_mask
            out._append_word(flipped)
        return out

    def intersect_count(self, other: "EWAHBitmap") -> int:
        """Popcount of the AND, without materialising the result bitmap."""
        self._check_size(other)
        total = 0
        for a, b in zip(self.iter_words(), other.iter_words()):
            total += (a & b).bit_count()
        return total

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------

    def __and__(self, other: "EWAHBitmap") -> "EWAHBitmap":
        return self.logical_and(other)

    def __or__(self, other: "EWAHBitmap") -> "EWAHBitmap":
        return self.logical_or(other)

    def __xor__(self, other: "EWAHBitmap") -> "EWAHBitmap":
        return self.logical_xor(other)

    def __invert__(self) -> "EWAHBitmap":
        return self.logical_not()

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EWAHBitmap):
            return NotImplemented
        if self.size != other.size:
            return False
        return all(a == b for a, b in zip(self.iter_words(), other.iter_words()))

    def __hash__(self) -> int:
        return hash((self.size, tuple(self.iter_words())))

    def __repr__(self) -> str:
        return (
            f"EWAHBitmap(size={self.size}, set={self.count()}, "
            f"words={self.memory_words()}/{self.n_words})"
        )
