"""Uniform mining façade over the three backend algorithms.

The cube builder (and library users) call :func:`mine` with a backend
name; the backends are interchangeable and return identical results
(property-tested), differing only in complexity profile:

* ``eclat`` — vertical DFS with NumPy covers (default; covers available);
* ``fpgrowth`` — FP-tree, best at low minsup on long transactions;
* ``apriori`` — level-wise baseline, quadratic candidate generation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import MiningError
from repro.itemsets.apriori import mine_apriori
from repro.itemsets.closed import filter_closed
from repro.itemsets.coverset import Cover
from repro.itemsets.eclat import mine_eclat
from repro.itemsets.fpgrowth import mine_fpgrowth
from repro.itemsets.transactions import TransactionDatabase

Itemset = frozenset[int]

BACKENDS = ("eclat", "fpgrowth", "apriori")


def absolute_minsup(minsup: "int | float", n_transactions: int) -> int:
    """Normalise a support threshold.

    Values in ``(0, 1)`` are relative (fraction of transactions, rounded
    up); integer values >= 1 are absolute counts.
    """
    if isinstance(minsup, float) and 0 < minsup < 1:
        return max(1, math.ceil(minsup * n_transactions))
    if minsup >= 1 and float(minsup).is_integer():
        return int(minsup)
    if isinstance(minsup, float) and minsup >= 1:
        raise MiningError(
            f"minsup {minsup} is a non-integer float >= 1: absolute "
            "thresholds must be whole counts (e.g. 2, not 2.5) and "
            "relative thresholds must be fractions in (0,1)"
        )
    raise MiningError(
        f"minsup must be a fraction in (0,1) or an integer >= 1, got {minsup}"
    )


@dataclass
class MiningResult:
    """Frequent itemsets with supports and (optionally) covers."""

    supports: dict[Itemset, int]
    minsup: int
    backend: str
    closed_only: bool
    covers: "dict[Itemset, Cover] | None" = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.supports)

    def support(self, itemset: Itemset) -> int:
        """Support of ``itemset`` (0 when infrequent / absent)."""
        return self.supports.get(frozenset(itemset), 0)

    def itemsets_of_size(self, k: int) -> list[Itemset]:
        """All mined itemsets with exactly ``k`` items."""
        return [s for s in self.supports if len(s) == k]


def mine(
    db: TransactionDatabase,
    minsup: "int | float",
    backend: str = "eclat",
    closed: bool = False,
    items: "list[int] | None" = None,
    max_len: "int | None" = None,
    with_covers: bool = False,
) -> MiningResult:
    """Mine frequent (optionally closed) itemsets from ``db``.

    Parameters
    ----------
    minsup:
        Relative (fraction) or absolute (count) support threshold.
    backend:
        One of ``eclat``, ``fpgrowth``, ``apriori``.
    closed:
        Keep only closed itemsets.
    with_covers:
        Also return covers (forces the ``eclat`` backend, the only
        cover-producing one).
    """
    if backend not in BACKENDS:
        raise MiningError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    # Fractions resolve against the *live* rows so restricted views
    # (temporal snapshots) are thresholded at their own scale.
    threshold = absolute_minsup(minsup, db.n_active)
    # Closedness of a size-k itemset depends on its (k+1)-supersets, so a
    # closed mine under a length cap must look one level deeper.
    mine_len = max_len + 1 if (closed and max_len is not None) else max_len
    covers = None
    if with_covers:
        covers = mine_eclat(db, threshold, items=items, max_len=mine_len,
                            with_covers=True)
        supports = {k: v.support() for k, v in covers.items()}
        backend = "eclat"
    elif backend == "eclat":
        supports = mine_eclat(db, threshold, items=items, max_len=mine_len)
    elif backend == "fpgrowth":
        supports = mine_fpgrowth(db, threshold, items=items, max_len=mine_len)
    else:
        supports = mine_apriori(db, threshold, items=items, max_len=mine_len)
    if closed:
        supports = filter_closed(supports)
    if max_len is not None:
        supports = {k: v for k, v in supports.items() if len(k) <= max_len}
    if covers is not None:
        covers = {k: v for k, v in covers.items() if k in supports}
    return MiningResult(supports, threshold, backend, closed, covers)
