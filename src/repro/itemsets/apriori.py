"""Apriori frequent-itemset mining (level-wise baseline).

Kept as the textbook baseline and as a cross-check oracle for the
vertical (Eclat) and FP-growth miners; the cube builder never uses it on
large inputs.
"""

from __future__ import annotations

from itertools import combinations

from repro.errors import MiningError
from repro.itemsets.transactions import TransactionDatabase

Itemset = frozenset[int]


def _candidate_join(level: list[tuple[int, ...]], k: int) -> set[tuple[int, ...]]:
    """Join step: merge sorted (k-1)-itemsets sharing a (k-2)-prefix."""
    candidates: set[tuple[int, ...]] = set()
    previous = set(level)
    for a_idx in range(len(level)):
        for b_idx in range(a_idx + 1, len(level)):
            a, b = level[a_idx], level[b_idx]
            if a[: k - 2] != b[: k - 2]:
                continue
            merged = tuple(sorted(set(a) | set(b)))
            if len(merged) != k:
                continue
            # Prune step: every (k-1)-subset must be frequent.
            if all(sub in previous for sub in combinations(merged, k - 1)):
                candidates.add(merged)
    return candidates


def mine_apriori(
    db: TransactionDatabase,
    minsup: int,
    items: "list[int] | None" = None,
    max_len: "int | None" = None,
) -> dict[Itemset, int]:
    """Mine all frequent itemsets with absolute support >= ``minsup``.

    Parameters
    ----------
    items:
        Restrict mining to these item ids (default: all items).
    max_len:
        Maximum itemset length (default: unbounded).

    Returns
    -------
    dict mapping each frequent itemset (as a frozenset of item ids,
    excluding the empty set) to its absolute support.
    """
    if minsup < 1:
        raise MiningError(f"minsup must be >= 1, got {minsup}")
    allowed = set(items) if items is not None else None
    rows: list[frozenset[int]] = []
    for row in db.rows:
        filtered = (
            frozenset(row)
            if allowed is None
            else frozenset(i for i in row if i in allowed)
        )
        rows.append(filtered)

    supports: dict[Itemset, int] = {}
    singles: dict[int, int] = {}
    for row in rows:
        for i in row:
            singles[i] = singles.get(i, 0) + 1
    level = sorted((i,) for i, s in singles.items() if s >= minsup)
    for single in level:
        supports[frozenset(single)] = singles[single[0]]

    k = 2
    while level and (max_len is None or k <= max_len):
        candidates = _candidate_join(level, k)
        if not candidates:
            break
        counts = {c: 0 for c in candidates}
        candidate_sets = {c: frozenset(c) for c in candidates}
        for row in rows:
            if len(row) < k:
                continue
            for cand, cand_set in candidate_sets.items():
                if cand_set <= row:
                    counts[cand] += 1
        level = sorted(c for c, n in counts.items() if n >= minsup)
        for cand in level:
            supports[frozenset(cand)] = counts[cand]
        k += 1
    return supports
