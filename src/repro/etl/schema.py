"""Schema declarations: which attributes are SA, CA, unit, id.

The segregation data cube distinguishes two dimension types (paper §2):

* **segregation attributes** (SA) describe the potentially segregated
  minority (sex, age, birthplace, ...);
* **context attributes** (CA) describe where segregation may appear
  (region, sector, ...).

A schema attaches these roles, plus the special ``unit`` and ``id``
roles, to the columns of a :class:`~repro.etl.table.Table`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import SchemaError
from repro.etl.table import CategoricalColumn, IntColumn, MultiValuedColumn, Table


class Role(enum.Enum):
    """The role a column plays in segregation analysis."""

    SEGREGATION = "SA"
    CONTEXT = "CA"
    UNIT = "unit"
    ID = "id"
    IGNORE = "ignore"


@dataclass(frozen=True)
class AttributeSpec:
    """Declares one attribute: its name, role and multiplicity."""

    name: str
    role: Role
    multi_valued: bool = False

    def __post_init__(self) -> None:
        if self.role in (Role.UNIT, Role.ID) and self.multi_valued:
            raise SchemaError(f"{self.role.value} attribute {self.name!r} "
                              "cannot be multi-valued")


@dataclass
class Schema:
    """An ordered collection of :class:`AttributeSpec`.

    At most one ``UNIT`` and one ``ID`` attribute are allowed; at least
    one SA attribute is required for segregation analysis proper, but the
    schema itself does not enforce that (intermediate tables may not have
    SA columns yet).
    """

    specs: list[AttributeSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [s.name for s in self.specs]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        if len(self._names_by_role(Role.UNIT)) > 1:
            raise SchemaError("schema declares more than one unit attribute")
        if len(self._names_by_role(Role.ID)) > 1:
            raise SchemaError("schema declares more than one id attribute")

    @classmethod
    def build(
        cls,
        segregation: Iterable[str] = (),
        context: Iterable[str] = (),
        unit: str | None = None,
        id_: str | None = None,
        multi_valued: Iterable[str] = (),
    ) -> "Schema":
        """Convenience constructor from plain name lists."""
        multi = set(multi_valued)
        specs = [
            AttributeSpec(n, Role.SEGREGATION, multi_valued=n in multi)
            for n in segregation
        ]
        specs += [
            AttributeSpec(n, Role.CONTEXT, multi_valued=n in multi) for n in context
        ]
        if unit is not None:
            specs.append(AttributeSpec(unit, Role.UNIT))
        if id_ is not None:
            specs.append(AttributeSpec(id_, Role.ID))
        return cls(specs)

    def _names_by_role(self, role: Role) -> list[str]:
        return [s.name for s in self.specs if s.role is role]

    @property
    def sa_names(self) -> list[str]:
        """Names of segregation attributes, in declaration order."""
        return self._names_by_role(Role.SEGREGATION)

    @property
    def ca_names(self) -> list[str]:
        """Names of context attributes, in declaration order."""
        return self._names_by_role(Role.CONTEXT)

    @property
    def unit_name(self) -> str:
        """Name of the unit attribute; raises if none is declared."""
        units = self._names_by_role(Role.UNIT)
        if not units:
            raise SchemaError("schema has no unit attribute")
        return units[0]

    @property
    def id_name(self) -> str:
        """Name of the id attribute; raises if none is declared."""
        ids = self._names_by_role(Role.ID)
        if not ids:
            raise SchemaError("schema has no id attribute")
        return ids[0]

    def spec(self, name: str) -> AttributeSpec:
        """Return the spec for ``name``; raises :class:`SchemaError` if absent."""
        for s in self.specs:
            if s.name == name:
                return s
        raise SchemaError(f"attribute {name!r} not in schema")

    def with_spec(self, spec: AttributeSpec) -> "Schema":
        """Return a new schema with ``spec`` appended (or replacing same name)."""
        specs = [s for s in self.specs if s.name != spec.name]
        specs.append(spec)
        return Schema(specs)

    def validate(self, table: Table) -> None:
        """Check that ``table`` provides every declared attribute correctly.

        Raises
        ------
        SchemaError
            If a column is missing, a unit/id column is not integer, or a
            multiplicity declaration does not match the stored column kind.
        """
        for s in self.specs:
            if s.name not in table:
                raise SchemaError(f"table missing column {s.name!r}")
            col = table.column(s.name)
            if s.role in (Role.UNIT, Role.ID) and not isinstance(col, IntColumn):
                raise SchemaError(
                    f"{s.role.value} column {s.name!r} must be integer, got {col.kind}"
                )
            if s.role in (Role.SEGREGATION, Role.CONTEXT):
                if s.multi_valued and not isinstance(col, MultiValuedColumn):
                    raise SchemaError(
                        f"column {s.name!r} declared multi-valued but stored as "
                        f"{col.kind}"
                    )
                if not s.multi_valued and not isinstance(col, CategoricalColumn):
                    raise SchemaError(
                        f"column {s.name!r} declared single-valued but stored as "
                        f"{col.kind}"
                    )

    def analysis_names(self) -> list[str]:
        """All SA and CA attribute names, SA first."""
        return self.sa_names + self.ca_names
