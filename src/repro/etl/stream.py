"""Out-of-core ingestion: CSV and SQL sources as streams of table chunks.

:func:`repro.etl.csvio.read_table` and :func:`repro.etl.sqlio.read_query`
materialise the whole input — per-cell Python objects for every row —
before a single transaction is encoded.  For 10M-row inputs that is the
dominant memory cost of the pipeline.  This module streams the same
sources as fixed-size :class:`~repro.etl.table.Table` chunks instead:

* :func:`stream_csv` — chunked counterpart of ``read_table`` (same
  multi-valued / integer column conventions, same blank-line and
  row-width semantics);
* :func:`stream_query` — chunked counterpart of ``read_query`` over a
  SQLite cursor (``fetchmany``), with the integer-column auto-detection
  decided on the first chunk and then *locked* so every chunk types its
  columns identically;
* :func:`iter_chunks` — split an already-materialised table (tests,
  small inputs).

Chunks feed :meth:`repro.itemsets.transactions.TransactionDatabase.from_chunks`
(or an :class:`~repro.itemsets.transactions.EncodeAccumulator` directly),
which folds them into a CSR transaction database bit-identical to the
one-shot encode — only ever holding one chunk of decoded cells plus the
accumulated (spillable) index buffers in memory.

Column typing is per-call, not inferred per chunk: pass the
``multi_valued`` / ``integer`` name sets explicitly, or pass a
``schema`` and both are derived from it (multi-valued flags; unit and
id columns as integers), so a chunk can never flip a column's kind
midway through the stream.
"""

from __future__ import annotations

import csv
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import TableError
from repro.etl.csvio import SET_SEPARATOR, _parse_cell
from repro.etl.schema import Role, Schema
from repro.etl.table import (
    CategoricalColumn,
    Column,
    IntColumn,
    MultiValuedColumn,
    Table,
)

#: Default rows per chunk: large enough to amortise per-chunk numpy
#: overheads, small enough that one chunk's decoded cells stay a few MB.
DEFAULT_CHUNK_ROWS = 65536


def _schema_column_sets(schema: Schema) -> "tuple[set[str], set[str]]":
    """Derive the (multi_valued, integer) column-name sets of a schema."""
    multi = {s.name for s in schema.specs if s.multi_valued}
    ints = {s.name for s in schema.specs if s.role in (Role.UNIT, Role.ID)}
    return multi, ints


def _build_columns(
    names: "list[str]",
    values: "dict[str, list]",
    multi: "set[str]",
    ints: "set[str]",
) -> Table:
    """Type one chunk's raw per-column value lists into a Table."""
    built: "dict[str, Column]" = {}
    for name in names:
        if name in multi:
            built[name] = MultiValuedColumn.from_values(values[name])
        elif name in ints:
            built[name] = IntColumn.from_values(values[name])
        else:
            built[name] = CategoricalColumn.from_values(values[name])
    return Table(built)


def stream_csv(
    path: "str | Path",
    schema: "Schema | None" = None,
    multi_valued: "Iterable[str]" = (),
    integer: "Iterable[str]" = (),
    delimiter: str = ",",
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> "Iterator[Table]":
    """Stream a headed CSV file as tables of at most ``chunk_rows`` rows.

    Cell semantics match :func:`~repro.etl.csvio.read_table` exactly —
    ``|``-separated sets for ``multi_valued`` columns, integer parsing
    for ``integer`` columns, blank lines skipped (or an empty cell for a
    single-column file), row-width mismatches rejected — so
    concatenating the chunks reproduces ``read_table`` bit for bit.
    When ``schema`` is given, the multi-valued and integer column sets
    are derived from it instead.  A data-less file yields one empty
    chunk (so downstream schema validation still sees the columns).
    """
    if chunk_rows < 1:
        raise TableError("chunk_rows must be positive")
    if schema is not None:
        multi, ints = _schema_column_sets(schema)
    else:
        multi, ints = set(multi_valued), set(integer)
    path = Path(path)
    with path.open(newline="") as f:
        reader = csv.reader(f, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise TableError(f"{path} is empty") from None
        columns: "dict[str, list]" = {name: [] for name in header}
        pending = 0
        yielded = False
        for row in reader:
            if not row:
                if len(header) == 1:
                    row = [""]
                else:
                    continue
            if len(row) != len(header):
                raise TableError(
                    f"{path}: row of width {len(row)} does not match "
                    f"header of width {len(header)}"
                )
            for name, cell in zip(header, row):
                columns[name].append(
                    _parse_cell(cell, multi=name in multi,
                                integer=name in ints)
                )
            pending += 1
            if pending == chunk_rows:
                yield _build_columns(header, columns, multi, ints)
                columns = {name: [] for name in header}
                pending = 0
                yielded = True
        if pending or not yielded:
            yield _build_columns(header, columns, multi, ints)


def stream_query(
    database,
    sql: str,
    schema: "Schema | None" = None,
    multi_valued: "Iterable[str]" = (),
    integer: "Iterable[str]" = (),
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> "Iterator[Table]":
    """Stream a SQL result set as tables of at most ``chunk_rows`` rows.

    The chunked counterpart of :func:`~repro.etl.sqlio.read_query`:
    rows come off the cursor via ``fetchmany`` so the full result set is
    never materialised.  Cell conventions match ``read_query`` — multi-
    valued text cells split on ``|`` (None/empty -> empty set), None
    categorical cells become ``""``.  Columns not named in ``integer``
    are auto-detected as integer when the **first** chunk holds only
    ints; the decision is then locked, and a later chunk violating it
    raises :class:`~repro.errors.TableError` (instead of silently
    flipping the column kind midway).  An empty result set yields one
    empty chunk.
    """
    from repro.etl.sqlio import _connect

    if chunk_rows < 1:
        raise TableError("chunk_rows must be positive")
    if schema is not None:
        multi, ints = _schema_column_sets(schema)
    else:
        multi, ints = set(multi_valued), set(integer)
    conn, owned = _connect(database)
    try:
        cursor = conn.execute(sql)
        if cursor.description is None:
            raise TableError(f"query returned no result set: {sql!r}")
        names = [d[0] for d in cursor.description]
        locked_ints: "set[str] | None" = None
        yielded = False
        while True:
            rows = cursor.fetchmany(chunk_rows)
            if not rows:
                if not yielded:
                    yield _build_table_sql(names, [], multi, ints)
                break
            if locked_ints is None:
                locked_ints = set(ints)
                for j, name in enumerate(names):
                    if name in multi or name in locked_ints:
                        continue
                    if all(
                        isinstance(r[j], int) and not isinstance(r[j], bool)
                        for r in rows
                    ):
                        locked_ints.add(name)
            yield _build_table_sql(names, rows, multi, locked_ints)
            yielded = True
    finally:
        if owned:
            conn.close()


def _build_table_sql(
    names: "list[str]",
    rows: "list[tuple]",
    multi: "set[str]",
    ints: "set[str]",
) -> Table:
    """Type one SQL chunk with the locked column decisions."""
    built: "dict[str, Column]" = {}
    for j, name in enumerate(names):
        values = [r[j] for r in rows]
        if name in multi:
            built[name] = MultiValuedColumn.from_values(
                [
                    frozenset(str(v).split(SET_SEPARATOR))
                    if v not in (None, "")
                    else frozenset()
                    for v in values
                ]
            )
        elif name in ints:
            try:
                built[name] = IntColumn.from_values([int(v) for v in values])
            except (TypeError, ValueError):
                raise TableError(
                    f"column {name!r} held only integers in an earlier "
                    "chunk but now holds non-integer values; pass the "
                    "column explicitly via integer= or cast it in SQL"
                ) from None
        else:
            built[name] = CategoricalColumn.from_values(
                ["" if v is None else v for v in values]
            )
    return Table(built)


def iter_chunks(table: Table, chunk_rows: int) -> "Iterator[Table]":
    """Split an in-memory table into row chunks (an empty table yields
    one empty chunk).

    Column category universes are re-derived per chunk from the decoded
    values, exactly as a freshly parsed source chunk would carry them —
    so ``iter_chunks`` is a faithful stand-in for the file readers in
    chunked-encode parity tests.
    """
    if chunk_rows < 1:
        raise TableError("chunk_rows must be positive")
    n = len(table)
    names = table.names
    columns = {name: table.column(name) for name in names}
    multi = {n_ for n_, c in columns.items()
             if isinstance(c, MultiValuedColumn)}
    ints = {n_ for n_, c in columns.items() if isinstance(c, IntColumn)}
    for a in range(0, max(n, 1), chunk_rows):
        b = min(n, a + chunk_rows)
        values = {
            name: [col[i] for i in range(a, b)]
            for name, col in columns.items()
        }
        yield _build_columns(names, values, multi, ints)


def encode_stream(
    chunks: "Iterable[Table]",
    schema: Schema,
    codec: str = "packed",
    spill_bytes: "int | None" = None,
    scratch_dir: "str | Path | None" = None,
):
    """Fold a chunk stream straight into a transaction database.

    Convenience alias of
    :meth:`~repro.itemsets.transactions.TransactionDatabase.from_chunks`
    living next to the readers, so the whole out-of-core path reads::

        db = encode_stream(stream_csv(path, schema=schema), schema)
    """
    from repro.itemsets.transactions import TransactionDatabase

    return TransactionDatabase.from_chunks(
        chunks, schema, codec=codec, spill_bytes=spill_bytes,
        scratch_dir=scratch_dir,
    )


__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "encode_stream",
    "iter_chunks",
    "stream_csv",
    "stream_query",
]
