"""Relational ETL substrate: tables, schemas, CSV I/O, binning, time.

This package plays the role of SCube's data pre-processing layer
(paper Fig. 3, "ETL"): it turns raw inputs into the ``finalTable``
consumed by the SegregationDataCubeBuilder.
"""

from repro.etl.builder import (
    UNIT_COLUMN,
    build_final_table,
    tabular_final_table,
)
from repro.etl.csvio import read_table, write_rows, write_table
from repro.etl.diff import (
    OPEN_END,
    OPEN_START,
    TableDiff,
    interval_bounds,
    valid_at,
)
from repro.etl.sqlio import read_query, write_table_sql
from repro.etl.stream import (
    DEFAULT_CHUNK_ROWS,
    encode_stream,
    iter_chunks,
    stream_csv,
    stream_query,
)
from repro.etl.discretize import (
    PAPER_AGE_EDGES,
    bin_labels,
    discretize,
    equal_width_edges,
    paper_age_column,
    quantile_edges,
)
from repro.etl.schema import AttributeSpec, Role, Schema
from repro.etl.table import (
    CategoricalColumn,
    Column,
    IntColumn,
    MultiValuedColumn,
    Table,
)
from repro.etl.temporal import (
    ALWAYS,
    Interval,
    MembershipEdge,
    TemporalMembership,
)

__all__ = [
    "ALWAYS",
    "AttributeSpec",
    "DEFAULT_CHUNK_ROWS",
    "CategoricalColumn",
    "Column",
    "IntColumn",
    "Interval",
    "MembershipEdge",
    "MultiValuedColumn",
    "OPEN_END",
    "OPEN_START",
    "PAPER_AGE_EDGES",
    "Role",
    "Schema",
    "Table",
    "TableDiff",
    "TemporalMembership",
    "UNIT_COLUMN",
    "bin_labels",
    "build_final_table",
    "discretize",
    "encode_stream",
    "equal_width_edges",
    "iter_chunks",
    "interval_bounds",
    "paper_age_column",
    "quantile_edges",
    "read_query",
    "read_table",
    "stream_csv",
    "stream_query",
    "tabular_final_table",
    "valid_at",
    "write_rows",
    "write_table_sql",
    "write_table",
]
