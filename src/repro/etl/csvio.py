"""CSV reading and writing for SCube inputs and outputs.

The SCube architecture (paper Fig. 2/3) exchanges every intermediate
artefact as CSV: ``individual.csv``, ``group.csv``,
``individualGroup.csv`` (membership), ``finalTable.csv`` and
``cube.csv``.  Multi-valued cells are serialised with an inner separator
(default ``|``), e.g. ``electricity|transports``.
"""

from __future__ import annotations

import csv
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.errors import TableError
from repro.etl.table import (
    CategoricalColumn,
    IntColumn,
    MultiValuedColumn,
    Table,
)

#: Inner separator for multi-valued cells.
SET_SEPARATOR = "|"


def _parse_cell(text: str, multi: bool, integer: bool) -> object:
    if multi:
        if text == "":
            return frozenset()
        return frozenset(text.split(SET_SEPARATOR))
    if integer:
        try:
            return int(text)
        except ValueError:
            raise TableError(f"expected integer cell, got {text!r}") from None
    return text


def read_table(
    path: str | Path,
    multi_valued: Iterable[str] = (),
    integer: Iterable[str] = (),
    delimiter: str = ",",
) -> Table:
    """Read a CSV file with a header row into a :class:`Table`.

    Parameters
    ----------
    multi_valued:
        Column names whose cells are ``|``-separated value sets.
    integer:
        Column names to parse as integers (ids, unit ids).
    """
    multi = set(multi_valued)
    ints = set(integer)
    path = Path(path)
    with path.open(newline="") as f:
        reader = csv.reader(f, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise TableError(f"{path} is empty") from None
        columns: dict[str, list[object]] = {name: [] for name in header}
        for row in reader:
            if not row:
                # csv yields [] for blank lines; for a single-column file
                # that is a legitimate empty cell (e.g. an empty value
                # set), otherwise it is a stray blank line to skip.
                if len(header) == 1:
                    row = [""]
                else:
                    continue
            if len(row) != len(header):
                raise TableError(
                    f"{path}: row of width {len(row)} does not match header "
                    f"of width {len(header)}"
                )
            for name, cell in zip(header, row):
                columns[name].append(
                    _parse_cell(cell, multi=name in multi, integer=name in ints)
                )
    built: dict[str, object] = {}
    for name, values in columns.items():
        if name in multi:
            built[name] = MultiValuedColumn.from_values(values)  # type: ignore[arg-type]
        elif name in ints:
            built[name] = IntColumn.from_values(values)  # type: ignore[arg-type]
        else:
            built[name] = CategoricalColumn.from_values(values)  # type: ignore[arg-type]
    return Table(built)  # type: ignore[arg-type]


def _format_cell(value: object) -> str:
    if isinstance(value, (frozenset, set)):
        return SET_SEPARATOR.join(sorted(str(v) for v in value))
    return str(value)


def write_table(table: Table, path: str | Path, delimiter: str = ",") -> None:
    """Write ``table`` to CSV with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as f:
        writer = csv.writer(f, delimiter=delimiter)
        writer.writerow(table.names)
        for row in table.iter_rows():
            writer.writerow([_format_cell(row[name]) for name in table.names])


def write_rows(
    rows: Iterable[Sequence[object]],
    header: Sequence[str],
    path: str | Path,
    delimiter: str = ",",
) -> None:
    """Write raw rows (any sequence of cells) with a header to CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as f:
        writer = csv.writer(f, delimiter=delimiter)
        writer.writerow(list(header))
        for row in rows:
            writer.writerow([_format_cell(cell) for cell in row])
