"""Row-level diffs between two temporal snapshots of one table.

The temporal workload (paper §3: membership pairs carry validity
intervals, a list of snapshot ``dates`` selects what to analyse) makes
every snapshot date a *row subset* of one union table: encode the union
once, then a date is just the boolean mask of rows whose interval
contains it.  :class:`TableDiff` captures what changed between two such
dates — the added and removed row sets and, projected through a
transaction database, the **affected item covers** — which is exactly
what the incremental cube fill (:mod:`repro.cube.incremental`) needs to
decide which contexts must be re-evaluated and which can be carried
over unchanged.

Open interval bounds (``None`` in :class:`~repro.etl.temporal.Interval`)
are represented by the int64 sentinels :data:`OPEN_START` /
:data:`OPEN_END` so validity tests stay vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from repro.errors import TableError
from repro.etl.temporal import Interval, TemporalMembership

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a layer cycle
    from repro.itemsets.coverset import Cover
    from repro.itemsets.transactions import TransactionDatabase

#: Sentinel for an open ``start`` bound ("since forever").
OPEN_START = np.iinfo(np.int64).min
#: Sentinel for an open ``end`` bound ("still valid").
OPEN_END = np.iinfo(np.int64).max


def interval_bounds(
    intervals: "Iterable[Interval | tuple[Optional[int], Optional[int]]]",
) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorize intervals into sentinel-encoded ``(starts, ends)`` arrays."""
    starts: list[int] = []
    ends: list[int] = []
    for interval in intervals:
        if isinstance(interval, Interval):
            start, end = interval.start, interval.end
        else:
            start, end = interval
        starts.append(OPEN_START if start is None else int(start))
        ends.append(OPEN_END if end is None else int(end))
    return (
        np.asarray(starts, dtype=np.int64),
        np.asarray(ends, dtype=np.int64),
    )


def valid_at(starts: np.ndarray, ends: np.ndarray, date: int) -> np.ndarray:
    """Boolean mask of rows whose half-open interval contains ``date``."""
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    if starts.shape != ends.shape:
        raise TableError(
            f"{len(starts)} interval starts for {len(ends)} ends"
        )
    return (starts <= date) & (date < ends)


@dataclass(frozen=True)
class TableDiff:
    """What changed in a temporal table between two snapshot dates.

    ``valid_old`` / ``valid_new`` are boolean row masks over the *union*
    table (one row per membership edge, whatever its validity); the
    derived views below are the currency of incremental maintenance:
    rows that appeared, rows that vanished, and the per-item covers
    restricted to the changed rows.
    """

    old_date: int
    new_date: int
    valid_old: np.ndarray
    valid_new: np.ndarray

    def __post_init__(self) -> None:
        old = np.asarray(self.valid_old, dtype=bool)
        new = np.asarray(self.valid_new, dtype=bool)
        if old.shape != new.shape:
            raise TableError(
                f"validity masks differ in length: {len(old)} vs {len(new)}"
            )
        object.__setattr__(self, "valid_old", old)
        object.__setattr__(self, "valid_new", new)

    @classmethod
    def between(
        cls,
        starts: np.ndarray,
        ends: np.ndarray,
        old_date: int,
        new_date: int,
    ) -> "TableDiff":
        """Diff two dates of a table with per-row validity intervals."""
        return cls(
            old_date=old_date,
            new_date=new_date,
            valid_old=valid_at(starts, ends, old_date),
            valid_new=valid_at(starts, ends, new_date),
        )

    @classmethod
    def from_membership(
        cls,
        membership: TemporalMembership,
        old_date: int,
        new_date: int,
    ) -> "TableDiff":
        """Diff two dates of a membership relation (row = edge order)."""
        starts, ends = interval_bounds(e.interval for e in membership)
        return cls.between(starts, ends, old_date, new_date)

    # -- row-level views ------------------------------------------------

    def __len__(self) -> int:
        return len(self.valid_old)

    @property
    def added(self) -> np.ndarray:
        """Row indices valid at ``new_date`` but not at ``old_date``."""
        return np.flatnonzero(self.valid_new & ~self.valid_old)

    @property
    def removed(self) -> np.ndarray:
        """Row indices valid at ``old_date`` but not at ``new_date``."""
        return np.flatnonzero(self.valid_old & ~self.valid_new)

    @property
    def changed_mask(self) -> np.ndarray:
        """Boolean mask of rows whose validity flipped between the dates."""
        return self.valid_old ^ self.valid_new

    @property
    def n_changed(self) -> int:
        return int(self.changed_mask.sum())

    def churn(self) -> float:
        """Changed rows as a fraction of the larger snapshot (0 when empty)."""
        base = max(int(self.valid_old.sum()), int(self.valid_new.sum()))
        return self.n_changed / base if base else 0.0

    # -- item-level projection ------------------------------------------

    def affected_items(
        self, db: "TransactionDatabase"
    ) -> "dict[int, Cover]":
        """Covers of the items that appear on at least one changed row.

        The returned cover of item ``i`` is ``cover(i)`` restricted to
        the changed rows — non-empty by construction.  An item absent
        from the result has a bit-identical restricted cover at both
        dates, so no itemset containing it can have changed; this is
        the pruning wedge the incremental fill drives through the
        context lattice.
        """
        changed = db.as_cover(self.changed_mask)
        out: "dict[int, Cover]" = {}
        for item_id, cover in db.covers().items():
            touched = cover & changed
            if touched.support() > 0:
                out[item_id] = touched
        return out
