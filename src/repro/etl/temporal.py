"""Temporal membership: validity intervals and snapshots.

The paper (§3, Inputs) allows membership pairs ``(individualID, groupID)``
to be labelled with a *time interval of validity*, enabling temporal
segregation analysis; a list of *snapshot dates* selects the membership
relations to analyse.  The Estonian case study uses a 20-year span.

Dates are modelled as plain integers (e.g. years, or ``date.toordinal()``
values); the library is agnostic to the granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.errors import TableError


@dataclass(frozen=True)
class Interval:
    """A half-open validity interval ``[start, end)``.

    ``None`` bounds mean "since forever" / "still valid".
    """

    start: Optional[int] = None
    end: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start is not None and self.end is not None and self.end <= self.start:
            raise TableError(
                f"interval end {self.end} must be after start {self.start}"
            )

    def contains(self, date: int) -> bool:
        """True if ``date`` falls inside the interval."""
        if self.start is not None and date < self.start:
            return False
        if self.end is not None and date >= self.end:
            return False
        return True

    def overlaps(self, other: "Interval") -> bool:
        """True if the two intervals share at least one instant."""
        lo = max(
            self.start if self.start is not None else float("-inf"),
            other.start if other.start is not None else float("-inf"),
        )
        hi = min(
            self.end if self.end is not None else float("inf"),
            other.end if other.end is not None else float("inf"),
        )
        return lo < hi


ALWAYS = Interval(None, None)


@dataclass(frozen=True)
class MembershipEdge:
    """One individual-group membership, optionally time-bounded."""

    individual: int
    group: int
    interval: Interval = ALWAYS


class TemporalMembership:
    """The membership relation of the bipartite individuals×groups graph.

    Supports snapshot extraction at given dates (paper input
    ``dates``) and simple timeline statistics.
    """

    def __init__(self, edges: Iterable[MembershipEdge] = ()):
        self._edges: list[MembershipEdge] = list(edges)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, int]]) -> "TemporalMembership":
        """Build an untimed membership from ``(individual, group)`` pairs."""
        return cls(MembershipEdge(i, g) for i, g in pairs)

    @classmethod
    def from_records(
        cls, records: Iterable[tuple[int, int, Optional[int], Optional[int]]]
    ) -> "TemporalMembership":
        """Build from ``(individual, group, start, end)`` records."""
        return cls(
            MembershipEdge(i, g, Interval(s, e)) for i, g, s, e in records
        )

    def add(self, edge: MembershipEdge) -> None:
        """Append one membership edge."""
        self._edges.append(edge)

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[MembershipEdge]:
        return iter(self._edges)

    def snapshot(self, date: Optional[int] = None) -> list[tuple[int, int]]:
        """Membership pairs valid at ``date`` (``None`` = ignore intervals)."""
        if date is None:
            return [(e.individual, e.group) for e in self._edges]
        return [
            (e.individual, e.group) for e in self._edges if e.interval.contains(date)
        ]

    def snapshots(self, dates: Iterable[int]) -> dict[int, list[tuple[int, int]]]:
        """Snapshots for every date in ``dates`` (the paper's ``dates`` input)."""
        return {d: self.snapshot(d) for d in dates}

    def active_individuals(self, date: Optional[int] = None) -> set[int]:
        """Distinct individuals with at least one valid membership at ``date``."""
        return {i for i, _ in self.snapshot(date)}

    def active_groups(self, date: Optional[int] = None) -> set[int]:
        """Distinct groups with at least one valid membership at ``date``."""
        return {g for _, g in self.snapshot(date)}

    def span(self) -> tuple[Optional[int], Optional[int]]:
        """The smallest interval covering all bounded edges (None = unbounded)."""
        starts = [e.interval.start for e in self._edges if e.interval.start is not None]
        ends = [e.interval.end for e in self._edges if e.interval.end is not None]
        return (min(starts) if starts else None, max(ends) if ends else None)

    def dates(self) -> "list[int]":
        """Sorted set of all finite interval endpoints.

        The membership relation only changes at an interval boundary, so
        these are the *natural* snapshot dates (the paper's ``dates``
        input): evaluating at every returned date observes every
        distinct membership state the data can produce.  Open (``None``)
        bounds contribute no endpoint.
        """
        endpoints: set[int] = set()
        for edge in self._edges:
            if edge.interval.start is not None:
                endpoints.add(edge.interval.start)
            if edge.interval.end is not None:
                endpoints.add(edge.interval.end)
        return sorted(endpoints)
