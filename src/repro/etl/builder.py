"""TableBuilder: join individuals, groups and units into ``finalTable``.

This is the *TableBuilder* module of the SCube architecture (paper §3):
it "joins features of individuals with features of the companies in an
organizational unit", producing one row per individual and organizational
unit she belongs to.  Group context attributes are union-aggregated into
multi-valued cells (Fig. 3 bottom-left shows
``sector = {electricity, transports}`` for a director sitting on two
boards of the same unit).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from repro.errors import SchemaError, TableError
from repro.etl.schema import AttributeSpec, Role, Schema
from repro.etl.table import (
    CategoricalColumn,
    IntColumn,
    MultiValuedColumn,
    Table,
)

#: Name of the unit column in every finalTable this module produces.
UNIT_COLUMN = "unitID"


def _id_positions(table: Table, id_name: str) -> dict[int, int]:
    ids = table.ints(id_name).data
    positions = {int(v): i for i, v in enumerate(ids)}
    if len(positions) != len(ids):
        raise TableError(f"duplicate ids in column {id_name!r}")
    return positions


def build_final_table(
    individuals: Table,
    individuals_schema: Schema,
    groups: Table,
    groups_schema: Schema,
    membership: Iterable[tuple[int, int]],
    node_unit: Mapping[int, int],
) -> tuple[Table, Schema]:
    """Produce ``finalTable`` for graph-based scenarios.

    Parameters
    ----------
    individuals / individuals_schema:
        One row per individual; must declare an ``ID`` column plus SA and
        (optionally) CA attributes.
    groups / groups_schema:
        One row per group (company); must declare an ``ID`` column plus CA
        attributes.  Groups have **no** SA attributes (paper §3: groups are
        not subjects of segregation) — a schema declaring one is rejected.
    membership:
        ``(individual_id, group_id)`` pairs (one snapshot of the bipartite
        graph).
    node_unit:
        Mapping from group id to organizational-unit id, as produced by the
        GraphClustering step.  Groups missing from the mapping are skipped
        (they were isolated or filtered out).

    Returns
    -------
    (table, schema):
        ``table`` has one row per (individual, unit): the individual's SA
        and CA attributes, each group CA attribute aggregated into a
        multi-valued column, and the integer ``unitID`` column.
    """
    individuals_schema.validate(individuals)
    groups_schema.validate(groups)
    if groups_schema.sa_names:
        raise SchemaError(
            "groups must not declare segregation attributes "
            f"(found {groups_schema.sa_names})"
        )
    ind_pos = _id_positions(individuals, individuals_schema.id_name)
    grp_pos = _id_positions(groups, groups_schema.id_name)

    # (individual position, unit id) -> sorted set of group positions
    assignments: dict[tuple[int, int], set[int]] = {}
    for ind_id, grp_id in membership:
        unit = node_unit.get(grp_id)
        if unit is None:
            continue
        try:
            i = ind_pos[ind_id]
            g = grp_pos[grp_id]
        except KeyError as exc:
            raise TableError(f"membership references unknown id {exc}") from None
        assignments.setdefault((i, int(unit)), set()).add(g)

    keys = sorted(assignments)
    ind_rows = np.asarray([k[0] for k in keys], dtype=np.int64)
    units = np.asarray([k[1] for k in keys], dtype=np.int64)

    columns: dict[str, object] = {}
    specs: list[AttributeSpec] = []
    for spec in individuals_schema.specs:
        if spec.role not in (Role.SEGREGATION, Role.CONTEXT):
            continue
        columns[spec.name] = individuals.column(spec.name).take(ind_rows)
        specs.append(spec)
    for spec in groups_schema.specs:
        if spec.role is not Role.CONTEXT:
            continue
        columns[spec.name] = _aggregate_group_attribute(
            groups, spec, [sorted(assignments[k]) for k in keys]
        )
        specs.append(AttributeSpec(spec.name, Role.CONTEXT, multi_valued=True))
    columns[UNIT_COLUMN] = IntColumn(units)
    specs.append(AttributeSpec(UNIT_COLUMN, Role.UNIT))
    return Table(columns), Schema(specs)  # type: ignore[arg-type]


def _aggregate_group_attribute(
    groups: Table, spec: AttributeSpec, group_lists: list[list[int]]
) -> MultiValuedColumn:
    """Union the values of one group CA attribute over each row's groups."""
    col = groups.column(spec.name)
    rows: list[tuple[int, ...]] = []
    if isinstance(col, CategoricalColumn):
        categories = col.categories
        for grp_list in group_lists:
            rows.append(tuple(sorted({int(col.codes[g]) for g in grp_list})))
        return MultiValuedColumn(rows, categories)
    if isinstance(col, MultiValuedColumn):
        categories = col.categories
        for grp_list in group_lists:
            merged: set[int] = set()
            for g in grp_list:
                merged.update(col.rows[g])
            rows.append(tuple(sorted(merged)))
        return MultiValuedColumn(rows, categories)
    raise TableError(
        f"group attribute {spec.name!r} must be categorical or multi-valued"
    )


def tabular_final_table(
    individuals: Table,
    schema: Schema,
    unit_attr: str,
) -> tuple[Table, Schema]:
    """Produce ``finalTable`` for the tabular scenario (paper §4, scenario 1).

    When the data already carries an organizational-unit attribute (the
    demo uses the company sector), no graph pre-processing is needed: the
    attribute's categories become the unit ids.

    The unit attribute is removed from the analysis dimensions (a CA equal
    to the unit partition would always show complete segregation of the
    context with itself).
    """
    schema.validate(individuals)
    col = individuals.column(unit_attr)
    if isinstance(col, CategoricalColumn):
        units = col.codes.astype(np.int64)
    elif isinstance(col, IntColumn):
        units = col.data
    else:
        raise TableError(
            f"unit attribute {unit_attr!r} must be categorical or integer"
        )
    table = individuals.without_columns([unit_attr]).with_column(
        UNIT_COLUMN, IntColumn(units)
    )
    specs = [
        s
        for s in schema.specs
        if s.name != unit_attr and s.role in (Role.SEGREGATION, Role.CONTEXT)
    ]
    specs.append(AttributeSpec(UNIT_COLUMN, Role.UNIT))
    return table, Schema(specs)
