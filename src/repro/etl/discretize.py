"""Discretisation of numeric attributes into categorical bins.

The paper's case studies bin director ages into ranges such as
``15-38`` and ``39-46`` (Fig. 3).  This module provides equal-width and
equal-frequency binning plus the preset age bins used throughout the
examples and benchmarks.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import TableError
from repro.etl.table import CategoricalColumn

#: Age bin edges used in the paper's figures (left-closed, right-open,
#: last bin open-ended).
PAPER_AGE_EDGES: tuple[int, ...] = (15, 39, 47, 55, 66)


def bin_labels(edges: Sequence[float], open_ended: bool = True) -> list[str]:
    """Human-readable labels for the bins delimited by ``edges``.

    With integer edges the label for ``[lo, hi)`` is ``"lo-(hi-1)"``
    (matching the paper's ``15-38`` style); the optional final open bin is
    labelled ``"hi+"``.
    """
    if len(edges) < 2:
        raise TableError("need at least two bin edges")
    labels = []
    for lo, hi in zip(edges, edges[1:]):
        if float(lo).is_integer() and float(hi).is_integer():
            labels.append(f"{int(lo)}-{int(hi) - 1}")
        else:
            labels.append(f"{lo:g}-{hi:g}")
    if open_ended:
        last = edges[-1]
        labels.append(f"{int(last)}+" if float(last).is_integer() else f"{last:g}+")
    return labels


def discretize(
    values: Sequence[float],
    edges: Sequence[float],
    open_ended: bool = True,
) -> CategoricalColumn:
    """Bin numeric ``values`` into a categorical column.

    Values below ``edges[0]`` are clamped into the first bin; values at or
    above ``edges[-1]`` go to the open-ended last bin (or are clamped into
    the final closed bin when ``open_ended`` is False).
    """
    arr = np.asarray(values, dtype=float)
    labels = bin_labels(edges, open_ended=open_ended)
    codes = np.searchsorted(np.asarray(edges[1:], dtype=float), arr, side="right")
    codes = np.clip(codes, 0, len(labels) - 1)
    return CategoricalColumn(codes.astype(np.int32), labels)


def equal_width_edges(values: Sequence[float], bins: int) -> list[float]:
    """Equal-width bin edges spanning the observed range."""
    if bins < 1:
        raise TableError("bins must be >= 1")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise TableError("cannot bin an empty sequence")
    lo, hi = float(arr.min()), float(arr.max())
    if lo == hi:
        hi = lo + 1.0
    return list(np.linspace(lo, hi, bins + 1))


def quantile_edges(values: Sequence[float], bins: int) -> list[float]:
    """Equal-frequency bin edges (duplicates collapsed)."""
    if bins < 1:
        raise TableError("bins must be >= 1")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise TableError("cannot bin an empty sequence")
    qs = np.linspace(0.0, 1.0, bins + 1)
    edges = np.quantile(arr, qs)
    unique = sorted(set(float(e) for e in edges))
    if len(unique) < 2:
        unique = [unique[0], unique[0] + 1.0]
    return unique


def paper_age_column(ages: Sequence[float]) -> CategoricalColumn:
    """Bin ages with the paper's preset edges (15-38, 39-46, 47-54, 55-65, 66+)."""
    return discretize(ages, PAPER_AGE_EDGES, open_ended=True)
