"""SQL input: the reproduction of SCube's JDBC query path.

The paper's ``individuals`` input is "a CSV file or a JDBC query"
(§3).  The Python counterpart reads tables straight from a SQLite
database (stdlib ``sqlite3``) — any query result with a header becomes a
:class:`~repro.etl.table.Table`, with the same multi-valued / integer
column conventions as the CSV reader.
"""

from __future__ import annotations

import sqlite3
from collections.abc import Iterable
from pathlib import Path
from typing import Union

from repro.errors import TableError
from repro.etl.csvio import SET_SEPARATOR
from repro.etl.table import (
    CategoricalColumn,
    IntColumn,
    MultiValuedColumn,
    Table,
)

Connection = Union[str, Path, sqlite3.Connection]


def _connect(database: Connection) -> tuple[sqlite3.Connection, bool]:
    if isinstance(database, sqlite3.Connection):
        return database, False
    return sqlite3.connect(str(database)), True


def read_query(
    database: Connection,
    sql: str,
    multi_valued: Iterable[str] = (),
    integer: Iterable[str] = (),
) -> Table:
    """Run ``sql`` and materialise the result set as a :class:`Table`.

    Parameters
    ----------
    database:
        A path to a SQLite file or an open connection (left open).
    multi_valued:
        Result columns whose text cells are ``|``-separated value sets.
    integer:
        Result columns to coerce to integers (ids, unit ids).  Columns
        already typed INTEGER by SQLite are detected automatically.
    """
    multi = set(multi_valued)
    ints = set(integer)
    conn, owned = _connect(database)
    try:
        cursor = conn.execute(sql)
        if cursor.description is None:
            raise TableError(f"query returned no result set: {sql!r}")
        names = [d[0] for d in cursor.description]
        raw_columns: dict[str, list] = {name: [] for name in names}
        for row in cursor.fetchall():
            for name, cell in zip(names, row):
                raw_columns[name].append(cell)
    finally:
        if owned:
            conn.close()

    columns: dict[str, object] = {}
    for name, values in raw_columns.items():
        if name in multi:
            columns[name] = MultiValuedColumn.from_values(
                [
                    frozenset(str(v).split(SET_SEPARATOR))
                    if v not in (None, "")
                    else frozenset()
                    for v in values
                ]
            )
        elif name in ints or all(
            isinstance(v, int) and not isinstance(v, bool) for v in values
        ):
            try:
                columns[name] = IntColumn.from_values(
                    [int(v) for v in values]
                )
            except (TypeError, ValueError):
                raise TableError(
                    f"column {name!r} declared integer but holds "
                    "non-integer values"
                ) from None
        else:
            columns[name] = CategoricalColumn.from_values(
                ["" if v is None else v for v in values]
            )
    return Table(columns)  # type: ignore[arg-type]


def write_table_sql(
    table: Table,
    database: Connection,
    table_name: str,
    if_exists: str = "fail",
) -> None:
    """Write a :class:`Table` into a SQLite table.

    Multi-valued cells are serialised with the ``|`` separator (the CSV
    convention), so :func:`read_query` round-trips them.

    Parameters
    ----------
    if_exists:
        ``"fail"`` (default), ``"replace"`` or ``"append"``.
    """
    if if_exists not in ("fail", "replace", "append"):
        raise TableError(f"invalid if_exists {if_exists!r}")
    if not table_name.replace("_", "").isalnum():
        raise TableError(f"unsafe table name {table_name!r}")
    conn, owned = _connect(database)
    try:
        names = table.names
        column_defs = []
        for name in names:
            col = table.column(name)
            sql_type = "INTEGER" if isinstance(col, IntColumn) else "TEXT"
            column_defs.append(f'"{name}" {sql_type}')
        if if_exists == "replace":
            conn.execute(f'DROP TABLE IF EXISTS "{table_name}"')
        if if_exists in ("fail", "replace"):
            conn.execute(
                f'CREATE TABLE "{table_name}" ({", ".join(column_defs)})'
            )
        placeholders = ", ".join("?" for _ in names)
        rows = []
        for row in table.iter_rows():
            cells = []
            for name in names:
                value = row[name]
                if isinstance(value, frozenset):
                    cells.append(
                        SET_SEPARATOR.join(sorted(str(v) for v in value))
                    )
                else:
                    cells.append(value)
            rows.append(tuple(cells))
        conn.executemany(
            f'INSERT INTO "{table_name}" VALUES ({placeholders})', rows
        )
        conn.commit()
    finally:
        if owned:
            conn.close()
