"""Column-oriented relational tables.

SCube consumes relational inputs (``individuals``, ``groups``,
``finalTable``).  The original Java system reads CSV files or JDBC result
sets; this reproduction stores tables column-wise with NumPy-coded
categorical columns, which is the layout the itemset encoder and the cube
builder need (code arrays, not Python objects, on the hot path).

Three column kinds cover everything the paper requires:

* :class:`CategoricalColumn` — single-valued discrete attribute
  (``gender``, ``region``, ...), stored as ``int32`` codes plus a
  category list;
* :class:`MultiValuedColumn` — set-valued attribute (the paper's
  ``sector = {electricity, transports}`` example), stored as sorted code
  tuples plus a category list;
* :class:`IntColumn` — integer attribute, used for identifiers and for
  unit ids.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Union

import numpy as np

from repro.errors import TableError

ValueType = Union[str, int, float, bool]


class CategoricalColumn:
    """A single-valued discrete column stored as integer codes.

    Parameters
    ----------
    codes:
        Array-like of non-negative integers indexing into ``categories``.
    categories:
        The distinct values, in code order.
    """

    kind = "categorical"

    def __init__(self, codes: Iterable[int], categories: Sequence[ValueType]):
        self.codes = np.asarray(codes, dtype=np.int32)
        self.categories: list[ValueType] = list(categories)
        if len(self.codes) and self.codes.min() < 0:
            raise TableError("categorical codes must be non-negative")
        if len(self.codes) and self.codes.max() >= len(self.categories):
            raise TableError(
                f"code {int(self.codes.max())} out of range for "
                f"{len(self.categories)} categories"
            )
        self._index = {value: code for code, value in enumerate(self.categories)}

    @classmethod
    def from_values(cls, values: Iterable[ValueType]) -> "CategoricalColumn":
        """Build a column from raw values, assigning codes in first-seen order."""
        categories: list[ValueType] = []
        index: dict[ValueType, int] = {}
        codes = []
        for value in values:
            code = index.get(value)
            if code is None:
                code = len(categories)
                index[value] = code
                categories.append(value)
            codes.append(code)
        return cls(np.asarray(codes, dtype=np.int32), categories)

    def __len__(self) -> int:
        return len(self.codes)

    def __getitem__(self, i: int) -> ValueType:
        return self.categories[int(self.codes[i])]

    def values(self) -> list[ValueType]:
        """Decode the whole column back to raw values."""
        return [self.categories[c] for c in self.codes]

    def code_of(self, value: ValueType) -> int:
        """Return the code of ``value``, raising :class:`TableError` if absent."""
        try:
            return self._index[value]
        except KeyError:
            raise TableError(f"value {value!r} not in column categories") from None

    def mask_eq(self, value: ValueType) -> np.ndarray:
        """Boolean mask of rows equal to ``value`` (all-False if unseen)."""
        code = self._index.get(value)
        if code is None:
            return np.zeros(len(self.codes), dtype=bool)
        return self.codes == code

    def take(self, positions: np.ndarray) -> "CategoricalColumn":
        """Return a new column with the rows at ``positions``."""
        return CategoricalColumn(self.codes[positions], self.categories)

    def value_counts(self) -> dict[ValueType, int]:
        """Return ``{value: occurrences}`` for the whole column."""
        counts = np.bincount(self.codes, minlength=len(self.categories))
        return {v: int(c) for v, c in zip(self.categories, counts)}


class MultiValuedColumn:
    """A set-valued column: every row holds a (possibly empty) set of values.

    Rows are stored as sorted tuples of codes into a shared category list,
    matching the paper's treatment of multi-valued attributes (an
    individual may be linked to several company sectors at once).
    """

    kind = "multivalued"

    def __init__(self, rows: Sequence[tuple[int, ...]], categories: Sequence[ValueType]):
        self.rows: list[tuple[int, ...]] = [tuple(sorted(set(r))) for r in rows]
        self.categories: list[ValueType] = list(categories)
        for row in self.rows:
            if row and (row[0] < 0 or row[-1] >= len(self.categories)):
                raise TableError("multi-valued code out of range")
        self._index = {value: code for code, value in enumerate(self.categories)}

    @classmethod
    def from_values(cls, values: Iterable[Iterable[ValueType]]) -> "MultiValuedColumn":
        """Build from raw per-row iterables of values."""
        categories: list[ValueType] = []
        index: dict[ValueType, int] = {}
        rows: list[tuple[int, ...]] = []
        for row_values in values:
            codes = []
            for value in row_values:
                code = index.get(value)
                if code is None:
                    code = len(categories)
                    index[value] = code
                    categories.append(value)
                codes.append(code)
            rows.append(tuple(sorted(set(codes))))
        return cls(rows, categories)

    def __len__(self) -> int:
        return len(self.rows)

    def __getitem__(self, i: int) -> frozenset[ValueType]:
        return frozenset(self.categories[c] for c in self.rows[i])

    def values(self) -> list[frozenset[ValueType]]:
        """Decode the whole column back to raw value sets."""
        return [self[i] for i in range(len(self.rows))]

    def code_of(self, value: ValueType) -> int:
        """Return the code of ``value``, raising :class:`TableError` if absent."""
        try:
            return self._index[value]
        except KeyError:
            raise TableError(f"value {value!r} not in column categories") from None

    def mask_contains(self, value: ValueType) -> np.ndarray:
        """Boolean mask of rows whose set contains ``value``."""
        code = self._index.get(value)
        mask = np.zeros(len(self.rows), dtype=bool)
        if code is None:
            return mask
        for i, row in enumerate(self.rows):
            if code in row:
                mask[i] = True
        return mask

    def take(self, positions: np.ndarray) -> "MultiValuedColumn":
        """Return a new column with the rows at ``positions``."""
        return MultiValuedColumn([self.rows[int(p)] for p in positions], self.categories)

    def value_counts(self) -> dict[ValueType, int]:
        """Return ``{value: number of rows containing it}``."""
        counts = np.zeros(len(self.categories), dtype=np.int64)
        for row in self.rows:
            for code in row:
                counts[code] += 1
        return {v: int(c) for v, c in zip(self.categories, counts)}


class IntColumn:
    """A plain integer column (identifiers, unit ids)."""

    kind = "int"

    def __init__(self, data: Iterable[int]):
        self.data = np.asarray(data, dtype=np.int64)

    @classmethod
    def from_values(cls, values: Iterable[int]) -> "IntColumn":
        return cls(values)

    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, i: int) -> int:
        return int(self.data[i])

    def values(self) -> list[int]:
        return [int(v) for v in self.data]

    def mask_eq(self, value: int) -> np.ndarray:
        return self.data == value

    def take(self, positions: np.ndarray) -> "IntColumn":
        return IntColumn(self.data[positions])


Column = Union[CategoricalColumn, MultiValuedColumn, IntColumn]


def _column_from_raw(values: Sequence[object]) -> Column:
    """Infer the column kind of raw Python values.

    Sets/lists/tuples become multi-valued, integers become :class:`IntColumn`,
    everything else becomes categorical.
    """
    for value in values:
        if isinstance(value, (set, frozenset, list, tuple)):
            return MultiValuedColumn.from_values(values)  # type: ignore[arg-type]
        if isinstance(value, bool):
            return CategoricalColumn.from_values(values)  # type: ignore[arg-type]
        if isinstance(value, (int, np.integer)):
            return IntColumn.from_values(values)  # type: ignore[arg-type]
        return CategoricalColumn.from_values(values)  # type: ignore[arg-type]
    return CategoricalColumn.from_values(values)  # type: ignore[arg-type]


class Table:
    """An immutable-by-convention, column-oriented relational table."""

    def __init__(self, columns: Mapping[str, Column]):
        self._columns: dict[str, Column] = dict(columns)
        lengths = {len(col) for col in self._columns.values()}
        if len(lengths) > 1:
            raise TableError(f"columns have differing lengths: {sorted(lengths)}")
        self._length = lengths.pop() if lengths else 0

    @classmethod
    def from_rows(
        cls, names: Sequence[str], rows: Iterable[Sequence[object]]
    ) -> "Table":
        """Build a table from row tuples, inferring column kinds."""
        materialised = [tuple(row) for row in rows]
        for row in materialised:
            if len(row) != len(names):
                raise TableError(
                    f"row of width {len(row)} does not match {len(names)} columns"
                )
        by_name = {
            name: _column_from_raw([row[j] for row in materialised])
            for j, name in enumerate(names)
        }
        return cls(by_name)

    @classmethod
    def from_dict(cls, data: Mapping[str, Sequence[object]]) -> "Table":
        """Build a table from ``{column_name: values}``, inferring kinds."""
        return cls({name: _column_from_raw(list(vals)) for name, vals in data.items()})

    @property
    def names(self) -> list[str]:
        return list(self._columns)

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def column(self, name: str) -> Column:
        """Return the column named ``name``."""
        try:
            return self._columns[name]
        except KeyError:
            raise TableError(
                f"no column {name!r}; available: {self.names}"
            ) from None

    def categorical(self, name: str) -> CategoricalColumn:
        """Return a column, asserting it is categorical."""
        col = self.column(name)
        if not isinstance(col, CategoricalColumn):
            raise TableError(f"column {name!r} is {col.kind}, expected categorical")
        return col

    def multivalued(self, name: str) -> MultiValuedColumn:
        """Return a column, asserting it is multi-valued."""
        col = self.column(name)
        if not isinstance(col, MultiValuedColumn):
            raise TableError(f"column {name!r} is {col.kind}, expected multivalued")
        return col

    def ints(self, name: str) -> IntColumn:
        """Return a column, asserting it is integer."""
        col = self.column(name)
        if not isinstance(col, IntColumn):
            raise TableError(f"column {name!r} is {col.kind}, expected int")
        return col

    def with_column(self, name: str, column: Column) -> "Table":
        """Return a new table with ``column`` added or replaced."""
        if len(column) != self._length and self._columns:
            raise TableError(
                f"new column has {len(column)} rows, table has {self._length}"
            )
        merged = dict(self._columns)
        merged[name] = column
        return Table(merged)

    def without_columns(self, names: Iterable[str]) -> "Table":
        """Return a new table dropping the given columns."""
        drop = set(names)
        return Table({n: c for n, c in self._columns.items() if n not in drop})

    def select(self, names: Sequence[str]) -> "Table":
        """Return a new table with only the given columns, in order."""
        return Table({name: self.column(name) for name in names})

    def filter(self, mask: np.ndarray) -> "Table":
        """Return a new table with only the rows where ``mask`` is True."""
        mask = np.asarray(mask)
        if mask.dtype == bool:
            positions = np.flatnonzero(mask)
        else:
            positions = mask.astype(np.int64)
        return Table({n: c.take(positions) for n, c in self._columns.items()})

    def row(self, i: int) -> dict[str, object]:
        """Decode row ``i`` into a ``{name: value}`` dict."""
        if not 0 <= i < self._length:
            raise TableError(f"row {i} out of range for table of {self._length} rows")
        return {name: col[i] for name, col in self._columns.items()}

    def iter_rows(self) -> Iterator[dict[str, object]]:
        """Yield decoded rows as dicts."""
        for i in range(self._length):
            yield self.row(i)

    def head(self, k: int = 5) -> list[dict[str, object]]:
        """Return the first ``k`` decoded rows."""
        return [self.row(i) for i in range(min(k, self._length))]

    def __repr__(self) -> str:
        return f"Table({self._length} rows, columns={self.names})"
