"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Subclasses pinpoint the subsystem
that failed, mirroring the SCube architecture (ETL, mining, cube, graph,
reporting).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro package."""


class SchemaError(ReproError):
    """A table does not conform to the declared schema."""


class TableError(ReproError):
    """Invalid operation on a relational table."""


class MiningError(ReproError):
    """Invalid parameters or state in the itemset-mining engine."""


class CubeError(ReproError):
    """Invalid cube construction parameters or cell lookup."""


class GraphError(ReproError):
    """Invalid graph construction or operation."""


class IndexError_(ReproError):
    """Invalid inputs to a segregation index.

    Named with a trailing underscore to avoid shadowing the built-in
    ``IndexError``; exported as ``SegregationIndexError``.
    """


SegregationIndexError = IndexError_


class SnapshotError(ReproError):
    """Invalid, corrupted or version-incompatible cube snapshot.

    Raised by :mod:`repro.store` when a snapshot directory cannot be
    validated: missing or unparsable manifest, format-version mismatch,
    missing column files, or column files whose dtype/shape disagree
    with the manifest.
    """


class ReportError(ReproError):
    """Failure while producing an output report or workbook."""


class ConfigError(ReproError):
    """Invalid pipeline configuration."""
