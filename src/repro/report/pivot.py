"""Pivot views over a segregation cube (the Fig. 1 rendering).

Fig. 1 of the paper shows a 3-D cube slice: sex × age (SA axes) by
region (CA axis), each cell holding a dissimilarity value or "-".  The
:func:`pivot` helper renders any two coordinate attributes against each
other (with ``⋆`` rows/columns included), fixing the remaining
coordinates.

Each grid entry is one :meth:`~repro.cube.cube.SegregationCube.value`
call, which routes through the cube's columnar store — a key lookup
plus a single array read (falling back to the lazy resolver for
non-materialised coordinates); no per-cell objects are built while
rendering.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.cube.protocol import CubeLike
from repro.errors import ReportError
from repro.itemsets.items import Item, ItemKind
from repro.report.text import format_value, render_table


def _attribute_values(cube: CubeLike, attribute: str) -> list[str]:
    """Distinct values of an attribute present in the cube dictionary."""
    values = []
    dictionary = cube.dictionary
    for item_id in range(len(dictionary)):
        item = dictionary.item(item_id)
        if item.attribute == attribute:
            values.append(item.value)
    if not values:
        raise ReportError(f"attribute {attribute!r} not in cube")
    return [str(v) for v in values]


def _kind_of(cube: CubeLike, attribute: str) -> ItemKind:
    dictionary = cube.dictionary
    for item_id in range(len(dictionary)):
        if dictionary.item(item_id).attribute == attribute:
            return dictionary.kind(item_id)
    raise ReportError(f"attribute {attribute!r} not in cube")


def pivot_values(
    cube: CubeLike,
    index_name: str,
    row_attr: str,
    col_attr: str,
    fixed_sa: "Mapping[str, object] | None" = None,
    fixed_ca: "Mapping[str, object] | None" = None,
    include_star: bool = True,
) -> tuple[list[str], list[str], list[list[float]]]:
    """Pivot one index over two attributes.

    Returns ``(row_labels, col_labels, matrix)`` where labels include a
    trailing ``*`` entry when ``include_star`` is set; matrix entries are
    index values (nan where the cell does not exist).
    """
    if row_attr == col_attr:
        raise ReportError("row and column attributes must differ")
    row_kind = _kind_of(cube, row_attr)
    col_kind = _kind_of(cube, col_attr)
    row_values = _attribute_values(cube, row_attr)
    col_values = _attribute_values(cube, col_attr)
    if include_star:
        row_values = row_values + ["*"]
        col_values = col_values + ["*"]

    matrix: list[list[float]] = []
    for row_value in row_values:
        row_out: list[float] = []
        for col_value in col_values:
            sa: dict[str, object] = dict(fixed_sa or {})
            ca: dict[str, object] = dict(fixed_ca or {})
            for attr, kind, value in (
                (row_attr, row_kind, row_value),
                (col_attr, col_kind, col_value),
            ):
                if value == "*":
                    continue
                target = sa if kind is ItemKind.SA else ca
                target[attr] = value
            row_out.append(cube.value(index_name, sa=sa or None, ca=ca or None))
        matrix.append(row_out)
    return row_values, col_values, matrix


def pivot(
    cube: CubeLike,
    index_name: str,
    row_attr: str,
    col_attr: str,
    fixed_sa: "Mapping[str, object] | None" = None,
    fixed_ca: "Mapping[str, object] | None" = None,
    include_star: bool = True,
    digits: int = 2,
) -> str:
    """Render a Fig. 1-style text pivot of one index."""
    row_values, col_values, matrix = pivot_values(
        cube,
        index_name,
        row_attr,
        col_attr,
        fixed_sa=fixed_sa,
        fixed_ca=fixed_ca,
        include_star=include_star,
    )
    header = [f"{row_attr} \\ {col_attr}"] + list(col_values)
    rows = [
        [row_values[i]] + [format_value(v, digits) for v in matrix[i]]
        for i in range(len(row_values))
    ]
    return render_table(header, rows, digits)
