"""Reporting: xlsx workbooks, pivots, radial series, text tables.

Implements SCube's *Visualizer* module (paper §3): the cube is exported
to an OOXML workbook for pivot-table exploration, and to text/CSV
renderings for console and benchmark output.
"""

from repro.report.html import cube_to_html
from repro.report.pivot import pivot, pivot_values
from repro.report.radial import RadialSeries, radial_series, render_radial
from repro.report.text import bar, format_value, render_dict_rows, render_table
from repro.report.xlsx import (
    HEADER_STYLE,
    Sheet,
    Workbook,
    cell_reference,
    column_letter,
    rows_to_workbook,
)

__all__ = [
    "HEADER_STYLE",
    "RadialSeries",
    "Sheet",
    "Workbook",
    "bar",
    "cell_reference",
    "cube_to_html",
    "column_letter",
    "format_value",
    "pivot",
    "pivot_values",
    "radial_series",
    "render_dict_rows",
    "render_radial",
    "render_table",
    "rows_to_workbook",
]
