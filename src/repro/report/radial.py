"""Radial-plot data series (the Fig. 5 bottom rendering).

Fig. 5 of the paper shows a radial plot of the segregation indexes for
directors in each of the 20 Italian company sectors.  A terminal cannot
draw the radial chart itself, so this module produces (a) the exact data
series behind it — one row per context value, one column per index — and
(b) an ASCII approximation with per-index bars, which is what the
benchmark prints.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.cube.protocol import CubeLike
from repro.errors import ReportError
from repro.itemsets.items import ItemKind
from repro.report.text import bar, format_value, render_table


@dataclass(frozen=True)
class RadialSeries:
    """Index values per context value (one radial spoke per entry)."""

    context_attribute: str
    index_names: list[str]
    labels: list[str]
    values: list[list[float]]  # [label][index]

    def rows(self) -> list[list[object]]:
        """Tabular view: label followed by one value per index."""
        return [
            [label] + list(vals) for label, vals in zip(self.labels, self.values)
        ]


def radial_series(
    cube: CubeLike,
    context_attribute: str,
    sa: "Mapping[str, object] | None" = None,
    index_names: "list[str] | None" = None,
) -> RadialSeries:
    """Collect index values for every value of one context attribute.

    ``sa`` fixes the minority subgroup (e.g. ``{'gender': 'F'}``); each
    value of ``context_attribute`` contributes one spoke.
    """
    names = index_names or list(cube.metadata.index_names)
    dictionary = cube.dictionary
    labels = []
    for item_id in range(len(dictionary)):
        item = dictionary.item(item_id)
        if item.attribute == context_attribute:
            if dictionary.kind(item_id) is not ItemKind.CA:
                raise ReportError(
                    f"{context_attribute!r} is not a context attribute"
                )
            labels.append(str(item.value))
    if not labels:
        raise ReportError(f"attribute {context_attribute!r} not in cube")
    labels.sort()
    values = []
    for label in labels:
        stats = cube.cell(sa=sa, ca={context_attribute: label})
        values.append(
            [stats.value(n) for n in names]
            if stats is not None
            else [float("nan")] * len(names)
        )
    return RadialSeries(context_attribute, list(names), labels, values)


def render_radial(series: RadialSeries, digits: int = 3, width: int = 24) -> str:
    """ASCII rendering: the data table followed by per-index bar charts."""
    table = render_table(
        [series.context_attribute] + series.index_names,
        series.rows(),
        digits,
    )
    sections = [table]
    for j, name in enumerate(series.index_names):
        lines = [f"\n{name} by {series.context_attribute}:"]
        for label, vals in zip(series.labels, series.values):
            value = vals[j]
            lines.append(
                f"  {label:<24} {format_value(value, digits):>6} "
                f"{bar(value, 1.0, width)}"
            )
        sections.append("\n".join(lines))
    return "\n".join(sections)
