"""Self-contained HTML report for a segregation cube.

"Segregation data cube exploration can be easily interfaced with
visualization tools" (paper §3).  Besides the xlsx workbook, this writer
emits a single-file HTML report — no external assets — with the cube
table, per-index colour shading and a header summarising the build.
Useful for sharing a discovery session without a spreadsheet application.
"""

from __future__ import annotations

import math
from pathlib import Path
from xml.sax.saxutils import escape

from repro.cube.protocol import CubeLike
from repro.errors import ReportError

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font-family: sans-serif; margin: 2rem; color: #222; }}
table {{ border-collapse: collapse; font-size: 0.85rem; }}
th, td {{ border: 1px solid #ccc; padding: 0.25rem 0.5rem; text-align: right; }}
th {{ background: #f0f0f0; position: sticky; top: 0; }}
td.coord {{ text-align: left; font-family: monospace; }}
caption {{ text-align: left; font-weight: bold; padding-bottom: 0.5rem; }}
.meta {{ color: #666; margin-bottom: 1rem; }}
</style>
</head>
<body>
<h1>{title}</h1>
<p class="meta">{meta}</p>
<table>
<caption>Segregation data cube ({n_cells} cells)</caption>
<thead><tr>{header}</tr></thead>
<tbody>
{body}
</tbody>
</table>
</body>
</html>
"""


def _shade(value: float) -> str:
    """Background colour: white (0) to red (1) for index cells."""
    if math.isnan(value):
        return ""
    clamped = max(0.0, min(1.0, value))
    intensity = int(255 - clamped * 120)
    return f' style="background: rgb(255,{intensity},{intensity})"'


def cube_to_html(
    cube: CubeLike,
    path: "str | Path",
    title: str = "SCube report",
) -> Path:
    """Write the cube as a self-contained HTML file and return its path."""
    rows = cube.to_rows()
    if not rows:
        raise ReportError("cannot render an empty cube")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    columns = list(rows[0])
    coordinate_columns = set(cube.sa_attributes() + cube.ca_attributes())
    index_columns = set(cube.metadata.index_names)
    header = "".join(f"<th>{escape(str(c))}</th>" for c in columns)

    body_rows = []
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if column in coordinate_columns:
                cells.append(f'<td class="coord">{escape(str(value))}</td>')
            elif column in index_columns:
                numeric = (
                    float(value) if isinstance(value, (int, float))
                    and value != "" else float("nan")
                )
                text = "-" if math.isnan(numeric) else f"{numeric:.3f}"
                cells.append(f"<td{_shade(numeric)}>{text}</td>")
            else:
                cells.append(f"<td>{escape(str(value))}</td>")
        body_rows.append("<tr>" + "".join(cells) + "</tr>")

    meta = (
        f"rows: {cube.metadata.n_rows}; units: {cube.metadata.n_units}; "
        f"min population: {cube.metadata.min_population}; "
        f"min minority: {cube.metadata.min_minority}; "
        f"mode: {cube.metadata.mode}; "
        f"indexes: {', '.join(cube.metadata.index_names)}"
    )
    path.write_text(
        _PAGE.format(
            title=escape(title),
            meta=escape(meta),
            n_cells=len(cube),
            header=header,
            body="\n".join(body_rows),
        )
    )
    return path
