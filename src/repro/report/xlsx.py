"""Minimal OOXML ``.xlsx`` writer (stdlib only).

SCube's *Visualizer* module "transforms the extended datacube ... into a
standard OOXML format that can be opened by Microsoft Excel, Libre
Office, and other office productivity tools" (paper §3, using Apache
POI).  This module reimplements just enough of SpreadsheetML from
scratch: multiple worksheets, inline strings, numbers, bold header
styling — producing files that office suites open directly.

The writer targets correctness and auditability over completeness:
cells are written as inline strings (no shared-string table) and the
style sheet contains exactly two cell formats (normal, bold header).
"""

from __future__ import annotations

import zipfile
from collections.abc import Iterable, Sequence
from pathlib import Path
from xml.sax.saxutils import escape

from repro.errors import ReportError

_INVALID_SHEET_CHARS = set('[]:*?/\\')

_CONTENT_TYPES = """<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<Types xmlns="http://schemas.openxmlformats.org/package/2006/content-types">
<Default Extension="rels" ContentType="application/vnd.openxmlformats-package.relationships+xml"/>
<Default Extension="xml" ContentType="application/xml"/>
<Override PartName="/xl/workbook.xml" ContentType="application/vnd.openxmlformats-officedocument.spreadsheetml.sheet.main+xml"/>
<Override PartName="/xl/styles.xml" ContentType="application/vnd.openxmlformats-officedocument.spreadsheetml.styles+xml"/>
{sheet_overrides}
</Types>
"""

_ROOT_RELS = """<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<Relationships xmlns="http://schemas.openxmlformats.org/package/2006/relationships">
<Relationship Id="rId1" Type="http://schemas.openxmlformats.org/officeDocument/2006/relationships/officeDocument" Target="xl/workbook.xml"/>
</Relationships>
"""

_STYLES = """<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<styleSheet xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main">
<fonts count="2"><font><sz val="11"/><name val="Calibri"/></font>
<font><b/><sz val="11"/><name val="Calibri"/></font></fonts>
<fills count="2"><fill><patternFill patternType="none"/></fill>
<fill><patternFill patternType="gray125"/></fill></fills>
<borders count="1"><border><left/><right/><top/><bottom/><diagonal/></border></borders>
<cellStyleXfs count="1"><xf numFmtId="0" fontId="0" fillId="0" borderId="0"/></cellStyleXfs>
<cellXfs count="2">
<xf numFmtId="0" fontId="0" fillId="0" borderId="0" xfId="0"/>
<xf numFmtId="0" fontId="1" fillId="0" borderId="0" xfId="0" applyFont="1"/>
</cellXfs>
</styleSheet>
"""

#: Style index of the bold header format in ``_STYLES``.
HEADER_STYLE = 1


def column_letter(index: int) -> str:
    """0-based column index to spreadsheet letters (0 -> A, 27 -> AB)."""
    if index < 0:
        raise ReportError(f"column index must be non-negative, got {index}")
    letters = ""
    index += 1
    while index:
        index, remainder = divmod(index - 1, 26)
        letters = chr(ord("A") + remainder) + letters
    return letters


def cell_reference(row: int, col: int) -> str:
    """0-based (row, col) to an A1-style reference."""
    if row < 0:
        raise ReportError(f"row index must be non-negative, got {row}")
    return f"{column_letter(col)}{row + 1}"


class Sheet:
    """One worksheet: a sparse grid of values plus per-cell bold flags."""

    def __init__(self, name: str):
        if not name or len(name) > 31:
            raise ReportError(f"sheet name {name!r} must be 1..31 characters")
        if any(ch in _INVALID_SHEET_CHARS for ch in name):
            raise ReportError(f"sheet name {name!r} contains invalid characters")
        self.name = name
        self._cells: dict[tuple[int, int], tuple[object, bool]] = {}
        self._next_row = 0

    def set_cell(self, row: int, col: int, value: object, bold: bool = False
                 ) -> None:
        """Place ``value`` at 0-based (row, col)."""
        if row < 0 or col < 0:
            raise ReportError("cell coordinates must be non-negative")
        self._cells[(row, col)] = (value, bold)
        self._next_row = max(self._next_row, row + 1)

    def append_row(self, values: Sequence[object], bold: bool = False) -> int:
        """Append a full row below existing content; returns its row index."""
        row = self._next_row
        for col, value in enumerate(values):
            self.set_cell(row, col, value, bold=bold)
        return row

    def append_header(self, values: Sequence[object]) -> int:
        """Append a bold header row."""
        return self.append_row(values, bold=True)

    @property
    def n_rows(self) -> int:
        return self._next_row

    def _cell_xml(self, row: int, col: int, value: object, bold: bool) -> str:
        ref = cell_reference(row, col)
        style = f' s="{HEADER_STYLE}"' if bold else ""
        if value is None or value == "":
            return ""
        if isinstance(value, bool):
            return f'<c r="{ref}"{style} t="b"><v>{int(value)}</v></c>'
        if isinstance(value, (int, float)):
            if isinstance(value, float) and (value != value):  # NaN -> "-"
                return (
                    f'<c r="{ref}"{style} t="inlineStr"><is><t>-</t></is></c>'
                )
            return f'<c r="{ref}"{style}><v>{value!r}</v></c>'
        text = escape(str(value))
        return f'<c r="{ref}"{style} t="inlineStr"><is><t>{text}</t></is></c>'

    def to_xml(self) -> str:
        """Serialise the worksheet part."""
        by_row: dict[int, list[tuple[int, object, bool]]] = {}
        for (row, col), (value, bold) in self._cells.items():
            by_row.setdefault(row, []).append((col, value, bold))
        rows_xml = []
        for row in sorted(by_row):
            cells = "".join(
                self._cell_xml(row, col, value, bold)
                for col, value, bold in sorted(by_row[row])
            )
            rows_xml.append(f'<row r="{row + 1}">{cells}</row>')
        body = "".join(rows_xml)
        return (
            '<?xml version="1.0" encoding="UTF-8" standalone="yes"?>\n'
            '<worksheet xmlns="http://schemas.openxmlformats.org/'
            'spreadsheetml/2006/main">'
            f"<sheetData>{body}</sheetData></worksheet>"
        )


class Workbook:
    """An in-memory workbook; :meth:`save` writes the ``.xlsx`` package."""

    def __init__(self) -> None:
        self._sheets: list[Sheet] = []

    def add_sheet(self, name: str) -> Sheet:
        """Create and register a new worksheet."""
        if any(s.name == name for s in self._sheets):
            raise ReportError(f"duplicate sheet name {name!r}")
        sheet = Sheet(name)
        self._sheets.append(sheet)
        return sheet

    @property
    def sheet_names(self) -> list[str]:
        return [s.name for s in self._sheets]

    def sheet(self, name: str) -> Sheet:
        """Look up a sheet by name."""
        for s in self._sheets:
            if s.name == name:
                return s
        raise ReportError(f"no sheet named {name!r}")

    def save(self, path: str | Path) -> Path:
        """Write the workbook as a ``.xlsx`` (zip) package."""
        if not self._sheets:
            raise ReportError("cannot save a workbook with no sheets")
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        sheet_overrides = "\n".join(
            f'<Override PartName="/xl/worksheets/sheet{i + 1}.xml" '
            'ContentType="application/vnd.openxmlformats-officedocument.'
            'spreadsheetml.worksheet+xml"/>'
            for i in range(len(self._sheets))
        )
        sheets_xml = "".join(
            f'<sheet name="{escape(s.name)}" sheetId="{i + 1}" '
            f'r:id="rId{i + 1}"/>'
            for i, s in enumerate(self._sheets)
        )
        workbook_xml = (
            '<?xml version="1.0" encoding="UTF-8" standalone="yes"?>\n'
            '<workbook xmlns="http://schemas.openxmlformats.org/'
            'spreadsheetml/2006/main" '
            'xmlns:r="http://schemas.openxmlformats.org/officeDocument/'
            '2006/relationships">'
            f"<sheets>{sheets_xml}</sheets></workbook>"
        )
        rels = "".join(
            f'<Relationship Id="rId{i + 1}" '
            'Type="http://schemas.openxmlformats.org/officeDocument/2006/'
            'relationships/worksheet" '
            f'Target="worksheets/sheet{i + 1}.xml"/>'
            for i in range(len(self._sheets))
        )
        styles_rid = len(self._sheets) + 1
        workbook_rels = (
            '<?xml version="1.0" encoding="UTF-8" standalone="yes"?>\n'
            '<Relationships xmlns="http://schemas.openxmlformats.org/'
            'package/2006/relationships">'
            f"{rels}"
            f'<Relationship Id="rId{styles_rid}" '
            'Type="http://schemas.openxmlformats.org/officeDocument/2006/'
            'relationships/styles" Target="styles.xml"/>'
            "</Relationships>"
        )
        with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as zf:
            zf.writestr(
                "[Content_Types].xml",
                _CONTENT_TYPES.format(sheet_overrides=sheet_overrides),
            )
            zf.writestr("_rels/.rels", _ROOT_RELS)
            zf.writestr("xl/workbook.xml", workbook_xml)
            zf.writestr("xl/_rels/workbook.xml.rels", workbook_rels)
            zf.writestr("xl/styles.xml", _STYLES)
            for i, sheet in enumerate(self._sheets):
                zf.writestr(f"xl/worksheets/sheet{i + 1}.xml", sheet.to_xml())
        return path


def rows_to_workbook(
    rows: Iterable[dict[str, object]],
    sheet_name: str = "cube",
    workbook: "Workbook | None" = None,
) -> Workbook:
    """Dump homogeneous dict-rows into a (new or given) workbook sheet."""
    wb = workbook if workbook is not None else Workbook()
    sheet = wb.add_sheet(sheet_name)
    header: "list[str] | None" = None
    for row in rows:
        if header is None:
            header = list(row)
            sheet.append_header(header)
        sheet.append_row([row.get(col, "") for col in header])
    if header is None:
        sheet.append_header(["(empty)"])
    return wb
