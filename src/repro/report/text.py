"""Plain-text table rendering for console reports and benchmark output.

Benchmarks print paper-style tables with these helpers, so that the
regenerated rows/series can be compared to the paper's figures at a
glance.  :func:`render_cube` is the cube-level entry point: it works on
anything satisfying :class:`~repro.cube.protocol.CubeLike` — a live
cube or an opened snapshot.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cube.protocol import CubeLike


def format_value(value: object, digits: int = 3) -> str:
    """Render one cell: floats rounded, nan as '-', everything else str()."""
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        return f"{value:.{digits}f}"
    return str(value)


def render_table(
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
    digits: int = 3,
) -> str:
    """Render an aligned text table with a rule under the header."""
    text_rows = [[format_value(v, digits) for v in row] for row in rows]
    widths = [len(str(h)) for h in header]
    for row in text_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(
            str(cell).ljust(widths[i]) for i, cell in enumerate(cells)
        ).rstrip()
    lines = [fmt([str(h) for h in header])]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in text_rows)
    return "\n".join(lines)


def render_dict_rows(rows: "list[dict[str, object]]", digits: int = 3) -> str:
    """Render homogeneous dict-rows (header from the first row)."""
    if not rows:
        return "(no rows)"
    header = list(rows[0])
    return render_table(
        header, [[row.get(col, "") for col in header] for row in rows], digits
    )


def render_cube(cube: "CubeLike", digits: int = 3) -> str:
    """Render a whole cube (live or snapshot-backed) as a text table."""
    return render_dict_rows(cube.to_rows(), digits)


def bar(value: float, scale: float = 1.0, width: int = 40) -> str:
    """ASCII bar for quick visual comparison (nan-safe)."""
    if math.isnan(value) or scale <= 0:
        return ""
    filled = int(round(max(0.0, min(value / scale, 1.0)) * width))
    return "#" * filled
