"""Connected components over edge arrays.

The simplest GraphClustering method SCube offers (paper §3): every
connected component of the projected graph becomes one organizational
unit.  Isolated nodes each form a singleton unit (they still host
population, so they must not be dropped from segregation analysis).

Since PR 8 the labelling runs vectorially: min-label hooking + pointer
doubling over the whole edge array (a union-find where every union round
is one NumPy pass), instead of the seed-era per-node BFS.  At the fixed
point every node's root is the *lowest node id in its component*, so
ranking the roots in ascending order reproduces the BFS labelling
exactly — label 0 is the component of node 0, and so on.  The legacy BFS
survives in ``graph/legacy.py`` and parity is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph


@dataclass
class Clustering:
    """A partition of graph nodes into organizational units.

    ``labels[u]`` is the unit id of node ``u``; unit ids are dense,
    ``0 .. n_clusters-1``.
    """

    labels: np.ndarray
    n_clusters: int
    method: str

    def members(self, cluster: int) -> np.ndarray:
        """Node ids belonging to ``cluster``."""
        return np.flatnonzero(self.labels == cluster)

    def sizes(self) -> np.ndarray:
        """Cluster sizes, indexed by cluster id."""
        return np.bincount(self.labels, minlength=self.n_clusters)

    def giant(self) -> int:
        """Id of the largest cluster."""
        return int(np.argmax(self.sizes()))

    def node_unit(self) -> dict[int, int]:
        """``{node: unit}`` mapping (the paper's ``nodeUnit`` output)."""
        return {int(u): int(c) for u, c in enumerate(self.labels)}

    def relabel_by_size(self) -> "Clustering":
        """Renumber clusters so id 0 is the largest (stable, deterministic)."""
        sizes = self.sizes()
        order = np.argsort(-sizes, kind="stable")
        remap = np.empty_like(order)
        remap[order] = np.arange(len(order))
        return Clustering(remap[self.labels], self.n_clusters, self.method)


def labels_from_edge_arrays(
    n_nodes: int, u: np.ndarray, v: np.ndarray
) -> "tuple[np.ndarray, int]":
    """Component labels for nodes ``0..n_nodes-1`` under edges ``(u, v)``.

    Min-label hooking + pointer doubling: every round hooks the larger
    of each edge's two roots onto the smaller one, then compresses all
    parent chains by repeated squaring.  Converges in O(log n) rounds of
    O(edges) work.  Labels are dense and ordered by each component's
    lowest node id — identical to BFS-in-node-order labelling.
    """
    parent = np.arange(n_nodes, dtype=np.int64)
    if len(u):
        while True:
            pu = parent[u]
            pv = parent[v]
            lo = np.minimum(pu, pv)
            hi = np.maximum(pu, pv)
            np.minimum.at(parent, hi, lo)
            while True:
                squashed = parent[parent]
                if np.array_equal(squashed, parent):
                    break
                parent = squashed
            if np.array_equal(parent[u], parent[v]):
                break
    roots, labels = np.unique(parent, return_inverse=True)
    return labels.astype(np.int64, copy=False), int(len(roots))


def connected_components(graph: Graph) -> Clustering:
    """Label connected components, in order of each component's lowest node.

    Runs in O((nodes + edges) log nodes) vectorized passes; labels are
    assigned in order of the lowest node id in each component, making
    results deterministic (and equal to the seed BFS labelling).
    """
    u, v, _ = graph.edge_arrays()
    labels, n_clusters = labels_from_edge_arrays(graph.n_nodes, u, v)
    return Clustering(labels, n_clusters, "connected-components")


def gather_neighbors(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """Concatenated neighbour lists of every frontier node (one gather).

    The standard multi-range trick: repeat each row start, add a ramp
    that resets at each row boundary.
    """
    if len(frontier) == 1:
        node = int(frontier[0])
        return indices[int(indptr[node]):int(indptr[node + 1])]
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    offsets = np.zeros(len(frontier), dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    ramp = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    return indices[np.repeat(starts, counts) + ramp]


def bfs_distances(graph: Graph, source: int, max_hops: "int | None" = None
                  ) -> dict[int, int]:
    """Hop distances from ``source`` (bounded by ``max_hops`` if given).

    Level-synchronous array frontier over the CSR view; returns the same
    ``{node: hops}`` mapping as the seed deque BFS.
    """
    indptr, indices, _ = graph.csr()
    seen = np.zeros(graph.n_nodes, dtype=bool)
    seen[source] = True
    distances = {int(source): 0}
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while len(frontier):
        if max_hops is not None and depth >= max_hops:
            break
        neighbors = gather_neighbors(indptr, indices, frontier)
        fresh = np.unique(neighbors[~seen[neighbors]])
        if not len(fresh):
            break
        seen[fresh] = True
        depth += 1
        for node in fresh:
            distances[int(node)] = depth
        frontier = fresh
    return distances
