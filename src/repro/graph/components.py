"""Connected components via breadth-first search.

The simplest GraphClustering method SCube offers (paper §3): every
connected component of the projected graph becomes one organizational
unit.  Isolated nodes each form a singleton unit (they still host
population, so they must not be dropped from segregation analysis).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph


@dataclass
class Clustering:
    """A partition of graph nodes into organizational units.

    ``labels[u]`` is the unit id of node ``u``; unit ids are dense,
    ``0 .. n_clusters-1``.
    """

    labels: np.ndarray
    n_clusters: int
    method: str

    def members(self, cluster: int) -> np.ndarray:
        """Node ids belonging to ``cluster``."""
        return np.flatnonzero(self.labels == cluster)

    def sizes(self) -> np.ndarray:
        """Cluster sizes, indexed by cluster id."""
        return np.bincount(self.labels, minlength=self.n_clusters)

    def giant(self) -> int:
        """Id of the largest cluster."""
        return int(np.argmax(self.sizes()))

    def node_unit(self) -> dict[int, int]:
        """``{node: unit}`` mapping (the paper's ``nodeUnit`` output)."""
        return {int(u): int(c) for u, c in enumerate(self.labels)}

    def relabel_by_size(self) -> "Clustering":
        """Renumber clusters so id 0 is the largest (stable, deterministic)."""
        sizes = self.sizes()
        order = np.argsort(-sizes, kind="stable")
        remap = np.empty_like(order)
        remap[order] = np.arange(len(order))
        return Clustering(remap[self.labels], self.n_clusters, self.method)


def connected_components(graph: Graph) -> Clustering:
    """Label connected components by BFS, in node order.

    Runs in O(nodes + edges); labels are assigned in order of the lowest
    node id in each component, making results deterministic.
    """
    labels = np.full(graph.n_nodes, -1, dtype=np.int64)
    next_label = 0
    for start in range(graph.n_nodes):
        if labels[start] != -1:
            continue
        labels[start] = next_label
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if labels[v] == -1:
                    labels[v] = next_label
                    queue.append(v)
        next_label += 1
    return Clustering(labels, next_label, "connected-components")


def bfs_distances(graph: Graph, source: int, max_hops: "int | None" = None
                  ) -> dict[int, int]:
    """Hop distances from ``source`` (bounded by ``max_hops`` if given)."""
    distances = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        d = distances[u]
        if max_hops is not None and d >= max_hops:
            continue
        for v in graph.neighbors(u):
            if v not in distances:
                distances[v] = d + 1
                queue.append(v)
    return distances
