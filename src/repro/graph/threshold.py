"""Weight-threshold clustering of the giant component.

The second GraphClustering method of SCube (paper §3, "designed in
[the JIIS companion paper]"): real interlock graphs collapse into one
giant connected component, which would yield a single useless
organizational unit.  The method removes, *from the giant component
only*, edges whose weight (shared directors) falls below a threshold,
then re-extracts connected components — strong ties survive and split
the giant into meaningful business communities, while small components
are left untouched.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.components import Clustering, connected_components
from repro.graph.graph import Graph


def threshold_components(graph: Graph, min_weight: float) -> Clustering:
    """Split the giant component at ``min_weight``, keep the rest as-is.

    Steps (following the JIIS design):

    1. find connected components and the giant one;
    2. drop giant-component edges with weight < ``min_weight``;
    3. recompute components on the filtered graph.

    With ``min_weight <= min edge weight`` this degenerates to plain
    connected components.
    """
    if min_weight < 0:
        raise GraphError("min_weight must be non-negative")
    base = connected_components(graph)
    giant = base.giant()
    in_giant = base.labels == giant

    filtered = Graph(graph.n_nodes)
    for u, v, w in graph.edges():
        if in_giant[u] and in_giant[v] and w < min_weight:
            continue
        filtered.add_edge(u, v, w)
    result = connected_components(filtered)
    return Clustering(result.labels, result.n_clusters,
                      f"threshold-components(w>={min_weight:g})")


def threshold_profile(
    graph: Graph, thresholds: "list[float]"
) -> list[tuple[float, int, int]]:
    """Sweep thresholds; return ``(threshold, n_units, giant_size)`` rows.

    Used to pick the threshold: the paper's analysts look for the knee
    where the giant component dissolves into many mid-sized units.
    """
    rows = []
    for threshold in thresholds:
        clustering = threshold_components(graph, threshold)
        sizes = clustering.sizes()
        rows.append((float(threshold), clustering.n_clusters,
                     int(sizes.max()) if len(sizes) else 0))
    return rows
