"""Weight-threshold clustering of the giant component.

The second GraphClustering method of SCube (paper §3, "designed in
[the JIIS companion paper]"): real interlock graphs collapse into one
giant connected component, which would yield a single useless
organizational unit.  The method removes, *from the giant component
only*, edges whose weight (shared directors) falls below a threshold,
then re-extracts connected components — strong ties survive and split
the giant into meaningful business communities, while small components
are left untouched.

Both entry points run on the graph's edge arrays.  The sweep
(:func:`threshold_profile`) computes the base components and the
giant-internal edge mask **once**, then re-labels with a filtered edge
array per threshold — O(edges) array work per step instead of the
seed-era full graph rebuild + BFS per threshold.  Results are identical
row for row (``graph/legacy.py`` keeps the old sweep for the parity
tests).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.components import (
    Clustering,
    connected_components,
    labels_from_edge_arrays,
)
from repro.graph.graph import Graph


def _giant_internal(graph: Graph) -> "tuple[np.ndarray, np.ndarray]":
    """Base component labels and the giant-internal edge mask."""
    base = connected_components(graph)
    in_giant = base.labels == base.giant()
    u, v, _ = graph.edge_arrays()
    return base.labels, in_giant[u] & in_giant[v]


def threshold_components(graph: Graph, min_weight: float) -> Clustering:
    """Split the giant component at ``min_weight``, keep the rest as-is.

    Steps (following the JIIS design):

    1. find connected components and the giant one;
    2. drop giant-component edges with weight < ``min_weight``;
    3. recompute components on the filtered edge array.

    With ``min_weight <= min edge weight`` this degenerates to plain
    connected components.
    """
    if min_weight < 0:
        raise GraphError("min_weight must be non-negative")
    _, giant_internal = _giant_internal(graph)
    u, v, w = graph.edge_arrays()
    keep = ~(giant_internal & (w < min_weight))
    labels, n_clusters = labels_from_edge_arrays(
        graph.n_nodes, u[keep], v[keep]
    )
    return Clustering(labels, n_clusters,
                      f"threshold-components(w>={min_weight:g})")


def threshold_profile(
    graph: Graph, thresholds: "list[float]"
) -> list[tuple[float, int, int]]:
    """Sweep thresholds; return ``(threshold, n_units, giant_size)`` rows.

    Used to pick the threshold: the paper's analysts look for the knee
    where the giant component dissolves into many mid-sized units.  The
    base components and the giant-internal mask are shared across the
    whole sweep; each threshold only re-masks the edge array and
    re-labels.
    """
    if not thresholds:
        return []
    for threshold in thresholds:
        if threshold < 0:
            raise GraphError("min_weight must be non-negative")
    _, giant_internal = _giant_internal(graph)
    u, v, w = graph.edge_arrays()
    rows = []
    for threshold in thresholds:
        keep = ~(giant_internal & (w < threshold))
        labels, n_clusters = labels_from_edge_arrays(
            graph.n_nodes, u[keep], v[keep]
        )
        sizes = np.bincount(labels, minlength=n_clusters)
        rows.append((float(threshold), n_clusters,
                     int(sizes.max()) if len(sizes) else 0))
    return rows
