"""Clustering quality metrics.

Used by the benchmarks (E12) to compare the three GraphClustering
methods on equal footing: weighted modularity, per-cluster conductance
and attribute homogeneity (entropy within clusters).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.attributes import NodeAttributeTable
from repro.graph.components import Clustering
from repro.graph.graph import Graph


def modularity(graph: Graph, clustering: Clustering) -> float:
    """Newman's weighted modularity of a node partition.

    Q = (1/2W) * sum_uv [A_uv - k_u k_v / 2W] * delta(c_u, c_v),
    with W the total edge weight and k the weighted degrees.
    Returns 0.0 for edgeless graphs.
    """
    total = graph.total_weight()
    if total == 0:
        return 0.0
    labels = clustering.labels
    u, v, w = graph.edge_arrays()
    intra = float(w[labels[u] == labels[v]].sum())
    degree_sums = np.bincount(
        labels, weights=graph.weighted_degrees(),
        minlength=clustering.n_clusters,
    )
    expected = float((degree_sums ** 2).sum()) / (4.0 * total * total)
    return intra / total - expected


def conductance_all(graph: Graph, clustering: Clustering) -> np.ndarray:
    """Conductance of every cluster, in one pass over the edges.

    Conductance = cut weight / min(volume, complement volume); 0 means
    perfectly separated, 1 means all incident weight crosses the
    boundary.  Clusters with zero volume get nan.
    """
    labels = clustering.labels
    k = clustering.n_clusters
    u, v, w = graph.edge_arrays()
    cu, cv = labels[u], labels[v]
    crossing = cu != cv
    cut = np.bincount(cu[crossing], weights=w[crossing], minlength=k)
    cut += np.bincount(cv[crossing], weights=w[crossing], minlength=k)
    # volume counts every edge endpoint: intra edges twice in their own
    # cluster, crossing edges once on each side
    volume = np.bincount(cu, weights=w, minlength=k).astype(np.float64)
    volume += np.bincount(cv, weights=w, minlength=k)
    total_volume = 2 * graph.total_weight()
    out = np.full(k, float("nan"))
    denom = np.minimum(volume, total_volume - volume)
    valid = denom > 0
    out[valid] = cut[valid] / denom[valid]
    return out


def conductance(graph: Graph, clustering: Clustering, cluster: int) -> float:
    """Conductance of one cluster (see :func:`conductance_all`)."""
    if not 0 <= cluster < clustering.n_clusters:
        return float("nan")
    return float(conductance_all(graph, clustering)[cluster])


def mean_conductance(graph: Graph, clustering: Clustering) -> float:
    """Average conductance over clusters (nan clusters skipped)."""
    values = conductance_all(graph, clustering)
    valid = values[~np.isnan(values)]
    return float(valid.mean()) if len(valid) else float("nan")


def attribute_homogeneity(
    attributes: NodeAttributeTable, clustering: Clustering
) -> float:
    """Mean within-cluster attribute entropy, size-weighted (lower = purer)."""
    if attributes.n_attributes == 0:
        return 0.0
    total = 0.0
    weight = 0
    for cluster in range(clustering.n_clusters):
        members = clustering.members(cluster)
        if len(members) == 0:
            continue
        entropy = np.mean(
            [attributes.cluster_entropy(name, members)
             for name in attributes.names]
        )
        total += float(entropy) * len(members)
        weight += len(members)
    return total / weight if weight else 0.0


@dataclass(frozen=True)
class ClusteringSummary:
    """One row of the clustering comparison benchmark (E12)."""

    method: str
    n_clusters: int
    giant_size: int
    modularity: float
    mean_conductance: float
    homogeneity: float


def summarize(
    graph: Graph,
    clustering: Clustering,
    attributes: "NodeAttributeTable | None" = None,
) -> ClusteringSummary:
    """Compute the full quality summary for one clustering."""
    sizes = clustering.sizes()
    return ClusteringSummary(
        method=clustering.method,
        n_clusters=clustering.n_clusters,
        giant_size=int(sizes.max()) if len(sizes) else 0,
        modularity=modularity(graph, clustering),
        mean_conductance=mean_conductance(graph, clustering),
        homogeneity=(
            attribute_homogeneity(attributes, clustering)
            if attributes is not None
            else float("nan")
        ),
    )
