"""Bipartite graphs and their unipartite projections (GraphBuilder).

SCube's *GraphBuilder* module (paper §3) "projects the bipartite graph of
individuals and groups into an unipartite attributed graph, where nodes
are groups and an edge connects two groups if they are related by at
least one shared individual.  Edges are weighted by the number of shared
individuals."  Isolated groups (zero projected degree) are reported
separately, matching the module's ``isolated`` output.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import GraphError
from repro.graph.graph import Graph


class BipartiteGraph:
    """A bipartite graph between ``n_left`` individuals and ``n_right`` groups."""

    def __init__(self, n_left: int, n_right: int):
        if n_left < 0 or n_right < 0:
            raise GraphError("side sizes must be non-negative")
        self.n_left = n_left
        self.n_right = n_right
        self._left_adj: list[set[int]] = [set() for _ in range(n_left)]
        self._right_adj: list[set[int]] = [set() for _ in range(n_right)]

    @classmethod
    def from_edges(
        cls, n_left: int, n_right: int, edges: Iterable[tuple[int, int]]
    ) -> "BipartiteGraph":
        """Build from ``(left, right)`` membership pairs (duplicates merged)."""
        graph = cls(n_left, n_right)
        for left, right in edges:
            graph.add_edge(left, right)
        return graph

    def add_edge(self, left: int, right: int) -> None:
        """Connect individual ``left`` with group ``right`` (idempotent)."""
        if not 0 <= left < self.n_left:
            raise GraphError(f"left node {left} out of range [0, {self.n_left})")
        if not 0 <= right < self.n_right:
            raise GraphError(
                f"right node {right} out of range [0, {self.n_right})"
            )
        self._left_adj[left].add(right)
        self._right_adj[right].add(left)

    @property
    def n_edges(self) -> int:
        return sum(len(s) for s in self._left_adj)

    def groups_of(self, left: int) -> set[int]:
        """Groups the individual belongs to."""
        return set(self._left_adj[left])

    def members_of(self, right: int) -> set[int]:
        """Individuals belonging to the group."""
        return set(self._right_adj[right])

    def left_degrees(self) -> list[int]:
        return [len(s) for s in self._left_adj]

    def right_degrees(self) -> list[int]:
        return [len(s) for s in self._right_adj]


@dataclass
class ProjectionResult:
    """Output of the GraphBuilder step."""

    graph: Graph
    #: Groups with no projected edge (paper output ``isolated``).
    isolated: list[int]
    #: Left nodes whose degree exceeded ``max_left_degree`` and were skipped.
    skipped_hubs: list[int]


def project_onto_groups(
    bipartite: BipartiteGraph,
    min_shared: int = 1,
    max_left_degree: "int | None" = None,
) -> ProjectionResult:
    """Project onto the group side: edge weight = number of shared individuals.

    Parameters
    ----------
    min_shared:
        Keep only edges whose weight (shared individuals) reaches this
        threshold.
    max_left_degree:
        Individuals sitting in more than this many groups are skipped
        during pair generation (an individual of degree d contributes
        d*(d-1)/2 pairs; real board data has a handful of extreme
        multi-directors that would blow up the projection).  ``None``
        disables the guard.

    Complexity: sum over individuals of (degree choose 2).
    """
    if min_shared < 1:
        raise GraphError("min_shared must be >= 1")
    weights: dict[tuple[int, int], int] = {}
    skipped: list[int] = []
    for left in range(bipartite.n_left):
        groups = bipartite._left_adj[left]
        if max_left_degree is not None and len(groups) > max_left_degree:
            skipped.append(left)
            continue
        ordered = sorted(groups)
        for i, g1 in enumerate(ordered):
            for g2 in ordered[i + 1:]:
                key = (g1, g2)
                weights[key] = weights.get(key, 0) + 1
    graph = Graph(bipartite.n_right)
    for (g1, g2), shared in weights.items():
        if shared >= min_shared:
            graph.add_edge(g1, g2, float(shared))
    isolated = graph.isolated_nodes()
    return ProjectionResult(graph, isolated, skipped)


def project_onto_individuals(
    bipartite: BipartiteGraph,
    min_shared: int = 1,
    max_right_degree: "int | None" = None,
) -> ProjectionResult:
    """Project onto the individual side (paper §4, scenario 2).

    Nodes are individuals; an edge connects two directors who sit on at
    least one common board, weighted by the number of shared groups.
    """
    if min_shared < 1:
        raise GraphError("min_shared must be >= 1")
    weights: dict[tuple[int, int], int] = {}
    skipped: list[int] = []
    for right in range(bipartite.n_right):
        members = bipartite._right_adj[right]
        if max_right_degree is not None and len(members) > max_right_degree:
            skipped.append(right)
            continue
        ordered = sorted(members)
        for i, d1 in enumerate(ordered):
            for d2 in ordered[i + 1:]:
                key = (d1, d2)
                weights[key] = weights.get(key, 0) + 1
    graph = Graph(bipartite.n_left)
    for (d1, d2), shared in weights.items():
        if shared >= min_shared:
            graph.add_edge(d1, d2, float(shared))
    isolated = graph.isolated_nodes()
    return ProjectionResult(graph, isolated, skipped)
