"""Bipartite graphs and their unipartite projections (GraphBuilder).

SCube's *GraphBuilder* module (paper §3) "projects the bipartite graph of
individuals and groups into an unipartite attributed graph, where nodes
are groups and an edge connects two groups if they are related by at
least one shared individual.  Edges are weighted by the number of shared
individuals."  Isolated groups (zero projected degree) are reported
separately, matching the module's ``isolated`` output.

Since PR 8 the graph is CSR-backed on both sides (memberships stored as
deduplicated ``(left, right)`` arrays, grouped vectorially), and the
projection runs on arrays:

* ``engine="grouped"`` (default) — enumerate co-membership pairs with a
  degree-bucketed gather over the CSR rows, then count multiplicities
  with one ``np.unique``: the weight of ``{g1, g2}`` is exactly the
  number of individuals contributing the pair.
* ``engine="cover"`` — the miner's kernel: pack each group's member set
  into ``uint64`` bitmap words (``itemsets/coverset.py`` conventions)
  and compute every candidate edge weight as a blocked word-wise AND +
  popcount.  Bit-identical to ``grouped`` (property-tested and checked
  by ``repro.graph.selfcheck``); supports ``workers=`` fan-out over
  shared-memory covers reusing the ``cube/parallel.py`` pool pattern.
* ``engine="auto"`` — ``cover`` when the packed cover matrix is small
  enough to be worth building (and is required when ``workers`` is
  set), else ``grouped``.

Both engines honour the hub guard (``max_left_degree`` /
``max_right_degree``): skipped hubs contribute to *no* pair weight, so
the cover engine masks their bits out of every cover before popcounting.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.itemsets.coverset import WORD_BITS, WORD_DTYPE

_EMPTY_I64 = np.empty(0, dtype=np.int64)

#: Byte budget for one blocked AND+popcount batch in the cover engine.
_COVER_BLOCK_BYTES = 32 << 20
#: ``engine="auto"`` refuses to build cover matrices larger than this.
_AUTO_COVER_LIMIT_BYTES = 256 << 20


def _readonly(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Per-row popcount of a 2-D ``uint64`` word matrix."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words).sum(axis=1, dtype=np.int64)
    from repro.itemsets.coverset import _POPCOUNT_LUT

    bytes_view = words.view(np.uint8).reshape(words.shape[0], -1)
    return _POPCOUNT_LUT[bytes_view].sum(axis=1, dtype=np.int64)


def pack_member_covers(
    indptr: np.ndarray, indices: np.ndarray, n_bits: int
) -> np.ndarray:
    """Pack CSR rows into a ``(n_rows, ceil(n_bits/64))`` bitmap matrix.

    Row ``r``'s cover has bit ``i`` set iff ``i`` appears in the CSR row
    — the same little-endian word layout as ``CoverSet``.
    """
    n_rows = len(indptr) - 1
    n_words = (n_bits + WORD_BITS - 1) // WORD_BITS
    covers = np.zeros((n_rows, n_words), dtype=WORD_DTYPE)
    if len(indices):
        rows = np.repeat(np.arange(n_rows), np.diff(indptr))
        bits = indices.astype(np.uint64)
        np.bitwise_or.at(
            covers,
            (rows, (bits // WORD_BITS).astype(np.int64)),
            np.left_shift(np.uint64(1), bits % np.uint64(WORD_BITS)),
        )
    return covers


class BipartiteGraph:
    """A bipartite graph between ``n_left`` individuals and ``n_right`` groups.

    Memberships are stored as deduplicated ``(left, right)`` int64 arrays
    with CSR views for both sides, built by vectorized grouping.  Scalar
    ``add_edge`` inserts buffer up and are merged on the next read.
    """

    def __init__(self, n_left: int, n_right: int):
        if n_left < 0 or n_right < 0:
            raise GraphError("side sizes must be non-negative")
        self.n_left = int(n_left)
        self.n_right = int(n_right)
        self._el = _readonly(_EMPTY_I64.copy())
        self._er = _readonly(_EMPTY_I64.copy())
        self._pending: "list[tuple[int, int]]" = []
        self._csr: "tuple[np.ndarray, ...] | None" = None

    @classmethod
    def from_edges(
        cls, n_left: int, n_right: int, edges: Iterable[tuple[int, int]]
    ) -> "BipartiteGraph":
        """Build from ``(left, right)`` membership pairs (duplicates merged).

        Compatibility constructor; :meth:`from_arrays` is the fast path.
        """
        pairs = np.asarray(list(edges), dtype=np.int64)
        if pairs.size == 0:
            return cls(n_left, n_right)
        return cls.from_arrays(n_left, n_right, pairs[:, 0], pairs[:, 1])

    @classmethod
    def from_arrays(
        cls, n_left: int, n_right: int,
        lefts: np.ndarray, rights: np.ndarray,
    ) -> "BipartiteGraph":
        """Vectorized constructor from parallel membership arrays."""
        graph = cls(n_left, n_right)
        lefts = np.asarray(lefts, dtype=np.int64).ravel()
        rights = np.asarray(rights, dtype=np.int64).ravel()
        if lefts.shape != rights.shape:
            raise GraphError("membership arrays must have equal length")
        if lefts.size:
            if int(lefts.min()) < 0 or int(lefts.max()) >= n_left:
                bad = int(lefts.min()) if int(lefts.min()) < 0 \
                    else int(lefts.max())
                raise GraphError(
                    f"left node {bad} out of range [0, {n_left})"
                )
            if int(rights.min()) < 0 or int(rights.max()) >= n_right:
                bad = int(rights.min()) if int(rights.min()) < 0 \
                    else int(rights.max())
                raise GraphError(
                    f"right node {bad} out of range [0, {n_right})"
                )
            graph._el, graph._er = graph._dedupe(lefts, rights)
        return graph

    def _dedupe(
        self, lefts: np.ndarray, rights: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Sort by ``(left, right)`` and drop duplicate memberships."""
        key = lefts * np.int64(max(self.n_right, 1)) + rights
        uniq = np.unique(key)
        return (
            _readonly(uniq // max(self.n_right, 1)),
            _readonly(uniq % max(self.n_right, 1)),
        )

    def add_edge(self, left: int, right: int) -> None:
        """Connect individual ``left`` with group ``right`` (idempotent)."""
        if not 0 <= left < self.n_left:
            raise GraphError(f"left node {left} out of range [0, {self.n_left})")
        if not 0 <= right < self.n_right:
            raise GraphError(
                f"right node {right} out of range [0, {self.n_right})"
            )
        self._pending.append((int(left), int(right)))
        self._csr = None

    def _commit(self) -> None:
        if not self._pending:
            return
        pend = np.asarray(self._pending, dtype=np.int64)
        self._pending.clear()
        self._el, self._er = self._dedupe(
            np.concatenate([self._el, pend[:, 0]]),
            np.concatenate([self._er, pend[:, 1]]),
        )

    def _ensure_csr(self) -> "tuple[np.ndarray, ...]":
        """Both-side CSR: ``(l_indptr, l_indices, r_indptr, r_indices)``."""
        self._commit()
        if self._csr is None:
            l_indptr = np.zeros(self.n_left + 1, dtype=np.int64)
            np.cumsum(
                np.bincount(self._el, minlength=self.n_left),
                out=l_indptr[1:],
            )
            # committed arrays are sorted by (left, right) already
            l_indices = self._er
            order = np.lexsort((self._el, self._er))
            r_indptr = np.zeros(self.n_right + 1, dtype=np.int64)
            np.cumsum(
                np.bincount(self._er, minlength=self.n_right),
                out=r_indptr[1:],
            )
            r_indices = _readonly(self._el[order])
            self._csr = (l_indptr, l_indices, r_indptr, r_indices)
        return self._csr

    def membership_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """Read-only deduplicated ``(lefts, rights)`` arrays."""
        self._commit()
        return self._el, self._er

    @property
    def n_edges(self) -> int:
        """Number of distinct memberships (O(1) on committed arrays)."""
        self._commit()
        return int(self._el.size)

    def groups_of(self, left: int) -> np.ndarray:
        """Groups the individual belongs to (sorted read-only view)."""
        if not 0 <= left < self.n_left:
            raise GraphError(f"left node {left} out of range [0, {self.n_left})")
        l_indptr, l_indices, _, _ = self._ensure_csr()
        return l_indices[int(l_indptr[left]):int(l_indptr[left + 1])]

    def members_of(self, right: int) -> np.ndarray:
        """Individuals belonging to the group (sorted read-only view)."""
        if not 0 <= right < self.n_right:
            raise GraphError(
                f"right node {right} out of range [0, {self.n_right})"
            )
        _, _, r_indptr, r_indices = self._ensure_csr()
        return r_indices[int(r_indptr[right]):int(r_indptr[right + 1])]

    def left_degrees(self) -> np.ndarray:
        """Membership count per individual (read-only array view)."""
        return _readonly(np.diff(self._ensure_csr()[0]))

    def right_degrees(self) -> np.ndarray:
        """Member count per group (read-only array view)."""
        return _readonly(np.diff(self._ensure_csr()[2]))

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(n_left={self.n_left}, n_right={self.n_right}, "
            f"n_edges={self.n_edges})"
        )


@dataclass
class ProjectionResult:
    """Output of the GraphBuilder step."""

    graph: Graph
    #: Groups with no projected edge (paper output ``isolated``).
    isolated: list[int]
    #: Left nodes whose degree exceeded ``max_left_degree`` and were skipped.
    skipped_hubs: list[int]


def _enumerate_pairs(
    indptr: np.ndarray,
    indices: np.ndarray,
    max_degree: "int | None",
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """All co-membership pairs ``(a, b)`` with ``a < b``, with multiplicity.

    Sources are bucketed by degree so each bucket becomes one dense
    ``(m, d)`` gather + ``triu_indices`` combination — no Python-level
    per-source loop.  Returns ``(a, b, skipped_sources)``.
    """
    degrees = np.diff(indptr)
    if max_degree is not None:
        skipped = np.flatnonzero(degrees > max_degree)
    else:
        skipped = _EMPTY_I64
    out_a: "list[np.ndarray]" = []
    out_b: "list[np.ndarray]" = []
    for d in np.unique(degrees):
        d = int(d)
        if d < 2 or (max_degree is not None and d > max_degree):
            continue
        sources = np.flatnonzero(degrees == d)
        gather = indptr[sources][:, None] + np.arange(d)[None, :]
        rows = indices[gather]  # (m, d); rows sorted (CSR invariant)
        iu, ju = np.triu_indices(d, k=1)
        out_a.append(rows[:, iu].ravel())
        out_b.append(rows[:, ju].ravel())
    if not out_a:
        return _EMPTY_I64, _EMPTY_I64, skipped
    return np.concatenate(out_a), np.concatenate(out_b), skipped


def _count_pairs_grouped(
    a: np.ndarray, b: np.ndarray, n_nodes: int
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Unique pairs + multiplicities via one sort: ``(u, v, counts)``."""
    key = a * np.int64(n_nodes) + b
    uniq, counts = np.unique(key, return_counts=True)
    return uniq // n_nodes, uniq % n_nodes, counts


def _count_pairs_cover(
    a: np.ndarray,
    b: np.ndarray,
    n_nodes: int,
    covers: np.ndarray,
    workers: "int | None",
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Unique pairs weighted by cover intersection popcounts.

    ``covers[g]`` is the packed member bitmap of node ``g`` (hub bits
    already masked out); the weight of ``{u, v}`` is
    ``popcount(covers[u] & covers[v])`` — computed in blocks bounded by
    ``_COVER_BLOCK_BYTES``, optionally fanned out across ``workers``
    processes over shared memory.
    """
    key = a * np.int64(n_nodes) + b
    uniq = np.unique(key)
    u = uniq // n_nodes
    v = uniq % n_nodes
    if workers is not None and workers > 1 and len(uniq):
        from repro.graph.parallel import cover_pair_counts_parallel

        counts = cover_pair_counts_parallel(covers, u, v, workers)
    else:
        counts = cover_pair_counts(covers, u, v)
    return u, v, counts


def cover_pair_counts(
    covers: np.ndarray, u: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Blocked AND+popcount of cover rows ``u`` against rows ``v``."""
    n_words = max(covers.shape[1], 1)
    block = max(1, _COVER_BLOCK_BYTES // (n_words * 8 * 2))
    counts = np.empty(len(u), dtype=np.int64)
    for start in range(0, len(u), block):
        stop = min(start + block, len(u))
        shared = covers[u[start:stop]] & covers[v[start:stop]]
        counts[start:stop] = popcount_rows(shared)
    return counts


def _project(
    bipartite: BipartiteGraph,
    side: str,
    min_shared: int,
    max_degree: "int | None",
    engine: str,
    workers: "int | None",
) -> ProjectionResult:
    """Shared projection core; ``side`` picks the node side kept."""
    if min_shared < 1:
        raise GraphError("min_shared must be >= 1")
    if engine not in ("auto", "grouped", "cover"):
        raise GraphError(
            f"unknown projection engine {engine!r} "
            "(choose 'auto', 'grouped' or 'cover')"
        )
    l_indptr, l_indices, r_indptr, r_indices = bipartite._ensure_csr()
    if side == "groups":
        # sources = individuals; pairs/covers live on the group side
        src_indptr, src_indices = l_indptr, l_indices
        node_indptr, node_indices = r_indptr, r_indices
        n_nodes, n_sources = bipartite.n_right, bipartite.n_left
    else:
        src_indptr, src_indices = r_indptr, r_indices
        node_indptr, node_indices = l_indptr, l_indices
        n_nodes, n_sources = bipartite.n_left, bipartite.n_right

    a, b, skipped = _enumerate_pairs(src_indptr, src_indices, max_degree)

    if engine == "auto":
        n_words = (n_sources + WORD_BITS - 1) // WORD_BITS
        matrix_bytes = n_nodes * n_words * 8
        engine = (
            "cover"
            if workers is not None and workers > 1
            and matrix_bytes <= _AUTO_COVER_LIMIT_BYTES
            else "grouped"
        )

    if engine == "grouped" or len(a) == 0:
        u, v, counts = _count_pairs_grouped(a, b, max(n_nodes, 1))
    else:
        covers = pack_member_covers(node_indptr, node_indices, n_sources)
        if len(skipped):
            # a skipped hub must contribute to no pair weight: clear its
            # bit from every node cover before popcounting
            mask = np.bitwise_not(
                pack_member_covers(
                    np.array([0, len(skipped)], dtype=np.int64),
                    skipped,
                    n_sources,
                )[0]
            )
            covers &= mask[None, :]
        u, v, counts = _count_pairs_cover(
            a, b, max(n_nodes, 1), covers, workers
        )

    keep = counts >= min_shared
    graph = Graph.from_edge_arrays(
        n_nodes, u[keep], v[keep], counts[keep].astype(np.float64)
    )
    isolated = graph.isolated_nodes()
    return ProjectionResult(graph, isolated, [int(s) for s in skipped])


def project_onto_groups(
    bipartite: BipartiteGraph,
    min_shared: int = 1,
    max_left_degree: "int | None" = None,
    engine: str = "auto",
    workers: "int | None" = None,
) -> ProjectionResult:
    """Project onto the group side: edge weight = number of shared individuals.

    Parameters
    ----------
    min_shared:
        Keep only edges whose weight (shared individuals) reaches this
        threshold.
    max_left_degree:
        Individuals sitting in more than this many groups are skipped
        during pair generation (an individual of degree d contributes
        d*(d-1)/2 pairs; real board data has a handful of extreme
        multi-directors that would blow up the projection).  ``None``
        disables the guard.
    engine:
        ``"grouped"`` (sort-count), ``"cover"`` (packed AND+popcount) or
        ``"auto"``.  All engines produce identical edges and weights.
    workers:
        Fan the cover engine's popcount blocks across this many
        processes (shared-memory covers); ignored by ``"grouped"``.

    Complexity: sum over individuals of (degree choose 2) pair slots.
    """
    return _project(
        bipartite, "groups", min_shared, max_left_degree, engine, workers
    )


def project_onto_individuals(
    bipartite: BipartiteGraph,
    min_shared: int = 1,
    max_right_degree: "int | None" = None,
    engine: str = "auto",
    workers: "int | None" = None,
) -> ProjectionResult:
    """Project onto the individual side (paper §4, scenario 2).

    Nodes are individuals; an edge connects two directors who sit on at
    least one common board, weighted by the number of shared groups.
    Accepts the same ``engine`` / ``workers`` knobs as
    :func:`project_onto_groups`.
    """
    return _project(
        bipartite, "individuals", min_shared, max_right_degree, engine,
        workers,
    )
