"""Weighted undirected graphs on edge arrays + CSR.

The GraphBuilder and GraphClustering modules of SCube operate on the
unipartite projection of the individuals×groups bipartite graph: nodes
are groups (companies), edge weights count shared individuals
(directors).  Since PR 8 the storage layer is array-native: edges live
in three parallel NumPy arrays ``(u, v, w)`` with ``u < v``, deduplicated
and sorted by ``(u, v)``, from which a cached CSR view
``(indptr, indices, weights)`` is derived for traversal-heavy
algorithms.  The mutable builder API (``add_edge`` and friends) is
unchanged from the seed implementation — scalar inserts land in a
pending buffer that is merged vectorially on the next read — so callers
written against the dict-adjacency version keep working, while the hot
paths (projection, components, SToC, threshold sweeps, metrics) consume
``edge_arrays()`` / ``csr()`` wholesale.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import GraphError


def _readonly(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


def _accumulate_edges(
    n_nodes: int, u: np.ndarray, v: np.ndarray, w: np.ndarray
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Deduplicate ``u < v`` edge arrays, summing parallel-edge weights.

    Returns arrays sorted by ``(u, v)``; the key fits int64 for any node
    count a single machine can hold (n_nodes² < 2**63).
    """
    if u.size == 0:
        return (
            _readonly(np.empty(0, dtype=np.int64)),
            _readonly(np.empty(0, dtype=np.int64)),
            _readonly(np.empty(0, dtype=np.float64)),
        )
    key = u * np.int64(n_nodes) + v
    uniq, inverse = np.unique(key, return_inverse=True)
    acc = np.bincount(inverse, weights=w, minlength=len(uniq))
    return (
        _readonly(uniq // n_nodes),
        _readonly(uniq % n_nodes),
        _readonly(acc.astype(np.float64, copy=False)),
    )


class Graph:
    """A weighted undirected graph over nodes ``0 .. n_nodes-1``.

    Self-loops are rejected; parallel edge insertions accumulate weight.
    """

    def __init__(self, n_nodes: int):
        if n_nodes < 0:
            raise GraphError("n_nodes must be non-negative")
        self.n_nodes = int(n_nodes)
        self._eu = _readonly(np.empty(0, dtype=np.int64))
        self._ev = _readonly(np.empty(0, dtype=np.int64))
        self._ew = _readonly(np.empty(0, dtype=np.float64))
        self._pending: "list[tuple[int, int, float]]" = []
        self._csr: "tuple[np.ndarray, np.ndarray, np.ndarray] | None" = None

    @classmethod
    def from_edges(
        cls, n_nodes: int, edges: Iterable[tuple[int, int, float]]
    ) -> "Graph":
        """Build from ``(u, v, weight)`` triples."""
        graph = cls(n_nodes)
        for u, v, w in edges:
            graph.add_edge(u, v, w)
        return graph

    @classmethod
    def from_edge_arrays(
        cls,
        n_nodes: int,
        u: np.ndarray,
        v: np.ndarray,
        weights: np.ndarray,
    ) -> "Graph":
        """Vectorized constructor from parallel edge arrays.

        Endpoints may come in either order; duplicates accumulate weight
        exactly like repeated :meth:`add_edge` calls.
        """
        graph = cls(n_nodes)
        u = np.asarray(u, dtype=np.int64).ravel()
        v = np.asarray(v, dtype=np.int64).ravel()
        w = np.asarray(weights, dtype=np.float64).ravel()
        if not (u.shape == v.shape == w.shape):
            raise GraphError("edge arrays must have equal length")
        if u.size:
            low = min(int(u.min()), int(v.min()))
            high = max(int(u.max()), int(v.max()))
            if low < 0 or high >= n_nodes:
                bad = low if low < 0 else high
                raise GraphError(f"node {bad} out of range [0, {n_nodes})")
            loops = u == v
            if loops.any():
                node = int(u[np.argmax(loops)])
                raise GraphError(f"self-loop on node {node} not allowed")
            nonpos = w <= 0
            if nonpos.any():
                value = w[np.argmax(nonpos)]
                raise GraphError(f"edge weight must be positive, got {value}")
        graph._eu, graph._ev, graph._ew = _accumulate_edges(
            n_nodes, np.minimum(u, v), np.maximum(u, v), w
        )
        return graph

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.n_nodes:
            raise GraphError(f"node {u} out of range [0, {self.n_nodes})")

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add (or accumulate onto) the undirected edge ``{u, v}``."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise GraphError(f"self-loop on node {u} not allowed")
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight}")
        if u > v:
            u, v = v, u
        self._pending.append((int(u), int(v), float(weight)))
        self._csr = None

    def _commit(self) -> None:
        """Fold pending scalar inserts into the committed edge arrays."""
        if not self._pending:
            return
        pend = np.asarray(self._pending, dtype=np.float64).reshape(-1, 3)
        u = np.concatenate([self._eu, pend[:, 0].astype(np.int64)])
        v = np.concatenate([self._ev, pend[:, 1].astype(np.int64)])
        w = np.concatenate([self._ew, pend[:, 2]])
        self._pending.clear()
        self._eu, self._ev, self._ew = _accumulate_edges(
            self.n_nodes, u, v, w
        )

    def edge_arrays(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Read-only ``(u, v, w)`` arrays, ``u < v``, sorted by ``(u, v)``.

        This is the bulk access path every vectorized algorithm uses.
        """
        self._commit()
        return self._eu, self._ev, self._ew

    def csr(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Frozen CSR view ``(indptr, indices, weights)`` (cached).

        Neighbour lists are sorted by node id, both edge directions
        present.
        """
        self._commit()
        if self._csr is None:
            src = np.concatenate([self._eu, self._ev])
            dst = np.concatenate([self._ev, self._eu])
            wt = np.concatenate([self._ew, self._ew])
            order = np.lexsort((dst, src))
            indptr = np.zeros(self.n_nodes + 1, dtype=np.int64)
            counts = np.bincount(src, minlength=self.n_nodes)
            np.cumsum(counts, out=indptr[1:])
            self._csr = (
                _readonly(indptr),
                _readonly(dst[order]),
                _readonly(wt[order]),
            )
        return self._csr

    def _row(self, u: int) -> "tuple[np.ndarray, np.ndarray]":
        indptr, indices, weights = self.csr()
        lo, hi = int(indptr[u]), int(indptr[u + 1])
        return indices[lo:hi], weights[lo:hi]

    def has_edge(self, u: int, v: int) -> bool:
        """True when the undirected edge ``{u, v}`` exists."""
        return self.weight(u, v) != 0.0

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}`` (0.0 when absent)."""
        self._check_node(u)
        self._check_node(v)
        row, weights = self._row(u)
        k = int(np.searchsorted(row, v))
        if k < len(row) and row[k] == v:
            return float(weights[k])
        return 0.0

    def neighbors(self, u: int) -> Iterator[int]:
        """Iterate the neighbours of ``u`` (sorted by node id)."""
        self._check_node(u)
        return map(int, self._row(u)[0])

    def neighbor_weights(self, u: int) -> Iterator[tuple[int, float]]:
        """Iterate ``(neighbour, weight)`` pairs of ``u``."""
        self._check_node(u)
        row, weights = self._row(u)
        return zip(map(int, row), map(float, weights))

    def degree(self, u: int) -> int:
        """Number of neighbours of ``u``."""
        self._check_node(u)
        indptr = self.csr()[0]
        return int(indptr[u + 1] - indptr[u])

    def degrees(self) -> np.ndarray:
        """Degree of every node as a read-only int64 array."""
        return _readonly(np.diff(self.csr()[0]))

    def weighted_degree(self, u: int) -> float:
        """Sum of incident edge weights of ``u``."""
        self._check_node(u)
        return float(self._row(u)[1].sum())

    def weighted_degrees(self) -> np.ndarray:
        """Weighted degree of every node (one vectorized pass)."""
        u, v, w = self.edge_arrays()
        out = np.bincount(u, weights=w, minlength=self.n_nodes)
        out += np.bincount(v, weights=w, minlength=self.n_nodes)
        return _readonly(out)

    @property
    def n_edges(self) -> int:
        """Number of undirected edges (O(1) on committed arrays)."""
        self._commit()
        return int(self._eu.size)

    def total_weight(self) -> float:
        """Sum of edge weights (each undirected edge counted once)."""
        self._commit()
        return float(self._ew.sum())

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate undirected edges once, as ``(u, v, w)`` with ``u < v``.

        Edges come out sorted by ``(u, v)`` (the committed array order).
        """
        u, v, w = self.edge_arrays()
        return zip(map(int, u), map(int, v), map(float, w))

    def isolated_nodes(self) -> list[int]:
        """Nodes with no incident edge."""
        u, v, _ = self.edge_arrays()
        touched = np.bincount(
            np.concatenate([u, v]), minlength=self.n_nodes
        )
        return [int(x) for x in np.flatnonzero(touched == 0)]

    def subgraph_by_mask(self, keep: np.ndarray) -> "Graph":
        """A new graph keeping the edges where boolean ``keep`` is True.

        ``keep`` aligns with :meth:`edge_arrays` order.
        """
        u, v, w = self.edge_arrays()
        keep = np.asarray(keep, dtype=bool).ravel()
        if keep.shape != u.shape:
            raise GraphError("edge mask length does not match n_edges")
        out = Graph(self.n_nodes)
        out._eu = _readonly(u[keep])
        out._ev = _readonly(v[keep])
        out._ew = _readonly(w[keep])
        return out

    def subgraph_by_edges(
        self, keep: "callable[[int, int, float], bool]"
    ) -> "Graph":
        """A new graph with the same nodes, keeping edges where ``keep`` holds."""
        u, v, w = self.edge_arrays()
        mask = np.fromiter(
            (bool(keep(int(a), int(b), float(c)))
             for a, b, c in zip(u, v, w)),
            dtype=bool, count=len(u),
        )
        return self.subgraph_by_mask(mask)

    def weight_histogram(self) -> dict[float, int]:
        """Edge count per distinct weight (for projection diagnostics)."""
        self._commit()
        values, counts = np.unique(self._ew, return_counts=True)
        return {float(w): int(c) for w, c in zip(values, counts)}

    def __repr__(self) -> str:
        return f"Graph(n_nodes={self.n_nodes}, n_edges={self.n_edges})"
