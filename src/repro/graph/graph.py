"""Weighted undirected graphs.

The GraphBuilder and GraphClustering modules of SCube operate on the
unipartite projection of the individuals×groups bipartite graph: nodes
are groups (companies), edge weights count shared individuals (directors).
This module provides the storage layer — a mutable adjacency-map builder
that freezes into CSR arrays for traversal-heavy algorithms.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import GraphError


class Graph:
    """A weighted undirected graph over nodes ``0 .. n_nodes-1``.

    Self-loops are rejected; parallel edge insertions accumulate weight.
    """

    def __init__(self, n_nodes: int):
        if n_nodes < 0:
            raise GraphError("n_nodes must be non-negative")
        self.n_nodes = n_nodes
        self._adj: list[dict[int, float]] = [dict() for _ in range(n_nodes)]
        self._csr: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    @classmethod
    def from_edges(
        cls, n_nodes: int, edges: Iterable[tuple[int, int, float]]
    ) -> "Graph":
        """Build from ``(u, v, weight)`` triples."""
        graph = cls(n_nodes)
        for u, v, w in edges:
            graph.add_edge(u, v, w)
        return graph

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.n_nodes:
            raise GraphError(f"node {u} out of range [0, {self.n_nodes})")

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add (or accumulate onto) the undirected edge ``{u, v}``."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise GraphError(f"self-loop on node {u} not allowed")
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight}")
        self._adj[u][v] = self._adj[u].get(v, 0.0) + weight
        self._adj[v][u] = self._adj[v].get(u, 0.0) + weight
        self._csr = None

    def has_edge(self, u: int, v: int) -> bool:
        """True when the undirected edge ``{u, v}`` exists."""
        self._check_node(u)
        self._check_node(v)
        return v in self._adj[u]

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}`` (0.0 when absent)."""
        self._check_node(u)
        self._check_node(v)
        return self._adj[u].get(v, 0.0)

    def neighbors(self, u: int) -> Iterator[int]:
        """Iterate the neighbours of ``u``."""
        self._check_node(u)
        return iter(self._adj[u])

    def neighbor_weights(self, u: int) -> Iterator[tuple[int, float]]:
        """Iterate ``(neighbour, weight)`` pairs of ``u``."""
        self._check_node(u)
        return iter(self._adj[u].items())

    def degree(self, u: int) -> int:
        """Number of neighbours of ``u``."""
        self._check_node(u)
        return len(self._adj[u])

    def weighted_degree(self, u: int) -> float:
        """Sum of incident edge weights of ``u``."""
        self._check_node(u)
        return float(sum(self._adj[u].values()))

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(a) for a in self._adj) // 2

    def total_weight(self) -> float:
        """Sum of edge weights (each undirected edge counted once)."""
        return sum(sum(a.values()) for a in self._adj) / 2.0

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate undirected edges once, as ``(u, v, w)`` with ``u < v``."""
        for u, adjacency in enumerate(self._adj):
            for v, w in adjacency.items():
                if u < v:
                    yield (u, v, w)

    def isolated_nodes(self) -> list[int]:
        """Nodes with no incident edge."""
        return [u for u, adjacency in enumerate(self._adj) if not adjacency]

    def csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Frozen CSR view ``(indptr, indices, weights)`` (cached)."""
        if self._csr is None:
            degrees = np.fromiter(
                (len(a) for a in self._adj), dtype=np.int64, count=self.n_nodes
            )
            indptr = np.zeros(self.n_nodes + 1, dtype=np.int64)
            np.cumsum(degrees, out=indptr[1:])
            indices = np.empty(int(indptr[-1]), dtype=np.int64)
            weights = np.empty(int(indptr[-1]), dtype=np.float64)
            for u, adjacency in enumerate(self._adj):
                start = int(indptr[u])
                for k, (v, w) in enumerate(sorted(adjacency.items())):
                    indices[start + k] = v
                    weights[start + k] = w
            self._csr = (indptr, indices, weights)
        return self._csr

    def subgraph_by_edges(
        self, keep: "callable[[int, int, float], bool]"
    ) -> "Graph":
        """A new graph with the same nodes, keeping edges where ``keep`` holds."""
        out = Graph(self.n_nodes)
        for u, v, w in self.edges():
            if keep(u, v, w):
                out.add_edge(u, v, w)
        return out

    def weight_histogram(self) -> dict[float, int]:
        """Edge count per distinct weight (for projection diagnostics)."""
        hist: dict[float, int] = {}
        for _, _, w in self.edges():
            hist[w] = hist.get(w, 0) + 1
        return hist

    def __repr__(self) -> str:
        return f"Graph(n_nodes={self.n_nodes}, n_edges={self.n_edges})"
