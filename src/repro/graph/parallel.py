"""Multiprocess fan-out for the cover projection engine.

The cover engine's inner kernel — popcount of the word-wise AND of two
packed member covers per candidate edge — is embarrassingly parallel
across edges.  This module partitions the candidate pair array into
contiguous ranges and maps them over a ``multiprocessing`` pool, reusing
the ``cube/parallel.py`` pattern:

* the ``(n_nodes, n_words)`` cover matrix and the pair endpoint arrays
  are written **once** into :mod:`multiprocessing.shared_memory`
  segments — workers map them read-only instead of receiving pickled
  copies;
* each worker runs the exact single-process kernel
  (:func:`repro.graph.bipartite.cover_pair_counts`) over its range, so
  the parallel counts are bit-identical to the serial ones;
* the parent closes **and** unlinks the segments in one ``finally`` —
  the single point of cleanup (worker attaches re-register with the
  shared resource tracker, which has set semantics).
"""

from __future__ import annotations

import multiprocessing
import os
from multiprocessing import shared_memory

import numpy as np

from repro.itemsets.coverset import WORD_DTYPE


def resolve_workers(workers: "int | None") -> int:
    """Effective worker count: ``workers`` or one per CPU, at least 1."""
    if workers is None:
        return max(1, os.cpu_count() or 1)
    return max(1, int(workers))


def _mp_context():
    """Fork when available (cheapest on Linux), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


#: Per-process configuration, set once by the pool initializer.
_WORKER_CFG: "dict | None" = None


def _init_worker(cfg: dict) -> None:
    global _WORKER_CFG
    _WORKER_CFG = cfg


def _count_range(bounds: "tuple[int, int]") -> "tuple[int, np.ndarray]":
    """Pool task: popcount the candidate pairs in ``[start, stop)``."""
    from repro.graph.bipartite import cover_pair_counts

    cfg = _WORKER_CFG
    start, stop = bounds
    shm_covers = shared_memory.SharedMemory(name=cfg["covers_shm"])
    shm_pairs = shared_memory.SharedMemory(name=cfg["pairs_shm"])
    try:
        covers = np.ndarray(
            (cfg["n_nodes"], cfg["n_words"]), dtype=WORD_DTYPE,
            buffer=shm_covers.buf,
        )
        pairs = np.ndarray(
            (2, cfg["n_pairs"]), dtype=np.int64, buffer=shm_pairs.buf
        )
        # Slicing copies out of shared memory, so no view survives the
        # close() below (a live export would raise BufferError).
        counts = cover_pair_counts(
            covers, pairs[0, start:stop].copy(), pairs[1, start:stop].copy()
        )
        return start, counts
    finally:
        shm_covers.close()
        shm_pairs.close()


def cover_pair_counts_parallel(
    covers: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    workers: "int | None",
) -> np.ndarray:
    """Popcount ``covers[u] & covers[v]`` across a worker pool.

    Bit-identical to :func:`repro.graph.bipartite.cover_pair_counts`
    (each worker runs that very kernel on its contiguous pair range).
    """
    n_pairs = len(u)
    n_parts = min(resolve_workers(workers), max(1, n_pairs))
    covers = np.ascontiguousarray(covers, dtype=WORD_DTYPE)
    pairs = np.ascontiguousarray(np.stack([u, v]), dtype=np.int64)
    shm_covers = shared_memory.SharedMemory(
        create=True, size=max(1, covers.nbytes)
    )
    shm_pairs = shared_memory.SharedMemory(
        create=True, size=max(1, pairs.nbytes)
    )
    try:
        np.ndarray(covers.shape, WORD_DTYPE, buffer=shm_covers.buf)[:] = \
            covers
        np.ndarray(pairs.shape, np.int64, buffer=shm_pairs.buf)[:] = pairs
        cfg = {
            "covers_shm": shm_covers.name,
            "pairs_shm": shm_pairs.name,
            "n_nodes": covers.shape[0],
            "n_words": covers.shape[1],
            "n_pairs": n_pairs,
        }
        bounds = [
            (int(lo), int(hi))
            for lo, hi in zip(
                np.linspace(0, n_pairs, n_parts + 1).astype(np.int64)[:-1],
                np.linspace(0, n_pairs, n_parts + 1).astype(np.int64)[1:],
            )
            if hi > lo
        ]
        out = np.empty(n_pairs, dtype=np.int64)
        ctx = _mp_context()
        with ctx.Pool(
            processes=n_parts,
            initializer=_init_worker,
            initargs=(cfg,),
        ) as pool:
            for start, counts in pool.imap_unordered(_count_range, bounds):
                out[start:start + len(counts)] = counts
        return out
    finally:
        shm_covers.close()
        shm_covers.unlink()
        shm_pairs.close()
        shm_pairs.unlink()
