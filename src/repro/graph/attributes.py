"""Node attribute tables and attribute distances for attributed graphs.

Attributed-graph clustering (paper §2, citing Bothorel et al.) partitions
nodes that are both well connected *and* similar on their attributes.
This module stores per-node categorical attributes column-wise and
provides the distance functions SToC combines with topology.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.errors import GraphError


class NodeAttributeTable:
    """Categorical attributes for ``n_nodes`` graph nodes.

    Attributes are stored as integer code arrays; distances operate on
    codes, so the table is cheap to query inside clustering loops.
    """

    def __init__(self, n_nodes: int):
        if n_nodes < 0:
            raise GraphError("n_nodes must be non-negative")
        self.n_nodes = n_nodes
        self._columns: dict[str, np.ndarray] = {}
        self._categories: dict[str, list] = {}
        self._matrix: "np.ndarray | None" = None

    @classmethod
    def from_columns(
        cls, n_nodes: int, columns: Mapping[str, Sequence[object]]
    ) -> "NodeAttributeTable":
        """Build from raw ``{name: values}`` columns."""
        table = cls(n_nodes)
        for name, values in columns.items():
            table.add(name, values)
        return table

    def add(self, name: str, values: Sequence[object]) -> None:
        """Add one categorical attribute column."""
        if len(values) != self.n_nodes:
            raise GraphError(
                f"attribute {name!r} has {len(values)} values for "
                f"{self.n_nodes} nodes"
            )
        categories: list = []
        index: dict[object, int] = {}
        codes = np.empty(self.n_nodes, dtype=np.int32)
        for k, value in enumerate(values):
            code = index.get(value)
            if code is None:
                code = len(categories)
                index[value] = code
                categories.append(value)
            codes[k] = code
        self._columns[name] = codes
        self._categories[name] = categories
        self._matrix = None

    @property
    def names(self) -> list[str]:
        return list(self._columns)

    @property
    def n_attributes(self) -> int:
        return len(self._columns)

    def codes(self, name: str) -> np.ndarray:
        """Code array of attribute ``name``."""
        try:
            return self._columns[name]
        except KeyError:
            raise GraphError(f"unknown attribute {name!r}") from None

    def codes_matrix(self) -> np.ndarray:
        """All code columns stacked as one ``(n_attributes, n_nodes)`` matrix.

        Cached (invalidated by :meth:`add`); the batched access path the
        vectorized SToC frontier uses for whole-level Hamming distances.
        """
        if self._matrix is None:
            if self._columns:
                matrix = np.vstack(list(self._columns.values()))
            else:
                matrix = np.empty((0, self.n_nodes), dtype=np.int32)
            matrix.setflags(write=False)
            self._matrix = matrix
        return self._matrix

    def value(self, name: str, node: int) -> object:
        """Decoded value of ``name`` at ``node``."""
        return self._categories[name][int(self.codes(name)[node])]

    def matching_fraction(self, u: int, v: int) -> float:
        """Fraction of attributes on which ``u`` and ``v`` agree."""
        if not self._columns:
            return 1.0
        matches = sum(
            1 for codes in self._columns.values() if codes[u] == codes[v]
        )
        return matches / len(self._columns)

    def hamming_distance(self, u: int, v: int) -> float:
        """Fraction of attributes on which ``u`` and ``v`` disagree."""
        return 1.0 - self.matching_fraction(u, v)

    def cluster_entropy(self, name: str, members: np.ndarray) -> float:
        """Shannon entropy (bits) of attribute ``name`` within a cluster."""
        codes = self.codes(name)[members]
        if len(codes) == 0:
            return 0.0
        counts = np.bincount(codes)
        probs = counts[counts > 0] / len(codes)
        return float(-(probs * np.log2(probs)).sum())
