"""SToC: linear-time clustering of very large attributed graphs.

Reimplementation of the algorithm the paper lists as its third
GraphClustering method (Baroni, Conte, Patrignani, Ruggieri,
"Efficiently clustering very large attributed graphs", ASONAM 2017).

SToC grows clusters from seeds: it repeatedly pops an unassigned seed
node, collects the seed's *τ-close ball* — unassigned nodes reachable
through already-accepted nodes whose combined topological+attribute
distance from the seed is at most ``tau`` — and emits the ball as one
cluster.  The combined distance is the convex combination

    d(s, v) = alpha * d_topo(s, v) + (1 - alpha) * d_attr(s, v)

with ``d_topo`` the BFS hop distance normalised by the ball horizon and
``d_attr`` the Hamming distance over categorical attributes (the
published algorithm uses Jaccard over set-valued attributes; for the
single-valued company attributes of the case studies the two coincide).
Each node is visited a constant number of times, so the total cost is
O(nodes + edges) — the property that lets SCube scale to millions of
companies.

Growth is batched across **balls**, not just across levels: up to 32
pending seeds grow speculatively at once on one stacked ``(node,
owner)`` frontier — one CSR gather, one ``(owner, node)`` dedup and one
Hamming pass per level serve every ball of the batch, with a per-node
``uint64`` bitmask (bit *b* = visited by ball *b*) replacing the
per-ball visited set.  Balls are then *committed in seed order*: a ball
whose accepted nodes were claimed by an earlier ball of the same batch
is regrown alone against the true label state (the exact
level-synchronous single-ball grower), and a seed claimed by an earlier
ball is skipped exactly as the sequential loop would skip it.  Rejected
candidates shared between balls need no such care — a rejected node
leaves no cross-ball state, and a node labelled by an earlier ball is
barred from candidacy just as a visited-and-rejected node is.  The
committed labels are therefore **exactly identical** to the seed-era
deque BFS (``graph/legacy.py``) for every seed order, which the
property tests and ``repro.graph.selfcheck`` assert.

The reference implementation samples seeds randomly; we default to a
seeded RNG for reproducibility and also expose deterministic
max-degree-first seeding.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.attributes import NodeAttributeTable
from repro.graph.components import Clustering, gather_neighbors
from repro.graph.graph import Graph

#: Balls grown concurrently per speculative batch — one bit of the
#: per-node ``uint64`` visited mask each.  32 balances the two failure
#: modes measured on the E22 projection and community-structured
#: graphs: larger batches amortise per-level overhead but waste more
#: speculative growth (and regrows) when seeds collide inside the same
#: tight cluster, smaller ones do the reverse; 32 beat both 16 and 64
#: on every workload's worst case.
_BALL_BATCH = 32


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    """``np.unique`` for int arrays via sort + adjacent-diff.

    The frontier dedup runs once per BFS level on a few thousand keys;
    numpy's hash-based unique has per-call overhead that dominates at
    that size, while a sort keeps the whole pass in the small-array
    fast path.  Output is sorted ascending, exactly like ``np.unique``.
    """
    if len(values) <= 1:
        return values
    ordered = np.sort(values)
    keep = np.empty(len(ordered), dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


def _grow_ball(
    indptr: np.ndarray,
    indices: np.ndarray,
    codes: "np.ndarray | None",
    n_attrs: int,
    labels: np.ndarray,
    visited_epoch: np.ndarray,
    epoch: int,
    seed_node: int,
    tau: float,
    alpha: float,
    horizon: int,
) -> np.ndarray:
    """Accepted nodes of one τ-ball (seed excluded), level-synchronous.

    This is the exact sequential grower: candidates are the unlabelled,
    not-yet-visited neighbours of the frontier, visited whether accepted
    or not (a rejected node never bridges the ball to distant regions),
    accepted when the combined distance to the seed is within ``tau``.
    The batched driver falls back to it when a speculative ball
    conflicts with an earlier commit.
    """
    visited_epoch[seed_node] = epoch
    accepted_parts: "list[np.ndarray]" = []
    frontier = np.array([seed_node], dtype=np.int64)
    for depth in range(horizon):
        neighbors = gather_neighbors(indptr, indices, frontier)
        if not len(neighbors):
            break
        fresh = neighbors[
            (labels[neighbors] == -1)
            & (visited_epoch[neighbors] != epoch)
        ]
        if not len(fresh):
            break
        candidates = _sorted_unique(fresh)
        visited_epoch[candidates] = epoch
        d_topo = (depth + 1) / horizon
        if codes is not None:
            matches = (
                codes[:, candidates] == codes[:, seed_node][:, None]
            ).sum(axis=0)
            d_attr = 1.0 - matches / n_attrs
            distance = alpha * d_topo + (1 - alpha) * d_attr
            accepted = candidates[distance <= tau]
        else:
            distance = alpha * d_topo + (1 - alpha) * 0.0
            accepted = (
                candidates if distance <= tau
                else np.empty(0, dtype=np.int64)
            )
        if not len(accepted):
            break
        accepted_parts.append(accepted)
        frontier = accepted
    if not accepted_parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(accepted_parts)


def stoc_clustering(
    graph: Graph,
    attributes: "NodeAttributeTable | None" = None,
    tau: float = 0.5,
    alpha: float = 0.5,
    horizon: int = 2,
    seed_order: str = "random",
    seed: "int | None" = 0,
) -> Clustering:
    """Cluster an attributed graph with the SToC ball-growing strategy.

    Parameters
    ----------
    attributes:
        Node attributes; ``None`` reduces the distance to topology only.
    tau:
        Distance threshold in [0, 1]; smaller values yield more, tighter
        clusters.
    alpha:
        Weight of the topological term in the combined distance.
    horizon:
        Maximum BFS depth of a ball (the τ-ball radius in hops).
    seed_order:
        ``"random"`` (reference behaviour, reproducible via ``seed``) or
        ``"degree"`` (deterministic max-degree-first).
    """
    if not 0 <= tau <= 1:
        raise GraphError(f"tau must be in [0, 1], got {tau}")
    if not 0 <= alpha <= 1:
        raise GraphError(f"alpha must be in [0, 1], got {alpha}")
    if horizon < 1:
        raise GraphError(f"horizon must be >= 1, got {horizon}")
    if attributes is not None and attributes.n_nodes != graph.n_nodes:
        raise GraphError("attribute table size does not match graph")

    n = graph.n_nodes
    indptr, indices, _ = graph.csr()
    if seed_order == "random":
        rng = np.random.default_rng(seed)
        order = rng.permutation(n)
    elif seed_order == "degree":
        order = np.argsort(-np.diff(indptr), kind="stable")
    else:
        raise GraphError(f"unknown seed_order {seed_order!r}")

    if attributes is not None and attributes.n_attributes:
        codes = attributes.codes_matrix()
        n_attrs = attributes.n_attributes
    else:
        codes = None
        n_attrs = 0

    labels = np.full(n, -1, dtype=np.int64)
    # Conflict-regrow bookkeeping: a node is visited in the current
    # regrown ball iff its stamp equals the ball epoch (no O(n) reset).
    visited_epoch = np.zeros(n, dtype=np.int64)
    epoch = 0
    # Batch bookkeeping: bit b of a node's mask = visited by ball b of
    # the current batch; only touched entries are reset between batches.
    visited_mask = np.zeros(n, dtype=np.uint64)
    one = np.uint64(1)
    next_label = 0
    pos = 0
    while pos < n:
        # ---- collect the next batch of unassigned seeds ----
        seeds: "list[int]" = []
        while pos < n and len(seeds) < _BALL_BATCH:
            chunk = order[pos:pos + 4 * _BALL_BATCH]
            free = np.flatnonzero(labels[chunk] == -1)
            take = free[:_BALL_BATCH - len(seeds)]
            seeds.extend(chunk[take].tolist())
            if len(seeds) >= _BALL_BATCH:
                # Stop right after the last taken seed so the next
                # batch rescans the untouched remainder of the chunk.
                pos += int(take[-1]) + 1
            else:
                pos += len(chunk)
        if not seeds:
            break
        k = len(seeds)
        seeds_arr = np.array(seeds, dtype=np.int64)

        # ---- speculative growth: all balls on one stacked frontier ----
        touched = [seeds_arr]
        visited_mask[seeds_arr] |= one << np.arange(k, dtype=np.uint64)
        accepted_nodes: "list[np.ndarray]" = []
        accepted_owners: "list[np.ndarray]" = []
        frontier_nodes = seeds_arr
        frontier_owners = np.arange(k, dtype=np.int64)
        for depth in range(horizon):
            degrees = indptr[frontier_nodes + 1] - indptr[frontier_nodes]
            neighbors = gather_neighbors(indptr, indices, frontier_nodes)
            if not len(neighbors):
                break
            owners = np.repeat(frontier_owners, degrees)
            keep = labels[neighbors] == -1
            keep &= (
                (visited_mask[neighbors] >> owners.astype(np.uint64)) & one
            ) == 0
            neighbors = neighbors[keep]
            owners = owners[keep]
            if not len(neighbors):
                break
            # Dedup (owner, node) pairs; unique keys come back sorted,
            # so each ball sees its candidates in ascending node order
            # exactly like the sequential np.unique pass.
            key = owners * n + neighbors
            uniq = _sorted_unique(key)
            cand_owners = uniq // n
            cand_nodes = uniq % n
            np.bitwise_or.at(
                visited_mask, cand_nodes,
                one << cand_owners.astype(np.uint64),
            )
            touched.append(cand_nodes)
            d_topo = (depth + 1) / horizon
            if codes is not None:
                matches = (
                    codes[:, cand_nodes] == codes[:, seeds_arr[cand_owners]]
                ).sum(axis=0)
                d_attr = 1.0 - matches / n_attrs
                distance = alpha * d_topo + (1 - alpha) * d_attr
                acc = distance <= tau
            else:
                distance = alpha * d_topo + (1 - alpha) * 0.0
                acc = np.full(len(cand_nodes), distance <= tau)
            frontier_nodes = cand_nodes[acc]
            frontier_owners = cand_owners[acc]
            if not len(frontier_nodes):
                break
            accepted_nodes.append(frontier_nodes)
            accepted_owners.append(frontier_owners)

        # ---- commit in seed order; conflicts regrow sequentially ----
        if accepted_nodes:
            acc_nodes = np.concatenate(accepted_nodes)
            acc_owners = np.concatenate(accepted_owners)
        else:
            acc_nodes = np.empty(0, dtype=np.int64)
            acc_owners = np.empty(0, dtype=np.int64)
        # Conflict-free fast path: when no accepted node is shared
        # between balls (or is another ball's seed), the sequential
        # commit would label every ball verbatim — do it in two
        # assignments instead of a per-ball loop.
        if len(acc_nodes):
            combined = np.concatenate([acc_nodes, seeds_arr])
            combined.sort()
            clean = not (combined[1:] == combined[:-1]).any()
        else:
            clean = True
        if clean:
            labels[seeds_arr] = next_label + np.arange(k, dtype=np.int64)
            if len(acc_nodes):
                labels[acc_nodes] = next_label + acc_owners
            next_label += k
            visited_mask[np.concatenate(touched)] = 0
            continue
        # Localise the conflict: only balls whose accepted nodes (or
        # seed) appear more than once interact — every other ball of
        # the batch commits its speculative set verbatim, never skips,
        # and is never clipped by a regrow (a regrown ball's accepted
        # set is a subset of its speculative set, which is disjoint
        # from every non-conflicted ball by construction).  Walk the
        # conflicted balls in seed order against live labels; clean
        # balls only contribute their commit count, their labels are
        # assigned vectorised afterwards.
        member = np.zeros(len(combined), dtype=bool)
        eq = combined[1:] == combined[:-1]
        member[1:] |= eq
        member[:-1] |= eq
        involved = _sorted_unique(combined[member])
        conflicted = np.zeros(k, dtype=bool)
        conflicted[acc_owners[np.isin(acc_nodes, involved)]] = True
        conflicted |= np.isin(seeds_arr, involved)
        by_owner = np.argsort(acc_owners, kind="stable")
        bounds = np.searchsorted(
            acc_owners[by_owner], np.arange(k + 1)
        )
        sorted_nodes = acc_nodes[by_owner]
        ball_label = np.full(k, -1, dtype=np.int64)
        commits = 0
        for b in range(k):
            if not conflicted[b]:
                # Always commits; labels deferred to the bulk pass.
                ball_label[b] = next_label + commits
                commits += 1
                continue
            seed_node = seeds[b]
            if labels[seed_node] != -1:
                # Claimed by an earlier ball of this batch: the
                # sequential loop would have skipped it, label and all.
                continue
            ball_nodes = sorted_nodes[bounds[b]:bounds[b + 1]]
            if len(ball_nodes) and (labels[ball_nodes] != -1).any():
                # An earlier commit claimed part of this ball — the
                # speculative growth is stale; regrow against the true
                # label state.
                epoch += 1
                ball_nodes = _grow_ball(
                    indptr, indices, codes, n_attrs, labels,
                    visited_epoch, epoch, seed_node, tau, alpha, horizon,
                )
            labels[seed_node] = next_label + commits
            labels[ball_nodes] = next_label + commits
            commits += 1
        deferred = ball_label >= 0
        labels[seeds_arr[deferred]] = ball_label[deferred]
        sel = deferred[acc_owners]
        labels[acc_nodes[sel]] = ball_label[acc_owners[sel]]
        next_label += commits
        visited_mask[np.concatenate(touched)] = 0

    return Clustering(
        labels, next_label,
        f"stoc(tau={tau:g},alpha={alpha:g},h={horizon})"
    )
