"""SToC: linear-time clustering of very large attributed graphs.

Reimplementation of the algorithm the paper lists as its third
GraphClustering method (Baroni, Conte, Patrignani, Ruggieri,
"Efficiently clustering very large attributed graphs", ASONAM 2017).

SToC grows clusters from seeds: it repeatedly pops an unassigned seed
node, collects the seed's *τ-close ball* — unassigned nodes reachable
through already-accepted nodes whose combined topological+attribute
distance from the seed is at most ``tau`` — and emits the ball as one
cluster.  The combined distance is the convex combination

    d(s, v) = alpha * d_topo(s, v) + (1 - alpha) * d_attr(s, v)

with ``d_topo`` the BFS hop distance normalised by the ball horizon and
``d_attr`` the Hamming distance over categorical attributes (the
published algorithm uses Jaccard over set-valued attributes; for the
single-valued company attributes of the case studies the two coincide).
Each node is visited a constant number of times, so the total cost is
O(nodes + edges) — the property that lets SCube scale to millions of
companies.

The reference implementation samples seeds randomly; we default to a
seeded RNG for reproducibility and also expose deterministic
max-degree-first seeding.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import GraphError
from repro.graph.attributes import NodeAttributeTable
from repro.graph.components import Clustering
from repro.graph.graph import Graph


def stoc_clustering(
    graph: Graph,
    attributes: "NodeAttributeTable | None" = None,
    tau: float = 0.5,
    alpha: float = 0.5,
    horizon: int = 2,
    seed_order: str = "random",
    seed: "int | None" = 0,
) -> Clustering:
    """Cluster an attributed graph with the SToC ball-growing strategy.

    Parameters
    ----------
    attributes:
        Node attributes; ``None`` reduces the distance to topology only.
    tau:
        Distance threshold in [0, 1]; smaller values yield more, tighter
        clusters.
    alpha:
        Weight of the topological term in the combined distance.
    horizon:
        Maximum BFS depth of a ball (the τ-ball radius in hops).
    seed_order:
        ``"random"`` (reference behaviour, reproducible via ``seed``) or
        ``"degree"`` (deterministic max-degree-first).
    """
    if not 0 <= tau <= 1:
        raise GraphError(f"tau must be in [0, 1], got {tau}")
    if not 0 <= alpha <= 1:
        raise GraphError(f"alpha must be in [0, 1], got {alpha}")
    if horizon < 1:
        raise GraphError(f"horizon must be >= 1, got {horizon}")
    if attributes is not None and attributes.n_nodes != graph.n_nodes:
        raise GraphError("attribute table size does not match graph")

    n = graph.n_nodes
    if seed_order == "random":
        rng = np.random.default_rng(seed)
        order = rng.permutation(n)
    elif seed_order == "degree":
        degrees = np.fromiter((graph.degree(u) for u in range(n)),
                              dtype=np.int64, count=n)
        order = np.argsort(-degrees, kind="stable")
    else:
        raise GraphError(f"unknown seed_order {seed_order!r}")

    labels = np.full(n, -1, dtype=np.int64)
    next_label = 0
    for seed_node in order:
        seed_node = int(seed_node)
        if labels[seed_node] != -1:
            continue
        ball = _tau_ball(graph, attributes, seed_node, labels, tau, alpha,
                         horizon)
        for node in ball:
            labels[node] = next_label
        next_label += 1
    return Clustering(
        labels, next_label,
        f"stoc(tau={tau:g},alpha={alpha:g},h={horizon})"
    )


def _tau_ball(
    graph: Graph,
    attributes: "NodeAttributeTable | None",
    seed_node: int,
    labels: np.ndarray,
    tau: float,
    alpha: float,
    horizon: int,
) -> list[int]:
    """Grow the τ-close ball of ``seed_node`` over unassigned nodes.

    Expansion only continues through accepted nodes, so a rejected node
    never bridges the ball to distant regions.
    """
    ball = [seed_node]
    visited = {seed_node}
    queue: deque[tuple[int, int]] = deque([(seed_node, 0)])
    while queue:
        u, depth = queue.popleft()
        if depth >= horizon:
            continue
        for v in graph.neighbors(u):
            if v in visited or labels[v] != -1:
                continue
            visited.add(v)
            d_topo = (depth + 1) / horizon
            if attributes is not None:
                d_attr = attributes.hamming_distance(seed_node, v)
            else:
                d_attr = 0.0
            distance = alpha * d_topo + (1 - alpha) * d_attr
            if distance <= tau:
                ball.append(v)
                queue.append((v, depth + 1))
    return ball
