"""SToC: linear-time clustering of very large attributed graphs.

Reimplementation of the algorithm the paper lists as its third
GraphClustering method (Baroni, Conte, Patrignani, Ruggieri,
"Efficiently clustering very large attributed graphs", ASONAM 2017).

SToC grows clusters from seeds: it repeatedly pops an unassigned seed
node, collects the seed's *τ-close ball* — unassigned nodes reachable
through already-accepted nodes whose combined topological+attribute
distance from the seed is at most ``tau`` — and emits the ball as one
cluster.  The combined distance is the convex combination

    d(s, v) = alpha * d_topo(s, v) + (1 - alpha) * d_attr(s, v)

with ``d_topo`` the BFS hop distance normalised by the ball horizon and
``d_attr`` the Hamming distance over categorical attributes (the
published algorithm uses Jaccard over set-valued attributes; for the
single-valued company attributes of the case studies the two coincide).
Each node is visited a constant number of times, so the total cost is
O(nodes + edges) — the property that lets SCube scale to millions of
companies.

Since PR 8 the ball growing is *level-synchronous and array-batched*:
each BFS level gathers all frontier neighbours in one CSR gather,
deduplicates them, computes every candidate's attribute distance against
the seed in one vectorized pass over the stacked per-attribute code
matrix, and accepts/rejects the whole level at once.  This is
result-identical to the seed-era deque BFS (``graph/legacy.py``):
acceptance depends only on a candidate's depth of first discovery
through accepted nodes — the same for every order within a level — and
on the seed–candidate attribute distance, which is computed with the
exact same float expression (``1.0 - matches / n_attributes``).

The reference implementation samples seeds randomly; we default to a
seeded RNG for reproducibility and also expose deterministic
max-degree-first seeding.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.attributes import NodeAttributeTable
from repro.graph.components import Clustering, gather_neighbors
from repro.graph.graph import Graph


def stoc_clustering(
    graph: Graph,
    attributes: "NodeAttributeTable | None" = None,
    tau: float = 0.5,
    alpha: float = 0.5,
    horizon: int = 2,
    seed_order: str = "random",
    seed: "int | None" = 0,
) -> Clustering:
    """Cluster an attributed graph with the SToC ball-growing strategy.

    Parameters
    ----------
    attributes:
        Node attributes; ``None`` reduces the distance to topology only.
    tau:
        Distance threshold in [0, 1]; smaller values yield more, tighter
        clusters.
    alpha:
        Weight of the topological term in the combined distance.
    horizon:
        Maximum BFS depth of a ball (the τ-ball radius in hops).
    seed_order:
        ``"random"`` (reference behaviour, reproducible via ``seed``) or
        ``"degree"`` (deterministic max-degree-first).
    """
    if not 0 <= tau <= 1:
        raise GraphError(f"tau must be in [0, 1], got {tau}")
    if not 0 <= alpha <= 1:
        raise GraphError(f"alpha must be in [0, 1], got {alpha}")
    if horizon < 1:
        raise GraphError(f"horizon must be >= 1, got {horizon}")
    if attributes is not None and attributes.n_nodes != graph.n_nodes:
        raise GraphError("attribute table size does not match graph")

    n = graph.n_nodes
    indptr, indices, _ = graph.csr()
    if seed_order == "random":
        rng = np.random.default_rng(seed)
        order = rng.permutation(n)
    elif seed_order == "degree":
        order = np.argsort(-np.diff(indptr), kind="stable")
    else:
        raise GraphError(f"unknown seed_order {seed_order!r}")

    if attributes is not None and attributes.n_attributes:
        codes = attributes.codes_matrix()
        n_attrs = attributes.n_attributes
    else:
        codes = None
        n_attrs = 0

    labels = np.full(n, -1, dtype=np.int64)
    # Per-ball "visited" without an O(n) reset per ball: a node is
    # visited in the current ball iff its stamp equals the ball epoch.
    visited_epoch = np.zeros(n, dtype=np.int64)
    epoch = 0
    next_label = 0
    for seed_node in order:
        seed_node = int(seed_node)
        if labels[seed_node] != -1:
            continue
        labels[seed_node] = next_label
        if indptr[seed_node + 1] == indptr[seed_node]:
            # isolated seed: the ball is the singleton, skip the BFS
            next_label += 1
            continue
        epoch += 1
        visited_epoch[seed_node] = epoch
        frontier = np.array([seed_node], dtype=np.int64)
        for depth in range(horizon):
            neighbors = gather_neighbors(indptr, indices, frontier)
            if not len(neighbors):
                break
            fresh = neighbors[
                (labels[neighbors] == -1)
                & (visited_epoch[neighbors] != epoch)
            ]
            if not len(fresh):
                break
            candidates = np.unique(fresh)
            # Encountered nodes are consumed whether accepted or not: a
            # rejected node never bridges the ball to distant regions.
            visited_epoch[candidates] = epoch
            d_topo = (depth + 1) / horizon
            if codes is not None:
                matches = (
                    codes[:, candidates] == codes[:, seed_node][:, None]
                ).sum(axis=0)
                d_attr = 1.0 - matches / n_attrs
            else:
                d_attr = 0.0
            distance = alpha * d_topo + (1 - alpha) * d_attr
            accepted = candidates[distance <= tau] \
                if codes is not None else \
                (candidates if distance <= tau
                 else np.empty(0, dtype=np.int64))
            if not len(accepted):
                break
            labels[accepted] = next_label
            frontier = accepted
        next_label += 1
    return Clustering(
        labels, next_label,
        f"stoc(tau={tau:g},alpha={alpha:g},h={horizon})"
    )
