"""Graph substrate: storage, bipartite projection, clustering, metrics.

Implements SCube's GraphBuilder and GraphClustering modules (paper §3):
weighted undirected graphs, projection of the individuals×groups
bipartite graph, connected components, giant-component weight
thresholding, and the SToC attributed-graph clustering algorithm.

Since PR 8 every hot path is array-native: CSR-backed graphs
(``graph.py``, ``bipartite.py``), a vectorized projection whose cover
engine reuses the miner's packed AND+popcount kernel (with ``workers=``
fan-out, ``parallel.py``), union-find components over edge arrays
(``components.py``), a level-synchronous batched SToC frontier
(``stoc.py``) and an O(edges)-per-step threshold sweep
(``threshold.py``).  All of it is result-identical to the seed-era
set/BFS implementations preserved in ``legacy.py`` — enforced by
property tests and ``python -m repro.graph.selfcheck``.
"""

from repro.graph.attributes import NodeAttributeTable
from repro.graph.bipartite import (
    BipartiteGraph,
    ProjectionResult,
    project_onto_groups,
    project_onto_individuals,
)
from repro.graph.components import (
    Clustering,
    bfs_distances,
    connected_components,
)
from repro.graph.graph import Graph
from repro.graph.metrics import (
    ClusteringSummary,
    attribute_homogeneity,
    conductance,
    conductance_all,
    mean_conductance,
    modularity,
    summarize,
)
from repro.graph.stoc import stoc_clustering
from repro.graph.threshold import threshold_components, threshold_profile

__all__ = [
    "BipartiteGraph",
    "Clustering",
    "ClusteringSummary",
    "Graph",
    "NodeAttributeTable",
    "ProjectionResult",
    "attribute_homogeneity",
    "bfs_distances",
    "conductance",
    "conductance_all",
    "connected_components",
    "mean_conductance",
    "modularity",
    "project_onto_groups",
    "project_onto_individuals",
    "stoc_clustering",
    "summarize",
    "threshold_components",
    "threshold_profile",
]
