"""Graph engine self-check: new-vs-legacy parity, CI-runnable.

Run anywhere::

    python -m repro.graph.selfcheck [--scale N] [--workers W]

Builds two worlds — a synthetic Italian boards dataset and a power-law
:func:`~repro.data.synthetic.random_bipartite_world` (``--scale``
individuals) — and fails loudly (exit 1) unless the PR-8 array engine
reproduces the seed-era set/BFS implementations preserved in
:mod:`repro.graph.legacy` **exactly**:

* bipartite projections (both sides, with and without the hub guard,
  ``grouped`` *and* ``cover`` engines — plus the parallel cover path
  when ``--workers`` > 1): identical edge arrays, identical integer
  weights, identical isolated/skipped-hub lists;
* connected components, threshold components and the threshold profile:
  identical labels and rows;
* SToC with a fixed RNG seed: identical labels, cluster count, method;
* a graph snapshot round-trip: dump → ``validate_graph_snapshot`` →
  reopen → identical arrays, and the mounted ``/graph/*`` endpoints
  answer with bodies byte-identical to the in-process payload
  functions.

Everything runs in-process on seeded data, so a pass is deterministic
evidence, not a flaky smoke.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.data.italy import ItalyConfig, generate_italy
from repro.data.synthetic import random_bipartite_world
from repro.graph import legacy
from repro.graph.bipartite import (
    BipartiteGraph,
    project_onto_groups,
    project_onto_individuals,
)
from repro.graph.components import connected_components
from repro.graph.stoc import stoc_clustering
from repro.graph.threshold import threshold_components, threshold_profile


class _Checker:
    def __init__(self):
        self.failures = 0

    def check(self, label: str, condition: bool, detail: str = "") -> None:
        if not condition:
            self.failures += 1
            print(f"PARITY FAILURE: {label} {detail}".rstrip(),
                  file=sys.stderr)


def _check_projection(
    c: _Checker,
    world: str,
    bipartite: BipartiteGraph,
    side: str,
    min_shared: int,
    max_degree: "int | None",
    workers: "int | None",
) -> None:
    if side == "groups":
        reference = legacy.project_onto_groups_legacy(
            bipartite, min_shared=min_shared, max_left_degree=max_degree
        )
        project = project_onto_groups
        kwargs = {"max_left_degree": max_degree}
    else:
        reference = legacy.project_onto_individuals_legacy(
            bipartite, min_shared=min_shared, max_right_degree=max_degree
        )
        project = project_onto_individuals
        kwargs = {"max_right_degree": max_degree}
    ru, rv, rw = reference.graph.edge_arrays()
    engines = ["grouped", "cover"]
    worker_opts = [None] + ([workers] if workers and workers > 1 else [])
    for engine in engines:
        for n_workers in worker_opts:
            if engine == "grouped" and n_workers:
                continue   # workers only fan out the cover engine
            label = (f"{world} {side} min_shared={min_shared} "
                     f"hub={max_degree} engine={engine}"
                     + (f" workers={n_workers}" if n_workers else ""))
            result = project(
                bipartite, min_shared=min_shared, engine=engine,
                workers=n_workers, **kwargs,
            )
            u, v, w = result.graph.edge_arrays()
            c.check(f"{label} edges",
                    np.array_equal(u, ru) and np.array_equal(v, rv),
                    f"({len(u)} vs {len(ru)} edges)")
            c.check(f"{label} weights", np.array_equal(w, rw))
            c.check(f"{label} isolated",
                    list(result.isolated) == list(reference.isolated))
            c.check(f"{label} skipped_hubs",
                    list(result.skipped_hubs)
                    == list(reference.skipped_hubs))


def _check_clustering(c: _Checker, world: str, graph, attributes) -> None:
    new = connected_components(graph)
    old = legacy.connected_components_legacy(graph)
    c.check(f"{world} components labels",
            np.array_equal(new.labels, old.labels))
    c.check(f"{world} components count", new.n_clusters == old.n_clusters,
            f"({new.n_clusters} vs {old.n_clusters})")

    thresholds = [2.0, 3.0, 5.0]
    for t in thresholds:
        tn = threshold_components(graph, t)
        to = legacy.threshold_components_legacy(graph, t)
        c.check(f"{world} threshold({t}) labels",
                np.array_equal(tn.labels, to.labels))
    c.check(
        f"{world} threshold profile",
        threshold_profile(graph, thresholds)
        == legacy.threshold_profile_legacy(graph, thresholds),
    )

    for tau in (0.3, 0.6):
        sn = stoc_clustering(graph, attributes, tau=tau, seed=7)
        so = legacy.stoc_clustering_legacy(graph, attributes, tau=tau,
                                           seed=7)
        c.check(f"{world} stoc(tau={tau}) labels",
                np.array_equal(sn.labels, so.labels))
        c.check(f"{world} stoc(tau={tau}) count",
                sn.n_clusters == so.n_clusters,
                f"({sn.n_clusters} vs {so.n_clusters})")
        c.check(f"{world} stoc(tau={tau}) method", sn.method == so.method)


def _check_snapshot(c: _Checker, directory: Path, projection,
                    clustering) -> None:
    from repro.serve import payloads
    from repro.serve.graph import GraphService
    from repro.serve.http import make_app, wsgi_get
    from repro.store.graph import (
        GraphArtifact,
        dump_graph_snapshot,
        validate_graph_snapshot,
    )

    artifact = GraphArtifact.from_result(
        projection, clustering, provenance={"selfcheck": True}
    )
    dump_graph_snapshot(artifact, directory)
    snapshot = validate_graph_snapshot(directory)
    u, v, w = projection.graph.edge_arrays()
    su, sv, sw = snapshot.edge_arrays()
    c.check("snapshot edges round-trip",
            np.array_equal(su, u) and np.array_equal(sv, v)
            and np.array_equal(sw, w))
    c.check("snapshot labels round-trip",
            np.array_equal(snapshot.array("labels"), clustering.labels))
    c.check("snapshot counts",
            snapshot.n_nodes == projection.graph.n_nodes
            and snapshot.n_edges == len(u))

    service = GraphService(snapshot)
    app = make_app(service_stub(), graph_source=service)
    for path, want in (
        ("/graph/info",
         payloads.dumps(payloads.graph_info_payload(service))),
        ("/graph/clusters?k=5",
         payloads.dumps(payloads.graph_clusters_payload(service, k=5))),
        ("/graph/degree?k=5",
         payloads.dumps(payloads.graph_degree_payload(service, k=5))),
        ("/graph/degree?node=0",
         payloads.dumps(payloads.graph_degree_payload(service, node=0))),
    ):
        status, headers, body = wsgi_get(app, path)
        c.check(f"{path} status", status == 200, f"(got {status})")
        c.check(f"{path} byte parity", body == want,
                f"({len(body)} vs {len(want)} bytes)")


def service_stub():
    """A minimal cube-service stand-in so make_app needs no cube."""
    class _Stub:
        def info(self):
            return {}

        def top(self, **kwargs):
            return []

    return _Stub()


def run(scale: int, workers: "int | None") -> int:
    c = _Checker()

    italy = generate_italy(ItalyConfig(n_companies=400, seed=13))
    boards = italy.bipartite(None)
    synth, synth_attrs = random_bipartite_world(
        scale, max(scale // 25, 10), seed=42
    )

    for world, bipartite in (("italy", boards), ("synthetic", synth)):
        for side in ("groups", "individuals"):
            for min_shared, max_degree in (
                (1, None), (2, None), (1, 20),
            ):
                _check_projection(
                    c, world, bipartite, side, min_shared, max_degree,
                    workers,
                )

    from repro.core.pipeline import group_attribute_table

    italy_proj = project_onto_groups(boards, max_left_degree=30)
    _check_clustering(c, "italy", italy_proj.graph,
                      group_attribute_table(italy))
    synth_proj = project_onto_groups(synth, max_left_degree=30)
    _check_clustering(c, "synthetic", synth_proj.graph, synth_attrs)

    clustering = connected_components(synth_proj.graph)
    with tempfile.TemporaryDirectory() as tmp:
        _check_snapshot(c, Path(tmp) / "graph_snap", synth_proj, clustering)

    if c.failures:
        return 1
    print(
        f"graph selfcheck OK: projections (grouped+cover"
        + (f", workers={workers}" if workers and workers > 1 else "")
        + "), components, threshold sweep, seeded SToC and snapshot "
        f"round-trip all exactly match the legacy implementations "
        f"(italy: {boards.n_left}x{boards.n_right}, "
        f"synthetic: {synth.n_left}x{synth.n_right})"
    )
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.graph.selfcheck",
        description="Assert new-vs-legacy graph engine parity.",
    )
    parser.add_argument(
        "--scale", type=int, default=5000,
        help="synthetic world size (individuals; groups = scale/25)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="also check the parallel cover path with this many workers "
             "(<=1 disables)",
    )
    args = parser.parse_args(argv)
    return run(args.scale, args.workers)


if __name__ == "__main__":
    sys.exit(main())
