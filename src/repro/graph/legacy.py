"""Seed-era set/BFS graph algorithms, kept as the parity baseline.

Before PR 8 the ``graph/`` subsystem ran on Python ``set`` adjacency and
per-node BFS loops.  The array/cover engine that replaced it (see
``bipartite.py``, ``components.py``, ``stoc.py``, ``threshold.py``) is
required to be *result-identical*: same projected edge set and weights,
same component labels, same seeded SToC clusters.  This module preserves
the original algorithms — operating through the public scalar API of the
new structures — so that equivalence stays executable:

* property tests (``tests/test_graph_engine.py``) check new vs legacy on
  random worlds,
* ``python -m repro.graph.selfcheck`` checks it on realistic datasets in
  CI,
* the E22 benchmark (``benchmarks/bench_graph_engine.py``) uses these
  functions as the timed baseline.

Nothing outside tests/benchmarks should import this module.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import GraphError
from repro.graph.attributes import NodeAttributeTable
from repro.graph.bipartite import BipartiteGraph, ProjectionResult
from repro.graph.components import Clustering
from repro.graph.graph import Graph


def left_adjacency_sets(bipartite: BipartiteGraph) -> "list[set[int]]":
    """Seed-era representation: one Python set of groups per individual."""
    return [
        set(map(int, bipartite.groups_of(left)))
        for left in range(bipartite.n_left)
    ]


def right_adjacency_sets(bipartite: BipartiteGraph) -> "list[set[int]]":
    """Seed-era representation: one Python set of members per group."""
    return [
        set(map(int, bipartite.members_of(right)))
        for right in range(bipartite.n_right)
    ]


def _project_sets(
    adjacency: "list[set[int]]",
    n_nodes: int,
    min_shared: int,
    max_degree: "int | None",
) -> ProjectionResult:
    """The original pair-dict projection over a list of neighbour sets."""
    if min_shared < 1:
        raise GraphError("min_shared must be >= 1")
    weights: dict[tuple[int, int], int] = {}
    skipped: list[int] = []
    for source, neighbours in enumerate(adjacency):
        if max_degree is not None and len(neighbours) > max_degree:
            skipped.append(source)
            continue
        ordered = sorted(neighbours)
        for i, g1 in enumerate(ordered):
            for g2 in ordered[i + 1:]:
                key = (g1, g2)
                weights[key] = weights.get(key, 0) + 1
    graph = Graph(n_nodes)
    for (g1, g2), shared in weights.items():
        if shared >= min_shared:
            graph.add_edge(g1, g2, float(shared))
    isolated = graph.isolated_nodes()
    return ProjectionResult(graph, isolated, skipped)


def project_onto_groups_legacy(
    bipartite: BipartiteGraph,
    min_shared: int = 1,
    max_left_degree: "int | None" = None,
    adjacency: "list[set[int]] | None" = None,
) -> ProjectionResult:
    """Seed-era group projection (per-individual sorted pair loops).

    ``adjacency`` lets benchmarks pre-build the set representation so
    the timed region covers only the algorithm, not the format change.
    """
    if adjacency is None:
        adjacency = left_adjacency_sets(bipartite)
    return _project_sets(
        adjacency, bipartite.n_right, min_shared, max_left_degree
    )


def project_onto_individuals_legacy(
    bipartite: BipartiteGraph,
    min_shared: int = 1,
    max_right_degree: "int | None" = None,
    adjacency: "list[set[int]] | None" = None,
) -> ProjectionResult:
    """Seed-era individual projection (per-group sorted pair loops)."""
    if adjacency is None:
        adjacency = right_adjacency_sets(bipartite)
    return _project_sets(
        adjacency, bipartite.n_left, min_shared, max_right_degree
    )


def connected_components_legacy(graph: Graph) -> Clustering:
    """Seed-era BFS component labelling (deque + per-node loops)."""
    labels = np.full(graph.n_nodes, -1, dtype=np.int64)
    next_label = 0
    for start in range(graph.n_nodes):
        if labels[start] != -1:
            continue
        labels[start] = next_label
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if labels[v] == -1:
                    labels[v] = next_label
                    queue.append(v)
        next_label += 1
    return Clustering(labels, next_label, "connected-components")


def threshold_components_legacy(graph: Graph, min_weight: float) -> Clustering:
    """Seed-era giant-component thresholding (graph rebuild + BFS)."""
    if min_weight < 0:
        raise GraphError("min_weight must be non-negative")
    base = connected_components_legacy(graph)
    giant = base.giant()
    in_giant = base.labels == giant
    filtered = Graph(graph.n_nodes)
    for u, v, w in graph.edges():
        if in_giant[u] and in_giant[v] and w < min_weight:
            continue
        filtered.add_edge(u, v, w)
    result = connected_components_legacy(filtered)
    return Clustering(result.labels, result.n_clusters,
                      f"threshold-components(w>={min_weight:g})")


def threshold_profile_legacy(
    graph: Graph, thresholds: "list[float]"
) -> "list[tuple[float, int, int]]":
    """Seed-era sweep: one full threshold_components run per threshold."""
    rows = []
    for threshold in thresholds:
        clustering = threshold_components_legacy(graph, threshold)
        sizes = clustering.sizes()
        rows.append((float(threshold), clustering.n_clusters,
                     int(sizes.max()) if len(sizes) else 0))
    return rows


def stoc_clustering_legacy(
    graph: Graph,
    attributes: "NodeAttributeTable | None" = None,
    tau: float = 0.5,
    alpha: float = 0.5,
    horizon: int = 2,
    seed_order: str = "random",
    seed: "int | None" = 0,
) -> Clustering:
    """Seed-era SToC: per-ball deque BFS with Python set bookkeeping."""
    if not 0 <= tau <= 1:
        raise GraphError(f"tau must be in [0, 1], got {tau}")
    if not 0 <= alpha <= 1:
        raise GraphError(f"alpha must be in [0, 1], got {alpha}")
    if horizon < 1:
        raise GraphError(f"horizon must be >= 1, got {horizon}")
    if attributes is not None and attributes.n_nodes != graph.n_nodes:
        raise GraphError("attribute table size does not match graph")

    n = graph.n_nodes
    if seed_order == "random":
        rng = np.random.default_rng(seed)
        order = rng.permutation(n)
    elif seed_order == "degree":
        degrees = np.fromiter((graph.degree(u) for u in range(n)),
                              dtype=np.int64, count=n)
        order = np.argsort(-degrees, kind="stable")
    else:
        raise GraphError(f"unknown seed_order {seed_order!r}")

    labels = np.full(n, -1, dtype=np.int64)
    next_label = 0
    for seed_node in order:
        seed_node = int(seed_node)
        if labels[seed_node] != -1:
            continue
        ball = _tau_ball_legacy(graph, attributes, seed_node, labels, tau,
                                alpha, horizon)
        for node in ball:
            labels[node] = next_label
        next_label += 1
    return Clustering(
        labels, next_label,
        f"stoc(tau={tau:g},alpha={alpha:g},h={horizon})"
    )


def _tau_ball_legacy(
    graph: Graph,
    attributes: "NodeAttributeTable | None",
    seed_node: int,
    labels: np.ndarray,
    tau: float,
    alpha: float,
    horizon: int,
) -> "list[int]":
    ball = [seed_node]
    visited = {seed_node}
    queue: "deque[tuple[int, int]]" = deque([(seed_node, 0)])
    while queue:
        u, depth = queue.popleft()
        if depth >= horizon:
            continue
        for v in graph.neighbors(u):
            if v in visited or labels[v] != -1:
                continue
            visited.add(v)
            d_topo = (depth + 1) / horizon
            if attributes is not None:
                d_attr = attributes.hamming_distance(seed_node, v)
            else:
                d_attr = 0.0
            distance = alpha * d_topo + (1 - alpha) * d_attr
            if distance <= tau:
                ball.append(v)
                queue.append((v, depth + 1))
    return ball
