"""Hot-query LRU cache for the serving tier.

Two pieces:

* :class:`QueryCache` — a thread-safe LRU mapping canonicalized query
  keys to results, with hit/miss counters and **generation-based
  invalidation**: every entry is stamped with the generation current
  when its computation *started*; :meth:`QueryCache.invalidate` bumps
  the generation and clears the map, so a result computed against the
  pre-publish cube that lands after the publish is silently dropped
  instead of resurrecting stale data.
* :class:`CachedCubeService` — the memoizing wrapper around a
  :class:`~repro.serve.service.CubeService` (or a
  :class:`~repro.serve.router.ShardedCubeService`): every hot query
  method (``top``/``slice``/``cell``/``value``/``children``/
  ``parents``/``pivot``/``pivot_values``/``trend``) is keyed on its
  canonicalized parameters, ``info()`` surfaces the counters, and
  :meth:`CachedCubeService.refresh` swaps in a freshly published
  timeline date and evicts everything stale in one step.

Cached values are the service's own immutable-by-convention results
(lists of :class:`~repro.cube.cell.CellStats` / ``Discovery`` records,
floats, strings); callers must not mutate them.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Mapping

DEFAULT_CACHE_SIZE = 256

_MISS = object()


def canonical_key(method: str, params: "dict[str, object]") -> tuple:
    """A hashable, order- and type-stable key for one query.

    Coordinate mappings canonicalise to sorted ``(attribute, value)``
    tuples; every scalar carries its type name alongside its ``repr``
    so ``2``, ``2.0``, ``"2"`` and ``True`` can never collide.
    """
    out = []
    for name in sorted(params):
        value = params[name]
        if isinstance(value, Mapping):
            value = (
                "mapping",
                tuple(sorted(
                    (str(attr), _canonical_value(v))
                    for attr, v in value.items()
                )),
            )
        else:
            value = _canonical_value(value)
        out.append((name, value))
    return (method, tuple(out))


def _canonical_value(value: object) -> tuple:
    if isinstance(value, (list, tuple, set, frozenset)):
        return ("seq", tuple(sorted(
            (type(v).__name__, repr(v)) for v in value
        )))
    return (type(value).__name__, repr(value))


class QueryCache:
    """Thread-safe LRU with hit/miss counters and generations.

    ``maxsize=0`` disables storage entirely (every lookup is a miss)
    while keeping the counters and the generation machinery, so a
    cache-off service still reports uniform ``info()`` stats.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE):
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self._maxsize = int(maxsize)
        self._data: "OrderedDict[object, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._generation = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def maxsize(self) -> int:
        return self._maxsize

    @property
    def generation(self) -> int:
        return self._generation

    def lookup(self, key: object) -> "tuple[bool, object, int]":
        """``(found, value, generation)`` — one locked probe.

        The returned generation is the one current at probe time; pass
        it back to :meth:`store` so a result computed before an
        intervening :meth:`invalidate` cannot land afterwards.
        """
        with self._lock:
            generation = self._generation
            value = self._data.get(key, _MISS)
            if value is _MISS:
                self._misses += 1
                return False, None, generation
            self._data.move_to_end(key)
            self._hits += 1
            return True, value, generation

    def store(self, key: object, value: object, generation: int) -> bool:
        """Insert a computed result; dropped when stale or disabled."""
        if self._maxsize == 0:
            return False
        with self._lock:
            if generation != self._generation:
                return False   # computed against a pre-publish cube
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)
                self._evictions += 1
            return True

    def invalidate(self) -> int:
        """Clear everything and open a new generation; returns it."""
        with self._lock:
            self._data.clear()
            self._generation += 1
            return self._generation

    def stats(self) -> "dict[str, int]":
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "size": len(self._data),
                "maxsize": self._maxsize,
                "generation": self._generation,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


class CachedCubeService:
    """Memoizing facade over a (sharded or plain) cube service."""

    def __init__(self, service, maxsize: int = DEFAULT_CACHE_SIZE):
        self._service = service
        self._cache = QueryCache(maxsize)
        self._refresh_lock = threading.Lock()

    @property
    def service(self):
        """The wrapped service (swapped atomically on refresh)."""
        return self._service

    @property
    def cache(self) -> QueryCache:
        return self._cache

    def _cached(self, method: str, params: "dict[str, object]", compute):
        key = canonical_key(method, params)
        found, value, generation = self._cache.lookup(key)
        if found:
            return value
        value = compute()
        self._cache.store(key, value, generation)
        return value

    # -- cached query methods (the CubeService vocabulary) -------------

    def top(self, index_name: str = "D", k: int = 10, min_minority: int = 0,
            min_population: int = 0, min_units: int = 2):
        params = dict(index_name=index_name, k=k, min_minority=min_minority,
                      min_population=min_population, min_units=min_units)
        return self._cached(
            "top", params, lambda: self._service.top(**params)
        )

    def slice(self, sa=None, ca=None):
        params = dict(sa=sa, ca=ca)
        return self._cached(
            "slice", params, lambda: self._service.slice(**params)
        )

    def cell(self, sa=None, ca=None):
        params = dict(sa=sa, ca=ca)
        return self._cached(
            "cell", params, lambda: self._service.cell(**params)
        )

    def value(self, index_name: str, sa=None, ca=None):
        params = dict(index_name=index_name, sa=sa, ca=ca)
        return self._cached(
            "value", params, lambda: self._service.value(**params)
        )

    def children(self, sa=None, ca=None):
        params = dict(sa=sa, ca=ca)
        return self._cached(
            "children", params, lambda: self._service.children(**params)
        )

    def parents(self, sa=None, ca=None):
        params = dict(sa=sa, ca=ca)
        return self._cached(
            "parents", params, lambda: self._service.parents(**params)
        )

    def pivot(self, index_name: str, row_attr: str, col_attr: str,
              fixed_sa=None, fixed_ca=None, digits: int = 2):
        params = dict(index_name=index_name, row_attr=row_attr,
                      col_attr=col_attr, fixed_sa=fixed_sa,
                      fixed_ca=fixed_ca, digits=digits)
        return self._cached(
            "pivot", params, lambda: self._service.pivot(**params)
        )

    def pivot_values(self, index_name: str, row_attr: str, col_attr: str,
                     fixed_sa=None, fixed_ca=None):
        params = dict(index_name=index_name, row_attr=row_attr,
                      col_attr=col_attr, fixed_sa=fixed_sa,
                      fixed_ca=fixed_ca)
        return self._cached(
            "pivot_values", params,
            lambda: self._service.pivot_values(**params),
        )

    def trend(self, index_name: str = "D", sa=None, ca=None):
        params = dict(index_name=index_name, sa=sa, ca=ca)
        return self._cached(
            "trend", params, lambda: self._service.trend(**params)
        )

    # -- uncached passthroughs ------------------------------------------

    def info(self) -> "dict[str, object]":
        """Inner ``info()`` plus live cache counters (never cached)."""
        out = self._service.info()
        out["cache"] = self._cache.stats()
        return out

    def dates(self):
        return self._service.dates()

    def refresh(self) -> bool:
        """Pick up a newly published timeline date; evict stale entries.

        Asks the wrapped service for a :meth:`refreshed` successor;
        when one exists, swaps it in (a single attribute assignment —
        readers in flight keep their old reference) and bumps the cache
        generation so every pre-publish entry is evicted and in-flight
        pre-publish computations cannot re-populate it.  Returns True
        when a publish was picked up.
        """
        with self._refresh_lock:
            fresh = self._service.refreshed()
            if fresh is None:
                return False
            self._service = fresh
            self._cache.invalidate()
            return True

    def __getattr__(self, name: str):
        # Everything else (describe, dictionary, index_names, date,
        # cube, ...) reads through to the wrapped service unchanged.
        return getattr(self._service, name)

    def __repr__(self) -> str:
        return f"CachedCubeService({self._service!r}, {self._cache.stats()})"
