"""Read-only serving over a graph snapshot (scenario 2/3 outputs).

:class:`GraphService` wraps a reopened
:class:`~repro.store.graph.GraphSnapshot` with the handful of queries
the HTTP tier exposes — summary info, cluster size ranking, node
degrees — all answered from the snapshot's flat arrays without ever
rebuilding adjacency:

* degrees and weighted degrees are one ``np.bincount`` each over the
  edge endpoint arrays, computed lazily on first use and cached;
* cluster sizes are one ``np.bincount`` over the label array.

Like :class:`~repro.serve.service.CubeService`, the service is
immutable after construction, so it is safe under the threaded WSGI
server without locks.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.store.graph import GraphSnapshot, open_graph_snapshot


class GraphService:
    """Queries over one graph snapshot (projection + clustering)."""

    def __init__(self, snapshot: GraphSnapshot):
        self.snapshot = snapshot
        self._degrees: "np.ndarray | None" = None
        self._weighted: "np.ndarray | None" = None
        self._sizes: "np.ndarray | None" = None

    @classmethod
    def open(cls, path: "str | Path", mmap: bool = True) -> "GraphService":
        """Open a graph snapshot directory and serve it."""
        return cls(open_graph_snapshot(path, mmap=mmap))

    # -- cached array derivations --------------------------------------

    def degrees(self) -> np.ndarray:
        """Unweighted degree per node (each edge counts once per end)."""
        if self._degrees is None:
            u, v, _ = self.snapshot.edge_arrays()
            n = self.snapshot.n_nodes
            self._degrees = (
                np.bincount(u, minlength=n) + np.bincount(v, minlength=n)
            ).astype(np.int64)
        return self._degrees

    def weighted_degrees(self) -> np.ndarray:
        """Sum of incident edge weights per node."""
        if self._weighted is None:
            u, v, w = self.snapshot.edge_arrays()
            n = self.snapshot.n_nodes
            self._weighted = (
                np.bincount(u, weights=w, minlength=n)
                + np.bincount(v, weights=w, minlength=n)
            )
        return self._weighted

    def cluster_sizes(self) -> np.ndarray:
        """Node count per cluster id."""
        if self._sizes is None:
            self._sizes = np.bincount(
                self.snapshot.array("labels"),
                minlength=self.snapshot.manifest.n_clusters,
            ).astype(np.int64)
        return self._sizes

    # -- queries -------------------------------------------------------

    def info(self) -> "dict[str, object]":
        """Snapshot summary plus degree/cluster headline numbers."""
        degrees = self.degrees()
        sizes = self.cluster_sizes()
        info = self.snapshot.info()
        info["max_degree"] = int(degrees.max()) if len(degrees) else 0
        info["mean_degree"] = (
            float(degrees.mean()) if len(degrees) else 0.0
        )
        info["giant_cluster_size"] = int(sizes.max()) if len(sizes) else 0
        return info

    def clusters(self, k: int = 10, min_size: int = 1
                 ) -> "list[dict[str, int]]":
        """The ``k`` largest clusters (ties broken by lower cluster id)."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        sizes = self.cluster_sizes()
        eligible = np.flatnonzero(sizes >= max(min_size, 1))
        order = eligible[np.argsort(-sizes[eligible], kind="stable")]
        return [
            {"cluster": int(c), "size": int(sizes[c])}
            for c in order[:k]
        ]

    def node(self, node: int) -> "dict[str, object]":
        """One node's degree, weighted degree and cluster."""
        n = self.snapshot.n_nodes
        if not 0 <= node < n:
            raise ValueError(f"node {node} out of range [0, {n})")
        return {
            "node": int(node),
            "degree": int(self.degrees()[node]),
            "weighted_degree": float(self.weighted_degrees()[node]),
            "cluster": int(self.snapshot.array("labels")[node]),
        }

    def top_degree(self, k: int = 10) -> "list[dict[str, object]]":
        """The ``k`` highest-degree nodes (ties broken by lower node id)."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        degrees = self.degrees()
        order = np.argsort(-degrees, kind="stable")
        return [self.node(int(node)) for node in order[:k]]
