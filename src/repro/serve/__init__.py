"""Zero-rebuild query serving over cube snapshots.

The exploration queries the paper demos — top-k discovery, slicing,
roll-up/drill-down, point lookups, pivots — are all read-only array
operations after PR 3.  This subsystem serves them over a snapshot
written by :mod:`repro.store` without re-running ETL, mining or fill:

* :class:`~repro.serve.service.CubeService` — the embeddable serving
  facade: opens a snapshot (memory-mapped by default), a timeline, or
  wraps a live cube, warms the derived lookup structures once, and then
  answers ``top`` / ``slice`` / ``children`` / ``parents`` /
  ``value_by_key`` / ``pivot`` from any number of concurrent reader
  threads (nothing is mutated after open).
* :class:`~repro.serve.router.ShardedCubeService` — the same query
  vocabulary over a ``shards.json`` directory of disjoint shards:
  point queries route to one owning shard, scans fan out and merge
  with the cube's exact ordering (:func:`~repro.serve.router.
  open_service` picks the right class for any path).
* :class:`~repro.serve.cache.CachedCubeService` /
  :class:`~repro.serve.cache.QueryCache` — a thread-safe hot-query LRU
  around either service, with hit/miss counters in ``info()`` and
  generation-based invalidation when a timeline date is published.
* :func:`~repro.serve.http.make_app` — a stdlib-only WSGI app mapping
  the queries to JSON endpoints (``/info`` ``/dates`` ``/top``
  ``/slice`` ``/cell`` ``/children`` ``/parents`` ``/pivot``
  ``/trend``), byte-identical to the in-process payload builders in
  :mod:`repro.serve.payloads`; run it under any WSGI container or the
  bundled threaded ``wsgiref`` server.
* :class:`~repro.serve.graph.GraphService` — the same zero-rebuild
  contract for scenario 2/3 graph outputs: opens a graph snapshot
  (:mod:`repro.store.graph`) and answers cluster rankings and degree
  queries from its flat arrays; ``make_app(...,
  graph_source="graph_snap/")`` mounts it under ``/graph/info``,
  ``/graph/clusters`` and ``/graph/degree``.
* ``python -m repro.serve <dir> top|slice|cell|pivot|info|serve`` — a
  small CLI over the same services, with text or ``--json`` output and
  an HTTP ``serve`` subcommand.
"""

from repro.serve.cache import CachedCubeService, QueryCache
from repro.serve.graph import GraphService
from repro.serve.http import make_app, wsgi_get
from repro.serve.router import ShardedCubeService, open_service
from repro.serve.service import CubeService

__all__ = [
    "CachedCubeService",
    "CubeService",
    "GraphService",
    "QueryCache",
    "ShardedCubeService",
    "make_app",
    "open_service",
    "wsgi_get",
]
