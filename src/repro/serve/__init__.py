"""Zero-rebuild query serving over cube snapshots.

The exploration queries the paper demos — top-k discovery, slicing,
roll-up/drill-down, point lookups, pivots — are all read-only array
operations after PR 3.  This subsystem serves them over a snapshot
written by :mod:`repro.store` without re-running ETL, mining or fill:

* :class:`~repro.serve.service.CubeService` — the embeddable serving
  facade: opens a snapshot (memory-mapped by default) or wraps a live
  cube, warms the derived lookup structures once, and then answers
  ``top`` / ``slice`` / ``children`` / ``parents`` / ``value_by_key`` /
  ``pivot`` from any number of concurrent reader threads (nothing is
  mutated after open).
* ``python -m repro.serve <snapshot> top|slice|cell|pivot|info`` — a
  small CLI over the same service, with text or ``--json`` output.
"""

from repro.serve.service import CubeService

__all__ = ["CubeService"]
