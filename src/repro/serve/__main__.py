"""CLI for serving a cube snapshot — or a timeline, or shards of them.

Examples (after ``dump_snapshot(cube, "snap/")``)::

    python -m repro.serve snap/ info
    python -m repro.serve snap/ top --index D -k 10 --min-minority 20
    python -m repro.serve snap/ slice --ca city=Rivertown
    python -m repro.serve snap/ cell --sa ethnicity=minority
    python -m repro.serve snap/ pivot --index D --rows ethnicity --cols city
    python -m repro.serve snap/ top --json          # machine-readable
    python -m repro.serve snap/ info --no-mmap      # load into memory

A *timeline* directory (integer-named snapshot subdirectories, written
by :func:`repro.store.dump_into_timeline`) serves the same commands
routed to one date — the latest unless ``--date`` picks another — plus
a per-date ``trend`` of one cell; a *sharded* directory (written by
:func:`repro.store.dump_sharded_snapshot` and friends, detected by its
``shards.json``) serves them through the merging router::

    python -m repro.serve timeline/ info
    python -m repro.serve timeline/ top --date 2005
    python -m repro.serve timeline/ trend --index D --sa gender=F
    python -m repro.serve sharded/ top -k 10

``serve`` starts the stdlib HTTP tier over the same queries::

    python -m repro.serve snap/ serve --port 8000
    curl 'http://127.0.0.1:8000/top?k=5&min_minority=20'

Coordinates are ``attribute=value`` pairs, repeatable: ``--sa sex=F
--sa age=young --ca region=north``.  All commands are read-only.
Errors exit nonzero with a one-line ``error: ...`` on stderr; output
piped into a pager that closes early exits 0.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.cube.cell import CellStats
from repro.errors import ReproError
from repro.report.text import render_cube, render_table
from repro.serve import payloads
from repro.serve.params import parse_coordinate_pairs, typed_coordinates


def _coordinates(pairs: "list[str] | None") -> "dict[str, object] | None":
    try:
        return parse_coordinate_pairs(pairs)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _typed(service, pairs: "list[str] | None"
           ) -> "dict[str, object] | None":
    return typed_coordinates(service.dictionary, _coordinates(pairs))


def _cell_rows(service, cells: "list[CellStats]",
               index_names: "list[str]") -> "list[list[object]]":
    return [
        [service.describe(stats.key), stats.population, stats.minority,
         stats.n_units]
        + [stats.value(name) for name in index_names]
        for stats in cells
    ]


def _print_cells(service, cells: "list[CellStats]", as_json: bool) -> None:
    if as_json:
        print(json.dumps(payloads.cells_payload(service, cells), indent=2))
        return
    index_names = service.index_names
    header = ["cell", "T", "M", "units"] + index_names
    print(render_table(header, _cell_rows(service, cells, index_names)))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve read-only queries over a cube snapshot.",
    )
    parser.add_argument(
        "snapshot", help="snapshot, timeline or sharded directory to open"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="cube summary and provenance")
    sub.add_parser("dates", help="timeline dates and the served date")
    sub.add_parser("rows", help="every cell as a flat table (cube.csv view)")

    top = sub.add_parser("top", help="ranked segregation contexts")
    top.add_argument("--index", default="D", help="index short name")
    top.add_argument("-k", type=int, default=10)
    top.add_argument("--min-minority", type=int, default=0)
    top.add_argument("--min-population", type=int, default=0)
    top.add_argument("--min-units", type=int, default=2)

    for name, help_text in (
        ("slice", "cells refining the given coordinates"),
        ("cell", "one cell at the given coordinates"),
        ("children", "drill-down neighbours of the given coordinates"),
        ("parents", "roll-up neighbours of the given coordinates"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--sa", action="append", metavar="ATTR=VALUE")
        cmd.add_argument("--ca", action="append", metavar="ATTR=VALUE")

    pivot = sub.add_parser("pivot", help="Fig. 1-style pivot of one index")
    pivot.add_argument("--index", default="D")
    pivot.add_argument("--rows", required=True, help="row attribute")
    pivot.add_argument("--cols", required=True, help="column attribute")
    pivot.add_argument("--sa", action="append", metavar="ATTR=VALUE")
    pivot.add_argument("--ca", action="append", metavar="ATTR=VALUE")
    pivot.add_argument("--digits", type=int, default=2)

    trend = sub.add_parser(
        "trend", help="one cell's index value per timeline date"
    )
    trend.add_argument("--index", default="D")
    trend.add_argument("--sa", action="append", metavar="ATTR=VALUE")
    trend.add_argument("--ca", action="append", metavar="ATTR=VALUE")

    serve = sub.add_parser(
        "serve", help="serve the JSON HTTP endpoints (stdlib WSGI)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000)
    serve.add_argument(
        "--cache-size", type=int, default=None,
        help="hot-query LRU entries (0 disables caching)",
    )
    serve.add_argument(
        "--graph", default=None, metavar="DIR",
        help="graph snapshot directory to mount under /graph/*",
    )

    for cmd in sub.choices.values():
        cmd.add_argument(
            "--json", action="store_true", help="emit JSON instead of text"
        )
        cmd.add_argument(
            "--no-mmap", action="store_true",
            help="load columns into memory instead of memory-mapping them",
        )
        cmd.add_argument(
            "--date", type=int, default=None,
            help="timeline date to serve (default: the latest)",
        )
    return parser


def _run_serve(args) -> int:
    from repro.serve.cache import DEFAULT_CACHE_SIZE
    from repro.serve.http import serve

    cache_size = (
        DEFAULT_CACHE_SIZE if args.cache_size is None else args.cache_size
    )
    server = serve(
        args.snapshot, host=args.host, port=args.port,
        mmap=not args.no_mmap, date=args.date, cache_size=cache_size,
        graph_source=args.graph,
    )
    host, port = server.server_address[:2]
    print(f"serving http://{host}:{port} (Ctrl-C to stop)", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "serve":
            return _run_serve(args)

        from repro.serve.router import open_service

        service = open_service(
            args.snapshot, mmap=not args.no_mmap, date=args.date
        )
        if args.command == "info":
            if args.json:
                print(json.dumps(payloads.info_payload(service), indent=2))
            else:
                print(render_table(
                    ["key", "value"],
                    [[k, v] for k, v in service.info().items()],
                ))
        elif args.command == "dates":
            if args.json:
                print(json.dumps(payloads.dates_payload(service), indent=2))
            else:
                print(render_table(
                    ["date", "served"],
                    [[date, "*" if date == service.date else ""]
                     for date in service.dates()],
                ))
        elif args.command == "rows":
            cube = getattr(service, "cube", None)
            if cube is None:
                raise ReproError(
                    "rows needs a single snapshot or timeline directory, "
                    "not a sharded one (query it via top/slice instead)"
                )
            if args.json:
                print(json.dumps(cube.to_rows(), indent=2))
            else:
                print(render_cube(cube))
        elif args.command == "top":
            payload = payloads.top_payload(
                service,
                index_name=args.index,
                k=args.k,
                min_minority=args.min_minority,
                min_population=args.min_population,
                min_units=args.min_units,
            )
            if args.json:
                print(json.dumps(payload, indent=2))
            else:
                print(render_table(
                    ["rank", "cell", args.index, "T", "M", "units"],
                    [
                        [f["rank"], f["cell"], f["value"], f["population"],
                         f["minority"], f["n_units"]]
                        for f in payload
                    ],
                ))
        elif args.command in ("slice", "children", "parents"):
            sa = _typed(service, args.sa)
            ca = _typed(service, args.ca)
            cells = getattr(service, args.command)(sa=sa, ca=ca)
            _print_cells(service, cells, args.json)
        elif args.command == "cell":
            stats = service.cell(
                sa=_typed(service, args.sa), ca=_typed(service, args.ca)
            )
            if stats is None:
                print("(no such cell)" if not args.json else "null")
                return 1
            _print_cells(service, [stats], args.json)
        elif args.command == "trend":
            payload = payloads.trend_payload(
                service,
                index_name=args.index,
                sa=_typed(service, args.sa),
                ca=_typed(service, args.ca),
            )
            if args.json:
                print(json.dumps(payload, indent=2))
            else:
                print(render_table(
                    ["date", args.index],
                    [[entry["date"], entry["value"]] for entry in payload],
                ))
        elif args.command == "pivot":
            sa = _typed(service, args.sa)
            ca = _typed(service, args.ca)
            if args.json:
                print(json.dumps(
                    payloads.pivot_payload(
                        service, args.index, args.rows, args.cols,
                        fixed_sa=sa, fixed_ca=ca,
                    ),
                    indent=2,
                ))
            else:
                print(service.pivot(
                    args.index, args.rows, args.cols,
                    fixed_sa=sa, fixed_ca=ca, digits=args.digits,
                ))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        sys.stderr.close()
        return 0
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
