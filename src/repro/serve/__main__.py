"""CLI for serving a cube snapshot — or a timeline of them.

Examples (after ``dump_snapshot(cube, "snap/")``)::

    python -m repro.serve snap/ info
    python -m repro.serve snap/ top --index D -k 10 --min-minority 20
    python -m repro.serve snap/ slice --ca city=Rivertown
    python -m repro.serve snap/ cell --sa ethnicity=minority
    python -m repro.serve snap/ pivot --index D --rows ethnicity --cols city
    python -m repro.serve snap/ top --json          # machine-readable
    python -m repro.serve snap/ info --no-mmap      # load into memory

A *timeline* directory (integer-named snapshot subdirectories, written
by :func:`repro.store.dump_into_timeline`) serves the same commands
routed to one date — the latest unless ``--date`` picks another — plus
a per-date ``trend`` of one cell::

    python -m repro.serve timeline/ info
    python -m repro.serve timeline/ top --date 2005
    python -m repro.serve timeline/ trend --index D --sa gender=F

Coordinates are ``attribute=value`` pairs, repeatable: ``--sa sex=F
--sa age=young --ca region=north``.  All commands are read-only.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

from repro.cube.cell import CellStats
from repro.errors import ReproError
from repro.report.text import render_cube, render_table
from repro.serve.service import CubeService


def _coordinates(pairs: "list[str] | None") -> "dict[str, object] | None":
    if not pairs:
        return None
    out: "dict[str, object]" = {}
    for pair in pairs:
        attr, sep, value = pair.partition("=")
        if not sep or not attr:
            raise SystemExit(
                f"bad coordinate {pair!r}: expected attribute=value"
            )
        if attr in out:  # repeated attribute -> multi-valued containment
            previous = out[attr]
            values = list(previous) if isinstance(previous, list) else [previous]
            values.append(value)
            out[attr] = values
        else:
            out[attr] = value
    return out


def _typed_coordinates(
    service: CubeService, mapping: "dict[str, object] | None"
) -> "dict[str, object] | None":
    """Coerce CLI string values to the vocabulary's exact item types.

    ``encode_query`` matches items by exact (attribute, value) pairs,
    and vocabularies may hold int/bool/float values — ``--ca
    n_boards=2`` must look up ``Item('n_boards', 2)``, not
    ``Item('n_boards', '2')``.  Values whose string rendering matches
    no vocabulary entry pass through unchanged (the unknown-coordinate
    error stays informative).
    """
    if mapping is None:
        return None
    dictionary = service.cube.dictionary
    typed: "dict[str, dict[str, object]]" = {}
    for item_id in range(len(dictionary)):
        item = dictionary.item(item_id)
        typed.setdefault(item.attribute, {})[str(item.value)] = item.value
    out: "dict[str, object]" = {}
    for attr, value in mapping.items():
        lookup = typed.get(attr, {})
        if isinstance(value, list):
            out[attr] = [lookup.get(v, v) for v in value]
        else:
            out[attr] = lookup.get(value, value)
    return out


def _cell_rows(service: CubeService, cells: "list[CellStats]",
               index_names: "list[str]") -> "list[list[object]]":
    return [
        [service.describe(stats.key), stats.population, stats.minority,
         stats.n_units]
        + [stats.value(name) for name in index_names]
        for stats in cells
    ]


def _cell_payload(service: CubeService, stats: CellStats,
                  index_names: "list[str]") -> "dict[str, object]":
    return {
        "cell": service.describe(stats.key),
        "population": stats.population,
        "minority": stats.minority,
        "n_units": stats.n_units,
        "indexes": {
            name: None if math.isnan(stats.value(name))
            else stats.value(name)
            for name in index_names
        },
    }


def _print_cells(service: CubeService, cells: "list[CellStats]",
                 as_json: bool) -> None:
    index_names = list(service.cube.metadata.index_names)
    if as_json:
        print(json.dumps(
            [_cell_payload(service, s, index_names) for s in cells], indent=2
        ))
        return
    header = ["cell", "T", "M", "units"] + index_names
    print(render_table(header, _cell_rows(service, cells, index_names)))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve read-only queries over a cube snapshot.",
    )
    parser.add_argument("snapshot", help="snapshot directory to open")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="cube summary and provenance")
    sub.add_parser("rows", help="every cell as a flat table (cube.csv view)")

    top = sub.add_parser("top", help="ranked segregation contexts")
    top.add_argument("--index", default="D", help="index short name")
    top.add_argument("-k", type=int, default=10)
    top.add_argument("--min-minority", type=int, default=0)
    top.add_argument("--min-population", type=int, default=0)
    top.add_argument("--min-units", type=int, default=2)

    for name, help_text in (
        ("slice", "cells refining the given coordinates"),
        ("cell", "one cell at the given coordinates"),
        ("children", "drill-down neighbours of the given coordinates"),
        ("parents", "roll-up neighbours of the given coordinates"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--sa", action="append", metavar="ATTR=VALUE")
        cmd.add_argument("--ca", action="append", metavar="ATTR=VALUE")

    pivot = sub.add_parser("pivot", help="Fig. 1-style pivot of one index")
    pivot.add_argument("--index", default="D")
    pivot.add_argument("--rows", required=True, help="row attribute")
    pivot.add_argument("--cols", required=True, help="column attribute")
    pivot.add_argument("--sa", action="append", metavar="ATTR=VALUE")
    pivot.add_argument("--ca", action="append", metavar="ATTR=VALUE")
    pivot.add_argument("--digits", type=int, default=2)

    trend = sub.add_parser(
        "trend", help="one cell's index value per timeline date"
    )
    trend.add_argument("--index", default="D")
    trend.add_argument("--sa", action="append", metavar="ATTR=VALUE")
    trend.add_argument("--ca", action="append", metavar="ATTR=VALUE")

    for cmd in sub.choices.values():
        cmd.add_argument(
            "--json", action="store_true", help="emit JSON instead of text"
        )
        cmd.add_argument(
            "--no-mmap", action="store_true",
            help="load columns into memory instead of memory-mapping them",
        )
        cmd.add_argument(
            "--date", type=int, default=None,
            help="timeline date to serve (default: the latest)",
        )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        service = CubeService(
            args.snapshot, mmap=not args.no_mmap, date=args.date
        )
        if args.command == "info":
            info = service.info()
            if args.json:
                print(json.dumps(info, indent=2, default=str))
            else:
                print(render_table(
                    ["key", "value"],
                    [[k, v] for k, v in info.items()],
                ))
        elif args.command == "rows":
            if args.json:
                print(json.dumps(service.cube.to_rows(), indent=2))
            else:
                print(render_cube(service.cube))
        elif args.command == "top":
            found = service.top(
                index_name=args.index,
                k=args.k,
                min_minority=args.min_minority,
                min_population=args.min_population,
                min_units=args.min_units,
            )
            if args.json:
                print(json.dumps(
                    [
                        {
                            "rank": f.rank,
                            "cell": f.description,
                            "index": f.index_name,
                            "value": f.value,
                            "population": f.population,
                            "minority": f.minority,
                            "n_units": f.n_units,
                        }
                        for f in found
                    ],
                    indent=2,
                ))
            else:
                print(render_table(
                    ["rank", "cell", args.index, "T", "M", "units"],
                    [
                        [f.rank, f.description, f.value, f.population,
                         f.minority, f.n_units]
                        for f in found
                    ],
                ))
        elif args.command in ("slice", "children", "parents"):
            sa = _typed_coordinates(service, _coordinates(args.sa))
            ca = _typed_coordinates(service, _coordinates(args.ca))
            cells = getattr(service, args.command)(sa=sa, ca=ca)
            _print_cells(service, cells, args.json)
        elif args.command == "cell":
            stats = service.cell(
                sa=_typed_coordinates(service, _coordinates(args.sa)),
                ca=_typed_coordinates(service, _coordinates(args.ca)),
            )
            if stats is None:
                print("(no such cell)" if not args.json else "null")
                return 1
            _print_cells(service, [stats], args.json)
        elif args.command == "trend":
            series = service.trend(
                index_name=args.index,
                sa=_typed_coordinates(service, _coordinates(args.sa)),
                ca=_typed_coordinates(service, _coordinates(args.ca)),
            )
            if args.json:
                print(json.dumps(
                    [
                        {
                            "date": date,
                            "index": args.index,
                            "value": None if math.isnan(value) else value,
                        }
                        for date, value in series
                    ],
                    indent=2,
                ))
            else:
                print(render_table(
                    ["date", args.index],
                    [[date, value] for date, value in series],
                ))
        elif args.command == "pivot":
            sa = _typed_coordinates(service, _coordinates(args.sa))
            ca = _typed_coordinates(service, _coordinates(args.ca))
            if args.json:
                rows, cols, matrix = service.pivot_values(
                    args.index, args.rows, args.cols,
                    fixed_sa=sa, fixed_ca=ca,
                )
                print(json.dumps(
                    {
                        "rows": rows,
                        "cols": cols,
                        "values": [
                            [None if math.isnan(v) else v for v in line]
                            for line in matrix
                        ],
                    },
                    indent=2,
                ))
            else:
                print(service.pivot(
                    args.index, args.rows, args.cols,
                    fixed_sa=sa, fixed_ca=ca, digits=args.digits,
                ))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        sys.stderr.close()
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
