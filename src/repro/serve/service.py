"""CubeService: the read-only serving facade over a cube or snapshot.

One service instance wraps a live
:class:`~repro.cube.cube.SegregationCube`, a snapshot directory
(opened via :func:`repro.store.open_snapshot`, memory-mapped by
default) or a **timeline** directory of dated snapshots — a path
without a top-level manifest is treated as a
:class:`~repro.store.timeline.CubeTimeline` and the ``date`` argument
routes queries to one dated cube (latest by default); the other dates
stay one :meth:`trend` call away.  Construction *warms* the served
cube's derived lookup structures — decoded keys, size vectors, the
hash row index — so that afterwards every query path is a pure read
over immutable arrays and dicts: safe for any number of concurrent
reader threads, verified by the thread-pool test in
``tests/test_serve_service.py``.
"""

from __future__ import annotations

from collections.abc import Mapping
from pathlib import Path
from typing import Union

from repro.cube.cell import CellStats
from repro.cube.coordinates import CellKey, encode_query
from repro.cube.cube import SegregationCube
from repro.cube.explorer import Discovery, summarize_cube, top_contexts
from repro.errors import SnapshotError

Coordinates = Union[Mapping[str, object], None]


def _disk_info(path) -> "dict[str, int]":
    """On-disk footprint of one snapshot directory (own bytes + chain)."""
    from repro.store.snapshot import delta_chain_length, snapshot_disk_bytes

    return {
        "snapshot_bytes": snapshot_disk_bytes(path),
        "delta_chain_length": delta_chain_length(path),
    }


def _warm(cube: SegregationCube) -> SegregationCube:
    # Build all lazy derived state up front: once warmed, queries
    # never write to shared structures.  For live closed-mode cubes
    # that includes the resolver's transaction-database caches
    # (item covers, unit grouping), which are also built lazily.
    cube.table.warm()
    resolver_warm = getattr(getattr(cube, "_resolver", None), "warm", None)
    if callable(resolver_warm):
        resolver_warm()
    return cube


class CubeService:
    """Concurrent read-only query serving over an opened cube."""

    def __init__(
        self,
        source: "SegregationCube | str | Path",
        mmap: bool = True,
        date: "int | None" = None,
    ):
        self._timeline = None
        self._date: "int | None" = None
        self._mmap = bool(mmap)
        if isinstance(source, (str, Path)):
            from repro.store.manifest import MANIFEST_NAME
            from repro.store.snapshot import open_snapshot
            from repro.store.timeline import CubeTimeline

            path = Path(source)
            if (path / MANIFEST_NAME).is_file():
                if date is not None:
                    raise SnapshotError(
                        f"{path} is a single snapshot; date routing needs "
                        "a timeline directory of dated snapshots"
                    )
                cube = open_snapshot(path, mmap=mmap)
            else:
                self._timeline = CubeTimeline(path, mmap=mmap)
                self._date = (
                    int(date) if date is not None
                    else self._timeline.dates[-1]
                )
                cube = self._timeline.at(self._date)
        else:
            if date is not None:
                raise SnapshotError(
                    "date routing needs a timeline directory, not a live "
                    "cube"
                )
            cube = source
        self._cube = _warm(cube)

    @property
    def cube(self) -> SegregationCube:
        """The served cube (live or snapshot-backed)."""
        return self._cube

    @property
    def date(self) -> "int | None":
        """The served snapshot date (None unless timeline-backed)."""
        return self._date

    @property
    def dictionary(self):
        """The served cube's typed item vocabulary."""
        return self._cube.dictionary

    @property
    def index_names(self) -> "list[str]":
        """Short names of the served index columns."""
        return list(self._cube.metadata.index_names)

    @property
    def timeline_root(self) -> "Path | None":
        """The timeline directory (None unless timeline-backed)."""
        return self._timeline.root if self._timeline is not None else None

    def dates(self) -> "list[int]":
        """All timeline dates ([] when not timeline-backed)."""
        return self._timeline.dates if self._timeline is not None else []

    def refreshed(self) -> "CubeService | None":
        """A fresh service over the latest published date, or None.

        Timeline-backed services only: re-scans the timeline directory
        and, when a newer date than the currently served one has been
        published, returns a *new* service over it (the existing
        instance keeps serving its date untouched — readers in flight
        never see state change under them).  Returns None when there is
        nothing newer; the cache layer uses this to decide whether a
        publish happened and stale entries must be evicted.
        """
        if self._timeline is None:
            return None
        from repro.store.timeline import timeline_dates

        dates = timeline_dates(self._timeline.root)
        if not dates or dates[-1] == self._date:
            return None
        return CubeService(self._timeline.root, mmap=self._mmap)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def info(self) -> "dict[str, object]":
        """Headline numbers plus provenance of the served cube.

        Snapshot-backed services also report the snapshot's on-disk
        byte size and delta-chain length; timeline-backed ones report
        both *per date* — the numbers a compaction policy (and the HTTP
        ``/info`` endpoint) needs to weigh chain-resolution cost
        against byte savings.
        """
        out = summarize_cube(self._cube)
        metadata = self._cube.metadata
        out["backend"] = metadata.backend
        out["index_names"] = list(metadata.index_names)
        out["n_rows"] = metadata.n_rows
        out["n_units"] = metadata.n_units
        snapshot = metadata.extra.get("snapshot")
        if snapshot is not None:
            out["snapshot"] = snapshot
            out["disk"] = _disk_info(snapshot["path"])
        if self._timeline is not None:
            out["timeline"] = {
                "dates": self._timeline.dates,
                "served_date": self._date,
                "per_date": {
                    str(date): _disk_info(self._timeline.path_of(date))
                    for date in self._timeline.dates
                },
            }
            out["staleness"] = self._staleness()
        return out

    def _staleness(self) -> "dict[str, object]":
        """How far behind, and how heavy, is what we are serving?

        ``latest_date``/``dates_behind`` compare the served date with
        the newest snapshot on disk; ``last_publish_at`` (plus the
        derived ``seconds_since_publish``) comes from the timeline
        manifest the publisher stamps on every
        :func:`~repro.store.timeline.dump_into_timeline`;
        ``chain_lengths`` is the live per-date delta-chain length —
        after compaction, the numbers the policy left behind.
        """
        from datetime import datetime, timezone

        from repro.store.snapshot import delta_chain_length
        from repro.store.timeline import read_timeline_manifest

        dates = self._timeline.dates
        latest = dates[-1]
        manifest = read_timeline_manifest(self._timeline.root)
        last_publish_at = manifest.get("last_publish_at")
        seconds_since = None
        if last_publish_at:
            try:
                published = datetime.fromisoformat(last_publish_at)
                now = datetime.now(timezone.utc)
                if published.tzinfo is None:
                    published = published.replace(tzinfo=timezone.utc)
                seconds_since = max(
                    0.0, (now - published).total_seconds()
                )
            except ValueError:
                seconds_since = None
        return {
            "latest_date": latest,
            "served_date": self._date,
            "dates_behind": sum(1 for d in dates if d > self._date),
            "last_publish_at": last_publish_at,
            "seconds_since_publish": seconds_since,
            "chain_lengths": {
                str(date): delta_chain_length(self._timeline.path_of(date))
                for date in dates
            },
        }

    def trend(
        self,
        index_name: str = "D",
        sa: Coordinates = None,
        ca: Coordinates = None,
    ) -> "list[tuple[int, float]]":
        """One cell's index value at every timeline date.

        Timeline-backed services only: each date's cube answers the
        same user-level coordinate query (nan where the cell is absent
        or the index undefined at that date).
        """
        if self._timeline is None:
            raise SnapshotError(
                "trend queries need a timeline directory of dated snapshots"
            )
        return [
            (date, cube.value(index_name, sa=sa, ca=ca))
            for date, cube in self._timeline
        ]

    def top(
        self,
        index_name: str = "D",
        k: int = 10,
        min_minority: int = 0,
        min_population: int = 0,
        min_units: int = 2,
    ) -> "list[Discovery]":
        """Ranked segregation contexts (the discovery primitive)."""
        return top_contexts(
            self._cube,
            index_name=index_name,
            k=k,
            min_minority=min_minority,
            min_population=min_population,
            min_units=min_units,
        )

    def cell(self, sa: Coordinates = None, ca: Coordinates = None
             ) -> "CellStats | None":
        """Point lookup by user-level coordinates."""
        return self._cube.cell(sa=sa, ca=ca)

    def value(self, index_name: str, sa: Coordinates = None,
              ca: Coordinates = None) -> float:
        """One index value at user-level coordinates (nan when absent)."""
        return self._cube.value(index_name, sa=sa, ca=ca)

    def value_by_key(self, index_name: str, key: CellKey) -> float:
        """One index value at an encoded cell key."""
        return self._cube.value_by_key(index_name, key)

    def slice(self, sa: Coordinates = None, ca: Coordinates = None
              ) -> "list[CellStats]":
        """All materialised cells refining the given coordinates."""
        return self._cube.slice(sa=sa, ca=ca)

    def children(self, sa: Coordinates = None, ca: Coordinates = None
                 ) -> "list[CellStats]":
        """Drill-down neighbours (one added coordinate)."""
        key = encode_query(self._cube.dictionary, sa=sa, ca=ca)
        return self._cube.children(key)

    def parents(self, sa: Coordinates = None, ca: Coordinates = None
                ) -> "list[CellStats]":
        """Roll-up neighbours (one removed coordinate)."""
        key = encode_query(self._cube.dictionary, sa=sa, ca=ca)
        return self._cube.parents(key)

    def describe(self, key: CellKey) -> str:
        """Human-readable address of a cell key."""
        return self._cube.describe(key)

    def pivot(
        self,
        index_name: str,
        row_attr: str,
        col_attr: str,
        fixed_sa: Coordinates = None,
        fixed_ca: Coordinates = None,
        digits: int = 2,
    ) -> str:
        """Fig. 1-style text pivot of one index over two attributes."""
        from repro.report.pivot import pivot

        return pivot(
            self._cube,
            index_name,
            row_attr,
            col_attr,
            fixed_sa=fixed_sa,
            fixed_ca=fixed_ca,
            digits=digits,
        )

    def pivot_values(
        self,
        index_name: str,
        row_attr: str,
        col_attr: str,
        fixed_sa: Coordinates = None,
        fixed_ca: Coordinates = None,
    ) -> "tuple[list[str], list[str], list[list[float]]]":
        """The pivot's raw ``(row_labels, col_labels, matrix)`` data."""
        from repro.report.pivot import pivot_values

        return pivot_values(
            self._cube,
            index_name,
            row_attr,
            col_attr,
            fixed_sa=fixed_sa,
            fixed_ca=fixed_ca,
        )

    def __repr__(self) -> str:
        return f"CubeService({self._cube!r})"
