"""CubeService: the read-only serving facade over a cube or snapshot.

One service instance wraps either a live
:class:`~repro.cube.cube.SegregationCube` or a snapshot directory
(opened via :func:`repro.store.open_snapshot`, memory-mapped by
default).  Construction *warms* the table's derived lookup structures —
decoded keys, size vectors, the hash row index — so that afterwards
every query path is a pure read over immutable arrays and dicts: safe
for any number of concurrent reader threads, verified by the
thread-pool test in ``tests/test_serve_service.py``.
"""

from __future__ import annotations

from collections.abc import Mapping
from pathlib import Path
from typing import Union

from repro.cube.cell import CellStats
from repro.cube.coordinates import CellKey, encode_query
from repro.cube.cube import SegregationCube
from repro.cube.explorer import Discovery, summarize_cube, top_contexts

Coordinates = Union[Mapping[str, object], None]


class CubeService:
    """Concurrent read-only query serving over an opened cube."""

    def __init__(
        self,
        source: "SegregationCube | str | Path",
        mmap: bool = True,
    ):
        if isinstance(source, (str, Path)):
            from repro.store.snapshot import open_snapshot

            cube = open_snapshot(source, mmap=mmap)
        else:
            cube = source
        # Build all lazy derived state up front: once warmed, queries
        # never write to shared structures.  For live closed-mode cubes
        # that includes the resolver's transaction-database caches
        # (item covers, unit grouping), which are also built lazily.
        cube.table.warm()
        resolver_warm = getattr(
            getattr(cube, "_resolver", None), "warm", None
        )
        if callable(resolver_warm):
            resolver_warm()
        self._cube = cube

    @property
    def cube(self) -> SegregationCube:
        """The served cube (live or snapshot-backed)."""
        return self._cube

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def info(self) -> "dict[str, object]":
        """Headline numbers plus provenance of the served cube."""
        out = summarize_cube(self._cube)
        metadata = self._cube.metadata
        out["backend"] = metadata.backend
        out["index_names"] = list(metadata.index_names)
        out["n_rows"] = metadata.n_rows
        out["n_units"] = metadata.n_units
        snapshot = metadata.extra.get("snapshot")
        if snapshot is not None:
            out["snapshot"] = snapshot
        return out

    def top(
        self,
        index_name: str = "D",
        k: int = 10,
        min_minority: int = 0,
        min_population: int = 0,
        min_units: int = 2,
    ) -> "list[Discovery]":
        """Ranked segregation contexts (the discovery primitive)."""
        return top_contexts(
            self._cube,
            index_name=index_name,
            k=k,
            min_minority=min_minority,
            min_population=min_population,
            min_units=min_units,
        )

    def cell(self, sa: Coordinates = None, ca: Coordinates = None
             ) -> "CellStats | None":
        """Point lookup by user-level coordinates."""
        return self._cube.cell(sa=sa, ca=ca)

    def value(self, index_name: str, sa: Coordinates = None,
              ca: Coordinates = None) -> float:
        """One index value at user-level coordinates (nan when absent)."""
        return self._cube.value(index_name, sa=sa, ca=ca)

    def value_by_key(self, index_name: str, key: CellKey) -> float:
        """One index value at an encoded cell key."""
        return self._cube.value_by_key(index_name, key)

    def slice(self, sa: Coordinates = None, ca: Coordinates = None
              ) -> "list[CellStats]":
        """All materialised cells refining the given coordinates."""
        return self._cube.slice(sa=sa, ca=ca)

    def children(self, sa: Coordinates = None, ca: Coordinates = None
                 ) -> "list[CellStats]":
        """Drill-down neighbours (one added coordinate)."""
        key = encode_query(self._cube.dictionary, sa=sa, ca=ca)
        return self._cube.children(key)

    def parents(self, sa: Coordinates = None, ca: Coordinates = None
                ) -> "list[CellStats]":
        """Roll-up neighbours (one removed coordinate)."""
        key = encode_query(self._cube.dictionary, sa=sa, ca=ca)
        return self._cube.parents(key)

    def describe(self, key: CellKey) -> str:
        """Human-readable address of a cell key."""
        return self._cube.describe(key)

    def pivot(
        self,
        index_name: str,
        row_attr: str,
        col_attr: str,
        fixed_sa: Coordinates = None,
        fixed_ca: Coordinates = None,
        digits: int = 2,
    ) -> str:
        """Fig. 1-style text pivot of one index over two attributes."""
        from repro.report.pivot import pivot

        return pivot(
            self._cube,
            index_name,
            row_attr,
            col_attr,
            fixed_sa=fixed_sa,
            fixed_ca=fixed_ca,
            digits=digits,
        )

    def pivot_values(
        self,
        index_name: str,
        row_attr: str,
        col_attr: str,
        fixed_sa: Coordinates = None,
        fixed_ca: Coordinates = None,
    ) -> "tuple[list[str], list[str], list[list[float]]]":
        """The pivot's raw ``(row_labels, col_labels, matrix)`` data."""
        from repro.report.pivot import pivot_values

        return pivot_values(
            self._cube,
            index_name,
            row_attr,
            col_attr,
            fixed_sa=fixed_sa,
            fixed_ca=fixed_ca,
        )

    def __repr__(self) -> str:
        return f"CubeService({self._cube!r})"
