"""Canonical JSON payloads for every serving query.

One function per query shape, used by *every* consumer — the HTTP tier
(:mod:`repro.serve.http`), the CLI's ``--json`` output and the parity
tests — so "the JSON answer to this query" is defined exactly once.
That single definition is what the HTTP acceptance contract rests on:
an endpoint's body is byte-identical to ``dumps(<payload fn>(service,
...))`` computed in-process, because it *is* that call.

Two canonicalisation rules make the bytes deterministic:

* NaN index values serialise as ``null`` (JSON has no NaN; ``dumps``
  enforces it with ``allow_nan=False``), matching the CLI.
* Cell lists (``slice`` / ``children`` / ``parents``) are ordered by
  ``(depth, description)`` — a property of the *cells*, not of any
  store's row order — so a sharded service and the unsharded one
  produce identical bytes for the same data.
"""

from __future__ import annotations

import json
import math

from repro.cube.cell import CellStats


def dumps(payload: object) -> bytes:
    """The one JSON serialisation used on the wire (byte-deterministic)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False,
    ).encode("utf-8")


def _number(value: float) -> "float | None":
    return None if math.isnan(value) else value


def cell_payload(service, stats: "CellStats | None"
                 ) -> "dict[str, object] | None":
    """One cell as JSON (None for a missing cell -> ``null`` body)."""
    if stats is None:
        return None
    return {
        "cell": service.describe(stats.key),
        "population": stats.population,
        "minority": stats.minority,
        "n_units": stats.n_units,
        "indexes": {
            name: _number(stats.value(name))
            for name in service.index_names
        },
    }


def cells_payload(service, cells: "list[CellStats]"
                  ) -> "list[dict[str, object]]":
    """A cell list in canonical ``(depth, description)`` order."""
    ordered = sorted(
        cells, key=lambda s: (s.depth(), service.describe(s.key))
    )
    return [cell_payload(service, stats) for stats in ordered]


def info_payload(service) -> "dict[str, object]":
    """``service.info()`` made JSON-safe (paths to str, ints plain)."""
    return _jsonable(service.info())


def dates_payload(service) -> "dict[str, object]":
    return {
        "dates": [int(d) for d in service.dates()],
        "served_date": (
            int(service.date) if getattr(service, "date", None) is not None
            else None
        ),
    }


def top_payload(
    service,
    index_name: str = "D",
    k: int = 10,
    min_minority: int = 0,
    min_population: int = 0,
    min_units: int = 2,
) -> "list[dict[str, object]]":
    found = service.top(
        index_name=index_name,
        k=k,
        min_minority=min_minority,
        min_population=min_population,
        min_units=min_units,
    )
    return [
        {
            "rank": f.rank,
            "cell": f.description,
            "index": f.index_name,
            "value": _number(f.value),
            "population": f.population,
            "minority": f.minority,
            "n_units": f.n_units,
        }
        for f in found
    ]


def trend_payload(service, index_name: str = "D", sa=None, ca=None
                  ) -> "list[dict[str, object]]":
    return [
        {
            "date": int(date),
            "index": index_name,
            "value": _number(value),
        }
        for date, value in service.trend(index_name=index_name, sa=sa, ca=ca)
    ]


def pivot_payload(
    service,
    index_name: str,
    row_attr: str,
    col_attr: str,
    fixed_sa=None,
    fixed_ca=None,
) -> "dict[str, object]":
    rows, cols, matrix = service.pivot_values(
        index_name, row_attr, col_attr, fixed_sa=fixed_sa, fixed_ca=fixed_ca,
    )
    return {
        "rows": rows,
        "cols": cols,
        "values": [[_number(v) for v in line] for line in matrix],
    }


def graph_info_payload(graph_service) -> "dict[str, object]":
    """``GraphService.info()`` made JSON-safe (the ``/graph/info`` body)."""
    return _jsonable(graph_service.info())


def graph_clusters_payload(graph_service, k: int = 10, min_size: int = 1
                           ) -> "list[dict[str, object]]":
    """The ``k`` largest clusters (the ``/graph/clusters`` body)."""
    return _jsonable(graph_service.clusters(k=k, min_size=min_size))


def graph_degree_payload(graph_service, node: "int | None" = None,
                         k: int = 10) -> object:
    """One node's degree record, or the top-``k`` by degree when no node
    is given (the ``/graph/degree`` body)."""
    if node is not None:
        return _jsonable(graph_service.node(node))
    return _jsonable(graph_service.top_degree(k=k))


def _jsonable(obj: object) -> object:
    """Plain-JSON view of nested info dicts (Paths, numpy ints, NaN)."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, bool) or obj is None or isinstance(obj, str):
        return obj
    if isinstance(obj, float):
        return _number(obj)
    if isinstance(obj, int):
        return obj
    item = getattr(obj, "item", None)   # numpy scalars
    if callable(item):
        return _jsonable(item())
    return str(obj)
