"""HTTP serving self-check: endpoint parity smoke, CI-runnable.

Run anywhere::

    python -m repro.serve.selfcheck artifacts/serve_smoke

Builds a small cube from the bundled schools dataset, dumps it both as
a single snapshot and as a hash-sharded directory, stands up the WSGI
app over each (in-process — no socket), and fails loudly (exit 1)
unless:

* every endpoint answers 200 with a JSON body **byte-identical** to
  the corresponding in-process payload function over a plain
  :class:`~repro.serve.service.CubeService` — the HTTP tier's core
  contract;
* the sharded app's ``/top``, ``/slice``, ``/pivot``, ``/cell``,
  ``/children`` and ``/parents`` bodies equal the unsharded app's,
  byte for byte;
* the error surface holds: unknown endpoint → 404, malformed
  coordinate → 400, unknown index → 400, missing cell → 404, all with
  JSON bodies;
* a second pass over the same queries is answered by the hot-query
  cache (hit counter grows, bodies unchanged).

The directory is left in place so the CI job can upload it as an
artifact.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.cube.builder import build_cube
from repro.data.schools import generate_schools
from repro.serve import payloads
from repro.serve.http import make_app, wsgi_get
from repro.serve.service import CubeService
from repro.store.shards import dump_sharded_snapshot
from repro.store.snapshot import dump_snapshot

QUERIES = (
    "/info",
    "/dates",
    "/top?index=D&k=10&min_minority=5",
    "/slice?ca=city%3DRivertown",
    "/cell?sa=ethnicity%3Dminority",
    "/children?sa=ethnicity%3Dminority",
    "/parents?sa=ethnicity%3Dminority&ca=city%3DRivertown",
    "/pivot?index=D&rows=ethnicity&cols=city",
)


def _expected_bodies(service: CubeService) -> "dict[str, bytes]":
    """The in-process answer to every smoke query, via the payload fns."""
    sa = {"ethnicity": "minority"}
    ca = {"city": "Rivertown"}
    return {
        "/info": payloads.dumps(payloads.info_payload(service)),
        "/dates": payloads.dumps(payloads.dates_payload(service)),
        "/top?index=D&k=10&min_minority=5": payloads.dumps(
            payloads.top_payload(service, index_name="D", k=10,
                                 min_minority=5)
        ),
        "/slice?ca=city%3DRivertown": payloads.dumps(
            payloads.cells_payload(service, service.slice(ca=ca))
        ),
        "/cell?sa=ethnicity%3Dminority": payloads.dumps(
            payloads.cell_payload(service, service.cell(sa=sa))
        ),
        "/children?sa=ethnicity%3Dminority": payloads.dumps(
            payloads.cells_payload(service, service.children(sa=sa))
        ),
        "/parents?sa=ethnicity%3Dminority&ca=city%3DRivertown":
            payloads.dumps(
                payloads.cells_payload(service, service.parents(sa=sa,
                                                                ca=ca))
            ),
        "/pivot?index=D&rows=ethnicity&cols=city": payloads.dumps(
            payloads.pivot_payload(service, "D", "ethnicity", "city")
        ),
    }


def run(path: str) -> int:
    root = Path(path)
    table, schema = generate_schools()
    cube = build_cube(table, schema, min_population=10, min_minority=3)
    dump_snapshot(cube, root / "snapshot")
    dump_sharded_snapshot(cube, root / "sharded", by="hash", n_shards=4)

    reference = CubeService(root / "snapshot")
    expected = _expected_bodies(reference)
    single = make_app(root / "snapshot")
    sharded = make_app(root / "sharded")

    failures = 0

    def check(label: str, condition: bool, detail: str = "") -> None:
        nonlocal failures
        if not condition:
            failures += 1
            print(f"SMOKE FAILURE: {label} {detail}".rstrip(),
                  file=sys.stderr)

    for query in QUERIES:
        status, headers, body = wsgi_get(single, query)
        check(f"{query} status", status == 200, f"(got {status})")
        check(f"{query} content-type",
              headers.get("Content-Type") == "application/json")
        want = expected[query]
        # /info differs structurally (cache counters; shard breakdown on
        # the sharded app), so it is checked for parity of the shared
        # headline fields instead of byte identity.
        if query == "/info":
            got = json.loads(body)
            ref = json.loads(want)
            for field in ("cells", "context_only_cells", "index_names",
                          "mode", "defined_cells_per_index"):
                check(f"/info field {field}", got.get(field) == ref[field],
                      f"(got {got.get(field)!r}, want {ref[field]!r})")
            check("/info cache counters", "cache" in got)
        else:
            check(f"{query} byte parity", body == want,
                  f"({len(body)} vs {len(want)} bytes)")

        sh_status, _, sh_body = wsgi_get(sharded, query)
        check(f"sharded {query} status", sh_status == 200,
              f"(got {sh_status})")
        if query == "/info":
            got = json.loads(sh_body)
            ref = json.loads(want)
            for field in ("cells", "context_only_cells", "index_names"):
                check(f"sharded /info field {field}",
                      got.get(field) == ref[field])
        elif query == "/dates":
            pass   # a non-timeline sharded dir has no dates either way
        else:
            check(f"sharded {query} byte parity", sh_body == want,
                  f"({len(sh_body)} vs {len(want)} bytes)")

    # Error surface.
    status, _, body = wsgi_get(single, "/nope")
    check("/nope -> 404", status == 404 and b"error" in body)
    status, _, body = wsgi_get(single, "/slice?sa=noequals")
    check("bad coordinate -> 400", status == 400 and b"error" in body)
    status, _, body = wsgi_get(single, "/top?index=NOPE")
    check("unknown index -> 400", status == 400 and b"error" in body)
    status, _, body = wsgi_get(single, "/top?k=abc")
    check("non-integer k -> 400", status == 400 and b"error" in body)
    # No school sits in two cities, so this cell can never materialise
    # (but both values are in the vocabulary: a true missing-cell 404,
    # not a bad request).
    status, _, body = wsgi_get(
        single, "/cell?ca=city%3DRivertown&ca=city%3DLakeside"
    )
    check("missing cell -> 404 null",
          (status, body) == (404, b"null"), f"(got {status}, {body[:40]!r})")
    status, _, body = wsgi_get(single, "/slice?ca=city%3DNowhere")
    check("unknown coordinate value -> 400",
          status == 400 and b"error" in body, f"(got {status})")

    # Hot-query cache: re-ask everything, hits must grow, bodies hold.
    before = single.service.cache.stats()["hits"]
    for query in QUERIES:
        status, _, body = wsgi_get(single, query)
        check(f"warm {query} status", status == 200)
        if query != "/info":
            check(f"warm {query} byte parity", body == expected[query])
    after = single.service.cache.stats()["hits"]
    check("cache hits grew", after > before, f"({before} -> {after})")

    if failures:
        return 1
    print(
        f"serve selfcheck OK: {len(QUERIES)} endpoints byte-identical to "
        f"in-process payloads over {len(reference.cube)} cells, sharded "
        f"(4 hash shards) == unsharded, errors map to 400/404, "
        f"{after - before} warm-pass cache hits"
    )
    return 0


def main(argv: "list[str]") -> int:
    if len(argv) != 2:
        print(
            "usage: python -m repro.serve.selfcheck <artifact-dir>",
            file=sys.stderr,
        )
        return 2
    return run(argv[1])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
