"""Stdlib-only WSGI serving tier over a cube service.

:func:`make_app` turns any serving source — a snapshot directory, a
timeline, a ``shards.json`` sharded directory, a live cube, or an
already-constructed service — into a WSGI application exposing the
:class:`~repro.serve.service.CubeService` queries as JSON-over-HTTP:

====================  ====================================================
``GET /info``         cube summary, provenance, disk stats, cache counters
``GET /dates``        timeline dates and the served date
``GET /top``          ranked contexts (``index``/``k``/``min_minority``/
                      ``min_population``/``min_units``)
``GET /slice``        cells refining ``sa``/``ca`` coordinates
``GET /cell``         one cell at ``sa``/``ca`` (404 + ``null`` if absent)
``GET /children``     drill-down neighbours of ``sa``/``ca``
``GET /parents``      roll-up neighbours of ``sa``/``ca``
``GET /pivot``        one index over ``rows`` × ``cols`` attributes
``GET /trend``        one cell's index value per timeline date
``POST /refresh``     pick up a newly published timeline date
====================  ====================================================

When a *graph snapshot* is mounted alongside the cube
(``make_app(..., graph_source="graph_snap/")``, written by
:func:`repro.store.dump_graph_snapshot` from scenario 2/3), three more
endpoints serve the projected graph + clustering through the same
payload layer:

====================  ====================================================
``GET /graph/info``   graph summary: counts, method, degrees, provenance
``GET /graph/clusters``  the ``k`` largest clusters (``k``/``min_size``)
``GET /graph/degree``    one node (``node=``) or the top ``k`` by degree
====================  ====================================================

Without a mounted graph those paths answer 404.

Coordinates are repeatable ``attribute=value`` query parameters
(``?sa=sex%3DF&sa=age%3Dyoung&ca=region%3Dnorth``), parsed and
type-coerced by the *same* :mod:`repro.serve.params` functions the CLI
uses.  Every response body is ``payloads.dumps(<payload fn>(service,
...))`` — the exact bytes the in-process payload functions produce —
which is what makes the HTTP tier byte-identical to in-process calls.

Error mapping: malformed parameters raise :class:`ValueError` → 400;
domain errors (:class:`~repro.errors.ReproError`: unknown index,
non-timeline trend, bad pivot attribute) → 400; unknown paths and
missing cells → 404; unexpected failures → 500.  Every error body is
JSON: ``{"error": ..., "status": ...}``.

The app is a plain WSGI callable: run it under
:func:`serve` (threaded ``wsgiref``, stdlib only), any WSGI container
(``gunicorn 'repro.serve.http:make_app("snap/")'``), or hit it
in-process with :func:`wsgi_get` (no socket needed — the CI smoke and
the parity tests do exactly that).
"""

from __future__ import annotations

import io
import sys
from socketserver import ThreadingMixIn
from urllib.parse import parse_qs
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

from repro.errors import ReproError
from repro.serve import payloads
from repro.serve.cache import DEFAULT_CACHE_SIZE, CachedCubeService
from repro.serve.params import parse_coordinate_pairs, typed_coordinates
from repro.serve.router import open_service

_STATUS = {
    200: "200 OK",
    400: "400 Bad Request",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    500: "500 Internal Server Error",
}


class _HTTPError(Exception):
    """An error with a status code, rendered as a JSON body."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def _coords(service, params: "dict[str, list[str]]", name: str
            ) -> "dict[str, object] | None":
    return typed_coordinates(
        service.dictionary, parse_coordinate_pairs(params.get(name))
    )


def _int_param(params: "dict[str, list[str]]", name: str, default: int
               ) -> int:
    values = params.get(name)
    if not values:
        return default
    try:
        return int(values[-1])
    except ValueError:
        raise ValueError(
            f"parameter {name!r} must be an integer, got {values[-1]!r}"
        ) from None


def _str_param(params: "dict[str, list[str]]", name: str,
               default: "str | None" = None) -> "str | None":
    values = params.get(name)
    return values[-1] if values else default


def _require(params: "dict[str, list[str]]", name: str) -> str:
    value = _str_param(params, name)
    if value is None:
        raise ValueError(f"missing required parameter {name!r}")
    return value


def _index_param(service, params: "dict[str, list[str]]") -> str:
    index = _str_param(params, "index", "D")
    names = service.index_names
    if index not in names:
        raise ValueError(f"unknown index {index!r} (have: {names})")
    return index


# ----------------------------------------------------------------------
# Endpoint handlers: (service, params) -> (status, payload)
# ----------------------------------------------------------------------


def _handle_info(service, params):
    return 200, payloads.info_payload(service)


def _handle_dates(service, params):
    return 200, payloads.dates_payload(service)


def _handle_top(service, params):
    return 200, payloads.top_payload(
        service,
        index_name=_index_param(service, params),
        k=_int_param(params, "k", 10),
        min_minority=_int_param(params, "min_minority", 0),
        min_population=_int_param(params, "min_population", 0),
        min_units=_int_param(params, "min_units", 2),
    )


def _handle_slice(service, params):
    cells = service.slice(
        sa=_coords(service, params, "sa"), ca=_coords(service, params, "ca")
    )
    return 200, payloads.cells_payload(service, cells)


def _handle_cell(service, params):
    stats = service.cell(
        sa=_coords(service, params, "sa"), ca=_coords(service, params, "ca")
    )
    payload = payloads.cell_payload(service, stats)
    return (200, payload) if payload is not None else (404, None)


def _handle_children(service, params):
    cells = service.children(
        sa=_coords(service, params, "sa"), ca=_coords(service, params, "ca")
    )
    return 200, payloads.cells_payload(service, cells)


def _handle_parents(service, params):
    cells = service.parents(
        sa=_coords(service, params, "sa"), ca=_coords(service, params, "ca")
    )
    return 200, payloads.cells_payload(service, cells)


def _handle_pivot(service, params):
    return 200, payloads.pivot_payload(
        service,
        index_name=_index_param(service, params),
        row_attr=_require(params, "rows"),
        col_attr=_require(params, "cols"),
        fixed_sa=_coords(service, params, "sa"),
        fixed_ca=_coords(service, params, "ca"),
    )


def _handle_trend(service, params):
    return 200, payloads.trend_payload(
        service,
        index_name=_index_param(service, params),
        sa=_coords(service, params, "sa"),
        ca=_coords(service, params, "ca"),
    )


_GET_ROUTES = {
    "/info": _handle_info,
    "/dates": _handle_dates,
    "/top": _handle_top,
    "/slice": _handle_slice,
    "/cell": _handle_cell,
    "/children": _handle_children,
    "/parents": _handle_parents,
    "/pivot": _handle_pivot,
    "/trend": _handle_trend,
}


# ----------------------------------------------------------------------
# Graph endpoints: (graph_service, params) -> (status, payload)
# ----------------------------------------------------------------------


def _handle_graph_info(graph_service, params):
    return 200, payloads.graph_info_payload(graph_service)


def _handle_graph_clusters(graph_service, params):
    return 200, payloads.graph_clusters_payload(
        graph_service,
        k=_int_param(params, "k", 10),
        min_size=_int_param(params, "min_size", 1),
    )


def _handle_graph_degree(graph_service, params):
    node = _str_param(params, "node")
    if node is not None:
        try:
            node = int(node)
        except ValueError:
            raise ValueError(
                f"parameter 'node' must be an integer, got {node!r}"
            ) from None
    return 200, payloads.graph_degree_payload(
        graph_service, node=node, k=_int_param(params, "k", 10)
    )


_GRAPH_GET_ROUTES = {
    "/graph/info": _handle_graph_info,
    "/graph/clusters": _handle_graph_clusters,
    "/graph/degree": _handle_graph_degree,
}


def make_app(
    source,
    mmap: bool = True,
    date: "int | None" = None,
    cache_size: int = DEFAULT_CACHE_SIZE,
    graph_source=None,
):
    """Build the WSGI application over a serving source.

    ``source`` may be a path (snapshot / timeline / sharded directory),
    a live cube, or an already-constructed service object (anything
    with the :class:`~repro.serve.service.CubeService` query methods);
    paths and cubes are opened via
    :func:`~repro.serve.router.open_service` and wrapped in a
    :class:`~repro.serve.cache.CachedCubeService` of ``cache_size``
    entries (0 disables caching).  Service objects are used as-is, so a
    parity test can hand the app the very instance it queries
    in-process.

    ``graph_source`` optionally mounts a graph snapshot under
    ``/graph/*``: a snapshot directory path, an opened
    :class:`~repro.store.graph.GraphSnapshot`, or a ready
    :class:`~repro.serve.graph.GraphService`.  ``None`` (the default)
    leaves the graph endpoints answering 404.
    """
    if hasattr(source, "info") and hasattr(source, "top"):
        service = source
    else:
        service = CachedCubeService(
            open_service(source, mmap=mmap, date=date), maxsize=cache_size
        )
    if graph_source is None:
        graph_service = None
    elif hasattr(graph_source, "clusters") and hasattr(graph_source, "node"):
        graph_service = graph_source
    else:
        from repro.serve.graph import GraphService
        from repro.store.graph import GraphSnapshot

        if isinstance(graph_source, GraphSnapshot):
            graph_service = GraphService(graph_source)
        else:
            graph_service = GraphService.open(graph_source, mmap=mmap)

    def app(environ, start_response):
        path = environ.get("PATH_INFO", "/")
        method = environ.get("REQUEST_METHOD", "GET")
        try:
            if path == "/refresh":
                if method != "POST":
                    raise _HTTPError(405, "POST /refresh")
                refresher = getattr(service, "refresh", None)
                refreshed = bool(refresher()) if callable(refresher) else False
                status, payload = 200, {"refreshed": refreshed}
            elif path in _GRAPH_GET_ROUTES:
                if graph_service is None:
                    raise _HTTPError(
                        404, f"no graph snapshot mounted (for {path})"
                    )
                if method not in ("GET", "HEAD"):
                    raise _HTTPError(405, f"{path} only supports GET")
                params = parse_qs(
                    environ.get("QUERY_STRING", ""), keep_blank_values=True
                )
                status, payload = _GRAPH_GET_ROUTES[path](
                    graph_service, params
                )
            else:
                handler = _GET_ROUTES.get(path)
                if handler is None:
                    raise _HTTPError(404, f"no such endpoint: {path}")
                if method not in ("GET", "HEAD"):
                    raise _HTTPError(405, f"{path} only supports GET")
                params = parse_qs(
                    environ.get("QUERY_STRING", ""), keep_blank_values=True
                )
                status, payload = handler(service, params)
            body = payloads.dumps(payload)
        except _HTTPError as exc:
            status = exc.status
            body = payloads.dumps({"error": str(exc), "status": status})
        except ValueError as exc:
            status = 400
            body = payloads.dumps({"error": str(exc), "status": status})
        except ReproError as exc:
            status = 400
            body = payloads.dumps({"error": str(exc), "status": status})
        except Exception as exc:  # noqa: BLE001 — the 500 surface
            status = 500
            body = payloads.dumps(
                {"error": f"{type(exc).__name__}: {exc}", "status": status}
            )
        start_response(_STATUS[status], [
            ("Content-Type", "application/json"),
            ("Content-Length", str(len(body))),
        ])
        return [b"" if method == "HEAD" else body]

    app.service = service
    app.graph_service = graph_service
    return app


# ----------------------------------------------------------------------
# Stdlib server and in-process test client
# ----------------------------------------------------------------------


class ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """wsgiref's server, answering each request on its own thread.

    The served cube is warmed and immutable, so concurrent handler
    threads are safe by construction (the same guarantee the
    thread-pool tests exercise in-process).
    """

    daemon_threads = True


class _QuietHandler(WSGIRequestHandler):
    def log_message(self, format, *args):  # noqa: A002 — wsgiref API
        pass


def serve(
    source,
    host: str = "127.0.0.1",
    port: int = 8000,
    mmap: bool = True,
    date: "int | None" = None,
    cache_size: int = DEFAULT_CACHE_SIZE,
    quiet: bool = False,
    graph_source=None,
):
    """Open a source and return a ready ``ThreadingWSGIServer``.

    The caller owns the loop: ``serve(...).serve_forever()``.  Returning
    the server (rather than looping here) lets tests bind port 0 and
    shut down cleanly.
    """
    app = make_app(
        source, mmap=mmap, date=date, cache_size=cache_size,
        graph_source=graph_source,
    )
    return make_server(
        host, port, app,
        server_class=ThreadingWSGIServer,
        handler_class=_QuietHandler if quiet else WSGIRequestHandler,
    )


def wsgi_get(app, path_qs: str, method: str = "GET"
             ) -> "tuple[int, dict[str, str], bytes]":
    """In-process request: ``(status, headers, body)`` without a socket."""
    path, _, query = path_qs.partition("?")
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
        "SERVER_NAME": "localhost",
        "SERVER_PORT": "80",
        "SERVER_PROTOCOL": "HTTP/1.1",
        "wsgi.version": (1, 0),
        "wsgi.url_scheme": "http",
        "wsgi.input": io.BytesIO(b""),
        "wsgi.errors": sys.stderr,
        "wsgi.multithread": True,
        "wsgi.multiprocess": False,
        "wsgi.run_once": False,
    }
    captured: "dict[str, object]" = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = headers

    chunks = app(environ, start_response)
    try:
        body = b"".join(chunks)
    finally:
        close = getattr(chunks, "close", None)
        if callable(close):
            close()
    status_line = str(captured["status"])
    return (
        int(status_line.split(maxsplit=1)[0]),
        dict(captured["headers"]),
        body,
    )
