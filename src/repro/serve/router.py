"""ShardedCubeService: one logical cube served from many shards.

The router opens a directory written by
:func:`repro.store.shards.dump_sharded_snapshot` /
:func:`~repro.store.shards.dump_sharded_into_timeline` /
:func:`~repro.store.shards.shard_timeline_by_date` — a ``shards.json``
manifest plus one snapshot (or timeline) per shard — and presents the
:class:`~repro.serve.service.CubeService` query vocabulary over the
union, with the same answers the unsharded service would give:

* **Point queries** (``cell``/``value``) route to exactly one owning
  shard, re-deriving the shard key with the *same* partition functions
  the writer used (:func:`~repro.store.shards.hash_shard_of_key`,
  :func:`~repro.store.shards.attribute_shard_of_key`), so writer and
  router always agree.
* **Scans** (``top``/``slice``/``children``/``parents``) fan out to
  every shard and merge.  ``top`` is a k-way merge: because the shards
  partition the cells *disjointly*, every member of the global top-k
  is in its own shard's top-k, so merging the per-shard top-k lists by
  the cube's exact ordering — descending value, ties broken on the
  cell description — and cutting at k reproduces the unsharded ranking
  bit for bit.  Cell lists come back in canonical ``(depth,
  description)`` order.
* **Pivots** reuse :mod:`repro.report.pivot` with the router itself as
  the cube — the pivot needs only ``dictionary`` and ``value``, and
  each ``value`` routes to its owner — so sharded pivots equal
  unsharded ones by construction.
* **Trends** fan across dates: in ``date`` mode each shard *is* one
  date; in ``hash``/``attribute`` mode each shard is a timeline and
  the per-date values coalesce (a cell lives in exactly one shard, so
  at most one shard answers non-nan per date).

Every shard carries the full item vocabulary, so coordinate encoding
and ``describe`` work identically through any of them.
"""

from __future__ import annotations

import math
from dataclasses import replace
from pathlib import Path

from repro.cube.cell import CellStats
from repro.cube.coordinates import CellKey, encode_query
from repro.cube.explorer import Discovery
from repro.errors import SnapshotError
from repro.serve.service import Coordinates, CubeService
from repro.store.shards import (
    ShardsManifest,
    attribute_shard_of_key,
    hash_shard_of_key,
    is_sharded,
)


def open_service(
    source,
    mmap: bool = True,
    date: "int | None" = None,
) -> "CubeService | ShardedCubeService":
    """Open whatever serving source a path holds.

    A directory with a ``shards.json`` manifest opens as a
    :class:`ShardedCubeService`; anything else (live cube, snapshot
    directory, timeline directory) opens as a plain
    :class:`~repro.serve.service.CubeService`.  This is the single
    entry point the CLI and the HTTP tier share.
    """
    if isinstance(source, (str, Path)) and is_sharded(source):
        return ShardedCubeService(source, mmap=mmap, date=date)
    return CubeService(source, mmap=mmap, date=date)


class ShardedCubeService:
    """Query router over the shards of one logical cube."""

    def __init__(
        self,
        root: "str | Path",
        mmap: bool = True,
        date: "int | None" = None,
    ):
        self._root = Path(root)
        self._mmap = bool(mmap)
        self._manifest = ShardsManifest.read(self._root)
        self._date: "int | None" = None
        if self._manifest.sharded_by == "date":
            # One shard per date: open every dated snapshot, serve one.
            self._services = {
                entry.key: CubeService(self._root / entry.path, mmap=mmap)
                for entry in self._manifest.entries
            }
            dates = sorted(entry.date for entry in self._manifest.entries)
            self._date = int(date) if date is not None else dates[-1]
            if self._date not in dates:
                raise SnapshotError(
                    f"no shard for date {self._date} under {self._root} "
                    f"(have: {dates})"
                )
        else:
            self._services = {
                entry.key: CubeService(
                    self._root / entry.path, mmap=mmap, date=date
                )
                for entry in self._manifest.entries
            }
            self._date = self._point_service().date

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _point_service(self) -> CubeService:
        """The shard answering single-date scans (any shard in hash/
        attribute mode would do for vocabulary access; date mode picks
        the served date's shard)."""
        if self._manifest.sharded_by == "date":
            return self._services[str(self._date)]
        return next(iter(self._services.values()))

    def _owner_of(self, key: CellKey) -> "CubeService | None":
        """The one shard that owns a cell key (None: provably absent)."""
        sharded_by = self._manifest.sharded_by
        if sharded_by == "date":
            return self._services[str(self._date)]
        if sharded_by == "hash":
            shard_key = hash_shard_of_key(
                key[0], key[1], self._manifest.n_words,
                self._manifest.n_shards,
            )
        else:
            attribute = sharded_by.partition(":")[2]
            shard_key = attribute_shard_of_key(
                key[1], self.dictionary, attribute
            )
        # An attribute value never seen at write time has no shard:
        # the cell cannot be materialised anywhere.
        return self._services.get(shard_key)

    def _scan_services(self) -> "list[CubeService]":
        """Shards that participate in a single-date fan-out scan."""
        if self._manifest.sharded_by == "date":
            return [self._services[str(self._date)]]
        return list(self._services.values())

    # ------------------------------------------------------------------
    # Vocabulary / identity (any shard: all carry the full dictionary)
    # ------------------------------------------------------------------

    @property
    def root(self) -> Path:
        return self._root

    @property
    def sharded_by(self) -> str:
        return self._manifest.sharded_by

    @property
    def n_shards(self) -> int:
        return self._manifest.n_shards

    @property
    def shard_keys(self) -> "list[str]":
        return [entry.key for entry in self._manifest.entries]

    @property
    def dictionary(self):
        return self._point_service().dictionary

    @property
    def index_names(self) -> "list[str]":
        return self._point_service().index_names

    @property
    def date(self) -> "int | None":
        return self._date

    def describe(self, key: CellKey) -> str:
        return self._point_service().describe(key)

    def dates(self) -> "list[int]":
        if self._manifest.sharded_by == "date":
            return sorted(entry.date for entry in self._manifest.entries)
        return self._point_service().dates()

    def refreshed(self) -> "ShardedCubeService | None":
        """A fresh router when new data was published, else None.

        ``date`` mode re-reads ``shards.json`` (publishing a date adds
        an entry); timeline-sharded modes ask a shard whether its
        timeline grew.  Like
        :meth:`~repro.serve.service.CubeService.refreshed`, the
        existing instance is never mutated.
        """
        if self._manifest.sharded_by == "date":
            fresh_manifest = ShardsManifest.read(self._root)
            fresh_dates = sorted(e.date for e in fresh_manifest.entries)
            if not fresh_dates or fresh_dates[-1] == self._date:
                return None
            return ShardedCubeService(self._root, mmap=self._mmap)
        if self._point_service().refreshed() is None:
            return None
        return ShardedCubeService(self._root, mmap=self._mmap)

    # ------------------------------------------------------------------
    # Queries (the CubeService vocabulary, merged across shards)
    # ------------------------------------------------------------------

    def info(self) -> "dict[str, object]":
        """Aggregate headline numbers plus a per-shard breakdown."""
        infos = {key: svc.info() for key, svc in self._services.items()}
        first = next(iter(infos.values()))
        per_index = {
            name: sum(
                i["defined_cells_per_index"][name] for i in infos.values()
            )
            for name in first["defined_cells_per_index"]
        }
        out: "dict[str, object]" = {
            "sharded_by": self._manifest.sharded_by,
            "n_shards": self._manifest.n_shards,
            "cells": sum(i["cells"] for i in infos.values()),
            "context_only_cells": sum(
                i["context_only_cells"] for i in infos.values()
            ),
            "defined_cells_per_index": per_index,
            "mode": first["mode"],
            "min_population": first["min_population"],
            "min_minority": first["min_minority"],
            "build_seconds": first["build_seconds"],
            "backend": first["backend"],
            "index_names": first["index_names"],
            "n_rows": first["n_rows"],
            "n_units": first["n_units"],
            "shards": {
                key: {
                    k: v
                    for k, v in info.items()
                    if k in ("cells", "disk", "timeline")
                }
                for key, info in infos.items()
            },
        }
        dates = self.dates()
        if dates:
            out["timeline"] = {"dates": dates, "served_date": self._date}
        return out

    def top(
        self,
        index_name: str = "D",
        k: int = 10,
        min_minority: int = 0,
        min_population: int = 0,
        min_units: int = 2,
    ) -> "list[Discovery]":
        """Global top-k as a k-way merge of per-shard top-k lists."""
        merged: "list[Discovery]" = []
        for service in self._scan_services():
            merged.extend(service.top(
                index_name=index_name,
                k=k,
                min_minority=min_minority,
                min_population=min_population,
                min_units=min_units,
            ))
        # The cube's exact ordering: descending value, ties broken on
        # the description — then re-rank the global cut.
        merged.sort(key=lambda d: (-d.value, d.description))
        return [
            replace(found, rank=rank + 1)
            for rank, found in enumerate(merged[:k])
        ]

    def cell(self, sa: Coordinates = None, ca: Coordinates = None
             ) -> "CellStats | None":
        key = encode_query(self.dictionary, sa=sa, ca=ca)
        owner = self._owner_of(key)
        return owner.cell(sa=sa, ca=ca) if owner is not None else None

    def value(self, index_name: str, sa: Coordinates = None,
              ca: Coordinates = None) -> float:
        key = encode_query(self.dictionary, sa=sa, ca=ca)
        owner = self._owner_of(key)
        if owner is None:
            return float("nan")
        return owner.value(index_name, sa=sa, ca=ca)

    def value_by_key(self, index_name: str, key: CellKey) -> float:
        owner = self._owner_of(key)
        if owner is None:
            return float("nan")
        return owner.value_by_key(index_name, key)

    def _merged_cells(self, query) -> "list[CellStats]":
        merged: "list[CellStats]" = []
        for service in self._scan_services():
            merged.extend(query(service))
        merged.sort(key=lambda s: (s.depth(), self.describe(s.key)))
        return merged

    def slice(self, sa: Coordinates = None, ca: Coordinates = None
              ) -> "list[CellStats]":
        return self._merged_cells(lambda svc: svc.slice(sa=sa, ca=ca))

    def children(self, sa: Coordinates = None, ca: Coordinates = None
                 ) -> "list[CellStats]":
        # A child adds one item, which can move it to any shard (hash
        # changes; an added attribute value changes the shard value) —
        # so children always fan out, never prune.
        return self._merged_cells(lambda svc: svc.children(sa=sa, ca=ca))

    def parents(self, sa: Coordinates = None, ca: Coordinates = None
                ) -> "list[CellStats]":
        return self._merged_cells(lambda svc: svc.parents(sa=sa, ca=ca))

    def trend(
        self,
        index_name: str = "D",
        sa: Coordinates = None,
        ca: Coordinates = None,
    ) -> "list[tuple[int, float]]":
        if self._manifest.sharded_by == "date":
            return [
                (int(entry.date),
                 self._services[entry.key].value(index_name, sa=sa, ca=ca))
                for entry in sorted(
                    self._manifest.entries, key=lambda e: e.date
                )
            ]
        # Timeline-backed shards: coalesce per date.  The partition is
        # disjoint, so at most one shard answers non-nan per date.
        merged: "dict[int, float]" = {}
        for service in self._services.values():
            for date, value in service.trend(
                index_name=index_name, sa=sa, ca=ca
            ):
                current = merged.get(int(date))
                if current is None or (
                    math.isnan(current) and not math.isnan(value)
                ):
                    merged[int(date)] = value
        return sorted(merged.items())

    def pivot(
        self,
        index_name: str,
        row_attr: str,
        col_attr: str,
        fixed_sa: Coordinates = None,
        fixed_ca: Coordinates = None,
        digits: int = 2,
    ) -> str:
        from repro.report.pivot import pivot

        # The pivot reads only `dictionary` and `value`, both of which
        # this router provides with owner-shard routing.
        return pivot(
            self,
            index_name,
            row_attr,
            col_attr,
            fixed_sa=fixed_sa,
            fixed_ca=fixed_ca,
            digits=digits,
        )

    def pivot_values(
        self,
        index_name: str,
        row_attr: str,
        col_attr: str,
        fixed_sa: Coordinates = None,
        fixed_ca: Coordinates = None,
    ) -> "tuple[list[str], list[str], list[list[float]]]":
        from repro.report.pivot import pivot_values

        return pivot_values(
            self,
            index_name,
            row_attr,
            col_attr,
            fixed_sa=fixed_sa,
            fixed_ca=fixed_ca,
        )

    def __repr__(self) -> str:
        return (
            f"ShardedCubeService({str(self._root)!r}, "
            f"by={self._manifest.sharded_by!r}, "
            f"n_shards={self._manifest.n_shards})"
        )
