"""Query-parameter parsing shared by the serve CLI and the HTTP tier.

Both front ends accept coordinates as repeatable ``attribute=value``
strings (``--sa sex=F --sa age=young`` on the CLI,
``?sa=sex%3DF&sa=age%3Dyoung`` on the wire) and both must coerce the
string values to the vocabulary's exact item types before encoding a
query — ``n_boards=2`` must look up ``Item('n_boards', 2)``, not
``Item('n_boards', '2')``.  Keeping the parsing and coercion here, in
one place, is what makes the HTTP endpoints byte-identical to the
in-process service: there is no second, subtly different parser.
"""

from __future__ import annotations

from repro.itemsets.items import ItemDictionary


def parse_coordinate_pairs(
    pairs: "list[str] | None",
) -> "dict[str, object] | None":
    """``["a=x", "a=y", "b=z"]`` -> ``{"a": ["x", "y"], "b": "z"}``.

    A repeated attribute becomes a multi-valued containment constraint.
    Raises :class:`ValueError` on a pair without ``=`` or without an
    attribute name; the callers map that to their own bad-request
    surface (``SystemExit`` on the CLI, HTTP 400 on the wire).
    """
    if not pairs:
        return None
    out: "dict[str, object]" = {}
    for pair in pairs:
        attr, sep, value = pair.partition("=")
        if not sep or not attr:
            raise ValueError(
                f"bad coordinate {pair!r}: expected attribute=value"
            )
        if attr in out:  # repeated attribute -> multi-valued containment
            previous = out[attr]
            values = (
                list(previous) if isinstance(previous, list) else [previous]
            )
            values.append(value)
            out[attr] = values
        else:
            out[attr] = value
    return out


def typed_coordinates(
    dictionary: ItemDictionary, mapping: "dict[str, object] | None"
) -> "dict[str, object] | None":
    """Coerce string coordinate values to the vocabulary's exact types.

    ``encode_query`` matches items by exact (attribute, value) pairs,
    and vocabularies may hold int/bool/float values.  Values whose
    string rendering matches no vocabulary entry pass through unchanged
    (the unknown-coordinate error stays informative).
    """
    if mapping is None:
        return None
    typed: "dict[str, dict[str, object]]" = {}
    for item_id in range(len(dictionary)):
        item = dictionary.item(item_id)
        typed.setdefault(item.attribute, {})[str(item.value)] = item.value
    out: "dict[str, object]" = {}
    for attr, value in mapping.items():
        lookup = typed.get(attr, {})
        if isinstance(value, list):
            out[attr] = [lookup.get(v, v) for v in value]
        else:
            out[attr] = lookup.get(value, value)
    return out
