"""Synthetic Italian boards-of-directors dataset.

Substitutes the proprietary 2012 registry snapshot the paper demos on
(3.6M directors, 2.15M companies).  The generator reproduces, at a
configurable scale, the structural features the SCube pipeline exercises:

* companies with sector and province/region context attributes, sampled
  from calibrated weights (:mod:`repro.data.vocab`);
* directors with gender, age and birthplace SA attributes plus a
  residence CA attribute;
* board memberships with *interlocks*: a fraction of seats are filled by
  directors already active in the same province, producing the
  shared-director edges the bipartite projection and graph clustering
  feed on;
* planted occupational gender segregation: the probability that a seat
  is held by a woman depends on the company sector and region
  (construction-like sectors male-dominated, education/health mixed,
  a north/south gradient), so scenario 1 re-discovers the paper's
  qualitative findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data import vocab
from repro.errors import ReproError
from repro.etl.schema import Schema
from repro.etl.table import Table
from repro.etl.temporal import TemporalMembership
from repro.graph.bipartite import BipartiteGraph


@dataclass
class ItalyConfig:
    """Knobs of the Italian generator."""

    n_companies: int = 3000
    seed: int = 7
    #: Mean extra board seats beyond the first (Poisson).
    board_extra_mean: float = 1.6
    #: Probability that a seat is filled by an existing same-province
    #: director (interlock rate).
    reuse_probability: float = 0.30
    #: Global scale on the per-sector female rates.
    female_scale: float = 1.0
    #: Probability that a director resides in the company's region.
    local_residence: float = 0.85


@dataclass
class BoardsDataset:
    """A generated boards dataset (shared by the Italy/Estonia generators)."""

    individuals: Table
    individuals_schema: Schema
    groups: Table
    groups_schema: Schema
    membership: TemporalMembership
    name: str = "boards"
    extra: dict = field(default_factory=dict)

    @property
    def n_individuals(self) -> int:
        return len(self.individuals)

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    def bipartite(self, date: "int | None" = None) -> BipartiteGraph:
        """The individuals×groups bipartite graph at ``date``."""
        return BipartiteGraph.from_edges(
            self.n_individuals, self.n_groups, self.membership.snapshot(date)
        )


def _sample_weighted(rng: np.random.Generator, values: "list[str]",
                     weights: "dict[str, float]", size: int) -> "list[str]":
    probs = np.array([weights[v] for v in values], dtype=float)
    probs /= probs.sum()
    picks = rng.choice(len(values), size=size, p=probs)
    return [values[i] for i in picks]


def _age_bin(age: float) -> str:
    if age < 39:
        return "15-38"
    if age < 47:
        return "39-46"
    if age < 55:
        return "47-54"
    if age < 66:
        return "55-65"
    return "66+"


def generate_italy(config: "ItalyConfig | None" = None) -> BoardsDataset:
    """Generate the synthetic Italian boards dataset."""
    config = config or ItalyConfig()
    if config.n_companies < 1:
        raise ReproError("n_companies must be positive")
    rng = np.random.default_rng(config.seed)

    provinces = [p for p, _ in vocab.PROVINCES]
    company_sectors = _sample_weighted(
        rng, list(vocab.SECTORS), vocab.SECTOR_WEIGHTS, config.n_companies
    )
    company_provinces = _sample_weighted(
        rng, provinces, vocab.PROVINCE_WEIGHTS, config.n_companies
    )
    company_regions = [vocab.province_region(p) for p in company_provinces]
    board_sizes = 1 + rng.poisson(config.board_extra_mean, config.n_companies)

    # Director state, grown while filling boards.
    genders: list[str] = []
    ages: list[str] = []
    birthplaces: list[str] = []
    residences: list[str] = []
    pools: dict[str, list[int]] = {p: [] for p in provinces}
    membership: list[tuple[int, int]] = []

    birthplace_values = list(vocab.BIRTHPLACES)
    birthplace_probs = np.array(
        [vocab.BIRTHPLACE_WEIGHTS[b] for b in birthplace_values], dtype=float
    )
    birthplace_probs /= birthplace_probs.sum()

    for company in range(config.n_companies):
        sector = company_sectors[company]
        province = company_provinces[company]
        region = company_regions[company]
        female_rate = min(
            0.95,
            vocab.SECTOR_FEMALE_RATE[sector]
            * vocab.REGION_FEMALE_MULTIPLIER[region]
            * config.female_scale,
        )
        seated: set[int] = set()
        for _ in range(int(board_sizes[company])):
            pool = pools[province]
            reuse = pool and rng.random() < config.reuse_probability
            if reuse:
                director = int(pool[int(rng.integers(0, len(pool)))])
                if director in seated:
                    continue
            else:
                director = len(genders)
                genders.append("F" if rng.random() < female_rate else "M")
                ages.append(_age_bin(float(rng.normal(52.0, 11.0))))
                if rng.random() < 0.7 and region in birthplace_values:
                    birthplaces.append(region)
                else:
                    birthplaces.append(
                        birthplace_values[
                            int(rng.choice(len(birthplace_values),
                                           p=birthplace_probs))
                        ]
                    )
                if rng.random() < config.local_residence:
                    residences.append(region)
                else:
                    residences.append(
                        vocab.REGIONS[int(rng.integers(0, len(vocab.REGIONS)))]
                    )
                pool.append(director)
            seated.add(director)
            membership.append((director, company))

    n_directors = len(genders)
    individuals = Table.from_dict(
        {
            "directorID": list(range(n_directors)),
            "gender": genders,
            "age": ages,
            "birthplace": birthplaces,
            "residence": residences,
        }
    )
    individuals_schema = Schema.build(
        segregation=["gender", "age", "birthplace"],
        context=["residence"],
        id_="directorID",
    )
    groups = Table.from_dict(
        {
            "companyID": list(range(config.n_companies)),
            "sector": company_sectors,
            "province": company_provinces,
            "region": company_regions,
        }
    )
    groups_schema = Schema.build(
        context=["sector", "province", "region"], id_="companyID"
    )
    return BoardsDataset(
        individuals=individuals,
        individuals_schema=individuals_schema,
        groups=groups,
        groups_schema=groups_schema,
        membership=TemporalMembership.from_pairs(membership),
        name="italy-synthetic",
        extra={"config": config},
    )


def italy_tabular_individuals(dataset: BoardsDataset) -> tuple[Table, Schema]:
    """Scenario-1 input: one row per board seat with the company context.

    Joins each membership pair with the director's SA attributes and the
    company's sector/province/region; the caller picks which context
    attribute serves as ``unitID`` (the demo uses the sector).
    """
    pairs = dataset.membership.snapshot()
    director_rows = np.asarray([d for d, _ in pairs], dtype=np.int64)
    company_rows = np.asarray([c for _, c in pairs], dtype=np.int64)
    ind, grp = dataset.individuals, dataset.groups
    table = Table.from_dict(
        {
            "gender": [ind.categorical("gender")[int(i)] for i in director_rows],
            "age": [ind.categorical("age")[int(i)] for i in director_rows],
            "birthplace": [
                ind.categorical("birthplace")[int(i)] for i in director_rows
            ],
            "residence": [
                ind.categorical("residence")[int(i)] for i in director_rows
            ],
            "sector": [grp.categorical("sector")[int(c)] for c in company_rows],
            "province": [
                grp.categorical("province")[int(c)] for c in company_rows
            ],
            "region": [grp.categorical("region")[int(c)] for c in company_rows],
        }
    )
    schema = Schema.build(
        segregation=["gender", "age", "birthplace"],
        context=["residence", "sector", "province", "region"],
    )
    return table, schema
