"""Dataset generators: synthetic substitutes for the paper's case studies.

The paper demos on proprietary registries of Italian and Estonian
company boards; these generators produce seeded synthetic datasets with
the same schema, bipartite structure, interlocks and planted
occupational segregation (see DESIGN.md §2 for the substitution
rationale), plus planted-ground-truth tables used for end-to-end
verification.
"""

from repro.data import vocab
from repro.data.estonia import (
    EstoniaConfig,
    estonia_snapshot_table,
    generate_estonia,
)
from repro.data.italy import (
    BoardsDataset,
    ItalyConfig,
    generate_italy,
    italy_tabular_individuals,
)
from repro.data.schools import SchoolsConfig, generate_schools
from repro.data.synthetic import (
    PlantedDataset,
    checkerboard_table,
    planted_counts,
    planted_table,
    random_bipartite_world,
    random_final_table,
    uniform_table,
    write_random_final_table_csv,
)

__all__ = [
    "BoardsDataset",
    "EstoniaConfig",
    "ItalyConfig",
    "PlantedDataset",
    "SchoolsConfig",
    "checkerboard_table",
    "estonia_snapshot_table",
    "generate_estonia",
    "generate_italy",
    "generate_schools",
    "italy_tabular_individuals",
    "planted_counts",
    "planted_table",
    "random_bipartite_world",
    "random_final_table",
    "uniform_table",
    "vocab",
    "write_random_final_table_csv",
]
