"""Synthetic Estonian boards dataset with temporal membership.

Substitutes the paper's 20-year Estonian registry (440K directors, 340K
companies).  Beyond the Italian generator's structure, memberships carry
validity intervals over ``[start_year, end_year)`` and the planted
gender mix *drifts*: the female board-seat share rises over the years
while the sector bias softens, so the temporal benchmark (E9) shows the
declining segregation trend such registries exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data import vocab
from repro.data.italy import BoardsDataset, _age_bin, _sample_weighted
from repro.errors import ReproError
from repro.etl.schema import Schema
from repro.etl.table import Table
from repro.etl.temporal import Interval, MembershipEdge, TemporalMembership


@dataclass
class EstoniaConfig:
    """Knobs of the Estonian temporal generator."""

    n_companies: int = 2500
    seed: int = 11
    first_year: int = 1995
    last_year: int = 2015
    board_extra_mean: float = 1.2
    reuse_probability: float = 0.25
    #: Female share of new seats in the first and last year (linear drift).
    female_rate_start: float = 0.18
    female_rate_end: float = 0.35
    #: Strength of the sector bias in the first and last year: 1 keeps the
    #: full per-sector spread, 0 flattens all sectors to the base rate.
    bias_start: float = 1.0
    bias_end: float = 0.45
    #: Mean membership duration in years (geometric).
    mean_duration: float = 6.0


def _female_rate(config: EstoniaConfig, sector: str, year: int) -> float:
    """Planted probability that a seat created in ``year`` is female."""
    span = max(1, config.last_year - config.first_year)
    progress = (year - config.first_year) / span
    base = (
        config.female_rate_start
        + (config.female_rate_end - config.female_rate_start) * progress
    )
    bias = config.bias_start + (config.bias_end - config.bias_start) * progress
    sector_offset = (
        vocab.SECTOR_FEMALE_RATE[sector]
        - float(np.mean(list(vocab.SECTOR_FEMALE_RATE.values())))
    )
    return float(min(0.95, max(0.02, base + bias * sector_offset)))


def generate_estonia(config: "EstoniaConfig | None" = None) -> BoardsDataset:
    """Generate the synthetic Estonian temporal boards dataset."""
    config = config or EstoniaConfig()
    if config.last_year <= config.first_year:
        raise ReproError("last_year must exceed first_year")
    rng = np.random.default_rng(config.seed)

    counties = list(vocab.ESTONIAN_COUNTIES)
    county_weights = {c: 1.0 for c in counties}
    county_weights["Harju"] = 8.0   # Tallinn
    county_weights["Tartu"] = 3.0

    sectors = _sample_weighted(
        rng, list(vocab.SECTORS), vocab.SECTOR_WEIGHTS, config.n_companies
    )
    company_counties = _sample_weighted(
        rng, counties, county_weights, config.n_companies
    )
    founded = rng.integers(
        config.first_year, config.last_year, config.n_companies
    )
    board_sizes = 1 + rng.poisson(config.board_extra_mean, config.n_companies)

    genders: list[str] = []
    ages: list[str] = []
    birthplaces: list[str] = []
    pools: dict[str, list[int]] = {c: [] for c in counties}
    edges: list[MembershipEdge] = []

    for company in range(config.n_companies):
        sector = sectors[company]
        county = company_counties[company]
        start_year = int(founded[company])
        seated: set[int] = set()
        for _ in range(int(board_sizes[company])):
            pool = pools[county]
            reuse = pool and rng.random() < config.reuse_probability
            if reuse:
                director = int(pool[int(rng.integers(0, len(pool)))])
                if director in seated:
                    continue
            else:
                director = len(genders)
                rate = _female_rate(config, sector, start_year)
                genders.append("F" if rng.random() < rate else "M")
                ages.append(_age_bin(float(rng.normal(47.0, 12.0))))
                birthplaces.append(
                    county if rng.random() < 0.8 else "foreign"
                )
                pool.append(director)
            seated.add(director)
            begin = start_year + int(rng.integers(0, 3))
            duration = 1 + int(rng.geometric(1.0 / config.mean_duration))
            end = begin + duration
            if begin >= config.last_year:
                begin = config.last_year - 1
            if end > config.last_year + 5:
                end = config.last_year + 5
            edges.append(
                MembershipEdge(director, company, Interval(begin, end))
            )

    n_directors = len(genders)
    individuals = Table.from_dict(
        {
            "directorID": list(range(n_directors)),
            "gender": genders,
            "age": ages,
            "birthplace": birthplaces,
        }
    )
    individuals_schema = Schema.build(
        segregation=["gender", "age", "birthplace"], id_="directorID"
    )
    groups = Table.from_dict(
        {
            "companyID": list(range(config.n_companies)),
            "sector": sectors,
            "county": company_counties,
        }
    )
    groups_schema = Schema.build(context=["sector", "county"], id_="companyID")
    return BoardsDataset(
        individuals=individuals,
        individuals_schema=individuals_schema,
        groups=groups,
        groups_schema=groups_schema,
        membership=TemporalMembership(edges),
        name="estonia-synthetic",
        extra={"config": config},
    )


def estonia_snapshot_table(
    dataset: BoardsDataset, year: int
) -> tuple[Table, Schema]:
    """Scenario-1-style seat table for one snapshot year (sector = unit).

    One row per membership valid in ``year``: director SA attributes plus
    the company's sector (unit) and county (context).
    """
    pairs = dataset.membership.snapshot(year)
    if not pairs:
        raise ReproError(f"no membership is valid in year {year}")
    ind, grp = dataset.individuals, dataset.groups
    table = Table.from_dict(
        {
            "gender": [ind.categorical("gender")[d] for d, _ in pairs],
            "age": [ind.categorical("age")[d] for d, _ in pairs],
            "county": [grp.categorical("county")[c] for _, c in pairs],
            "sector": [grp.categorical("sector")[c] for _, c in pairs],
        }
    )
    schema = Schema.build(
        segregation=["gender", "age"],
        context=["county", "sector"],
    )
    return table, schema
