"""Vocabularies for the synthetic case-study generators.

Sector and province lists mirror the paper's Italian case study (20
company sectors — Fig. 5 bottom — and province-level geography — Fig. 3
right); Estonian counties cover the second case study.  Per-sector
female shares are calibrated to published board-composition aggregates
(strongly male construction/mining, mixed education/health), which is
what lets the synthetic data reproduce the *shape* of the paper's
occupational-segregation findings.
"""

from __future__ import annotations

#: The 20 company sectors (NACE-like top-level activities).
SECTORS: tuple[str, ...] = (
    "agriculture",
    "mining",
    "manufacturing",
    "electricity",
    "water",
    "construction",
    "trade",
    "transports",
    "hospitality",
    "information",
    "finance",
    "real_estate",
    "professional",
    "administrative",
    "public_admin",
    "education",
    "health",
    "arts",
    "other_services",
    "domestic",
)

#: Relative frequency of companies per sector (heavier trade/construction).
SECTOR_WEIGHTS: dict[str, float] = {
    "agriculture": 4.0,
    "mining": 0.5,
    "manufacturing": 10.0,
    "electricity": 1.0,
    "water": 0.8,
    "construction": 12.0,
    "trade": 22.0,
    "transports": 5.0,
    "hospitality": 8.0,
    "information": 3.5,
    "finance": 3.0,
    "real_estate": 6.0,
    "professional": 9.0,
    "administrative": 4.0,
    "public_admin": 0.6,
    "education": 1.6,
    "health": 3.0,
    "arts": 2.0,
    "other_services": 3.5,
    "domestic": 0.5,
}

#: Planted probability that a board seat in the sector is held by a woman.
#: Calibrated to the qualitative pattern of Italian boards (overall ~23%).
SECTOR_FEMALE_RATE: dict[str, float] = {
    "agriculture": 0.20,
    "mining": 0.10,
    "manufacturing": 0.17,
    "electricity": 0.14,
    "water": 0.15,
    "construction": 0.09,
    "trade": 0.26,
    "transports": 0.13,
    "hospitality": 0.33,
    "information": 0.21,
    "finance": 0.22,
    "real_estate": 0.27,
    "professional": 0.30,
    "administrative": 0.28,
    "public_admin": 0.24,
    "education": 0.48,
    "health": 0.44,
    "arts": 0.35,
    "other_services": 0.38,
    "domestic": 0.55,
}

#: (province, region) pairs for the Italian geography.
PROVINCES: tuple[tuple[str, str], ...] = (
    ("Torino", "north"),
    ("Milano", "north"),
    ("Genova", "north"),
    ("Venezia", "north"),
    ("Bologna", "north"),
    ("Trieste", "north"),
    ("Brescia", "north"),
    ("Firenze", "centre"),
    ("Roma", "centre"),
    ("Perugia", "centre"),
    ("Ancona", "centre"),
    ("Pisa", "centre"),
    ("Napoli", "south"),
    ("Bari", "south"),
    ("Palermo", "south"),
    ("Catania", "south"),
    ("Cagliari", "south"),
    ("Potenza", "south"),
    ("Campobasso", "south"),
    ("Reggio Calabria", "south"),
)

#: Relative company mass per province (northern industrial tilt).
PROVINCE_WEIGHTS: dict[str, float] = {
    "Torino": 8.0,
    "Milano": 16.0,
    "Genova": 4.0,
    "Venezia": 5.0,
    "Bologna": 6.0,
    "Trieste": 2.0,
    "Brescia": 5.0,
    "Firenze": 5.0,
    "Roma": 14.0,
    "Perugia": 2.0,
    "Ancona": 2.0,
    "Pisa": 2.0,
    "Napoli": 8.0,
    "Bari": 5.0,
    "Palermo": 4.0,
    "Catania": 3.0,
    "Cagliari": 2.0,
    "Potenza": 1.0,
    "Campobasso": 1.0,
    "Reggio Calabria": 2.0,
}

#: Region-level multiplier on the female board-seat rate (plants the
#: north/south gradient visible in the paper's province map, Fig. 3).
REGION_FEMALE_MULTIPLIER: dict[str, float] = {
    "north": 1.10,
    "centre": 1.00,
    "south": 0.75,
}

REGIONS: tuple[str, ...] = ("north", "centre", "south")

#: Birthplace categories used as an SA attribute in the case studies.
BIRTHPLACES: tuple[str, ...] = ("north", "centre", "south", "foreign")

BIRTHPLACE_WEIGHTS: dict[str, float] = {
    "north": 42.0,
    "centre": 22.0,
    "south": 30.0,
    "foreign": 6.0,
}

GENDERS: tuple[str, ...] = ("M", "F")

#: Estonian counties for the temporal case study.
ESTONIAN_COUNTIES: tuple[str, ...] = (
    "Harju",
    "Tartu",
    "Ida-Viru",
    "Parnu",
    "Laane-Viru",
    "Viljandi",
    "Rapla",
    "Voru",
    "Saare",
    "Jogeva",
    "Jarva",
    "Valga",
    "Polva",
    "Laane",
    "Hiiu",
)


def province_region(province: str) -> str:
    """Region of an Italian province; raises KeyError for unknown names."""
    mapping = dict(PROVINCES)
    return mapping[province]
