"""Synthetic data with planted, analytically-known segregation.

The pipeline-validation workhorse: tables are constructed so that the
exact per-unit counts — and therefore every index value — are known by
construction, letting tests assert end-to-end equality rather than
statistical closeness.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.etl.csvio import SET_SEPARATOR
from repro.etl.schema import Schema
from repro.etl.table import Table
from repro.indexes.counts import UnitCounts


@dataclass(frozen=True)
class PlantedDataset:
    """A table whose segregation statistics are exact by construction."""

    table: Table
    schema: Schema
    counts: UnitCounts


def planted_counts(
    unit_sizes: "list[int]", minority_shares: "list[float]"
) -> UnitCounts:
    """Exact per-unit counts from sizes and minority shares (rounded)."""
    if len(unit_sizes) != len(minority_shares):
        raise ReproError("unit_sizes and minority_shares differ in length")
    t = np.asarray(unit_sizes, dtype=np.int64)
    m = np.minimum(t, np.round(t * np.asarray(minority_shares)).astype(np.int64))
    return UnitCounts(t, m)


def planted_table(
    unit_sizes: "list[int]",
    minority_shares: "list[float]",
    minority_value: str = "F",
    majority_value: str = "M",
    attribute: str = "gender",
) -> PlantedDataset:
    """Deterministic table realising exactly the given per-unit counts.

    The table has one SA attribute and the unit column; its cube's global
    cell ``(attribute=minority_value | *)`` reproduces the planted index
    values exactly.
    """
    counts = planted_counts(unit_sizes, minority_shares)
    rows = []
    for unit, (t, m) in enumerate(zip(counts.t, counts.m)):
        rows.extend([(minority_value, unit)] * int(m))
        rows.extend([(majority_value, unit)] * int(t - m))
    table = Table.from_rows([attribute, "unitID"], rows)
    schema = Schema.build(segregation=[attribute], unit="unitID")
    return PlantedDataset(table, schema, counts)


def checkerboard_table(
    n_units: int, unit_size: int, attribute: str = "gender"
) -> PlantedDataset:
    """Complete segregation: units alternate all-minority / all-majority.

    Dissimilarity, Gini, Information and Atkinson all equal 1 exactly
    (with an even number of units), Isolation is 1 and Interaction 0.
    """
    if n_units < 2 or n_units % 2:
        raise ReproError("checkerboard needs an even n_units >= 2")
    shares = [1.0 if i % 2 == 0 else 0.0 for i in range(n_units)]
    return planted_table([unit_size] * n_units, shares, attribute=attribute)


def uniform_table(
    n_units: int, unit_size: int, share: float = 0.3, attribute: str = "gender"
) -> PlantedDataset:
    """No segregation: every unit has the same minority share.

    All evenness indexes (D, G, H, A) equal 0 exactly when
    ``share * unit_size`` is integral.
    """
    if not 0 < share < 1:
        raise ReproError("share must be in (0, 1)")
    if abs(share * unit_size - round(share * unit_size)) > 1e-9:
        raise ReproError(
            f"share*unit_size = {share * unit_size} must be integral for an "
            "exactly uniform table"
        )
    return planted_table([unit_size] * n_units, [share] * n_units,
                         attribute=attribute)


def random_final_table(
    n_rows: int,
    n_units: int,
    sa_attributes: "dict[str, int] | None" = None,
    ca_attributes: "dict[str, int] | None" = None,
    multi_valued_ca: "dict[str, int] | None" = None,
    seed: int = 0,
    skew: float = 0.0,
) -> tuple[Table, Schema]:
    """A random ``finalTable`` for property tests and scaling benchmarks.

    ``sa_attributes`` / ``ca_attributes`` map attribute names to their
    cardinality; ``multi_valued_ca`` attributes draw 0-3 values per row.
    ``skew`` > 0 draws values from a geometric-like distribution (value
    ``k`` with probability proportional to ``(1+skew)^-k``), making most
    attribute values rare — the shape of real categorical data, and what
    support-based pruning feeds on.
    """
    if n_rows < 1 or n_units < 1:
        raise ReproError("n_rows and n_units must be positive")
    if skew < 0:
        raise ReproError("skew must be non-negative")
    rng = np.random.default_rng(seed)
    sa_attributes = sa_attributes or {"gender": 2, "age": 3}
    ca_attributes = ca_attributes or {"region": 3}
    multi_valued_ca = multi_valued_ca or {}

    def draw(cardinality: int) -> np.ndarray:
        if skew == 0:
            return rng.integers(0, cardinality, n_rows)
        probs = (1.0 + skew) ** -np.arange(cardinality, dtype=float)
        probs /= probs.sum()
        return rng.choice(cardinality, size=n_rows, p=probs)

    data: dict[str, list] = {}
    for attr, cardinality in sa_attributes.items():
        values = [f"{attr}{k}" for k in range(cardinality)]
        data[attr] = [values[i] for i in draw(cardinality)]
    for attr, cardinality in ca_attributes.items():
        values = [f"{attr}{k}" for k in range(cardinality)]
        data[attr] = [values[i] for i in draw(cardinality)]
    for attr, cardinality in multi_valued_ca.items():
        values = [f"{attr}{k}" for k in range(cardinality)]
        column = []
        for _ in range(n_rows):
            size = int(rng.integers(0, min(3, cardinality) + 1))
            column.append(frozenset(
                rng.choice(values, size=size, replace=False).tolist()
            ))
        data[attr] = column
    data["unitID"] = [int(u) for u in rng.integers(0, n_units, n_rows)]
    table = Table.from_dict(data)
    schema = Schema.build(
        segregation=list(sa_attributes),
        context=list(ca_attributes) + list(multi_valued_ca),
        unit="unitID",
        multi_valued=list(multi_valued_ca),
    )
    return table, schema


def write_random_final_table_csv(
    path,
    n_rows: int,
    n_units: int = 1000,
    sa_attributes: "dict[str, int] | None" = None,
    ca_attributes: "dict[str, int] | None" = None,
    multi_valued_ca: "dict[str, int] | None" = None,
    seed: int = 0,
    skew: float = 0.0,
    chunk_rows: int = 65536,
    delimiter: str = ",",
) -> Schema:
    """Write a random ``finalTable`` CSV of any size without building it.

    The out-of-core sibling of :func:`random_final_table`: the same
    value scheme (``f"{attr}{k}"`` labels, geometric skew, 0-3 values
    per multi-valued cell, integer ``unitID``), but rows are generated
    and written ``chunk_rows`` at a time, so peak memory is one chunk
    regardless of ``n_rows`` — this is what benchmark E21 uses to
    produce its 10M-row input.  Deterministic per ``seed``, though the
    row stream differs from ``random_final_table``'s (values are drawn
    chunk by chunk, not column by column over the whole table).

    Returns the matching :class:`~repro.etl.schema.Schema`; read the
    file back with :func:`repro.etl.stream.stream_csv`.
    """
    if n_rows < 1 or n_units < 1:
        raise ReproError("n_rows and n_units must be positive")
    if skew < 0:
        raise ReproError("skew must be non-negative")
    if chunk_rows < 1:
        raise ReproError("chunk_rows must be positive")
    rng = np.random.default_rng(seed)
    sa_attributes = sa_attributes or {"gender": 2, "age": 3}
    ca_attributes = ca_attributes or {"region": 3}
    multi_valued_ca = multi_valued_ca or {}
    header = (
        list(sa_attributes) + list(ca_attributes) + list(multi_valued_ca)
        + ["unitID"]
    )

    def draw(cardinality: int, n: int) -> np.ndarray:
        if skew == 0:
            return rng.integers(0, cardinality, n)
        probs = (1.0 + skew) ** -np.arange(cardinality, dtype=float)
        probs /= probs.sum()
        return rng.choice(cardinality, size=n, p=probs)

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as f:
        writer = csv.writer(f, delimiter=delimiter)
        writer.writerow(header)
        written = 0
        while written < n_rows:
            n = min(chunk_rows, n_rows - written)
            columns: "list[list[str]]" = []
            for attr, cardinality in {**sa_attributes,
                                      **ca_attributes}.items():
                values = [f"{attr}{k}" for k in range(cardinality)]
                columns.append([values[i] for i in draw(cardinality, n)])
            for attr, cardinality in multi_valued_ca.items():
                values = [f"{attr}{k}" for k in range(cardinality)]
                max_size = min(3, cardinality)
                sizes = rng.integers(0, max_size + 1, n)
                # One random permutation per row (argsorted uniforms);
                # the first `size` entries are the row's value set — no
                # per-row rng calls.
                order = np.argsort(rng.random((n, cardinality)), axis=1)
                columns.append([
                    SET_SEPARATOR.join(
                        sorted(values[j] for j in row[:size])
                    )
                    for row, size in zip(order, sizes)
                ])
            columns.append(
                [str(u) for u in rng.integers(0, n_units, n)]
            )
            writer.writerows(zip(*columns))
            written += n
    return Schema.build(
        segregation=list(sa_attributes),
        context=list(ca_attributes) + list(multi_valued_ca),
        unit="unitID",
        multi_valued=list(multi_valued_ca),
    )


def random_bipartite_world(
    n_left: int,
    n_right: int,
    mean_extra_degree: float = 1.2,
    group_exponent: float = 1.1,
    attributes: "dict[str, int] | None" = None,
    attribute_skew: float = 0.5,
    seed: int = 0,
):
    """A scalable individuals×groups membership world for graph workloads.

    The shape mimics board-membership registries: every individual sits
    on ``1 + Poisson(mean_extra_degree)`` boards, and board popularity is
    power-law distributed (group ``r`` is drawn with probability
    proportional to ``1 / (r+1)**group_exponent``), so a few boards are
    huge hubs and most are tiny — the regime the projection's hub guard
    and degree-bucketed pair enumeration are built for.  Groups carry
    categorical attributes (``{name: cardinality}``, default
    ``{"sector": 12, "region": 8}``) whose values are geometrically
    skewed (value ``k`` with probability proportional to
    ``attribute_skew ** k``), giving SToC meaningfully similar
    neighbours.

    Deterministic per ``seed``.  Returns ``(bipartite, attributes)``:
    a :class:`~repro.graph.bipartite.BipartiteGraph` (duplicate draws
    deduplicated) and a
    :class:`~repro.graph.attributes.NodeAttributeTable` over the right
    (group) nodes.  This is the world benchmark E22 and the graph
    parity tests run on.
    """
    from repro.graph.attributes import NodeAttributeTable
    from repro.graph.bipartite import BipartiteGraph

    if n_left < 1 or n_right < 1:
        raise ReproError("n_left and n_right must be positive")
    if mean_extra_degree < 0:
        raise ReproError("mean_extra_degree must be non-negative")
    if not 0 < attribute_skew <= 1:
        raise ReproError("attribute_skew must be in (0, 1]")
    rng = np.random.default_rng(seed)
    degrees = 1 + rng.poisson(mean_extra_degree, n_left)
    np.clip(degrees, 1, n_right, out=degrees)
    probs = 1.0 / np.arange(1, n_right + 1, dtype=float) ** group_exponent
    probs /= probs.sum()
    lefts = np.repeat(np.arange(n_left, dtype=np.int64), degrees)
    rights = rng.choice(n_right, size=len(lefts), p=probs)
    bipartite = BipartiteGraph.from_arrays(n_left, n_right, lefts, rights)

    attributes = attributes if attributes is not None \
        else {"sector": 12, "region": 8}
    columns: "dict[str, list[str]]" = {}
    for name, cardinality in attributes.items():
        if cardinality < 1:
            raise ReproError(f"attribute {name!r} needs cardinality >= 1")
        weights = attribute_skew ** np.arange(cardinality, dtype=float)
        weights /= weights.sum()
        codes = rng.choice(cardinality, size=n_right, p=weights)
        columns[name] = [f"{name}{k}" for k in codes]
    table = NodeAttributeTable.from_columns(n_right, columns)
    return bipartite, table


def random_temporal_final_table(
    n_rows: int,
    n_units: int,
    dates: "tuple[int, ...]" = (0, 1, 2),
    sa_attributes: "dict[str, int] | None" = None,
    ca_attributes: "dict[str, int] | None" = None,
    multi_valued_ca: "dict[str, int] | None" = None,
    seed: int = 0,
    skew: float = 0.0,
    max_churn: float = 0.05,
) -> "tuple[Table, Schema, np.ndarray, np.ndarray]":
    """A random ``finalTable`` with per-row validity intervals.

    Built on :func:`random_final_table`; additionally every row gets a
    half-open validity interval over ``dates`` so the table can be
    snapshotted per date (the temporal workload).  Churn is **localized
    the way real registries churn**: only rows whose context is the
    first value of every single-valued CA attribute (and whose
    multi-valued CA sets are empty) ever start or end between dates —
    think "board turnover concentrated in one county's dominant sector".
    All other rows are valid throughout, so most contexts are provably
    untouched between consecutive dates, which is the workload the
    incremental cube fill exploits (benchmark E19).

    Per consecutive date pair, at most ``max_churn * n_rows`` rows
    change validity (half leaving, half joining), bounded also by the
    size of the churn-eligible pool.

    Returns ``(table, schema, starts, ends)`` with sentinel-encoded
    open bounds (see :mod:`repro.etl.diff`), row-aligned with the table.
    """
    from repro.etl.diff import OPEN_END, OPEN_START

    if len(dates) < 2:
        raise ReproError("temporal table needs at least two dates")
    if sorted(dates) != list(dates) or len(set(dates)) != len(dates):
        raise ReproError("dates must be strictly increasing")
    if not 0 < max_churn <= 1:
        raise ReproError("max_churn must be in (0, 1]")
    ca_attributes = ca_attributes or {"region": 3}
    multi_valued_ca = multi_valued_ca or {}
    table, schema = random_final_table(
        n_rows=n_rows,
        n_units=n_units,
        sa_attributes=sa_attributes,
        ca_attributes=ca_attributes,
        multi_valued_ca=multi_valued_ca,
        seed=seed,
        skew=skew,
    )
    pool_mask = np.ones(n_rows, dtype=bool)
    for name in ca_attributes:
        pool_mask &= table.categorical(name).mask_eq(f"{name}0")
    for name in multi_valued_ca:
        pool_mask &= np.fromiter(
            (len(v) == 0 for v in table.multivalued(name).values()),
            dtype=bool, count=n_rows,
        )

    rng = np.random.default_rng(seed + 1)
    pool = rng.permutation(np.flatnonzero(pool_mask))
    starts = np.full(n_rows, OPEN_START, dtype=np.int64)
    ends = np.full(n_rows, OPEN_END, dtype=np.int64)
    n_steps = len(dates) - 1
    per_kind = min(
        int(max_churn * n_rows) // 2 or 1, len(pool) // (2 * n_steps)
    )
    cursor = 0
    for step in range(1, len(dates)):
        leavers = pool[cursor:cursor + per_kind]
        cursor += per_kind
        joiners = pool[cursor:cursor + per_kind]
        cursor += per_kind
        ends[leavers] = dates[step]
        starts[joiners] = dates[step]
    return table, schema, starts, ends
