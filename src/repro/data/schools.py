"""A small census-style schools dataset for the quickstart.

Two cities, each with a handful of schools: city "Rivertown" is built
segregated (minority students concentrated in two schools), city
"Lakeside" integrated (even shares everywhere).  Small enough to eyeball,
deterministic given the seed, and shaped like the classical school
segregation studies the index literature comes from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.etl.schema import Schema
from repro.etl.table import Table


@dataclass(frozen=True)
class SchoolsConfig:
    """Knobs of the schools generator."""

    students_per_school: int = 120
    schools_per_city: int = 6
    seed: int = 3
    minority_share: float = 0.3


def generate_schools(config: "SchoolsConfig | None" = None
                     ) -> tuple[Table, Schema]:
    """Generate the two-city schools table.

    Returns a table with SA attributes ``ethnicity`` and ``sex``, the CA
    attribute ``city`` and the ``school`` unit column, plus its schema.
    """
    config = config or SchoolsConfig()
    rng = np.random.default_rng(config.seed)
    n_schools = config.schools_per_city
    share = config.minority_share

    # Rivertown: minority concentrated in the first two schools.
    concentrated = [0.0] * n_schools
    concentrated[0] = min(0.95, share * n_schools / 2)
    concentrated[1] = min(0.95, share * n_schools / 2)
    # Lakeside: even shares.
    even = [share] * n_schools

    ethnicity: list[str] = []
    sex: list[str] = []
    city: list[str] = []
    school: list[int] = []
    school_id = 0
    for city_name, shares in (("Rivertown", concentrated), ("Lakeside", even)):
        for local_share in shares:
            n_minority = int(round(config.students_per_school * local_share))
            for k in range(config.students_per_school):
                ethnicity.append("minority" if k < n_minority else "majority")
                sex.append("F" if rng.random() < 0.5 else "M")
                city.append(city_name)
                school.append(school_id)
            school_id += 1

    table = Table.from_dict(
        {
            "ethnicity": ethnicity,
            "sex": sex,
            "city": city,
            "school": school,
        }
    )
    schema = Schema.build(
        segregation=["ethnicity", "sex"],
        context=["city"],
        unit="school",
    )
    return table, schema
