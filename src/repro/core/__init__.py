"""SCube orchestration: configuration, pipeline, demo scenarios, CLI."""

from repro.core.config import (
    CLUSTERING_METHODS,
    ClusteringConfig,
    CubeConfig,
    PipelineConfig,
    ProjectionConfig,
)
from repro.core.pipeline import (
    PipelineResult,
    SCubePipeline,
    cube_workbook,
    group_attribute_table,
)
from repro.core.trend import (
    TrendPoint,
    segregation_trend,
    snapshot_seats_table,
    trend_rows,
)
from repro.core.scenarios import (
    ScenarioResult,
    run_bipartite,
    run_director_graph,
    run_tabular,
)

__all__ = [
    "CLUSTERING_METHODS",
    "ClusteringConfig",
    "CubeConfig",
    "PipelineConfig",
    "PipelineResult",
    "ProjectionConfig",
    "SCubePipeline",
    "ScenarioResult",
    "TrendPoint",
    "cube_workbook",
    "group_attribute_table",
    "run_bipartite",
    "run_director_graph",
    "run_tabular",
    "segregation_trend",
    "snapshot_seats_table",
    "trend_rows",
]
