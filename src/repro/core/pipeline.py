"""The SCube pipeline: GraphBuilder → GraphClustering → TableBuilder →
SegregationDataCubeBuilder → Visualizer (paper Fig. 2).

:class:`SCubePipeline` wires the five modules together for the bipartite
scenario (the paper's running case study); the simpler tabular and
unipartite scenarios live in :mod:`repro.core.scenarios`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import PipelineConfig
from repro.cube.builder import SegregationDataCubeBuilder
from repro.cube.cube import SegregationCube
from repro.cube.protocol import CubeLike
from repro.data.italy import BoardsDataset
from repro.errors import ConfigError
from repro.etl.builder import build_final_table
from repro.etl.schema import Role, Schema
from repro.etl.table import Table
from repro.graph.attributes import NodeAttributeTable
from repro.graph.bipartite import ProjectionResult, project_onto_groups
from repro.graph.components import Clustering, connected_components
from repro.graph.stoc import stoc_clustering
from repro.graph.threshold import threshold_components
from repro.report.xlsx import Workbook, rows_to_workbook


@dataclass
class PipelineResult:
    """Everything the pipeline produced, step by step."""

    projection: ProjectionResult
    clustering: Clustering
    final_table: Table
    final_schema: Schema
    cube: SegregationCube
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def n_units(self) -> int:
        return self.clustering.n_clusters


class SCubePipeline:
    """Orchestrates the five SCube modules over a boards dataset."""

    def __init__(self, config: "PipelineConfig | None" = None):
        self.config = config or PipelineConfig()

    # -- module 1: GraphBuilder ---------------------------------------

    def build_graph(self, dataset: BoardsDataset) -> ProjectionResult:
        """Project the bipartite graph onto groups (weighted by sharing)."""
        bipartite = dataset.bipartite(self.config.snapshot_date)
        return project_onto_groups(
            bipartite,
            min_shared=self.config.projection.min_shared,
            max_left_degree=self.config.projection.max_degree,
        )

    # -- module 2: GraphClustering ------------------------------------

    def cluster(
        self, dataset: BoardsDataset, projection: ProjectionResult
    ) -> Clustering:
        """Partition groups into organizational units."""
        cfg = self.config.clustering
        if cfg.method == "components":
            return connected_components(projection.graph)
        if cfg.method == "threshold":
            return threshold_components(projection.graph, cfg.min_weight)
        if cfg.method == "stoc":
            attributes = group_attribute_table(dataset)
            return stoc_clustering(
                projection.graph,
                attributes,
                tau=cfg.tau,
                alpha=cfg.alpha,
                horizon=cfg.horizon,
                seed=cfg.seed,
            )
        raise ConfigError(f"unknown clustering method {cfg.method!r}")

    # -- module 3: TableBuilder ---------------------------------------

    def build_table(
        self, dataset: BoardsDataset, clustering: Clustering
    ) -> tuple[Table, Schema]:
        """Join individual and group features into ``finalTable``."""
        membership = dataset.membership.snapshot(self.config.snapshot_date)
        return build_final_table(
            dataset.individuals,
            dataset.individuals_schema,
            dataset.groups,
            dataset.groups_schema,
            membership,
            clustering.node_unit(),
        )

    # -- module 4: SegregationDataCubeBuilder --------------------------

    def build_cube(self, table: Table, schema: Schema) -> SegregationCube:
        """Materialise the segregation data cube."""
        cfg = self.config.cube
        builder = SegregationDataCubeBuilder(
            indexes=cfg.indexes,
            min_population=cfg.min_population,
            min_minority=cfg.min_minority,
            max_sa_items=cfg.max_sa_items,
            max_ca_items=cfg.max_ca_items,
            mode=cfg.mode,
        )
        return builder.build(table, schema)

    # -- module 5: Visualizer -----------------------------------------

    def visualize(self, cube: CubeLike, path: "str | Path") -> Path:
        """Export the cube to an OOXML workbook (the ``scube.xlsx`` output).

        Accepts a live cube or an opened snapshot (:class:`CubeLike`).
        """
        workbook = cube_workbook(cube)
        return workbook.save(path)

    # -- end to end -----------------------------------------------------

    def run(self, dataset: BoardsDataset) -> PipelineResult:
        """Run all pipeline steps, recording per-step wall-clock times."""
        timings: dict[str, float] = {}
        t0 = time.perf_counter()
        projection = self.build_graph(dataset)
        timings["graph_builder"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        clustering = self.cluster(dataset, projection)
        timings["graph_clustering"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        final_table, final_schema = self.build_table(dataset, clustering)
        timings["table_builder"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        cube = self.build_cube(final_table, final_schema)
        timings["cube_builder"] = time.perf_counter() - t0

        return PipelineResult(
            projection=projection,
            clustering=clustering,
            final_table=final_table,
            final_schema=final_schema,
            cube=cube,
            timings=timings,
        )


def group_attribute_table(dataset: BoardsDataset) -> NodeAttributeTable:
    """Node attributes for SToC from the groups' CA columns."""
    columns = {}
    for spec in dataset.groups_schema.specs:
        if spec.role is Role.CONTEXT and not spec.multi_valued:
            columns[spec.name] = dataset.groups.categorical(spec.name).values()
    return NodeAttributeTable.from_columns(len(dataset.groups), columns)


def cube_workbook(cube: CubeLike) -> Workbook:
    """Build the Visualizer workbook: cube sheet plus a summary sheet.

    Works over any :class:`CubeLike` — a freshly built cube or a
    snapshot reopened by :func:`repro.store.open_snapshot`.
    """
    workbook = rows_to_workbook(cube.to_rows(), sheet_name="cube")
    summary = workbook.add_sheet("summary")
    summary.append_header(["key", "value"])
    summary.append_row(["cells", len(cube)])
    summary.append_row(["indexes", ", ".join(cube.metadata.index_names)])
    summary.append_row(["rows", cube.metadata.n_rows])
    summary.append_row(["units", cube.metadata.n_units])
    summary.append_row(["min_population", cube.metadata.min_population])
    summary.append_row(["min_minority", cube.metadata.min_minority])
    summary.append_row(["mode", cube.metadata.mode])
    summary.append_row(
        ["build_seconds", round(cube.metadata.build_seconds, 4)]
    )
    return workbook
