"""Configuration dataclasses for the SCube pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

CLUSTERING_METHODS = ("components", "threshold", "stoc")


@dataclass
class ProjectionConfig:
    """GraphBuilder parameters (bipartite → unipartite projection)."""

    #: Minimum number of shared individuals for a projected edge.
    min_shared: int = 1
    #: Skip individuals sitting in more than this many groups (hub guard).
    max_degree: "int | None" = 50

    def __post_init__(self) -> None:
        if self.min_shared < 1:
            raise ConfigError("min_shared must be >= 1")
        if self.max_degree is not None and self.max_degree < 1:
            raise ConfigError("max_degree must be >= 1 or None")


@dataclass
class ClusteringConfig:
    """GraphClustering parameters; ``method`` picks the algorithm.

    * ``components`` — BFS connected components;
    * ``threshold`` — giant-component weight thresholding (JIIS method),
      uses ``min_weight``;
    * ``stoc`` — SToC attributed clustering, uses ``tau``, ``alpha``,
      ``horizon``, ``seed``.
    """

    method: str = "threshold"
    min_weight: float = 2.0
    tau: float = 0.5
    alpha: float = 0.5
    horizon: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.method not in CLUSTERING_METHODS:
            raise ConfigError(
                f"unknown clustering method {self.method!r}; "
                f"choose from {CLUSTERING_METHODS}"
            )


@dataclass
class CubeConfig:
    """SegregationDataCubeBuilder parameters."""

    indexes: "list[str] | None" = None
    min_population: "int | float" = 20
    min_minority: "int | float" = 5
    max_sa_items: "int | None" = 2
    max_ca_items: "int | None" = 2
    mode: str = "all"

    def __post_init__(self) -> None:
        if self.mode not in ("all", "closed"):
            raise ConfigError("cube mode must be 'all' or 'closed'")


@dataclass
class PipelineConfig:
    """End-to-end SCube configuration (paper Fig. 2)."""

    projection: ProjectionConfig = field(default_factory=ProjectionConfig)
    clustering: ClusteringConfig = field(default_factory=ClusteringConfig)
    cube: CubeConfig = field(default_factory=CubeConfig)
    #: Snapshot date for temporal membership (None = all edges).
    snapshot_date: "int | None" = None
