"""Command-line wizard: the non-GUI counterpart of the SCube front-end.

The original demo ships a standalone wizard that "guides the user
throughout all the steps of the process" (paper §3).  This CLI keeps the
same step structure with announced progress:

* ``scube demo`` — run the three demo scenarios on synthetic Italy and
  write ``scube.xlsx``;
* ``scube tabular`` — scenario 1 on a CSV of individuals;
* ``scube bipartite`` — the full pipeline on three CSVs
  (individuals, groups, membership);
* ``scube generate`` — write the synthetic datasets to CSV.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.config import (
    ClusteringConfig,
    CubeConfig,
    PipelineConfig,
    ProjectionConfig,
)
from repro.core.pipeline import SCubePipeline, cube_workbook
from repro.core.scenarios import run_bipartite, run_tabular
from repro.cube.explorer import top_contexts
from repro.data.estonia import generate_estonia
from repro.data.italy import BoardsDataset, generate_italy, italy_tabular_individuals
from repro.data.schools import generate_schools
from repro.etl.csvio import read_table, write_rows, write_table
from repro.etl.schema import Schema
from repro.etl.temporal import TemporalMembership


def _step(number: int, total: int, message: str) -> None:
    print(f"[step {number}/{total}] {message}")


def _write_cube(cube, out: Path) -> None:
    workbook = cube_workbook(cube)
    workbook.save(out)
    print(f"wrote {out} ({len(cube)} cells)")


def _print_top(cube, index_name: str, k: int) -> None:
    print(f"top-{k} contexts by {index_name}:")
    for found in top_contexts(cube, index_name, k=k):
        print(
            f"  {found.rank:2d}. {found.description}  "
            f"{index_name}={found.value:.3f}  T={found.population} "
            f"M={found.minority}"
        )


def cmd_demo(args: argparse.Namespace) -> int:
    """Run the bipartite demo scenario end to end on synthetic Italy."""
    _step(1, 5, "generating synthetic Italian boards dataset")
    from repro.data.italy import ItalyConfig

    dataset = generate_italy(ItalyConfig(n_companies=args.companies,
                                         seed=args.seed))
    print(
        f"  {dataset.n_individuals} directors, {dataset.n_groups} companies, "
        f"{len(dataset.membership)} memberships"
    )
    config = PipelineConfig(
        projection=ProjectionConfig(),
        clustering=ClusteringConfig(method=args.clustering,
                                    min_weight=args.min_weight),
        cube=CubeConfig(min_population=args.min_population,
                        min_minority=args.min_minority),
    )
    pipeline = SCubePipeline(config)
    _step(2, 5, "GraphBuilder: projecting bipartite graph onto companies")
    projection = pipeline.build_graph(dataset)
    graph = projection.graph
    print(f"  {graph.n_nodes} nodes, {graph.n_edges} edges, "
          f"{len(projection.isolated)} isolated")
    _step(3, 5, f"GraphClustering: {args.clustering}")
    clustering = pipeline.cluster(dataset, projection)
    print(f"  {clustering.n_clusters} organizational units")
    _step(4, 5, "TableBuilder + SegregationDataCubeBuilder")
    final_table, final_schema = pipeline.build_table(dataset, clustering)
    cube = pipeline.build_cube(final_table, final_schema)
    print(f"  finalTable: {len(final_table)} rows; cube: {len(cube)} cells")
    _step(5, 5, "Visualizer: writing workbook")
    _write_cube(cube, Path(args.output))
    _print_top(cube, args.index, args.top)
    return 0


def cmd_tabular(args: argparse.Namespace) -> int:
    """Scenario 1 on a user CSV."""
    _step(1, 3, f"reading {args.individuals}")
    table = read_table(args.individuals, multi_valued=args.multi_valued or [])
    schema = Schema.build(
        segregation=args.sa,
        context=args.ca,
        multi_valued=args.multi_valued or [],
    )
    # The unit attribute must be visible to the schema for validation.
    if args.unit_attr not in args.sa + args.ca:
        from repro.etl.schema import AttributeSpec, Role

        spec = AttributeSpec(args.unit_attr, Role.CONTEXT)
        schema = schema.with_spec(spec)
    _step(2, 3, f"building cube with unit attribute {args.unit_attr!r}")
    result = run_tabular(
        table,
        schema,
        args.unit_attr,
        CubeConfig(min_population=args.min_population,
                   min_minority=args.min_minority),
    )
    _step(3, 3, "writing workbook")
    _write_cube(result.cube, Path(args.output))
    _print_top(result.cube, args.index, args.top)
    return 0


def _read_membership(path: str) -> TemporalMembership:
    """Read membership pairs, honouring optional start/end interval columns."""
    table = read_table(path, integer=["individualID", "groupID"])
    individuals = table.ints("individualID").values()
    groups = table.ints("groupID").values()
    if "start" in table and "end" in table:
        def parse(cell: object) -> "int | None":
            text = str(cell)
            return int(text) if text else None

        starts = [parse(v) for v in table.column("start").values()]
        ends = [parse(v) for v in table.column("end").values()]
        return TemporalMembership.from_records(
            zip(individuals, groups, starts, ends)
        )
    return TemporalMembership.from_pairs(zip(individuals, groups))


def cmd_bipartite(args: argparse.Namespace) -> int:
    """Full pipeline on user CSVs."""
    _step(1, 3, "reading inputs")
    individuals = read_table(args.individuals, integer=[args.id_column])
    groups = read_table(args.groups, integer=[args.group_id_column])
    membership = _read_membership(args.membership)
    dataset = BoardsDataset(
        individuals=individuals,
        individuals_schema=Schema.build(
            segregation=args.sa, context=args.ca, id_=args.id_column
        ),
        groups=groups,
        groups_schema=Schema.build(
            context=args.group_ca, id_=args.group_id_column
        ),
        membership=membership,
        name="user-data",
    )
    step2 = "running pipeline"
    if args.snapshot_date is not None:
        step2 += f" (snapshot at {args.snapshot_date})"
    _step(2, 3, step2)
    result = run_bipartite(
        dataset,
        PipelineConfig(
            clustering=ClusteringConfig(method=args.clustering,
                                        min_weight=args.min_weight),
            cube=CubeConfig(min_population=args.min_population,
                            min_minority=args.min_minority),
            snapshot_date=args.snapshot_date,
        ),
    )
    print(f"  {result.n_units} units; cube: {len(result.cube)} cells")
    _step(3, 3, "writing workbook")
    _write_cube(result.cube, Path(args.output))
    _print_top(result.cube, args.index, args.top)
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    """Write a synthetic dataset as the SCube input CSVs."""
    out = Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    if args.dataset == "schools":
        table, _schema = generate_schools()
        write_table(table, out / "students.csv")
        print(f"wrote {out / 'students.csv'} ({len(table)} rows)")
        return 0
    dataset = generate_italy() if args.dataset == "italy" else generate_estonia()
    write_table(dataset.individuals, out / "individual.csv")
    write_table(dataset.groups, out / "group.csv")
    rows = [
        (
            e.individual,
            e.group,
            e.interval.start if e.interval.start is not None else "",
            e.interval.end if e.interval.end is not None else "",
        )
        for e in dataset.membership
    ]
    write_rows(rows, ["individualID", "groupID", "start", "end"],
               out / "individualGroup.csv")
    if args.dataset == "italy":
        seats, _ = italy_tabular_individuals(dataset)
        write_table(seats, out / "finalTable_tabular.csv")
    print(
        f"wrote {args.dataset} dataset to {out}: "
        f"{dataset.n_individuals} individuals, {dataset.n_groups} groups, "
        f"{len(dataset.membership)} memberships"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="scube",
        description="SCube: segregation discovery over relational and "
        "graph data (EDBT 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_cube_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--min-population", type=int, default=20)
        p.add_argument("--min-minority", type=int, default=5)
        p.add_argument("--index", default="D", help="index for the top-k list")
        p.add_argument("--top", type=int, default=10)
        p.add_argument("--output", default="scube.xlsx")

    demo = sub.add_parser("demo", help="run the demo on synthetic Italy")
    demo.add_argument("--companies", type=int, default=2000)
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--clustering", default="threshold",
                      choices=("components", "threshold", "stoc"))
    demo.add_argument("--min-weight", type=float, default=2.0)
    add_cube_args(demo)
    demo.set_defaults(func=cmd_demo)

    tabular = sub.add_parser("tabular", help="scenario 1 on a CSV")
    tabular.add_argument("--individuals", required=True)
    tabular.add_argument("--unit-attr", required=True)
    tabular.add_argument("--sa", nargs="+", required=True)
    tabular.add_argument("--ca", nargs="*", default=[])
    tabular.add_argument("--multi-valued", nargs="*", default=[])
    add_cube_args(tabular)
    tabular.set_defaults(func=cmd_tabular)

    bipartite = sub.add_parser("bipartite", help="full pipeline on CSVs")
    bipartite.add_argument("--individuals", required=True)
    bipartite.add_argument("--groups", required=True)
    bipartite.add_argument("--membership", required=True)
    bipartite.add_argument("--sa", nargs="+", required=True)
    bipartite.add_argument("--ca", nargs="*", default=[])
    bipartite.add_argument("--group-ca", nargs="+", required=True)
    bipartite.add_argument("--id-column", default="directorID")
    bipartite.add_argument("--group-id-column", default="companyID")
    bipartite.add_argument("--clustering", default="threshold",
                           choices=("components", "threshold", "stoc"))
    bipartite.add_argument("--min-weight", type=float, default=2.0)
    bipartite.add_argument(
        "--snapshot-date", type=int, default=None,
        help="analyse the membership snapshot valid at this date "
        "(requires start/end columns in the membership CSV)",
    )
    add_cube_args(bipartite)
    bipartite.set_defaults(func=cmd_bipartite)

    generate = sub.add_parser("generate", help="write synthetic datasets")
    generate.add_argument("dataset", choices=("italy", "estonia", "schools"))
    generate.add_argument("--out-dir", default="data")
    generate.set_defaults(func=cmd_generate)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
