"""Temporal segregation trends over membership snapshots.

The paper's inputs include validity intervals on membership pairs and a
list of snapshot ``dates`` (§3); the Estonian case study tracks 20
years.  This module formalises the analysis the demo performs per
snapshot: join the snapshot's seats, derive organizational units from a
group attribute, and evaluate segregation indexes for one subgroup —
yielding a time series ready for plotting or reporting.

Two evaluation paths produce the same series:

* the **recompute** path joins and counts each snapshot from scratch
  (the original behaviour — fine for one subgroup, one pass);
* the **cube** path reads the subgroup's cell out of a prebuilt
  :class:`~repro.store.timeline.CubeTimeline` — pass the timeline as
  the first argument of :func:`segregation_trend` — so a timeline that
  already exists (built once, incrementally, for *every* subgroup)
  answers any trend query without touching the raw data again.
  Parity between the paths is pinned by ``tests/test_core_trend.py``.

:func:`temporal_seats_table` is the union-table half of that story: one
row per membership edge whatever its validity, plus the sentinel-encoded
interval bounds — encode it once, then a snapshot date is just a row
mask (see :mod:`repro.etl.diff` and :mod:`repro.cube.incremental`).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.data.italy import BoardsDataset
from repro.errors import ReproError, TableError
from repro.etl.builder import tabular_final_table
from repro.etl.diff import interval_bounds
from repro.etl.schema import AttributeSpec, Role, Schema
from repro.etl.table import CategoricalColumn, MultiValuedColumn, Table
from repro.indexes.base import resolve_indexes
from repro.indexes.counts import UnitCounts
from repro.store.timeline import CubeTimeline


def _id_positions(table: Table, id_name: str) -> dict[int, int]:
    ids = table.ints(id_name).data
    return {int(v): i for i, v in enumerate(ids)}


def _join_seat_attributes(
    dataset: BoardsDataset, ind_rows: np.ndarray, grp_rows: np.ndarray
) -> tuple[Table, Schema]:
    """Join both entities' SA/CA attributes onto aligned seat rows.

    The single join used by the per-date snapshot table *and* the union
    temporal table — the exact-parity contract between the recompute
    and cube trend paths rests on them sharing this code.
    """
    columns: dict[str, object] = {}
    specs: list[AttributeSpec] = []
    for spec in dataset.individuals_schema.specs:
        if spec.role not in (Role.SEGREGATION, Role.CONTEXT):
            continue
        columns[spec.name] = dataset.individuals.column(spec.name).take(
            ind_rows
        )
        specs.append(spec)
    for spec in dataset.groups_schema.specs:
        if spec.role is not Role.CONTEXT:
            continue
        if spec.name in columns:
            raise TableError(
                f"attribute {spec.name!r} exists on both individuals and "
                "groups; rename one"
            )
        columns[spec.name] = dataset.groups.column(spec.name).take(grp_rows)
        specs.append(spec)
    return Table(columns), Schema(specs)  # type: ignore[arg-type]


def snapshot_seats_table(
    dataset: BoardsDataset, date: "int | None" = None
) -> tuple[Table, Schema]:
    """One row per membership valid at ``date``, joining both entities.

    Columns: every SA/CA attribute of the individuals plus every CA
    attribute of the groups; the schema carries the roles over.  This
    generalises the per-dataset helpers to any :class:`BoardsDataset`.
    """
    pairs = dataset.membership.snapshot(date)
    if not pairs:
        raise ReproError(f"no membership is valid at date {date!r}")
    ind_pos = _id_positions(
        dataset.individuals, dataset.individuals_schema.id_name
    )
    grp_pos = _id_positions(dataset.groups, dataset.groups_schema.id_name)
    ind_rows = np.asarray([ind_pos[d] for d, _ in pairs], dtype=np.int64)
    grp_rows = np.asarray([grp_pos[g] for _, g in pairs], dtype=np.int64)
    return _join_seat_attributes(dataset, ind_rows, grp_rows)


def temporal_seats_table(
    dataset: BoardsDataset,
) -> "tuple[Table, Schema, np.ndarray, np.ndarray]":
    """The *union* seat table: one row per membership edge, any validity.

    Returns ``(table, schema, starts, ends)`` where the interval bound
    arrays are sentinel-encoded (:data:`repro.etl.diff.OPEN_START` /
    ``OPEN_END``) and row-aligned with the table, which preserves the
    membership's edge order.  Encode the table once, restrict per date
    with :func:`repro.etl.diff.valid_at` — the input contract of the
    incremental temporal fill (:mod:`repro.cube.incremental`).
    """
    ind_pos = _id_positions(
        dataset.individuals, dataset.individuals_schema.id_name
    )
    grp_pos = _id_positions(dataset.groups, dataset.groups_schema.id_name)
    edges = list(dataset.membership)
    if not edges:
        raise ReproError("membership relation is empty")
    ind_rows = np.asarray(
        [ind_pos[e.individual] for e in edges], dtype=np.int64
    )
    grp_rows = np.asarray([grp_pos[e.group] for e in edges], dtype=np.int64)
    table, schema = _join_seat_attributes(dataset, ind_rows, grp_rows)
    starts, ends = interval_bounds(e.interval for e in edges)
    return table, schema, starts, ends


def _subgroup_mask(table: Table, sa: Mapping[str, object]) -> np.ndarray:
    mask = np.ones(len(table), dtype=bool)
    for attr, value in sa.items():
        col = table.column(attr)
        if isinstance(col, CategoricalColumn):
            mask &= col.mask_eq(value)  # type: ignore[arg-type]
        elif isinstance(col, MultiValuedColumn):
            mask &= col.mask_contains(value)  # type: ignore[arg-type]
        else:
            raise TableError(
                f"subgroup attribute {attr!r} must be categorical or "
                "multi-valued"
            )
    return mask


@dataclass(frozen=True)
class TrendPoint:
    """Segregation measurements at one snapshot date."""

    date: int
    population: int
    minority: int
    proportion: float
    n_units: int
    values: dict[str, float]

    def value(self, index_name: str) -> float:
        return self.values.get(index_name, float("nan"))


def segregation_trend(
    dataset: "BoardsDataset | CubeTimeline",
    dates: Iterable[int],
    unit_attr: "str | None",
    sa: Mapping[str, object],
    indexes: "list[str] | None" = None,
) -> "list[TrendPoint]":
    """Evaluate indexes for one subgroup at every snapshot date.

    Parameters
    ----------
    dataset:
        A :class:`BoardsDataset` — each date is joined and counted from
        scratch — or a prebuilt
        :class:`~repro.store.timeline.CubeTimeline`, in which case the
        subgroup's values are *read* from each dated cube's cells (no
        recomputation; ``unit_attr`` is ignored, the timeline's cubes
        already fixed the unit when they were built).
    unit_attr:
        The group/individual attribute whose values become the
        organizational units (e.g. ``sector``), as in scenario 1.
    sa:
        The subgroup coordinates, e.g. ``{"gender": "F"}``; multiple
        attributes are conjunctive.
    indexes:
        Index short names (default: the six SCube indexes).

    Dates with no valid membership (recompute path) or no timeline
    snapshot / no materialised subgroup cell (cube path) are skipped.
    """
    if isinstance(dataset, CubeTimeline):
        return _trend_from_timeline(dataset, dates, sa, indexes)
    specs = resolve_indexes(indexes)
    points: list[TrendPoint] = []
    for date in dates:
        try:
            seats, schema = snapshot_seats_table(dataset, date)
        except ReproError:
            continue
        final, _final_schema = tabular_final_table(seats, schema, unit_attr)
        units = final.ints("unitID").data
        minority_mask = _subgroup_mask(final, sa)
        counts = UnitCounts.from_assignments(units, minority_mask)
        points.append(
            TrendPoint(
                date=int(date),
                population=int(counts.total),
                minority=int(counts.minority_total),
                proportion=counts.proportion,
                n_units=counts.n_units,
                values={s.name: s.compute(counts) for s in specs},
            )
        )
    return points


def _trend_from_timeline(
    timeline: CubeTimeline,
    dates: Iterable[int],
    sa: Mapping[str, object],
    indexes: "list[str] | None",
) -> "list[TrendPoint]":
    """Cube path: read the subgroup cell out of each dated snapshot.

    The subgroup's cell at the root context carries exactly the numbers
    the recompute path derives — the context population is the whole
    snapshot, the cell minority is the subgroup size, and the index
    columns were evaluated on the same per-unit vectors — so the two
    paths agree (parity-tested in ``tests/test_core_trend.py``).
    """
    names = [spec.name for spec in resolve_indexes(indexes)]
    available = set(timeline.dates)
    points: list[TrendPoint] = []
    for date in dates:
        if date not in available:
            continue
        cube = timeline.at(int(date))
        stats = cube.cell(sa=sa)
        if stats is None:
            continue
        points.append(
            TrendPoint(
                date=int(date),
                population=stats.population,
                minority=stats.minority,
                proportion=(
                    stats.minority / stats.population
                    if stats.population else float("nan")
                ),
                n_units=stats.n_units,
                values={name: stats.value(name) for name in names},
            )
        )
    return points


def trend_rows(points: "list[TrendPoint]") -> "list[list[object]]":
    """Report-ready rows: date, T, M, P, then one column per index."""
    if not points:
        return []
    index_names = list(points[0].values)
    return [
        [p.date, p.population, p.minority, round(p.proportion, 4)]
        + [p.values[name] for name in index_names]
        for p in points
    ]
