"""Temporal segregation trends over membership snapshots.

The paper's inputs include validity intervals on membership pairs and a
list of snapshot ``dates`` (§3); the Estonian case study tracks 20
years.  This module formalises the analysis the demo performs per
snapshot: join the snapshot's seats, derive organizational units from a
group attribute, and evaluate segregation indexes for one subgroup —
yielding a time series ready for plotting or reporting.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.data.italy import BoardsDataset
from repro.errors import ReproError, TableError
from repro.etl.builder import tabular_final_table
from repro.etl.schema import AttributeSpec, Role, Schema
from repro.etl.table import CategoricalColumn, MultiValuedColumn, Table
from repro.indexes.base import resolve_indexes
from repro.indexes.counts import UnitCounts


def _id_positions(table: Table, id_name: str) -> dict[int, int]:
    ids = table.ints(id_name).data
    return {int(v): i for i, v in enumerate(ids)}


def snapshot_seats_table(
    dataset: BoardsDataset, date: "int | None" = None
) -> tuple[Table, Schema]:
    """One row per membership valid at ``date``, joining both entities.

    Columns: every SA/CA attribute of the individuals plus every CA
    attribute of the groups; the schema carries the roles over.  This
    generalises the per-dataset helpers to any :class:`BoardsDataset`.
    """
    pairs = dataset.membership.snapshot(date)
    if not pairs:
        raise ReproError(f"no membership is valid at date {date!r}")
    ind_pos = _id_positions(
        dataset.individuals, dataset.individuals_schema.id_name
    )
    grp_pos = _id_positions(dataset.groups, dataset.groups_schema.id_name)
    ind_rows = np.asarray([ind_pos[d] for d, _ in pairs], dtype=np.int64)
    grp_rows = np.asarray([grp_pos[g] for _, g in pairs], dtype=np.int64)

    columns: dict[str, object] = {}
    specs: list[AttributeSpec] = []
    for spec in dataset.individuals_schema.specs:
        if spec.role not in (Role.SEGREGATION, Role.CONTEXT):
            continue
        columns[spec.name] = dataset.individuals.column(spec.name).take(
            ind_rows
        )
        specs.append(spec)
    for spec in dataset.groups_schema.specs:
        if spec.role is not Role.CONTEXT:
            continue
        if spec.name in columns:
            raise TableError(
                f"attribute {spec.name!r} exists on both individuals and "
                "groups; rename one"
            )
        columns[spec.name] = dataset.groups.column(spec.name).take(grp_rows)
        specs.append(spec)
    return Table(columns), Schema(specs)  # type: ignore[arg-type]


def _subgroup_mask(table: Table, sa: Mapping[str, object]) -> np.ndarray:
    mask = np.ones(len(table), dtype=bool)
    for attr, value in sa.items():
        col = table.column(attr)
        if isinstance(col, CategoricalColumn):
            mask &= col.mask_eq(value)  # type: ignore[arg-type]
        elif isinstance(col, MultiValuedColumn):
            mask &= col.mask_contains(value)  # type: ignore[arg-type]
        else:
            raise TableError(
                f"subgroup attribute {attr!r} must be categorical or "
                "multi-valued"
            )
    return mask


@dataclass(frozen=True)
class TrendPoint:
    """Segregation measurements at one snapshot date."""

    date: int
    population: int
    minority: int
    proportion: float
    n_units: int
    values: dict[str, float]

    def value(self, index_name: str) -> float:
        return self.values.get(index_name, float("nan"))


def segregation_trend(
    dataset: BoardsDataset,
    dates: Iterable[int],
    unit_attr: str,
    sa: Mapping[str, object],
    indexes: "list[str] | None" = None,
) -> "list[TrendPoint]":
    """Evaluate indexes for one subgroup at every snapshot date.

    Parameters
    ----------
    unit_attr:
        The group/individual attribute whose values become the
        organizational units (e.g. ``sector``), as in scenario 1.
    sa:
        The subgroup coordinates, e.g. ``{"gender": "F"}``; multiple
        attributes are conjunctive.
    indexes:
        Index short names (default: the six SCube indexes).

    Dates with no valid membership are skipped.
    """
    specs = resolve_indexes(indexes)
    points: list[TrendPoint] = []
    for date in dates:
        try:
            seats, schema = snapshot_seats_table(dataset, date)
        except ReproError:
            continue
        final, _final_schema = tabular_final_table(seats, schema, unit_attr)
        units = final.ints("unitID").data
        minority_mask = _subgroup_mask(final, sa)
        counts = UnitCounts.from_assignments(units, minority_mask)
        points.append(
            TrendPoint(
                date=int(date),
                population=int(counts.total),
                minority=int(counts.minority_total),
                proportion=counts.proportion,
                n_units=counts.n_units,
                values={s.name: s.compute(counts) for s in specs},
            )
        )
    return points


def trend_rows(points: "list[TrendPoint]") -> "list[list[object]]":
    """Report-ready rows: date, T, M, P, then one column per index."""
    if not points:
        return []
    index_names = list(points[0].values)
    return [
        [p.date, p.population, p.minority, round(p.proportion, 4)]
        + [p.values[name] for name in index_names]
        for p in points
    ]
