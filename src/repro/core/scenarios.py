"""The demo's three analysis scenarios (paper §4).

All three answer "how much are women segregated in ...", over inputs of
increasing complexity:

1. **tabular** — units come straight from a column (the company sector):
   "how much are women segregated in company sectors?";
2. **director graph** — nodes are directors, edges connect directors
   sharing a board; organizational units are graph communities:
   "... in communities of connected directors?";
3. **bipartite** — the full pipeline: project companies over shared
   directors, cluster, join, cube:
   "... in communities of connected companies?".

The graph scenarios (2 and 3) can additionally persist their projected
graph + clustering as a durable **graph snapshot**
(``graph_snapshot_path=``, written by
:func:`repro.store.dump_graph_snapshot`): ``.npy`` edge/label arrays
behind a ``graph_manifest.json``, reopenable without re-projecting and
servable over HTTP via ``make_app(..., graph_source=...)`` —
``/graph/info``, ``/graph/clusters``, ``/graph/degree``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import ClusteringConfig, CubeConfig, PipelineConfig
from repro.core.pipeline import PipelineResult, SCubePipeline
from repro.cube.builder import SegregationDataCubeBuilder
from repro.cube.cube import SegregationCube
from repro.data.italy import BoardsDataset
from repro.errors import ConfigError
from repro.etl.builder import UNIT_COLUMN, tabular_final_table
from repro.etl.schema import AttributeSpec, Role, Schema
from repro.etl.table import IntColumn, Table
from repro.graph.bipartite import ProjectionResult, project_onto_individuals
from repro.graph.components import Clustering, connected_components
from repro.graph.threshold import threshold_components


@dataclass
class ScenarioResult:
    """Output of one demo scenario.

    ``graph_snapshot`` is the directory the scenario's projected graph
    and clustering were persisted to (graph scenarios with
    ``graph_snapshot_path=`` only; ``None`` otherwise).
    """

    name: str
    cube: SegregationCube
    final_table: Table
    final_schema: Schema
    n_units: int
    timings: dict[str, float] = field(default_factory=dict)
    graph_snapshot: "Path | None" = None


def _dump_scenario_graph(
    projection: ProjectionResult,
    clustering: Clustering,
    path: "str | Path",
    provenance: "dict[str, object]",
) -> Path:
    """Persist a scenario's graph output as a reopenable snapshot."""
    from repro.store.graph import GraphArtifact, dump_graph_snapshot

    artifact = GraphArtifact.from_result(
        projection, clustering, provenance=provenance
    )
    return dump_graph_snapshot(artifact, path)


def _cube_builder(config: "CubeConfig | None") -> SegregationDataCubeBuilder:
    cfg = config or CubeConfig()
    return SegregationDataCubeBuilder(
        indexes=cfg.indexes,
        min_population=cfg.min_population,
        min_minority=cfg.min_minority,
        max_sa_items=cfg.max_sa_items,
        max_ca_items=cfg.max_ca_items,
        mode=cfg.mode,
    )


def run_tabular(
    table: Table,
    schema: Schema,
    unit_attr: str,
    cube_config: "CubeConfig | None" = None,
) -> ScenarioResult:
    """Scenario 1: a context attribute (e.g. ``sector``) is the unit."""
    t0 = time.perf_counter()
    final_table, final_schema = tabular_final_table(table, schema, unit_attr)
    table_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    cube = _cube_builder(cube_config).build(final_table, final_schema)
    return ScenarioResult(
        name="tabular",
        cube=cube,
        final_table=final_table,
        final_schema=final_schema,
        n_units=cube.metadata.n_units,
        timings={
            "table_builder": table_seconds,
            "cube_builder": time.perf_counter() - t0,
        },
    )


def run_director_graph(
    dataset: BoardsDataset,
    clustering_config: "ClusteringConfig | None" = None,
    cube_config: "CubeConfig | None" = None,
    snapshot_date: "int | None" = None,
    min_shared: int = 1,
    graph_snapshot_path: "str | Path | None" = None,
) -> ScenarioResult:
    """Scenario 2: cluster the director-director graph into units.

    Two directors are connected when they sit on at least one common
    board; each community of connected directors becomes one unit, and
    every director belongs to exactly one unit.  When
    ``graph_snapshot_path`` is given, the projected director graph and
    its clustering are persisted there as a graph snapshot
    (queryable later without re-projecting).
    """
    clustering_config = clustering_config or ClusteringConfig(method="components")
    t0 = time.perf_counter()
    bipartite = dataset.bipartite(snapshot_date)
    projection = project_onto_individuals(bipartite, min_shared=min_shared)
    graph_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    clustering = _cluster_plain(projection.graph, clustering_config)
    cluster_seconds = time.perf_counter() - t0

    graph_snapshot = None
    snapshot_seconds = None
    if graph_snapshot_path is not None:
        t0 = time.perf_counter()
        graph_snapshot = _dump_scenario_graph(
            projection, clustering, graph_snapshot_path,
            provenance={
                "scenario": "director-graph",
                "projection": "individuals",
                "min_shared": min_shared,
                "snapshot_date": snapshot_date,
                "clustering_method": clustering_config.method,
            },
        )
        snapshot_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    labels = clustering.labels
    final_table = dataset.individuals.without_columns(
        [dataset.individuals_schema.id_name]
    ).with_column(UNIT_COLUMN, IntColumn(labels))
    specs = [
        s
        for s in dataset.individuals_schema.specs
        if s.role in (Role.SEGREGATION, Role.CONTEXT)
    ]
    specs.append(AttributeSpec(UNIT_COLUMN, Role.UNIT))
    final_schema = Schema(specs)
    table_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    cube = _cube_builder(cube_config).build(final_table, final_schema)
    timings = {
        "graph_builder": graph_seconds,
        "graph_clustering": cluster_seconds,
        "table_builder": table_seconds,
        "cube_builder": time.perf_counter() - t0,
    }
    if snapshot_seconds is not None:
        timings["graph_snapshot"] = snapshot_seconds
    return ScenarioResult(
        name="director-graph",
        cube=cube,
        final_table=final_table,
        final_schema=final_schema,
        n_units=clustering.n_clusters,
        timings=timings,
        graph_snapshot=graph_snapshot,
    )


def run_bipartite(
    dataset: BoardsDataset,
    config: "PipelineConfig | None" = None,
    graph_snapshot_path: "str | Path | None" = None,
) -> ScenarioResult:
    """Scenario 3: the full bipartite pipeline (companies projected over
    shared directors, clustered into communities of connected companies).

    When ``graph_snapshot_path`` is given, the projected company graph
    and its clustering are persisted there as a graph snapshot.
    """
    pipeline = SCubePipeline(config)
    result: PipelineResult = pipeline.run(dataset)
    graph_snapshot = None
    if graph_snapshot_path is not None:
        t0 = time.perf_counter()
        cfg = pipeline.config
        graph_snapshot = _dump_scenario_graph(
            result.projection, result.clustering, graph_snapshot_path,
            provenance={
                "scenario": "bipartite",
                "projection": "groups",
                "min_shared": cfg.projection.min_shared,
                "max_degree": cfg.projection.max_degree,
                "snapshot_date": cfg.snapshot_date,
                "clustering_method": cfg.clustering.method,
            },
        )
        result.timings["graph_snapshot"] = time.perf_counter() - t0
    return ScenarioResult(
        name="bipartite",
        cube=result.cube,
        final_table=result.final_table,
        final_schema=result.final_schema,
        n_units=result.n_units,
        timings=result.timings,
        graph_snapshot=graph_snapshot,
    )


def _cluster_plain(graph, config: ClusteringConfig) -> Clustering:
    """Clustering for graphs without node attributes (director graph)."""
    if config.method == "components":
        return connected_components(graph)
    if config.method == "threshold":
        return threshold_components(graph, config.min_weight)
    raise ConfigError(
        f"clustering method {config.method!r} needs node attributes; "
        "use 'components' or 'threshold' for the director graph"
    )
