"""Local (per-unit) segregation statistics.

Global indexes answer "how segregated is the minority overall"; analysts
exploring a cube cell then ask *which units drive the value*.  This
module provides the standard per-unit decompositions:

* :func:`local_dissimilarity` — unit contributions summing exactly to D;
* :func:`local_information` — unit contributions summing exactly to H;
* :func:`local_isolation` / :func:`local_interaction` — contributions
  summing to xPx / xPy;
* :func:`location_quotient` — ``LQ_i = p_i / P``, the classic
  over/under-representation ratio (1 = parity);
* :func:`local_profile` — a report-ready table of all of the above.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.indexes.binary import _binary_entropy
from repro.indexes.counts import UnitCounts


def local_dissimilarity(counts: UnitCounts) -> np.ndarray:
    """Per-unit contributions ``0.5 * |m_i/M - (t_i-m_i)/(T-M)|``.

    Sums exactly to the dissimilarity index (property-tested).
    """
    if counts.is_degenerate():
        return np.full(counts.n_units, float("nan"))
    minority_share = counts.m / counts.minority_total
    majority_share = (counts.t - counts.m) / counts.majority_total
    return 0.5 * np.abs(minority_share - majority_share)


def local_information(counts: UnitCounts) -> np.ndarray:
    """Per-unit contributions ``t_i (E - E_i) / (T E)``; sums to H."""
    if counts.is_degenerate():
        return np.full(counts.n_units, float("nan"))
    e_overall = _binary_entropy(counts.proportion)
    if e_overall == 0:
        return np.full(counts.n_units, float("nan"))
    e_units = _binary_entropy(counts.unit_proportions)
    return counts.t * (e_overall - e_units) / (counts.total * e_overall)


def local_isolation(counts: UnitCounts) -> np.ndarray:
    """Per-unit contributions ``(m_i/M) p_i``; sums to Isolation."""
    if counts.is_degenerate():
        return np.full(counts.n_units, float("nan"))
    return (counts.m / counts.minority_total) * counts.unit_proportions


def local_interaction(counts: UnitCounts) -> np.ndarray:
    """Per-unit contributions ``(m_i/M)(1 - p_i)``; sums to Interaction."""
    if counts.is_degenerate():
        return np.full(counts.n_units, float("nan"))
    majority_prop = (counts.t - counts.m) / counts.t
    return (counts.m / counts.minority_total) * majority_prop


def location_quotient(counts: UnitCounts) -> np.ndarray:
    """``LQ_i = p_i / P``: >1 over-represented, <1 under-represented."""
    if counts.is_degenerate():
        return np.full(counts.n_units, float("nan"))
    return counts.unit_proportions / counts.proportion


@dataclass(frozen=True)
class LocalProfileRow:
    """Per-unit diagnostics for one organizational unit."""

    unit: int
    population: int
    minority: int
    proportion: float
    location_quotient: float
    d_contribution: float
    h_contribution: float
    isolation_contribution: float


def local_profile(
    counts: UnitCounts, unit_labels: "list[str] | None" = None
) -> "list[LocalProfileRow]":
    """Full per-unit diagnostic table, sorted by D contribution (desc).

    ``unit_labels`` is accepted for symmetry with report helpers but the
    rows carry positional unit ids; callers map ids to labels.
    """
    lq = location_quotient(counts)
    d_parts = local_dissimilarity(counts)
    h_parts = local_information(counts)
    iso_parts = local_isolation(counts)
    rows = [
        LocalProfileRow(
            unit=i,
            population=int(counts.t[i]),
            minority=int(counts.m[i]),
            proportion=float(counts.unit_proportions[i]),
            location_quotient=float(lq[i]),
            d_contribution=float(d_parts[i]),
            h_contribution=float(h_parts[i]),
            isolation_contribution=float(iso_parts[i]),
        )
        for i in range(counts.n_units)
    ]
    rows.sort(key=lambda r: -r.d_contribution)
    return rows
