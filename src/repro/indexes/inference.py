"""Statistical inference for segregation indexes.

Segregation discovery ranks thousands of cube cells; small contexts can
show large index values by chance alone (finite-sample bias of ``D`` is
well known).  This module provides the two standard guards:

* :func:`bootstrap_ci` — percentile confidence interval by resampling
  individuals within units (multinomial per-unit resampling);
* :func:`randomization_test` — permutation test of the null "minority
  membership is independent of unit", also returning the expected index
  under the null (the *random segregation* baseline that systematic
  segregation must exceed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SegregationIndexError
from repro.indexes.base import IndexFunc
from repro.indexes.counts import UnitCounts


@dataclass(frozen=True)
class BootstrapResult:
    """Outcome of a bootstrap run."""

    estimate: float
    low: float
    high: float
    std_error: float
    n_boot: int


@dataclass(frozen=True)
class RandomizationResult:
    """Outcome of a permutation (randomisation) test."""

    observed: float
    expected_under_null: float
    std_under_null: float
    p_value: float
    n_permutations: int

    @property
    def excess(self) -> float:
        """Systematic component: observed minus random-segregation baseline."""
        return self.observed - self.expected_under_null


def _resample_counts(counts: UnitCounts, rng: np.random.Generator) -> UnitCounts:
    """Per-unit binomial resampling of minority membership."""
    t = counts.t.astype(np.int64)
    p = counts.unit_proportions
    m_new = rng.binomial(t, p)
    return UnitCounts(t, m_new, drop_empty=False)


def bootstrap_ci(
    index: IndexFunc,
    counts: UnitCounts,
    n_boot: int = 500,
    alpha: float = 0.05,
    seed: int | None = 0,
) -> BootstrapResult:
    """Percentile bootstrap confidence interval for ``index(counts)``.

    Unit sizes are kept fixed; each unit's minority count is resampled
    from Binomial(t_i, p_i), the standard parametric bootstrap for
    segregation indexes.
    """
    if n_boot < 1:
        raise SegregationIndexError("n_boot must be >= 1")
    if not 0 < alpha < 1:
        raise SegregationIndexError("alpha must be in (0, 1)")
    rng = np.random.default_rng(seed)
    estimate = index(counts)
    replicas = np.array(
        [index(_resample_counts(counts, rng)) for _ in range(n_boot)]
    )
    replicas = replicas[~np.isnan(replicas)]
    if len(replicas) == 0:
        return BootstrapResult(estimate, float("nan"), float("nan"),
                               float("nan"), n_boot)
    low, high = np.quantile(replicas, [alpha / 2, 1 - alpha / 2])
    return BootstrapResult(
        estimate, float(low), float(high), float(replicas.std(ddof=1))
        if len(replicas) > 1 else 0.0, n_boot
    )


def randomization_test(
    index: IndexFunc,
    counts: UnitCounts,
    n_permutations: int = 500,
    seed: int | None = 0,
) -> RandomizationResult:
    """Permutation test of no systematic segregation.

    Under the null, the ``M`` minority members are spread over units by a
    random draw without replacement (multivariate hypergeometric); the
    returned ``p_value`` is the fraction of null draws with an index at
    least as large as observed (with the +1 small-sample correction).
    """
    if n_permutations < 1:
        raise SegregationIndexError("n_permutations must be >= 1")
    rng = np.random.default_rng(seed)
    observed = index(counts)
    t = counts.t.astype(np.int64)
    total = int(counts.total)
    m_total = int(counts.minority_total)
    null_values = np.empty(n_permutations)
    for k in range(n_permutations):
        null_values[k] = index(
            UnitCounts(t, _hypergeometric_split(t, total, m_total, rng),
                       drop_empty=False)
        )
    valid = null_values[~np.isnan(null_values)]
    if len(valid) == 0 or np.isnan(observed):
        return RandomizationResult(observed, float("nan"), float("nan"),
                                   float("nan"), n_permutations)
    expected = float(valid.mean())
    std = float(valid.std(ddof=1)) if len(valid) > 1 else 0.0
    p = (1 + int((valid >= observed - 1e-12).sum())) / (len(valid) + 1)
    return RandomizationResult(observed, expected, std, float(p), n_permutations)


def _hypergeometric_split(
    t: np.ndarray, total: int, m_total: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw per-unit minority counts from a multivariate hypergeometric."""
    m = np.zeros(len(t), dtype=np.int64)
    remaining_pop = total
    remaining_min = m_total
    for i, size in enumerate(t):
        size = int(size)
        if remaining_pop <= 0 or remaining_min <= 0:
            break
        draw = rng.hypergeometric(remaining_min, remaining_pop - remaining_min,
                                  size) if size > 0 else 0
        m[i] = draw
        remaining_pop -= size
        remaining_min -= int(draw)
    return m
