"""Per-unit population counts — the common input of all segregation indexes.

Following the paper's notation (§2): a population of size ``T`` with a
minority group of size ``M`` is spread over ``n`` organizational units;
``t_i`` is the unit-``i`` population and ``m_i`` its minority count.
:class:`UnitCounts` validates and carries the two vectors ``t`` and ``m``
and exposes the derived aggregates every index needs.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import SegregationIndexError


class UnitCounts:
    """Validated per-unit counts ``(t_i, m_i)`` for binary-group analysis.

    Parameters
    ----------
    totals:
        Population size of each unit (``t_i``); non-negative integers.
    minority:
        Minority count of each unit (``m_i``); must satisfy
        ``0 <= m_i <= t_i``.
    drop_empty:
        When True (default), units with ``t_i == 0`` are removed — empty
        units carry no population and, by definition of every index
        implemented here, do not affect the result.
    """

    def __init__(
        self,
        totals: Sequence[int] | np.ndarray,
        minority: Sequence[int] | np.ndarray,
        drop_empty: bool = True,
    ):
        t = np.asarray(totals, dtype=np.float64)
        m = np.asarray(minority, dtype=np.float64)
        if t.ndim != 1 or m.ndim != 1:
            raise SegregationIndexError("totals and minority must be 1-D")
        if len(t) != len(m):
            raise SegregationIndexError(
                f"totals has {len(t)} units, minority has {len(m)}"
            )
        if np.any(t < 0) or np.any(m < 0):
            raise SegregationIndexError("counts must be non-negative")
        if np.any(m > t):
            bad = int(np.argmax(m > t))
            raise SegregationIndexError(
                f"minority exceeds total in unit {bad}: {m[bad]} > {t[bad]}"
            )
        if drop_empty:
            keep = t > 0
            t, m = t[keep], m[keep]
        self.t = t
        self.m = m

    @classmethod
    def from_assignments(
        cls,
        units: Iterable[int] | np.ndarray,
        is_minority: Iterable[bool] | np.ndarray,
        n_units: int | None = None,
    ) -> "UnitCounts":
        """Aggregate individual-level data.

        ``units[k]`` is the unit id of individual ``k`` and
        ``is_minority[k]`` tells whether she belongs to the minority.
        ``is_minority`` may also be a mining cover (any
        :mod:`repro.itemsets.coverset` codec): anything exposing
        ``to_bools()`` is materialised into flags first.
        """
        u = np.asarray(units, dtype=np.int64)
        if hasattr(is_minority, "to_bools"):
            flags = np.asarray(is_minority.to_bools(), dtype=bool)
        else:
            flags = np.asarray(is_minority, dtype=bool)
        if len(u) != len(flags):
            raise SegregationIndexError("units and is_minority differ in length")
        if len(u) and u.min() < 0:
            raise SegregationIndexError("unit ids must be non-negative")
        size = n_units if n_units is not None else (int(u.max()) + 1 if len(u) else 0)
        t = np.bincount(u, minlength=size).astype(np.float64)
        m = np.bincount(u[flags], minlength=size).astype(np.float64)
        return cls(t, m)

    @property
    def n_units(self) -> int:
        """Number of (non-empty) units."""
        return len(self.t)

    @property
    def total(self) -> float:
        """Total population ``T``."""
        return float(self.t.sum())

    @property
    def minority_total(self) -> float:
        """Minority population ``M``."""
        return float(self.m.sum())

    @property
    def majority_total(self) -> float:
        """Majority population ``T - M``."""
        return self.total - self.minority_total

    @property
    def proportion(self) -> float:
        """Overall minority fraction ``P = M / T`` (nan when ``T == 0``)."""
        return self.minority_total / self.total if self.total > 0 else float("nan")

    @property
    def unit_proportions(self) -> np.ndarray:
        """Per-unit minority fractions ``p_i = m_i / t_i``."""
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(self.t > 0, self.m / np.maximum(self.t, 1e-300), 0.0)

    def is_degenerate(self) -> bool:
        """True when no index is defined: empty, all-minority or no-minority."""
        return self.total == 0 or self.minority_total == 0 or self.majority_total == 0

    def complement(self) -> "UnitCounts":
        """Swap minority and majority (``m_i -> t_i - m_i``)."""
        return UnitCounts(self.t, self.t - self.m, drop_empty=False)

    def merged_with(self, other: "UnitCounts") -> "UnitCounts":
        """Concatenate two disjoint sets of units."""
        return UnitCounts(
            np.concatenate([self.t, other.t]),
            np.concatenate([self.m, other.m]),
            drop_empty=False,
        )

    def __repr__(self) -> str:
        return (
            f"UnitCounts(n_units={self.n_units}, T={self.total:.0f}, "
            f"M={self.minority_total:.0f})"
        )


class GroupCountsMatrix:
    """Per-unit counts for ``K >= 2`` groups (multigroup extension).

    ``counts[i, g]`` is the number of members of group ``g`` in unit ``i``.
    """

    def __init__(self, counts: Sequence[Sequence[int]] | np.ndarray,
                 drop_empty: bool = True):
        c = np.asarray(counts, dtype=np.float64)
        if c.ndim != 2:
            raise SegregationIndexError("counts must be a 2-D units x groups matrix")
        if c.shape[1] < 2:
            raise SegregationIndexError("need at least two groups")
        if np.any(c < 0):
            raise SegregationIndexError("counts must be non-negative")
        if drop_empty:
            c = c[c.sum(axis=1) > 0]
        self.counts = c

    @property
    def n_units(self) -> int:
        return self.counts.shape[0]

    @property
    def n_groups(self) -> int:
        return self.counts.shape[1]

    @property
    def unit_totals(self) -> np.ndarray:
        """``t_i``: per-unit population."""
        return self.counts.sum(axis=1)

    @property
    def group_totals(self) -> np.ndarray:
        """``T_g``: per-group population."""
        return self.counts.sum(axis=0)

    @property
    def total(self) -> float:
        return float(self.counts.sum())

    @property
    def group_proportions(self) -> np.ndarray:
        """``pi_g = T_g / T``."""
        return self.group_totals / self.total if self.total > 0 else np.full(
            self.n_groups, float("nan")
        )

    def binary(self, group: int) -> UnitCounts:
        """Collapse to a binary minority-vs-rest view for ``group``."""
        if not 0 <= group < self.n_groups:
            raise SegregationIndexError(f"group {group} out of range")
        return UnitCounts(self.unit_totals, self.counts[:, group])
