"""Spatially-adjusted segregation indexes.

The index literature the paper builds on (Massey & Denton 1988; the
"checkerboard problem") notes that aspatial evenness indexes ignore
*where* units sit: a checkerboard of all-minority/all-majority tracts
scores D = 1 whether the minority tracts are scattered or form one
ghetto.  Morrill's adjusted dissimilarity subtracts a boundary term over
adjacent unit pairs:

    D(adj) = D - sum_{ij} c_ij |p_i - p_j| / sum_{ij} c_ij

with ``c`` the unit contiguity matrix.  Units here are graph nodes, so
adjacency is naturally expressed as a :class:`~repro.graph.graph.Graph`
over unit ids — in SCube's graph scenarios the projected company graph
itself provides the contiguity.

Alignment caveat: :class:`~repro.indexes.counts.UnitCounts` drops empty
units by default, which would shift unit ids out of sync with the
adjacency graph; construct counts with ``drop_empty=False`` for spatial
analysis (empty units do not perturb the boundary term, as their
proportion is taken as 0).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SegregationIndexError
from repro.graph.graph import Graph
from repro.indexes.binary import dissimilarity
from repro.indexes.counts import UnitCounts


def boundary_term(counts: UnitCounts, adjacency: Graph,
                  weighted: bool = False) -> float:
    """Mean absolute proportion difference over adjacent unit pairs.

    With ``weighted`` the edge weights act as contiguity strengths
    (Wong's refinement); otherwise every adjacency counts 1.
    Returns 0.0 for edgeless adjacency (no correction).
    """
    if adjacency.n_nodes != counts.n_units:
        raise SegregationIndexError(
            f"adjacency has {adjacency.n_nodes} nodes for "
            f"{counts.n_units} units"
        )
    p = counts.unit_proportions
    num = 0.0
    den = 0.0
    for u, v, w in adjacency.edges():
        c = w if weighted else 1.0
        num += c * abs(p[u] - p[v])
        den += c
    if den == 0:
        return 0.0
    return num / den


def adjusted_dissimilarity(counts: UnitCounts, adjacency: Graph,
                           weighted: bool = False) -> float:
    """Morrill's D(adj): dissimilarity minus the boundary smoothness term.

    Equal to plain D when adjacent units have identical proportions
    (maximally clustered segregation) and strictly below D when the
    minority pattern alternates across boundaries (checkerboard).
    """
    base = dissimilarity(counts)
    if np.isnan(base):
        return float("nan")
    return base - boundary_term(counts, adjacency, weighted=weighted)


def checkerboard_gap(counts: UnitCounts, adjacency: Graph) -> float:
    """How much of D is a checkerboard artefact: ``D - D(adj)``.

    0 means the spatial arrangement is maximally clustered given the
    unit proportions; values near D mean the segregation disappears once
    adjacency is considered.
    """
    base = dissimilarity(counts)
    adjusted = adjusted_dissimilarity(counts, adjacency)
    if np.isnan(base) or np.isnan(adjusted):
        return float("nan")
    return base - adjusted


def grid_adjacency(n_rows: int, n_cols: int) -> Graph:
    """4-neighbour grid adjacency for ``n_rows * n_cols`` units.

    The standard synthetic geography for spatial-index experiments
    (units numbered row-major).
    """
    if n_rows < 1 or n_cols < 1:
        raise SegregationIndexError("grid dimensions must be positive")
    graph = Graph(n_rows * n_cols)
    for r in range(n_rows):
        for c in range(n_cols):
            node = r * n_cols + c
            if c + 1 < n_cols:
                graph.add_edge(node, node + 1)
            if r + 1 < n_rows:
                graph.add_edge(node, node + n_cols)
    return graph
