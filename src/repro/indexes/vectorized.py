"""Batched segregation-index kernels: all cells of a context at once.

The columnar cube fill (:mod:`repro.cube.builder`) evaluates every cell
sharing a context in one shot: the context contributes a single per-unit
population vector ``t`` of shape ``(n_units,)`` and the cells contribute
a minority-count matrix ``m`` of shape ``(n_cells, n_units)`` — one row
per cell, aligned on the same units.  Each kernel here returns a float64
vector of shape ``(n_cells,)`` holding the index value of every row.

The kernels are transcriptions of :mod:`repro.indexes.binary` with the
reductions moved to ``axis=1``; every intermediate uses the exact same
elementwise operations in the same order, so results are **bit-identical**
to calling the scalar function row by row (property-tested in
``tests/test_indexes_vectorized.py``).  Degenerate rows — empty
population, empty minority or empty majority — come out as ``nan``,
matching the scalar convention.

Kernels assume the caller already dropped empty units (``t > 0``
everywhere), mirroring ``UnitCounts(drop_empty=True)``; the dispatching
entry point :meth:`repro.indexes.base.IndexSpec.compute_batch` performs
that drop.
"""

from __future__ import annotations

import numpy as np

from repro.indexes.binary import _binary_entropy


def _aggregates(t: np.ndarray, m: np.ndarray):
    """Shared per-row aggregates: ``(degenerate, T, M_row, P_row)``."""
    total = float(t.sum())
    m_tot = m.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        p_overall = m_tot / total if total > 0 else np.full(len(m), np.nan)
    degenerate = (m_tot == 0) | ((total - m_tot) == 0)
    if total == 0:
        degenerate = np.ones(len(m), dtype=bool)
    return degenerate, total, m_tot, p_overall


def _unit_proportions(t: np.ndarray, m: np.ndarray) -> np.ndarray:
    """Row-wise ``p_i = m_i / t_i`` (same guard as UnitCounts)."""
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(t > 0, m / np.maximum(t, 1e-300), 0.0)


def dissimilarity(t: np.ndarray, m: np.ndarray) -> np.ndarray:
    """Batched Dissimilarity ``D`` (see :func:`repro.indexes.binary.dissimilarity`)."""
    degenerate, total, m_tot, _ = _aggregates(t, m)
    with np.errstate(invalid="ignore", divide="ignore"):
        minority_share = m / m_tot[:, None]
        majority_share = (t - m) / (total - m_tot)[:, None]
        out = 0.5 * np.abs(minority_share - majority_share).sum(axis=1)
    out[degenerate] = np.nan
    return out


def gini(t: np.ndarray, m: np.ndarray) -> np.ndarray:
    """Batched Gini ``G``: the sorted-prefix formulation, row-wise."""
    degenerate, total, m_tot, p_overall = _aggregates(t, m)
    p = _unit_proportions(t, m)
    order = np.argsort(p, axis=1, kind="stable")
    t_sorted = np.take_along_axis(np.broadcast_to(t, m.shape), order, axis=1)
    m_sorted = np.take_along_axis(m, order, axis=1)
    cum_t = np.zeros_like(t_sorted)
    cum_m = np.zeros_like(m_sorted)
    if m.shape[1] > 1:
        cum_t[:, 1:] = np.cumsum(t_sorted, axis=1)[:, :-1]
        cum_m[:, 1:] = np.cumsum(m_sorted, axis=1)[:, :-1]
    cross = np.sum(m_sorted * cum_t - t_sorted * cum_m, axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        denom = 2 * total * total * p_overall * (1 - p_overall)
        out = 2 * cross / denom
    out[degenerate] = np.nan
    return out


def information(t: np.ndarray, m: np.ndarray) -> np.ndarray:
    """Batched Information (entropy) index ``H``."""
    degenerate, total, m_tot, p_overall = _aggregates(t, m)
    with np.errstate(invalid="ignore", divide="ignore"):
        e_overall = np.asarray(_binary_entropy(p_overall))
        e_units = _binary_entropy(_unit_proportions(t, m))
        weighted = (t * e_units).sum(axis=1) / (total * e_overall)
        out = 1.0 - weighted
    out[degenerate | (e_overall == 0)] = np.nan
    return out


def isolation(t: np.ndarray, m: np.ndarray) -> np.ndarray:
    """Batched Isolation ``xPx``."""
    degenerate, total, m_tot, _ = _aggregates(t, m)
    with np.errstate(invalid="ignore", divide="ignore"):
        out = ((m / m_tot[:, None]) * _unit_proportions(t, m)).sum(axis=1)
    out[degenerate] = np.nan
    return out


def interaction(t: np.ndarray, m: np.ndarray) -> np.ndarray:
    """Batched Interaction ``xPy``."""
    degenerate, total, m_tot, _ = _aggregates(t, m)
    with np.errstate(invalid="ignore", divide="ignore"):
        majority_prop = (t - m) / t
        out = ((m / m_tot[:, None]) * majority_prop).sum(axis=1)
    out[degenerate] = np.nan
    return out


def atkinson(t: np.ndarray, m: np.ndarray, b: float = 0.5) -> np.ndarray:
    """Batched Atkinson ``A(b)``."""
    if not 0 < b < 1:
        raise ValueError(f"Atkinson shape parameter b must be in (0,1), got {b}")
    degenerate, total, m_tot, p_overall = _aggregates(t, m)
    p = _unit_proportions(t, m)
    with np.errstate(invalid="ignore", divide="ignore"):
        terms = np.power(1 - p, 1 - b) * np.power(p, b) * t
        inner = terms.sum(axis=1) / (p_overall * total)
        out = 1.0 - (p_overall / (1 - p_overall)) * inner ** (1.0 / (1.0 - b))
    out[degenerate] = np.nan
    return out
