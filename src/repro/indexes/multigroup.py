"""Multigroup segregation indexes (extension).

The demo paper restricts SCube to binary minority/majority groups but
stresses that the system "is parametric to the indexes".  This module
supplies the standard multigroup generalisations (Reardon & Firebaugh,
"Measures of multigroup segregation", Sociological Methodology 32, 2002)
so that cubes can be built over ``K > 2`` groups:

with ``pi_g`` the overall share of group ``g``, ``pi_gi`` its share in
unit ``i``, ``I = sum_g pi_g (1 - pi_g)`` (Simpson's interaction) and
``E = -sum_g pi_g ln pi_g`` (multigroup entropy):

* Dissimilarity ``D = sum_g sum_i t_i |pi_gi - pi_g| / (2 T I)``
* Gini          ``G = sum_g sum_i sum_j t_i t_j |pi_gi - pi_gj| / (2 T^2 I)``
* Information   ``H = 1 - sum_i t_i E_i / (T E)``
* Normalised exposure ``P = sum_g sum_i (t_i/T) (pi_gi - pi_g)^2 / (1 - pi_g)``

All lie in ``[0, 1]``; for ``K = 2`` groups ``H`` and ``D`` coincide with
their binary counterparts.
"""

from __future__ import annotations

import numpy as np

from repro.indexes.counts import GroupCountsMatrix


def _unit_shares(matrix: GroupCountsMatrix) -> np.ndarray:
    """``pi_gi`` as an (n_units, n_groups) array."""
    totals = matrix.unit_totals
    return matrix.counts / totals[:, None]


def _is_degenerate(matrix: GroupCountsMatrix) -> bool:
    if matrix.total == 0:
        return True
    present = matrix.group_totals > 0
    return int(present.sum()) < 2


def multigroup_dissimilarity(matrix: GroupCountsMatrix) -> float:
    """Multigroup dissimilarity ``D``."""
    if _is_degenerate(matrix):
        return float("nan")
    pi = matrix.group_proportions
    shares = _unit_shares(matrix)
    interaction = float((pi * (1 - pi)).sum())
    dev = np.abs(shares - pi[None, :])
    num = float((matrix.unit_totals[:, None] * dev).sum())
    return num / (2 * matrix.total * interaction)


def multigroup_gini(matrix: GroupCountsMatrix) -> float:
    """Multigroup Gini ``G`` (O(K n log n) via per-group sorting)."""
    if _is_degenerate(matrix):
        return float("nan")
    pi = matrix.group_proportions
    interaction = float((pi * (1 - pi)).sum())
    t = matrix.unit_totals
    total = matrix.total
    shares = _unit_shares(matrix)
    num = 0.0
    for g in range(matrix.n_groups):
        order = np.argsort(shares[:, g], kind="stable")
        p_sorted = shares[order, g]
        t_sorted = t[order]
        cum_t = np.concatenate([[0.0], np.cumsum(t_sorted)])[:-1]
        cum_tp = np.concatenate([[0.0], np.cumsum(t_sorted * p_sorted)])[:-1]
        # sum_{i<j} t_i t_j (p_j - p_i), doubled for the full double sum
        num += 2 * float(np.sum(t_sorted * (p_sorted * cum_t - cum_tp)))
    return num / (2 * total * total * interaction)


def multigroup_entropy(proportions: np.ndarray) -> float:
    """Multigroup entropy ``E = -sum_g pi_g ln pi_g`` (natural log)."""
    p = np.asarray(proportions, dtype=np.float64)
    p = p[p > 0]
    return float(-(p * np.log(p)).sum())


def multigroup_information(matrix: GroupCountsMatrix) -> float:
    """Multigroup information (Theil's) index ``H``."""
    if _is_degenerate(matrix):
        return float("nan")
    e_overall = multigroup_entropy(matrix.group_proportions)
    if e_overall == 0:
        return float("nan")
    shares = _unit_shares(matrix)
    e_units = np.array([multigroup_entropy(row) for row in shares])
    weighted = float((matrix.unit_totals * e_units).sum()) / (
        matrix.total * e_overall
    )
    return float(1.0 - weighted)


def normalized_exposure(matrix: GroupCountsMatrix) -> float:
    """Normalised exposure ``P`` (Reardon & Firebaugh's relative diversity
    numerator, summed over groups)."""
    if _is_degenerate(matrix):
        return float("nan")
    pi = matrix.group_proportions
    shares = _unit_shares(matrix)
    weights = matrix.unit_totals / matrix.total
    valid = pi < 1
    dev2 = (shares[:, valid] - pi[None, valid]) ** 2 / (1 - pi[None, valid])
    return float((weights[:, None] * dev2).sum())
