"""Segregation indexes: the metrics of the segregation data cube.

Implements the six binary indexes SCube ships (Dissimilarity, Gini,
Information, Isolation, Interaction, Atkinson), their multigroup
generalisations, and statistical inference helpers (bootstrap CIs and
randomisation tests).
"""

from repro.indexes.base import (
    ATKINSON,
    DEFAULT_INDEXES,
    DISSIMILARITY,
    GINI,
    INFORMATION,
    INTERACTION,
    ISOLATION,
    BatchIndexFunc,
    IndexFunc,
    IndexSpec,
    all_index_names,
    get_index,
    register,
    resolve_indexes,
)
from repro.indexes.binary import (
    atkinson,
    dissimilarity,
    gini,
    information,
    interaction,
    isolation,
)
from repro.indexes.counts import GroupCountsMatrix, UnitCounts
from repro.indexes.inference import (
    BootstrapResult,
    RandomizationResult,
    bootstrap_ci,
    randomization_test,
)
from repro.indexes.local import (
    LocalProfileRow,
    local_dissimilarity,
    local_information,
    local_interaction,
    local_isolation,
    local_profile,
    location_quotient,
)
from repro.indexes.multigroup import (
    multigroup_dissimilarity,
    multigroup_entropy,
    multigroup_gini,
    multigroup_information,
    normalized_exposure,
)
from repro.indexes.spatial import (
    adjusted_dissimilarity,
    boundary_term,
    checkerboard_gap,
    grid_adjacency,
)

__all__ = [
    "ATKINSON",
    "BatchIndexFunc",
    "BootstrapResult",
    "DEFAULT_INDEXES",
    "DISSIMILARITY",
    "GINI",
    "GroupCountsMatrix",
    "INFORMATION",
    "INTERACTION",
    "ISOLATION",
    "IndexFunc",
    "IndexSpec",
    "LocalProfileRow",
    "RandomizationResult",
    "UnitCounts",
    "adjusted_dissimilarity",
    "all_index_names",
    "atkinson",
    "bootstrap_ci",
    "boundary_term",
    "checkerboard_gap",
    "dissimilarity",
    "get_index",
    "gini",
    "grid_adjacency",
    "information",
    "interaction",
    "isolation",
    "local_dissimilarity",
    "local_information",
    "local_interaction",
    "local_isolation",
    "local_profile",
    "location_quotient",
    "multigroup_dissimilarity",
    "multigroup_entropy",
    "multigroup_gini",
    "multigroup_information",
    "normalized_exposure",
    "randomization_test",
    "register",
    "resolve_indexes",
]
