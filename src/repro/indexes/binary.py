"""The six binary segregation indexes computed by SCube (paper §2).

All functions take a :class:`~repro.indexes.counts.UnitCounts` and return
a float.  Degenerate inputs (empty population, empty minority or empty
majority) yield ``nan`` — the cube renders such cells as "-", exactly as
Fig. 1 of the paper displays cells whose coordinates select no minority
or no population.

Definitions follow Massey & Denton, "The dimensions of residential
segregation" (Social Forces 67(2), 1988), the reference the paper cites
for its metrics.  With ``T`` the population, ``M`` the minority size,
``P = M/T``, and per-unit totals/minority ``t_i`` / ``m_i``,
``p_i = m_i/t_i``:

* Dissimilarity  ``D = 1/2 * sum_i | m_i/M - (t_i-m_i)/(T-M) |``
* Gini           ``G = sum_i sum_j t_i t_j |p_i - p_j| / (2 T^2 P (1-P))``
* Information    ``H = 1 - sum_i t_i E_i / (T E)`` with binary entropies
  ``E_i = e(p_i)``, ``E = e(P)``
* Isolation      ``xPx = sum_i (m_i/M)(m_i/t_i)``
* Interaction    ``xPy = sum_i (m_i/M)((t_i-m_i)/t_i)``
* Atkinson(b)    ``A = 1 - P/(1-P) * [ sum_i (1-p_i)^(1-b) p_i^b t_i / (P T) ]^(1/(1-b))``

``D``, ``G``, ``H`` and ``A`` lie in ``[0, 1]`` with higher = more
segregated; ``xPx + xPy = 1``; ``G >= D`` always.
"""

from __future__ import annotations

import numpy as np

from repro.indexes.counts import UnitCounts


def _binary_entropy(p: np.ndarray | float) -> np.ndarray | float:
    """Shannon entropy of a Bernoulli(p), in bits, with 0*log(0) = 0."""
    arr = np.asarray(p, dtype=np.float64)
    out = np.zeros_like(arr)
    inner = (arr > 0) & (arr < 1)
    q = arr[inner]
    out[inner] = -(q * np.log2(q) + (1 - q) * np.log2(1 - q))
    if np.isscalar(p):
        return float(out)
    return out


def dissimilarity(counts: UnitCounts) -> float:
    """Dissimilarity index ``D``: share of the minority that would have to
    relocate to equalise its distribution across units."""
    if counts.is_degenerate():
        return float("nan")
    minority_share = counts.m / counts.minority_total
    majority_share = (counts.t - counts.m) / counts.majority_total
    return float(0.5 * np.abs(minority_share - majority_share).sum())


def gini(counts: UnitCounts) -> float:
    """Gini segregation index ``G``: mean absolute difference between unit
    minority proportions, weighted by unit sizes and normalised.

    Computed in ``O(n log n)`` by sorting the ``p_i`` (the naive double sum
    is kept in the test-suite as an oracle).
    """
    if counts.is_degenerate():
        return float("nan")
    t, m = counts.t, counts.m
    total = counts.total
    p_overall = counts.proportion
    order = np.argsort(counts.unit_proportions, kind="stable")
    t_sorted = t[order]
    m_sorted = m[order]
    # sum_{i<j} t_i t_j (p_j - p_i) for sorted p equals
    # sum_j [ p_j t_j * cumT_{<j} - t_j * cumM-like term ]; expand p = m/t:
    # sum_{i<j} (m_j t_i - m_i t_j)
    cum_t = np.concatenate([[0.0], np.cumsum(t_sorted)])[:-1]
    cum_m = np.concatenate([[0.0], np.cumsum(m_sorted)])[:-1]
    cross = float(np.sum(m_sorted * cum_t - t_sorted * cum_m))
    denom = 2 * total * total * p_overall * (1 - p_overall)
    return float(2 * cross / denom)


def information(counts: UnitCounts) -> float:
    """Information (entropy) index ``H``, a.k.a. Theil's segregation index."""
    if counts.is_degenerate():
        return float("nan")
    e_overall = _binary_entropy(counts.proportion)
    if e_overall == 0:
        return float("nan")
    e_units = _binary_entropy(counts.unit_proportions)
    weighted = float((counts.t * e_units).sum()) / (counts.total * e_overall)
    return float(1.0 - weighted)


def isolation(counts: UnitCounts) -> float:
    """Isolation index ``xPx``: probability that a random minority member
    meets a minority member in her unit."""
    if counts.is_degenerate():
        return float("nan")
    return float(
        ((counts.m / counts.minority_total) * counts.unit_proportions).sum()
    )


def interaction(counts: UnitCounts) -> float:
    """Interaction index ``xPy``: probability that a random minority member
    meets a majority member in her unit.  ``xPx + xPy = 1``."""
    if counts.is_degenerate():
        return float("nan")
    majority_prop = (counts.t - counts.m) / counts.t
    return float(((counts.m / counts.minority_total) * majority_prop).sum())


def atkinson(counts: UnitCounts, b: float = 0.5) -> float:
    """Atkinson index ``A(b)`` with inequality-aversion ``b`` in (0, 1)."""
    if not 0 < b < 1:
        raise ValueError(f"Atkinson shape parameter b must be in (0,1), got {b}")
    if counts.is_degenerate():
        return float("nan")
    p = counts.unit_proportions
    p_overall = counts.proportion
    terms = np.power(1 - p, 1 - b) * np.power(p, b) * counts.t
    inner = float(terms.sum()) / (p_overall * counts.total)
    # np.power, not the Python ``**``: NumPy's pow special-cases small
    # integral exponents (e.g. b=0.5 -> exponent 2.0 -> x*x) while libm's
    # pow does not, and the batched kernel must match bit for bit.
    return float(
        1.0
        - (p_overall / (1 - p_overall))
        * np.power(np.float64(inner), 1.0 / (1.0 - b))
    )
