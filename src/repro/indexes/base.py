"""Index registry: names, metadata and the default SCube index set.

The cube builder is "parametric to the indexes" (paper §2): it receives a
list of index names and fills one metric per cell and per index.  The
registry maps the canonical names — ``D``, ``G``, ``H``, ``Iso``,
``Int``, ``A`` — to their implementations and documents their ranges.

Every spec carries two implementations: the scalar ``func`` evaluating
one :class:`~repro.indexes.counts.UnitCounts`, and an optional
``batch_func`` (:mod:`repro.indexes.vectorized`) evaluating a whole
``(n_cells, n_units)`` minority-count matrix against one shared
population vector in one vectorized pass — the kernel the columnar cube
fill dispatches to through :meth:`IndexSpec.compute_batch`.  Custom
indexes registered without a ``batch_func`` transparently fall back to a
row-by-row scalar loop, so the batch entry point is always available.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Optional

import numpy as np

from repro.errors import SegregationIndexError
from repro.indexes import binary, vectorized
from repro.indexes.counts import UnitCounts

IndexFunc = Callable[[UnitCounts], float]
#: Batched form: ``(t, m)`` with ``t`` of shape ``(n_units,)`` and ``m``
#: of shape ``(n_cells, n_units)`` -> values of shape ``(n_cells,)``.
BatchIndexFunc = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class IndexSpec:
    """Metadata and implementation of one segregation index."""

    name: str
    long_name: str
    func: IndexFunc
    #: (low, high) theoretical bounds of the index value.
    bounds: tuple[float, float]
    #: True when 0 means "no segregation" and the maximum means complete
    #: segregation (false for exposure-type indexes like Interaction).
    higher_is_more_segregated: bool
    #: Optional batched kernel; None falls back to a scalar loop.
    batch_func: Optional[BatchIndexFunc] = None

    def compute(self, counts: UnitCounts) -> float:
        """Evaluate the index on per-unit counts."""
        return self.func(counts)

    def compute_batch(
        self,
        totals: np.ndarray,
        minority_matrix: np.ndarray,
    ) -> np.ndarray:
        """Evaluate the index on every row of a minority-count matrix.

        ``totals`` is the shared per-unit population vector of one
        context; ``minority_matrix`` holds one cell per row.  Empty units
        (``t_i == 0``) are dropped once up front, exactly as
        ``UnitCounts(drop_empty=True)`` does per cell, so results are
        bit-identical to calling :meth:`compute` row by row.
        """
        t = np.asarray(totals, dtype=np.float64)
        # C-contiguous rows, unconditionally: axis-1 reductions on
        # strided (e.g. Fortran-ordered) rows lose the pairwise
        # summation order the bit-identity contract depends on.
        m = np.ascontiguousarray(minority_matrix, dtype=np.float64)
        if m.ndim != 2 or m.shape[1] != len(t):
            raise SegregationIndexError(
                f"minority matrix of shape {m.shape} does not match "
                f"{len(t)} units"
            )
        keep = t > 0
        if not keep.all():
            # ``m[:, keep]`` comes back F-contiguous; reductions along
            # axis 1 must run on C-contiguous rows to be bit-identical
            # to the scalar path's 1-D sums.
            t, m = t[keep], np.ascontiguousarray(m[:, keep])
        return self.compute_batch_prepared(t, m)

    def compute_batch_prepared(
        self,
        totals: np.ndarray,
        minority_matrix: np.ndarray,
    ) -> np.ndarray:
        """:meth:`compute_batch` minus input preparation.

        Caller contract: both arrays are float64, empty units are
        already dropped, and ``minority_matrix`` rows are C-contiguous.
        Callers evaluating several indexes over the *same* batch (the
        columnar cube fill) prepare once and dispatch each spec here.
        """
        if self.batch_func is not None:
            return self.batch_func(totals, minority_matrix)
        return np.array(
            [
                self.func(UnitCounts(totals, row, drop_empty=False))
                for row in minority_matrix
            ],
            dtype=np.float64,
        )


_REGISTRY: dict[str, IndexSpec] = {}


def register(spec: IndexSpec) -> IndexSpec:
    """Add an index to the global registry (used for custom indexes too)."""
    key = spec.name.upper()
    if key in _REGISTRY:
        raise SegregationIndexError(f"index {spec.name!r} already registered")
    _REGISTRY[key] = spec
    return spec


def get_index(name: str) -> IndexSpec:
    """Look up an index by (case-insensitive) short name."""
    try:
        return _REGISTRY[name.upper()]
    except KeyError:
        raise SegregationIndexError(
            f"unknown index {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def resolve_indexes(names: "list[str] | None") -> list[IndexSpec]:
    """Resolve a list of index names, defaulting to all six SCube indexes."""
    if names is None:
        return list(DEFAULT_INDEXES)
    return [get_index(n) for n in names]


def all_index_names() -> list[str]:
    """Short names of every registered index."""
    return [spec.name for spec in _REGISTRY.values()]


DISSIMILARITY = register(
    IndexSpec("D", "Dissimilarity", binary.dissimilarity, (0.0, 1.0), True,
              batch_func=vectorized.dissimilarity)
)
GINI = register(IndexSpec("G", "Gini", binary.gini, (0.0, 1.0), True,
                          batch_func=vectorized.gini))
INFORMATION = register(
    IndexSpec("H", "Information", binary.information, (0.0, 1.0), True,
              batch_func=vectorized.information)
)
ISOLATION = register(
    IndexSpec("Iso", "Isolation", binary.isolation, (0.0, 1.0), True,
              batch_func=vectorized.isolation)
)
INTERACTION = register(
    IndexSpec("Int", "Interaction", binary.interaction, (0.0, 1.0), False,
              batch_func=vectorized.interaction)
)
ATKINSON = register(
    IndexSpec(
        "A",
        "Atkinson(0.5)",
        partial(binary.atkinson, b=0.5),
        (0.0, 1.0),
        True,
        batch_func=partial(vectorized.atkinson, b=0.5),
    )
)

#: The six indexes SCube computes out of the box (paper §2).
DEFAULT_INDEXES: tuple[IndexSpec, ...] = (
    DISSIMILARITY,
    GINI,
    INFORMATION,
    ISOLATION,
    INTERACTION,
    ATKINSON,
)
