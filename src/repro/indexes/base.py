"""Index registry: names, metadata and the default SCube index set.

The cube builder is "parametric to the indexes" (paper §2): it receives a
list of index names and fills one metric per cell and per index.  The
registry maps the canonical names — ``D``, ``G``, ``H``, ``Iso``,
``Int``, ``A`` — to their implementations and documents their ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable

from repro.errors import SegregationIndexError
from repro.indexes import binary
from repro.indexes.counts import UnitCounts

IndexFunc = Callable[[UnitCounts], float]


@dataclass(frozen=True)
class IndexSpec:
    """Metadata and implementation of one segregation index."""

    name: str
    long_name: str
    func: IndexFunc
    #: (low, high) theoretical bounds of the index value.
    bounds: tuple[float, float]
    #: True when 0 means "no segregation" and the maximum means complete
    #: segregation (false for exposure-type indexes like Interaction).
    higher_is_more_segregated: bool

    def compute(self, counts: UnitCounts) -> float:
        """Evaluate the index on per-unit counts."""
        return self.func(counts)


_REGISTRY: dict[str, IndexSpec] = {}


def register(spec: IndexSpec) -> IndexSpec:
    """Add an index to the global registry (used for custom indexes too)."""
    key = spec.name.upper()
    if key in _REGISTRY:
        raise SegregationIndexError(f"index {spec.name!r} already registered")
    _REGISTRY[key] = spec
    return spec


def get_index(name: str) -> IndexSpec:
    """Look up an index by (case-insensitive) short name."""
    try:
        return _REGISTRY[name.upper()]
    except KeyError:
        raise SegregationIndexError(
            f"unknown index {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def resolve_indexes(names: "list[str] | None") -> list[IndexSpec]:
    """Resolve a list of index names, defaulting to all six SCube indexes."""
    if names is None:
        return list(DEFAULT_INDEXES)
    return [get_index(n) for n in names]


def all_index_names() -> list[str]:
    """Short names of every registered index."""
    return [spec.name for spec in _REGISTRY.values()]


DISSIMILARITY = register(
    IndexSpec("D", "Dissimilarity", binary.dissimilarity, (0.0, 1.0), True)
)
GINI = register(IndexSpec("G", "Gini", binary.gini, (0.0, 1.0), True))
INFORMATION = register(
    IndexSpec("H", "Information", binary.information, (0.0, 1.0), True)
)
ISOLATION = register(
    IndexSpec("Iso", "Isolation", binary.isolation, (0.0, 1.0), True)
)
INTERACTION = register(
    IndexSpec("Int", "Interaction", binary.interaction, (0.0, 1.0), False)
)
ATKINSON = register(
    IndexSpec(
        "A",
        "Atkinson(0.5)",
        partial(binary.atkinson, b=0.5),
        (0.0, 1.0),
        True,
    )
)

#: The six indexes SCube computes out of the box (paper §2).
DEFAULT_INDEXES: tuple[IndexSpec, ...] = (
    DISSIMILARITY,
    GINI,
    INFORMATION,
    ISOLATION,
    INTERACTION,
    ATKINSON,
)
