"""Legacy setup shim: enables editable installs in offline environments
where the ``wheel`` package (needed by PEP 660 builds on old setuptools)
is unavailable.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
