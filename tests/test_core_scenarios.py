"""Tests of the three demo scenarios (paper §4)."""

from __future__ import annotations

import pytest

from repro.core.config import ClusteringConfig, CubeConfig, PipelineConfig
from repro.core.scenarios import (
    run_bipartite,
    run_director_graph,
    run_tabular,
)
from repro.data.italy import italy_tabular_individuals
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def cube_config():
    return CubeConfig(min_population=10, min_minority=3, max_sa_items=2,
                      max_ca_items=1)


class TestScenario1Tabular:
    def test_sector_units(self, italy_small, cube_config):
        seats, schema = italy_tabular_individuals(italy_small)
        result = run_tabular(seats, schema, "sector", cube_config)
        assert result.name == "tabular"
        assert result.n_units <= 20
        # The motivating question: how segregated are women across sectors?
        cell = result.cube.cell(sa={"gender": "F"})
        assert cell is not None
        assert 0 <= cell.value("D") <= 1
        assert "sector" not in result.cube.ca_attributes()

    def test_province_units(self, italy_small, cube_config):
        seats, schema = italy_tabular_individuals(italy_small)
        result = run_tabular(seats, schema, "province", cube_config)
        assert result.n_units <= 20
        assert "sector" in result.cube.ca_attributes()

    def test_timings_recorded(self, italy_small, cube_config):
        seats, schema = italy_tabular_individuals(italy_small)
        result = run_tabular(seats, schema, "sector", cube_config)
        assert set(result.timings) == {"table_builder", "cube_builder"}


class TestScenario2DirectorGraph:
    def test_units_are_director_communities(self, italy_small, cube_config):
        result = run_director_graph(italy_small, cube_config=cube_config)
        assert result.name == "director-graph"
        assert result.n_units > 1
        # Every director appears exactly once.
        assert len(result.final_table) == italy_small.n_individuals

    def test_threshold_clustering_variant(self, italy_small, cube_config):
        result = run_director_graph(
            italy_small,
            clustering_config=ClusteringConfig(method="threshold",
                                               min_weight=2.0),
            cube_config=cube_config,
        )
        base = run_director_graph(italy_small, cube_config=cube_config)
        assert result.n_units >= base.n_units

    def test_stoc_rejected_without_attributes(self, italy_small, cube_config):
        with pytest.raises(ConfigError, match="needs node attributes"):
            run_director_graph(
                italy_small,
                clustering_config=ClusteringConfig(method="stoc"),
                cube_config=cube_config,
            )


class TestScenario3Bipartite:
    def test_full_pipeline(self, italy_small, cube_config):
        result = run_bipartite(
            italy_small,
            PipelineConfig(
                clustering=ClusteringConfig(method="threshold", min_weight=2.0),
                cube=cube_config,
            ),
        )
        assert result.name == "bipartite"
        assert result.n_units > 1
        assert len(result.cube) > 0
        assert "graph_builder" in result.timings

    def test_default_config(self, italy_small):
        result = run_bipartite(italy_small)
        assert result.cube.cell(sa={"gender": "F"}) is not None
