"""Tests of the column-oriented Table and its column kinds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TableError
from repro.etl.table import (
    CategoricalColumn,
    IntColumn,
    MultiValuedColumn,
    Table,
)


class TestCategoricalColumn:
    def test_from_values_round_trip(self):
        col = CategoricalColumn.from_values(["a", "b", "a", "c"])
        assert col.values() == ["a", "b", "a", "c"]
        assert col.categories == ["a", "b", "c"]

    def test_code_of_and_mask(self):
        col = CategoricalColumn.from_values(["x", "y", "x"])
        assert col.code_of("y") == 1
        assert col.mask_eq("x").tolist() == [True, False, True]

    def test_mask_of_unseen_value_is_all_false(self):
        col = CategoricalColumn.from_values(["x"])
        assert col.mask_eq("zzz").tolist() == [False]

    def test_code_of_unknown_raises(self):
        col = CategoricalColumn.from_values(["x"])
        with pytest.raises(TableError, match="not in column"):
            col.code_of("nope")

    def test_out_of_range_codes_rejected(self):
        with pytest.raises(TableError):
            CategoricalColumn([0, 5], ["a", "b"])
        with pytest.raises(TableError):
            CategoricalColumn([-1], ["a"])

    def test_take_reorders(self):
        col = CategoricalColumn.from_values(["a", "b", "c"])
        taken = col.take(np.array([2, 0]))
        assert taken.values() == ["c", "a"]

    def test_value_counts(self):
        col = CategoricalColumn.from_values(["a", "b", "a"])
        assert col.value_counts() == {"a": 2, "b": 1}


class TestMultiValuedColumn:
    def test_from_values_round_trip(self):
        col = MultiValuedColumn.from_values([{"a", "b"}, set(), {"b"}])
        assert col.values() == [
            frozenset({"a", "b"}),
            frozenset(),
            frozenset({"b"}),
        ]

    def test_duplicates_within_row_collapsed(self):
        col = MultiValuedColumn.from_values([["a", "a", "b"]])
        assert col[0] == frozenset({"a", "b"})

    def test_mask_contains(self):
        col = MultiValuedColumn.from_values([{"a"}, {"b"}, {"a", "b"}])
        assert col.mask_contains("a").tolist() == [True, False, True]
        assert col.mask_contains("zzz").tolist() == [False, False, False]

    def test_value_counts(self):
        col = MultiValuedColumn.from_values([{"a"}, {"a", "b"}, set()])
        assert col.value_counts() == {"a": 2, "b": 1}

    def test_take(self):
        col = MultiValuedColumn.from_values([{"a"}, {"b"}])
        assert col.take(np.array([1])).values() == [frozenset({"b"})]


class TestIntColumn:
    def test_round_trip(self):
        col = IntColumn.from_values([3, 1, 2])
        assert col.values() == [3, 1, 2]
        assert col[1] == 1

    def test_mask_eq(self):
        col = IntColumn([1, 2, 1])
        assert col.mask_eq(1).tolist() == [True, False, True]


class TestTableConstruction:
    def test_from_rows_infers_kinds(self):
        table = Table.from_rows(
            ["name", "tags", "n"],
            [("a", {"x"}, 1), ("b", {"y", "z"}, 2)],
        )
        assert isinstance(table.column("name"), CategoricalColumn)
        assert isinstance(table.column("tags"), MultiValuedColumn)
        assert isinstance(table.column("n"), IntColumn)

    def test_from_dict(self):
        table = Table.from_dict({"a": ["x", "y"], "b": [1, 2]})
        assert len(table) == 2
        assert table.names == ["a", "b"]

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(TableError, match="width"):
            Table.from_rows(["a", "b"], [("x",)])

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(TableError, match="differing lengths"):
            Table(
                {
                    "a": CategoricalColumn.from_values(["x"]),
                    "b": CategoricalColumn.from_values(["x", "y"]),
                }
            )

    def test_bool_column_is_categorical(self):
        table = Table.from_dict({"flag": [True, False]})
        assert isinstance(table.column("flag"), CategoricalColumn)


class TestTableOperations:
    @pytest.fixture()
    def table(self):
        return Table.from_dict(
            {
                "g": ["F", "M", "F", "M"],
                "unit": [0, 0, 1, 1],
                "tags": [{"a"}, {"b"}, {"a", "b"}, set()],
            }
        )

    def test_filter_by_bool_mask(self, table):
        filtered = table.filter(np.array([True, False, True, False]))
        assert len(filtered) == 2
        assert filtered.categorical("g").values() == ["F", "F"]

    def test_filter_by_positions(self, table):
        filtered = table.filter(np.array([3, 0]))
        assert filtered.ints("unit").values() == [1, 0]

    def test_select_orders_columns(self, table):
        sel = table.select(["unit", "g"])
        assert sel.names == ["unit", "g"]

    def test_row_decodes(self, table):
        row = table.row(2)
        assert row == {"g": "F", "unit": 1, "tags": frozenset({"a", "b"})}

    def test_row_out_of_range(self, table):
        with pytest.raises(TableError):
            table.row(4)

    def test_with_column_replaces(self, table):
        new = table.with_column("unit", IntColumn([9, 9, 9, 9]))
        assert new.ints("unit").values() == [9, 9, 9, 9]
        assert table.ints("unit").values() == [0, 0, 1, 1]

    def test_with_column_length_checked(self, table):
        with pytest.raises(TableError):
            table.with_column("bad", IntColumn([1]))

    def test_without_columns(self, table):
        assert table.without_columns(["tags"]).names == ["g", "unit"]

    def test_missing_column_raises(self, table):
        with pytest.raises(TableError, match="no column"):
            table.column("nope")

    def test_kind_assertions(self, table):
        with pytest.raises(TableError, match="expected categorical"):
            table.categorical("unit")
        with pytest.raises(TableError, match="expected multivalued"):
            table.multivalued("g")
        with pytest.raises(TableError, match="expected int"):
            table.ints("g")

    def test_head_and_iter_rows(self, table):
        assert len(table.head(2)) == 2
        assert len(list(table.iter_rows())) == 4

    def test_contains(self, table):
        assert "g" in table
        assert "zzz" not in table
