"""Tests of the weighted undirected graph storage layer."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph.graph import Graph


class TestConstruction:
    def test_add_edge_is_symmetric(self):
        g = Graph(3)
        g.add_edge(0, 1, 2.0)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.weight(0, 1) == 2.0
        assert g.weight(1, 0) == 2.0

    def test_parallel_edges_accumulate(self):
        g = Graph(2)
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 1, 2.5)
        assert g.weight(0, 1) == 3.5
        assert g.n_edges == 1

    def test_self_loop_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError, match="self-loop"):
            g.add_edge(1, 1)

    def test_non_positive_weight_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, 0.0)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, -1.0)

    def test_out_of_range_node_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError, match="out of range"):
            g.add_edge(0, 2)
        with pytest.raises(GraphError):
            g.degree(-1)

    def test_from_edges(self):
        g = Graph.from_edges(4, [(0, 1, 1.0), (2, 3, 5.0)])
        assert g.n_edges == 2
        assert g.weight(2, 3) == 5.0

    def test_negative_size_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)


class TestQueries:
    @pytest.fixture()
    def graph(self):
        return Graph.from_edges(
            5, [(0, 1, 1.0), (0, 2, 2.0), (1, 2, 3.0), (3, 4, 1.0)]
        )

    def test_degree_and_weighted_degree(self, graph):
        assert graph.degree(0) == 2
        assert graph.weighted_degree(0) == 3.0
        assert graph.degree(3) == 1

    def test_neighbors(self, graph):
        assert sorted(graph.neighbors(0)) == [1, 2]
        assert dict(graph.neighbor_weights(1)) == {0: 1.0, 2: 3.0}

    def test_edges_enumerated_once(self, graph):
        edges = list(graph.edges())
        assert len(edges) == 4
        assert all(u < v for u, v, _ in edges)

    def test_totals(self, graph):
        assert graph.total_weight() == 7.0
        assert graph.n_edges == 4

    def test_isolated_nodes(self):
        g = Graph(4)
        g.add_edge(0, 1)
        assert g.isolated_nodes() == [2, 3]

    def test_weight_of_absent_edge_is_zero(self, graph):
        assert graph.weight(0, 4) == 0.0

    def test_weight_histogram(self, graph):
        assert graph.weight_histogram() == {1.0: 2, 2.0: 1, 3.0: 1}


class TestCSR:
    def test_csr_shape_and_sorting(self):
        g = Graph.from_edges(3, [(0, 2, 1.0), (0, 1, 2.0)])
        indptr, indices, weights = g.csr()
        assert indptr.tolist() == [0, 2, 3, 4]
        assert indices[:2].tolist() == [1, 2]      # sorted neighbours
        assert weights[:2].tolist() == [2.0, 1.0]

    def test_csr_invalidated_on_mutation(self):
        g = Graph(3)
        g.add_edge(0, 1)
        first = g.csr()
        g.add_edge(1, 2)
        second = g.csr()
        assert len(second[1]) == 4
        assert len(first[1]) == 2


class TestSubgraph:
    def test_subgraph_by_edges_filters(self):
        g = Graph.from_edges(4, [(0, 1, 1.0), (1, 2, 5.0), (2, 3, 2.0)])
        heavy = g.subgraph_by_edges(lambda u, v, w: w >= 2.0)
        assert heavy.n_edges == 2
        assert not heavy.has_edge(0, 1)
        assert heavy.n_nodes == 4
