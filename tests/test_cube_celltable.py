"""Tests of the columnar cube core: CellTable and the batched fill.

Pins the PR 3 contract: the columnar fill engine produces cubes
**bit-identical** to the per-cell reference path (same cells in the same
order, same counts, same index bits), and the array-routed query
primitives (top-k, slice, children) agree with their brute-force
per-object formulations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cube.builder import SegregationDataCubeBuilder, build_cube
from repro.cube.cell import CellStats
from repro.cube.coordinates import describe_key, make_key
from repro.cube.cube import check_same_cells
from repro.cube.table import CellTable, pack_items, unpack_masks
from repro.data.synthetic import random_final_table
from repro.errors import CubeError


@pytest.fixture(scope="module")
def dataset():
    return random_final_table(
        n_rows=5000,
        n_units=13,
        sa_attributes={"g": 2, "a": 3},
        ca_attributes={"r": 4, "s": 3},
        multi_valued_ca={"mv": 3},
        seed=23,
        skew=0.4,
    )


@pytest.fixture(scope="module")
def engines(dataset):
    table, schema = dataset
    limits = {"min_population": 25, "min_minority": 6,
              "max_sa_items": 2, "max_ca_items": 2}
    columnar = SegregationDataCubeBuilder(
        engine="columnar", **limits
    ).build(table, schema)
    percell = SegregationDataCubeBuilder(
        engine="percell", **limits
    ).build(table, schema)
    return columnar, percell


class TestColumnarEquivalence:
    def test_same_cells_same_order(self, engines):
        columnar, percell = engines
        assert list(columnar.keys()) == list(percell.keys())

    def test_bit_identical_counts_and_indexes(self, engines):
        columnar, percell = engines
        # atol=0: not approximately equal — *identical*.
        assert check_same_cells(columnar, percell, atol=0.0) == []

    def test_engines_recorded_in_metadata(self, engines):
        columnar, percell = engines
        assert columnar.metadata.extra["engine"] == "columnar"
        assert percell.metadata.extra["engine"] == "percell"

    def test_bad_engine_rejected(self):
        with pytest.raises(CubeError, match="engine"):
            SegregationDataCubeBuilder(engine="bogus")

    def test_to_rows_identical(self, engines):
        columnar, percell = engines
        assert columnar.to_rows() == percell.to_rows()

    def test_closed_mode_lazy_resolution_exact(self, dataset):
        table, schema = dataset
        limits = {"min_population": 25, "min_minority": 6,
                  "max_sa_items": 2, "max_ca_items": 2}
        full = build_cube(table, schema, **limits)
        closed = SegregationDataCubeBuilder(
            engine="columnar", mode="closed", **limits
        ).build(table, schema)
        assert len(closed) <= len(full)
        for key in full.keys():
            a = full.cell_by_key(key)
            b = closed.cell_by_key(key)   # materialised or lazily resolved
            assert b is not None
            assert (a.population, a.minority) == (b.population, b.minority)
            for name in full.metadata.index_names:
                va, vb = a.value(name), b.value(name)
                assert (np.isnan(va) and np.isnan(vb)) or va == vb

    def test_tiny_fill_batches_bit_identical(self, dataset, monkeypatch):
        """Splitting contexts across fill batches must not change bits."""
        import repro.cube.builder as builder_mod

        monkeypatch.setattr(builder_mod, "_FILL_BATCH_CELLS", 3)
        table, schema = dataset
        limits = {"min_population": 25, "min_minority": 6,
                  "max_sa_items": 2, "max_ca_items": 2}
        tiny_batches = SegregationDataCubeBuilder(
            engine="columnar", **limits
        ).build(table, schema)
        monkeypatch.undo()
        one_batch = SegregationDataCubeBuilder(
            engine="columnar", **limits
        ).build(table, schema)
        assert list(tiny_batches.keys()) == list(one_batch.keys())
        assert check_same_cells(tiny_batches, one_batch, atol=0.0) == []

    def test_columnar_matches_custom_index_fallback(self, dataset):
        """Custom indexes without a batch kernel run the scalar loop."""
        from repro.indexes.base import _REGISTRY, IndexSpec, register

        name = "TProp"
        if name.upper() not in _REGISTRY:
            register(IndexSpec(name, "Minority proportion",
                               lambda c: c.proportion, (0.0, 1.0), True))
        try:
            table, schema = dataset
            limits = {"min_population": 25, "min_minority": 6,
                      "max_sa_items": 1, "max_ca_items": 1,
                      "indexes": ["D", name]}
            columnar = build_cube(table, schema, engine="columnar", **limits)
            percell = build_cube(table, schema, engine="percell", **limits)
            assert check_same_cells(columnar, percell, atol=0.0) == []
        finally:
            _REGISTRY.pop(name.upper(), None)


class TestArrayRoutedQueries:
    def test_top_matches_reference_sort(self, engines):
        columnar, _ = engines
        for index_name in ("D", "G", "Int"):
            for ascending in (False, True):
                for k in (1, 5, 1000):
                    got = columnar.top(index_name, k=k, min_minority=8,
                                       ascending=ascending)
                    reference = [
                        stats
                        for stats in columnar
                        if not stats.is_context_only
                        and stats.is_defined(index_name)
                        and stats.minority >= 8
                        and stats.population >= 0
                        and stats.n_units >= 2
                    ]
                    reference.sort(
                        key=lambda s: (
                            s.value(index_name) if ascending
                            else -s.value(index_name),
                            describe_key(s.key, columnar.dictionary),
                        )
                    )
                    assert [s.key for s in got] == [
                        s.key for s in reference[:k]
                    ]

    def test_top_unknown_index_empty(self, engines):
        columnar, _ = engines
        assert columnar.top("nope", k=3) == []

    def test_slice_matches_subset_scan(self, engines):
        columnar, _ = engines
        sliced = columnar.slice(ca={"r": "r0"})
        from repro.cube.coordinates import encode_query

        want = encode_query(columnar.dictionary, ca={"r": "r0"})
        brute = [
            key for key in columnar.keys()
            if want[0] <= key[0] and want[1] <= key[1]
        ]
        assert sorted(map(str, (s.key for s in sliced))) == sorted(
            map(str, brute)
        )
        assert len(brute) > 0

    def test_children_matches_brute_force(self, engines):
        columnar, _ = engines
        root = make_key([], [])
        got = {s.key for s in columnar.children(root)}
        brute = {
            key for key in columnar.keys()
            if len(key[0]) + len(key[1]) == 1
        }
        assert got == brute

    def test_value_by_key_reads_column(self, engines):
        columnar, _ = engines
        for stats in list(columnar)[:20]:
            v = columnar.value_by_key("D", stats.key)
            sv = stats.value("D")
            assert (np.isnan(v) and np.isnan(sv)) or v == sv


class TestCellTable:
    def test_from_cells_round_trip(self):
        cells = {
            make_key([], []): CellStats(make_key([], []), 10, 10, 2,
                                        {"D": float("nan")}),
            make_key([0], [2]): CellStats(make_key([0], [2]), 8, 3, 2,
                                          {"D": 0.25}),
        }
        table = CellTable.from_cells(cells, ["D"], 4)
        assert len(table) == 2
        restored = table.stats(1)
        assert restored == cells[make_key([0], [2])]
        assert table.row_of(make_key([0], [2])) == 1
        assert table.row_of(make_key([1], [])) is None

    def test_from_cells_keeps_undeclared_index_entries(self):
        """Hand-built cells may carry extras beyond metadata names."""
        key = make_key([0], [2])
        cells = {key: CellStats(key, 8, 3, 2, {"D": 0.25, "G": 0.4})}
        table = CellTable.from_cells(cells, ["D"], 4)
        assert table.value_at(0, "G") == 0.4
        assert table.stats(0).value("G") == 0.4

    def test_column_length_validated(self):
        with pytest.raises(ValueError, match="rows for"):
            CellTable([make_key([], [])], [1], [1], [1],
                      {"D": np.zeros(2)}, 2)

    def test_pack_items_beyond_one_word(self):
        mask = pack_items([0, 63, 64, 130], 3)
        assert mask[0] == (1 | (1 << 63))
        assert mask[1] == 1
        assert mask[2] == 1 << 2

    def test_top_rows_ignores_nan_cells(self):
        nan = float("nan")
        keys = [make_key([0], [i + 1]) for i in range(5)]
        table = CellTable(keys, [9] * 5, [4] * 5, [2] * 5,
                          {"D": np.array([1.0, 2.0, nan, nan, nan])}, 8)
        rows = table.top_rows("D", k=4, mask=np.ones(5, dtype=bool),
                              descending=True, tie_break=lambda r: r)
        assert rows == [1, 0]

    def test_hand_built_keys_beyond_dictionary_accepted(self):
        """Keys past n_items size the masks up instead of crashing."""
        key = make_key([70], [])
        cells = {key: CellStats(key, 8, 3, 2, {"D": 0.25})}
        table = CellTable.from_cells(cells, ["D"], 1)
        assert table.row_of(key) == 0
        assert table.superset_mask([70], []).tolist() == [True]
        assert table.superset_mask([71], []).tolist() == [False]

    def test_superset_mask_out_of_range_items_match_nothing(self):
        keys = [make_key([0], [1]), make_key([], [1])]
        table = CellTable(keys, [5, 5], [2, 2], [1, 1], {}, 2)
        # Like the frozenset subset test: unknown ids -> no match.
        assert table.superset_mask([999], []).tolist() == [False, False]
        assert table.superset_mask([], [64]).tolist() == [False, False]
        assert table.superset_mask([-1], []).tolist() == [False, False]

    def test_children_with_foreign_key_is_empty(self, engines):
        columnar, _ = engines
        foreign = make_key([10_000], [])
        assert columnar.children(foreign) == []

    def test_from_arrays_reconstructs_derived_state(self, engines):
        """Keys, sizes and the row index rebuild from the bare arrays."""
        columnar, _ = engines
        table = columnar.table
        clone = CellTable.from_arrays(table.arrays)
        assert clone.keys == table.keys
        assert np.array_equal(clone.sa_sizes, table.sa_sizes)
        assert np.array_equal(clone.ca_sizes, table.ca_sizes)
        for key in table.keys[:25]:
            assert clone.row_of(key) == table.row_of(key)
        row = int(np.flatnonzero(table.defined_mask("D"))[0])
        assert clone.stats(row) == table.stats(row)

    def test_unpack_masks_inverts_pack(self):
        parts = [frozenset(), frozenset({0, 63}), frozenset({64, 130})]
        masks = CellTable._pack_parts(parts, 3)
        assert unpack_masks(masks) == parts


class TestPointLookupRouting:
    """Regression: point lookups are O(1) hash hits, never key scans."""

    class _ScanGuard(list):
        def __iter__(self):
            raise AssertionError("point lookup iterated the keys list")

    def test_point_lookups_never_scan_keys(self, engines):
        columnar, _ = engines
        table = columnar.table
        sample = table.keys[:10]
        absent = make_key([0, 1], [9_999])
        table.warm()  # lazy state built; lookups must not touch keys
        original = table._keys
        table._keys = self._ScanGuard(original)
        try:
            for key in sample:
                assert columnar.cell_by_key(key) is not None
                assert key in columnar
                value = columnar.value_by_key("D", key)
                assert isinstance(value, float)
            assert table.row_of(absent) is None
        finally:
            table._keys = original

    def test_superset_mask_wide_dictionaries(self):
        keys = [
            make_key([0, 70], [100]),
            make_key([0], [100]),
            make_key([70], []),
        ]
        table = CellTable(
            keys, [5, 5, 5], [2, 2, 2], [1, 1, 1], {}, 140
        )
        assert table.superset_mask([0], [100]).tolist() == [
            True, True, False
        ]
        assert table.superset_mask([70], []).tolist() == [
            True, False, True
        ]
        assert table.superset_mask([], []).tolist() == [True, True, True]
