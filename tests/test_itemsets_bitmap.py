"""Unit and property tests of the EWAH-style compressed bitmap."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MiningError
from repro.itemsets.bitmap import EWAHBitmap, WORD_BITS


class TestConstruction:
    def test_from_bools_round_trip(self):
        bits = np.array([True, False, True, True] + [False] * 100)
        bitmap = EWAHBitmap.from_bools(bits)
        assert bitmap.to_bools().tolist() == bits.tolist()
        assert bitmap.count() == 3

    def test_from_indices(self):
        bitmap = EWAHBitmap.from_indices([0, 5, 63, 64, 127], 200)
        assert bitmap.to_indices().tolist() == [0, 5, 63, 64, 127]

    def test_from_indices_out_of_range(self):
        with pytest.raises(MiningError):
            EWAHBitmap.from_indices([10], 5)
        with pytest.raises(MiningError):
            EWAHBitmap.from_indices([-1], 5)

    def test_zeros_and_ones(self):
        assert EWAHBitmap.zeros(130).count() == 0
        assert EWAHBitmap.ones(130).count() == 130

    def test_empty_bitmap(self):
        bitmap = EWAHBitmap.from_bools(np.array([], dtype=bool))
        assert bitmap.count() == 0
        assert bitmap.size == 0
        assert bitmap.to_bools().tolist() == []

    def test_negative_size_rejected(self):
        with pytest.raises(MiningError):
            EWAHBitmap(-1)


class TestCompression:
    def test_long_zero_run_compresses(self):
        bitmap = EWAHBitmap.from_indices([0, 100_000], 100_001)
        assert bitmap.memory_words() < 10
        assert bitmap.n_words == (100_001 + 63) // 64
        assert bitmap.compression_ratio() > 100

    def test_all_ones_compresses(self):
        bitmap = EWAHBitmap.ones(64 * 1000)
        assert bitmap.memory_words() <= 2

    def test_random_data_does_not_crash(self):
        rng = np.random.default_rng(0)
        bits = rng.random(1000) < 0.5
        bitmap = EWAHBitmap.from_bools(bits)
        assert bitmap.count() == int(bits.sum())


class TestAccess:
    def test_get_across_segments(self):
        bitmap = EWAHBitmap.from_indices([3, 64, 200], 300)
        assert bitmap.get(3) and bitmap.get(64) and bitmap.get(200)
        assert not bitmap.get(4) and not bitmap.get(299)

    def test_get_out_of_range(self):
        bitmap = EWAHBitmap.zeros(10)
        with pytest.raises(MiningError):
            bitmap.get(10)

    def test_repr_mentions_counts(self):
        text = repr(EWAHBitmap.from_indices([1], 100))
        assert "set=1" in text


class TestLogicalOps:
    @pytest.fixture()
    def pair(self):
        rng = np.random.default_rng(7)
        a = rng.random(500) < 0.3
        b = rng.random(500) < 0.6
        return a, b, EWAHBitmap.from_bools(a), EWAHBitmap.from_bools(b)

    def test_and(self, pair):
        a, b, ba, bb = pair
        assert (ba & bb).to_bools().tolist() == (a & b).tolist()

    def test_or(self, pair):
        a, b, ba, bb = pair
        assert (ba | bb).to_bools().tolist() == (a | b).tolist()

    def test_xor(self, pair):
        a, b, ba, bb = pair
        assert (ba ^ bb).to_bools().tolist() == (a ^ b).tolist()

    def test_andnot(self, pair):
        a, b, ba, bb = pair
        assert ba.logical_andnot(bb).to_bools().tolist() == (a & ~b).tolist()

    def test_not_respects_size(self, pair):
        a, _, ba, _ = pair
        flipped = ~ba
        assert flipped.to_bools().tolist() == (~a).tolist()
        assert flipped.count() == int((~a).sum())

    def test_intersect_count(self, pair):
        a, b, ba, bb = pair
        assert ba.intersect_count(bb) == int((a & b).sum())

    def test_size_mismatch_rejected(self):
        with pytest.raises(MiningError, match="sizes differ"):
            EWAHBitmap.zeros(10) & EWAHBitmap.zeros(11)

    def test_equality_and_hash(self):
        a = EWAHBitmap.from_indices([1, 2], 100)
        b = EWAHBitmap.from_indices([1, 2], 100)
        c = EWAHBitmap.from_indices([1, 3], 100)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not a bitmap"


# ---------------------------------------------------------------------------
# Property tests: EWAH ops must agree with NumPy boolean semantics.
# ---------------------------------------------------------------------------

bool_arrays = st.integers(0, 400).flatmap(
    lambda n: st.lists(st.booleans(), min_size=n, max_size=n)
)


@given(bool_arrays)
@settings(max_examples=80, deadline=None)
def test_round_trip_property(bits):
    arr = np.array(bits, dtype=bool)
    bitmap = EWAHBitmap.from_bools(arr)
    assert bitmap.to_bools().tolist() == bits
    assert bitmap.count() == int(arr.sum())


@given(st.integers(1, 500), st.data())
@settings(max_examples=80, deadline=None)
def test_binary_ops_match_numpy(size, data):
    a = np.array(data.draw(st.lists(st.booleans(), min_size=size,
                                    max_size=size)), dtype=bool)
    b = np.array(data.draw(st.lists(st.booleans(), min_size=size,
                                    max_size=size)), dtype=bool)
    ba, bb = EWAHBitmap.from_bools(a), EWAHBitmap.from_bools(b)
    assert (ba & bb).to_bools().tolist() == (a & b).tolist()
    assert (ba | bb).to_bools().tolist() == (a | b).tolist()
    assert (ba ^ bb).to_bools().tolist() == (a ^ b).tolist()
    assert (~ba).to_bools().tolist() == (~a).tolist()
    assert ba.intersect_count(bb) == int((a & b).sum())


@given(bool_arrays)
@settings(max_examples=60, deadline=None)
def test_double_negation_is_identity(bits):
    bitmap = EWAHBitmap.from_bools(np.array(bits, dtype=bool))
    assert (~~bitmap) == bitmap


@given(bool_arrays)
@settings(max_examples=60, deadline=None)
def test_de_morgan(bits):
    arr = np.array(bits, dtype=bool)
    a = EWAHBitmap.from_bools(arr)
    b = EWAHBitmap.from_bools(~arr)
    assert ~(a & b) == (~a | ~b)
    assert ~(a | b) == (~a & ~b)


@given(st.lists(st.integers(0, 4999), max_size=60), st.just(5000))
@settings(max_examples=60, deadline=None)
def test_sparse_indices_round_trip(indices, size):
    unique = sorted(set(indices))
    bitmap = EWAHBitmap.from_indices(unique, size)
    assert bitmap.to_indices().tolist() == unique
    # Sparse bitmaps must actually compress.
    if len(unique) < 20:
        assert bitmap.memory_words() < bitmap.n_words or bitmap.n_words < 20


@given(bool_arrays)
@settings(max_examples=60, deadline=None)
def test_get_matches_array(bits):
    arr = np.array(bits, dtype=bool)
    bitmap = EWAHBitmap.from_bools(arr)
    for i in range(0, len(bits), max(1, len(bits) // 7)):
        assert bitmap.get(i) == bool(arr[i])
