"""Property-based tests (hypothesis) of segregation-index invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.indexes.binary import (
    atkinson,
    dissimilarity,
    gini,
    information,
    interaction,
    isolation,
)
from repro.indexes.counts import UnitCounts

EVENNESS_INDEXES = (dissimilarity, gini, information, atkinson)


@st.composite
def unit_counts(draw, min_units=1, max_units=25):
    """Random non-degenerate per-unit counts."""
    n = draw(st.integers(min_units, max_units))
    t = draw(
        st.lists(st.integers(1, 60), min_size=n, max_size=n)
    )
    m = [draw(st.integers(0, ti)) for ti in t]
    counts = UnitCounts(t, m)
    assume(not counts.is_degenerate())
    return counts


@given(unit_counts())
@settings(max_examples=120, deadline=None)
def test_evenness_indexes_in_unit_interval(counts):
    for func in EVENNESS_INDEXES:
        value = func(counts)
        assert -1e-9 <= value <= 1 + 1e-9, func.__name__


@given(unit_counts())
@settings(max_examples=120, deadline=None)
def test_isolation_plus_interaction_is_one(counts):
    assert isolation(counts) + interaction(counts) == pytest.approx(1.0)


@given(unit_counts())
@settings(max_examples=120, deadline=None)
def test_gini_dominates_dissimilarity(counts):
    assert gini(counts) >= dissimilarity(counts) - 1e-9


@given(unit_counts())
@settings(max_examples=120, deadline=None)
def test_isolation_at_least_overall_proportion(counts):
    assert isolation(counts) >= counts.proportion - 1e-9


@given(unit_counts())
@settings(max_examples=100, deadline=None)
def test_symmetry_under_group_swap(counts):
    """D, G, H and A(0.5) are minority/majority symmetric."""
    swapped = counts.complement()
    assume(not swapped.is_degenerate())
    assert dissimilarity(counts) == pytest.approx(dissimilarity(swapped))
    assert gini(counts) == pytest.approx(gini(swapped))
    assert information(counts) == pytest.approx(information(swapped))
    assert atkinson(counts, b=0.5) == pytest.approx(
        atkinson(swapped, b=0.5)
    )


@given(unit_counts())
@settings(max_examples=100, deadline=None)
def test_invariance_under_unit_splitting(counts):
    """Splitting every unit into two equal-proportion halves changes nothing.

    Implemented by duplicating each (t, m) unit: two copies of (t, m)
    carry the same proportions as one (2t, 2m) unit.
    """
    doubled = UnitCounts(
        np.concatenate([counts.t, counts.t]),
        np.concatenate([counts.m, counts.m]),
    )
    merged = UnitCounts(2 * counts.t, 2 * counts.m)
    for func in (dissimilarity, gini, information, isolation, interaction,
                 atkinson):
        assert func(doubled) == pytest.approx(func(merged), abs=1e-9)


@given(unit_counts(), st.integers(2, 7))
@settings(max_examples=100, deadline=None)
def test_scale_invariance(counts, k):
    """Multiplying every count by k leaves all indexes unchanged."""
    scaled = UnitCounts(counts.t * k, counts.m * k)
    for func in (dissimilarity, gini, information, isolation, interaction,
                 atkinson):
        assert func(scaled) == pytest.approx(func(counts), abs=1e-9)


@given(unit_counts())
@settings(max_examples=100, deadline=None)
def test_empty_unit_padding_is_ignored(counts):
    padded = UnitCounts(
        np.concatenate([counts.t, [0, 0, 0]]),
        np.concatenate([counts.m, [0, 0, 0]]),
    )
    for func in (dissimilarity, gini, information, isolation, interaction,
                 atkinson):
        assert func(padded) == pytest.approx(func(counts), abs=1e-12)


@given(unit_counts(min_units=2))
@settings(max_examples=100, deadline=None)
def test_unit_order_irrelevant(counts):
    rng = np.random.default_rng(0)
    perm = rng.permutation(counts.n_units)
    shuffled = UnitCounts(counts.t[perm], counts.m[perm])
    for func in (dissimilarity, gini, information, isolation, interaction,
                 atkinson):
        assert func(shuffled) == pytest.approx(func(counts), abs=1e-9)


@given(st.integers(2, 20), st.integers(1, 50))
@settings(max_examples=60, deadline=None)
def test_complete_segregation_maximises_everything(n_pairs, unit_size):
    """Alternating all-minority/all-majority units: all indexes extreme."""
    t = [unit_size] * (2 * n_pairs)
    m = [unit_size if i % 2 == 0 else 0 for i in range(2 * n_pairs)]
    counts = UnitCounts(t, m)
    assert dissimilarity(counts) == pytest.approx(1.0)
    assert gini(counts) == pytest.approx(1.0)
    assert information(counts) == pytest.approx(1.0)
    assert atkinson(counts) == pytest.approx(1.0)
    assert isolation(counts) == pytest.approx(1.0)
    assert interaction(counts) == pytest.approx(0.0)


@given(st.integers(1, 20), st.integers(1, 30), st.integers(1, 30))
@settings(max_examples=60, deadline=None)
def test_uniform_distribution_minimises_evenness(n_units, minority_per_unit,
                                                 majority_per_unit):
    t = [minority_per_unit + majority_per_unit] * n_units
    m = [minority_per_unit] * n_units
    counts = UnitCounts(t, m)
    assert dissimilarity(counts) == pytest.approx(0.0, abs=1e-12)
    assert gini(counts) == pytest.approx(0.0, abs=1e-12)
    assert information(counts) == pytest.approx(0.0, abs=1e-9)
    assert atkinson(counts) == pytest.approx(0.0, abs=1e-9)
