"""Tests of the multigroup index generalisations."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.indexes.binary import dissimilarity, gini, information
from repro.indexes.counts import GroupCountsMatrix, UnitCounts
from repro.indexes.multigroup import (
    multigroup_dissimilarity,
    multigroup_entropy,
    multigroup_gini,
    multigroup_information,
    normalized_exposure,
)

ALL_MULTIGROUP = (
    multigroup_dissimilarity,
    multigroup_gini,
    multigroup_information,
    normalized_exposure,
)


@st.composite
def group_matrices(draw, max_units=12, max_groups=4):
    n_units = draw(st.integers(2, max_units))
    n_groups = draw(st.integers(2, max_groups))
    counts = [
        [draw(st.integers(0, 30)) for _ in range(n_groups)]
        for _ in range(n_units)
    ]
    matrix = GroupCountsMatrix(counts)
    assume(matrix.total > 0)
    assume(int((matrix.group_totals > 0).sum()) >= 2)
    return matrix


class TestEntropy:
    def test_uniform_two_groups(self):
        assert multigroup_entropy(np.array([0.5, 0.5])) == pytest.approx(
            math.log(2)
        )

    def test_degenerate_single_mass(self):
        assert multigroup_entropy(np.array([1.0, 0.0])) == pytest.approx(0.0)


class TestBinaryConsistency:
    """For K=2 the multigroup indexes coincide with the binary ones."""

    @pytest.mark.parametrize("seed", range(6))
    def test_information_matches_binary(self, seed):
        rng = np.random.default_rng(seed)
        t = rng.integers(1, 30, 10)
        m = rng.integers(0, t + 1)
        binary_counts = UnitCounts(t, m)
        if binary_counts.is_degenerate():
            pytest.skip("degenerate draw")
        matrix = GroupCountsMatrix(np.column_stack([m, t - m]))
        assert multigroup_information(matrix) == pytest.approx(
            information(binary_counts), abs=1e-9
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_dissimilarity_matches_binary(self, seed):
        rng = np.random.default_rng(50 + seed)
        t = rng.integers(1, 30, 10)
        m = rng.integers(0, t + 1)
        binary_counts = UnitCounts(t, m)
        if binary_counts.is_degenerate():
            pytest.skip("degenerate draw")
        matrix = GroupCountsMatrix(np.column_stack([m, t - m]))
        # Reardon-Firebaugh D reduces to binary D at K=2.
        assert multigroup_dissimilarity(matrix) == pytest.approx(
            dissimilarity(binary_counts), abs=1e-9
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_gini_matches_binary(self, seed):
        rng = np.random.default_rng(90 + seed)
        t = rng.integers(1, 30, 8)
        m = rng.integers(0, t + 1)
        binary_counts = UnitCounts(t, m)
        if binary_counts.is_degenerate():
            pytest.skip("degenerate draw")
        matrix = GroupCountsMatrix(np.column_stack([m, t - m]))
        assert multigroup_gini(matrix) == pytest.approx(
            gini(binary_counts), abs=1e-9
        )


class TestExtremes:
    def test_complete_separation_is_one(self):
        # Each unit hosts exactly one group.
        matrix = GroupCountsMatrix([[10, 0, 0], [0, 10, 0], [0, 0, 10]])
        assert multigroup_dissimilarity(matrix) == pytest.approx(1.0)
        assert multigroup_gini(matrix) == pytest.approx(1.0)
        assert multigroup_information(matrix) == pytest.approx(1.0)
        assert normalized_exposure(matrix) == pytest.approx(1.0)

    def test_even_mix_is_zero(self):
        matrix = GroupCountsMatrix([[6, 3, 1], [12, 6, 2], [6, 3, 1]])
        assert multigroup_dissimilarity(matrix) == pytest.approx(0.0, abs=1e-12)
        assert multigroup_gini(matrix) == pytest.approx(0.0, abs=1e-12)
        assert multigroup_information(matrix) == pytest.approx(0.0, abs=1e-12)
        assert normalized_exposure(matrix) == pytest.approx(0.0, abs=1e-12)

    def test_degenerate_returns_nan(self):
        matrix = GroupCountsMatrix([[5, 0], [7, 0]])
        for func in ALL_MULTIGROUP:
            assert math.isnan(func(matrix))


@given(group_matrices())
@settings(max_examples=80, deadline=None)
def test_multigroup_indexes_in_unit_interval(matrix):
    for func in ALL_MULTIGROUP:
        value = func(matrix)
        assert -1e-9 <= value <= 1 + 1e-9, func.__name__


@given(group_matrices(), st.integers(2, 5))
@settings(max_examples=60, deadline=None)
def test_multigroup_scale_invariance(matrix, k):
    scaled = GroupCountsMatrix(matrix.counts * k)
    for func in ALL_MULTIGROUP:
        assert func(scaled) == pytest.approx(func(matrix), abs=1e-9)


@given(group_matrices())
@settings(max_examples=60, deadline=None)
def test_multigroup_gini_dominates_dissimilarity(matrix):
    assert multigroup_gini(matrix) >= multigroup_dissimilarity(matrix) - 1e-9
