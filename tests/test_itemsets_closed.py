"""Tests of closed-itemset utilities against brute-force oracles."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.itemsets.closed import (
    closure_map,
    equivalence_classes,
    filter_closed,
    filter_maximal,
    verify_closed,
)
from repro.itemsets.eclat import closure_of, mine_eclat
from repro.itemsets.miner import mine

from tests.oracles import closed_bruteforce, frequent_itemsets_bruteforce
from tests.test_itemsets_miners import CLASSIC_DB, make_db, random_dbs


class TestFilterClosed:
    def test_hand_example(self):
        # Rows: {0,1} x3 and {0} x2 -> {1} (sup 3) is absorbed by {0,1}
        db = make_db([(0, 1), (0, 1), (0, 1), (0,), (0,)])
        supports = mine_eclat(db, 1)
        closed = filter_closed(supports)
        assert frozenset({1}) not in closed
        assert frozenset({0, 1}) in closed
        assert frozenset({0}) in closed   # support 5 > 3, so closed

    def test_matches_bruteforce_on_classic(self):
        db = make_db(CLASSIC_DB)
        supports = mine_eclat(db, 1)
        assert filter_closed(supports) == closed_bruteforce(supports)

    def test_closed_preserves_supports(self):
        db = make_db(CLASSIC_DB)
        supports = mine_eclat(db, 2)
        closed = filter_closed(supports)
        for itemset, support in closed.items():
            assert supports[itemset] == support


class TestFilterMaximal:
    def test_maximal_subset_of_closed(self):
        db = make_db(CLASSIC_DB)
        supports = mine_eclat(db, 2)
        closed = filter_closed(supports)
        maximal = filter_maximal(supports)
        assert set(maximal) <= set(closed)

    def test_no_frequent_strict_superset(self):
        db = make_db(CLASSIC_DB)
        supports = mine_eclat(db, 2)
        maximal = filter_maximal(supports)
        for itemset in maximal:
            for other in supports:
                assert not other > itemset


class TestClosureOperator:
    def test_closure_adds_implied_items(self):
        # Item 1 always co-occurs with item 0.
        db = make_db([(0, 1), (0, 1), (0,)])
        cover = db.cover_of([1])
        assert closure_of(db, cover) == frozenset({0, 1})

    def test_closure_of_closed_set_is_itself(self):
        db = make_db(CLASSIC_DB)
        supports = mine_eclat(db, 1)
        closed = filter_closed(supports)
        for itemset in closed:
            assert closure_of(db, db.cover_of(itemset)) == itemset

    def test_verify_closed_oracle(self):
        db = make_db(CLASSIC_DB)
        supports = mine_eclat(db, 1)
        closed = set(filter_closed(supports))
        verdicts = verify_closed(db, list(supports))
        for itemset, is_closed in verdicts.items():
            assert is_closed == (itemset in closed)

    def test_closure_map_and_classes(self):
        db = make_db([(0, 1), (0, 1), (0,)])
        supports = mine_eclat(db, 1)
        closures = closure_map(db, supports)
        assert closures[frozenset({1})] == frozenset({0, 1})
        classes = equivalence_classes(closures)
        assert frozenset({1}) in classes[frozenset({0, 1})]


@given(random_dbs())
@settings(max_examples=50, deadline=None)
def test_filter_closed_matches_bruteforce(db_minsup):
    db, minsup = db_minsup
    supports = frequent_itemsets_bruteforce(db, minsup)
    assert filter_closed(dict(supports)) == closed_bruteforce(supports)


@given(random_dbs())
@settings(max_examples=50, deadline=None)
def test_closure_operator_is_idempotent_and_extensive(db_minsup):
    db, minsup = db_minsup
    supports = mine_eclat(db, minsup)
    for itemset in list(supports)[:20]:
        cover = db.cover_of(itemset)
        closure = closure_of(db, cover)
        assert itemset <= closure                       # extensive
        assert closure_of(db, db.cover_of(closure)) == closure  # idempotent
        assert db.support_of(closure) == db.support_of(itemset)  # same cover


@given(random_dbs())
@settings(max_examples=40, deadline=None)
def test_closed_mine_flag_equals_post_filter(db_minsup):
    db, minsup = db_minsup
    from_flag = mine(db, minsup, closed=True).supports
    post = filter_closed(mine(db, minsup).supports)
    assert from_flag == post
