"""Tests of CSV reading/writing including multi-valued cells."""

from __future__ import annotations

import pytest

from repro.errors import TableError
from repro.etl.csvio import read_table, write_rows, write_table
from repro.etl.table import Table


class TestRoundTrip:
    def test_plain_table(self, tmp_path):
        table = Table.from_dict({"a": ["x", "y"], "n": [1, 2]})
        path = tmp_path / "t.csv"
        write_table(table, path)
        back = read_table(path, integer=["n"])
        assert back.categorical("a").values() == ["x", "y"]
        assert back.ints("n").values() == [1, 2]

    def test_multi_valued_cells(self, tmp_path):
        table = Table.from_dict(
            {"tags": [{"b", "a"}, set(), {"c"}], "id": [0, 1, 2]}
        )
        path = tmp_path / "mv.csv"
        write_table(table, path)
        back = read_table(path, multi_valued=["tags"], integer=["id"])
        assert back.multivalued("tags").values() == [
            frozenset({"a", "b"}),
            frozenset(),
            frozenset({"c"}),
        ]

    def test_multi_valued_serialisation_is_sorted(self, tmp_path):
        table = Table.from_dict({"tags": [{"z", "a", "m"}]})
        path = tmp_path / "s.csv"
        write_table(table, path)
        text = path.read_text()
        assert "a|m|z" in text

    def test_write_rows_helper(self, tmp_path):
        path = tmp_path / "rows.csv"
        write_rows([(1, "x"), (2, "y")], ["n", "s"], path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "n,s"
        assert lines[1] == "1,x"

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "t.csv"
        write_table(Table.from_dict({"a": ["x"]}), path)
        assert path.exists()


class TestReadErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TableError, match="empty"):
            read_table(path)

    def test_ragged_rows(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(TableError, match="does not match header"):
            read_table(path)

    def test_bad_integer(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("n\nxyz\n")
        with pytest.raises(TableError, match="expected integer"):
            read_table(path, integer=["n"])

    def test_empty_multivalued_cell_is_empty_set(self, tmp_path):
        path = tmp_path / "e.csv"
        path.write_text("tags\n\n")
        table = read_table(path, multi_valued=["tags"])
        assert table.multivalued("tags").values() == [frozenset()]
