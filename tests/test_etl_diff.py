"""Tests of the temporal table diff layer (row sets + affected covers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TableError
from repro.etl.diff import (
    OPEN_END,
    OPEN_START,
    TableDiff,
    interval_bounds,
    valid_at,
)
from repro.etl.table import Table
from repro.etl.schema import Schema
from repro.etl.temporal import Interval, TemporalMembership
from repro.itemsets.items import Item
from repro.itemsets.transactions import encode_table


class TestIntervalBounds:
    def test_sentinels_for_open_bounds(self):
        starts, ends = interval_bounds(
            [Interval(None, 5), Interval(3, None), Interval(1, 2)]
        )
        assert starts.tolist() == [OPEN_START, 3, 1]
        assert ends.tolist() == [5, OPEN_END, 2]

    def test_plain_tuples_accepted(self):
        starts, ends = interval_bounds([(None, None), (2000, 2004)])
        assert starts.tolist() == [OPEN_START, 2000]
        assert ends.tolist() == [OPEN_END, 2004]


class TestValidAt:
    def test_half_open_semantics(self):
        starts, ends = interval_bounds([Interval(2000, 2005)])
        assert not valid_at(starts, ends, 1999)[0]
        assert valid_at(starts, ends, 2000)[0]
        assert valid_at(starts, ends, 2004)[0]
        assert not valid_at(starts, ends, 2005)[0]

    def test_open_bounds_are_unbounded(self):
        starts, ends = interval_bounds([Interval(None, None)])
        assert valid_at(starts, ends, -(10 ** 12))[0]
        assert valid_at(starts, ends, 10 ** 12)[0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(TableError, match="starts"):
            valid_at(np.zeros(3, dtype=np.int64),
                     np.ones(2, dtype=np.int64), 0)

    def test_matches_interval_contains(self):
        intervals = [
            Interval(None, 5), Interval(3, None), Interval(1, 4),
            Interval(None, None),
        ]
        starts, ends = interval_bounds(intervals)
        for date in range(-2, 8):
            mask = valid_at(starts, ends, date)
            for k, interval in enumerate(intervals):
                assert mask[k] == interval.contains(date)


class TestTableDiff:
    @pytest.fixture()
    def membership(self):
        return TemporalMembership.from_records(
            [
                (0, 100, 2000, 2005),   # row 0: leaves before 2005
                (0, 101, 2003, None),   # row 1: joins at 2003
                (1, 100, None, 2002),   # row 2: leaves before 2002
                (2, 102, None, None),   # row 3: always there
            ]
        )

    def test_added_removed_changed(self, membership):
        diff = TableDiff.from_membership(membership, 2001, 2004)
        assert diff.added.tolist() == [1]       # joined at 2003
        assert diff.removed.tolist() == [2]     # gone after 2001
        assert diff.changed_mask.tolist() == [False, True, True, False]
        assert diff.n_changed == 2
        assert len(diff) == 4

    def test_no_change_between_adjacent_dates(self, membership):
        diff = TableDiff.from_membership(membership, 2003, 2004)
        assert diff.n_changed == 0
        assert diff.added.size == 0
        assert diff.removed.size == 0

    def test_churn_fraction(self, membership):
        diff = TableDiff.from_membership(membership, 2001, 2004)
        # 3 valid at 2001, 3 valid at 2004, 2 changed.
        assert diff.churn() == pytest.approx(2 / 3)
        empty = TableDiff(0, 1, np.zeros(0, bool), np.zeros(0, bool))
        assert empty.churn() == 0.0

    def test_mask_length_mismatch_rejected(self):
        with pytest.raises(TableError, match="differ in length"):
            TableDiff(0, 1, np.zeros(3, bool), np.zeros(4, bool))

    def test_between_equals_from_membership(self, membership):
        starts, ends = interval_bounds(e.interval for e in membership)
        a = TableDiff.between(starts, ends, 2001, 2004)
        b = TableDiff.from_membership(membership, 2001, 2004)
        assert a.valid_old.tolist() == b.valid_old.tolist()
        assert a.valid_new.tolist() == b.valid_new.tolist()


class TestAffectedItems:
    @pytest.fixture()
    def db(self):
        table = Table.from_dict(
            {
                "g": ["F", "M", "F", "M"],
                "r": ["north", "north", "south", "south"],
                "unitID": [0, 0, 1, 1],
            }
        )
        schema = Schema.build(
            segregation=["g"], context=["r"], unit="unitID"
        )
        return encode_table(table, schema)

    def test_covers_restricted_to_changed_rows(self, db):
        # Only row 1 (M, north) changes.
        diff = TableDiff(
            0, 1,
            np.array([True, True, True, True]),
            np.array([True, False, True, True]),
        )
        affected = diff.affected_items(db)
        by_item = {db.dictionary.item(i): cover for i, cover in affected.items()}
        assert set(by_item) == {Item("g", "M"), Item("r", "north")}
        for cover in by_item.values():
            assert cover.to_indices().tolist() == [1]

    def test_no_change_means_no_affected_items(self, db):
        diff = TableDiff(0, 1, np.ones(4, bool), np.ones(4, bool))
        assert diff.affected_items(db) == {}
