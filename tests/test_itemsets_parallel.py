"""``workers=``: multiprocess eclat mining, bit-exact vs sequential.

Every parity test asserts *dict equality including iteration order* —
the parallel miner splices per-worker emissions back into root order,
so its output dict must be indistinguishable from the sequential DFS,
itemset by itemset, support by support, position by position.  Edge
cases: one worker, more workers than root items, closed mode, covers,
non-default codecs, typed mining, restricted (``within=``/temporal)
databases, and the two failure surfaces (a worker raising mid-DFS and
shared-memory segment cleanup).
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.errors import MiningError
from repro.itemsets import eclat
from repro.itemsets import parallel as ip
from repro.itemsets.closed import filter_closed, mine_closed
from repro.itemsets.eclat import mine_eclat, mine_eclat_typed
from repro.itemsets.items import Item, ItemDictionary, ItemKind
from repro.itemsets.transactions import TransactionDatabase, encode_table

from repro.data.synthetic import random_final_table

COVER_CODECS = ["packed", "bool", "ewah"]


def make_db(rows, n_items=None, codec="packed"):
    size = n_items if n_items is not None else (
        max((max(r) for r in rows if r), default=-1) + 1
    )
    dictionary = ItemDictionary()
    for i in range(size):
        dictionary.add(Item("x", i), ItemKind.SA)
    return TransactionDatabase(
        [tuple(r) for r in rows], dictionary, codec=codec
    )


def random_rows(rng, n_rows, n_items, density=0.4):
    return [
        tuple(sorted(np.flatnonzero(rng.random(n_items) < density)))
        for _ in range(n_rows)
    ]


def assert_same_ordered(expected, got):
    """Dict equality plus identical iteration order."""
    assert list(got.keys()) == list(expected.keys())
    for key in expected:
        e, g = expected[key], got[key]
        if isinstance(e, (int, np.integer)):
            assert e == g
        else:                               # covers
            assert e.tolist() == g.tolist()


@pytest.mark.parametrize("workers", [1, 2, 8])
@pytest.mark.parametrize("codec", COVER_CODECS)
def test_parallel_bit_identity(workers, codec):
    rng = np.random.default_rng(17)
    db = make_db(random_rows(rng, 60, 9), codec=codec)
    expected = mine_eclat(db, 3)
    got = mine_eclat(db, 3, workers=workers)
    assert_same_ordered(expected, got)


@pytest.mark.parametrize("workers", [2, 8])
def test_parallel_with_covers(workers):
    rng = np.random.default_rng(23)
    db = make_db(random_rows(rng, 50, 8))
    expected = mine_eclat(db, 2, with_covers=True)
    got = mine_eclat(db, 2, with_covers=True, workers=workers)
    assert_same_ordered(expected, got)


def test_parallel_more_workers_than_roots():
    db = make_db([(0, 1), (0, 1), (1, 2), (0, 2)])
    expected = mine_eclat(db, 1)
    got = mine_eclat(db, 1, workers=16)
    assert_same_ordered(expected, got)


def test_parallel_respects_items_and_max_len():
    rng = np.random.default_rng(31)
    db = make_db(random_rows(rng, 70, 10))
    expected = mine_eclat(db, 2, items=[0, 2, 4, 6], max_len=2)
    got = mine_eclat(db, 2, items=[0, 2, 4, 6], max_len=2, workers=3)
    assert_same_ordered(expected, got)


def test_parallel_within_restricted_view():
    rng = np.random.default_rng(37)
    db = make_db(random_rows(rng, 80, 8))
    within = db.cover_of(frozenset({0}))
    expected = mine_eclat(db, 2, within=within)
    got = mine_eclat(db, 2, within=within, workers=2)
    assert_same_ordered(expected, got)


def test_parallel_on_restricted_database():
    rng = np.random.default_rng(41)
    db = make_db(random_rows(rng, 90, 8))
    active = np.arange(len(db)) % 3 != 0
    restricted = db.restrict(active)
    expected = mine_eclat(restricted, 2)
    got = mine_eclat(restricted, 2, workers=2)
    assert_same_ordered(expected, got)


def test_parallel_no_frequent_items():
    db = make_db([(0,), (1,)])
    assert mine_eclat(db, 2, workers=2) == {}


@pytest.mark.parametrize("workers", [1, 2, 8])
def test_typed_parallel_bit_identity(workers):
    table, schema = random_final_table(
        400, 8, sa_attributes={"g": 2, "e": 3},
        ca_attributes={"r": 3, "s": 3}, seed=5,
    )
    db = encode_table(table, schema)
    kwargs = dict(
        sa_ids=db.dictionary.sa_ids, ca_ids=db.dictionary.ca_ids,
        max_sa=2, max_ca=2,
    )
    expected = mine_eclat_typed(db, 3, **kwargs)
    got = mine_eclat_typed(db, 3, workers=workers, **kwargs)
    assert_same_ordered(expected, got)


@pytest.mark.parametrize("workers", [1, 2, 8])
@pytest.mark.parametrize("codec", COVER_CODECS)
def test_closed_parallel_bit_identity(workers, codec):
    rng = np.random.default_rng(43)
    db = make_db(random_rows(rng, 60, 9), codec=codec)
    expected = mine_closed(db, 3)
    got = mine_closed(db, 3, workers=workers)
    assert_same_ordered(expected, got)


def test_closed_parallel_with_covers():
    rng = np.random.default_rng(47)
    db = make_db(random_rows(rng, 50, 8))
    expected = mine_closed(db, 2, with_covers=True)
    got = mine_closed(db, 2, with_covers=True, workers=2)
    assert_same_ordered(expected, got)


def test_closed_equals_filtered_full_enumeration():
    rng = np.random.default_rng(53)
    db = make_db(random_rows(rng, 60, 8))
    via_filter = filter_closed(mine_eclat(db, 2))
    assert dict(mine_closed(db, 2, workers=2)) == dict(via_filter)


def test_workers_clamp_to_one():
    # Mirrors cube/parallel: non-positive counts degrade to one worker
    # (the pool still runs) instead of raising; the builder layer is
    # where a bad ``mine_workers=`` fails loudly.
    db = make_db([(0, 1), (0, 1), (1,)])
    expected = mine_eclat(db, 1)
    assert_same_ordered(expected, mine_eclat(db, 1, workers=0))
    assert dict(mine_closed(db, 1, workers=-1)) == dict(mine_closed(db, 1))


def test_resolve_workers_defaults_to_cpu_count():
    assert ip.resolve_workers(3) == 3
    assert ip.resolve_workers(None) >= 1


def test_partition_roots_balances_and_clamps():
    supports = np.array([2, 3, 5, 7, 11, 13], dtype=np.int64)
    parts = ip.partition_roots(supports, 3)
    assert len(parts) == 3
    assert sorted(p for part in parts for p in part) == list(range(6))
    assert all(part == sorted(part) for part in parts)
    # Never more partitions than roots, never empty ones.
    parts = ip.partition_roots(supports[:2], 5)
    assert len(parts) == 2
    assert all(part for part in parts)


# ---------------------------------------------------------------------------
# Failure surfaces: a worker raising must fail loudly (not hang), and
# the shared-memory segment must be unlinked on every path.
# ---------------------------------------------------------------------------

def _track_segments(monkeypatch):
    created = []
    original = ip._segment_name

    def tracking(tag):
        name = original(tag)
        created.append(name)
        return name

    monkeypatch.setattr(ip, "_segment_name", tracking)
    return created


def assert_segments_unlinked(names):
    assert names, "expected at least one shared-memory segment"
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_segments_unlinked_on_success(monkeypatch):
    created = _track_segments(monkeypatch)
    rng = np.random.default_rng(59)
    db = make_db(random_rows(rng, 40, 7))
    mine_eclat(db, 2, workers=2)
    assert_segments_unlinked(created)


def test_worker_failure_propagates_mining_error(monkeypatch):
    created = _track_segments(monkeypatch)

    def boom(*args, **kwargs):
        raise ValueError("injected mid-DFS failure")

    # Forked workers inherit the monkeypatched kernel; under spawn the
    # patch does not propagate, so only assert the injection fired
    # where fork semantics guarantee it.
    monkeypatch.setattr(eclat, "mine_root", boom)
    rng = np.random.default_rng(61)
    db = make_db(random_rows(rng, 40, 7))
    if ip._mp_context().get_start_method() == "fork":
        with pytest.raises(MiningError, match="injected"):
            mine_eclat(db, 2, workers=2)
    else:                                   # pragma: no cover
        with pytest.raises(MiningError):
            mine_eclat(db, 2, workers=2)
    assert_segments_unlinked(created)
