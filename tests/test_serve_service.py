"""Tests of the serving layer: CubeService and the ``repro.serve`` CLI.

The serving contract: an opened snapshot answers every exploration
query identically to the live cube it was dumped from, mutates nothing
after open, and is therefore safe for concurrent reader threads — the
thread-pool test hammers a fresh (cold, lazy-state-unbuilt) service
from many threads and checks every answer against the single-threaded
reference.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cube.builder import build_cube
from repro.serve.__main__ import main as serve_main
from repro.serve.service import CubeService
from repro.store import dump_snapshot, open_snapshot


@pytest.fixture(scope="module")
def built(schools):
    table, schema = schools
    return build_cube(table, schema, min_population=10, min_minority=3)


@pytest.fixture(scope="module")
def snapshot_dir(built, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "snap"
    dump_snapshot(built, path)
    return path


class TestCubeService:
    def test_opens_snapshot_path(self, built, snapshot_dir):
        service = CubeService(snapshot_dir)
        assert len(service.cube) == len(built)
        assert service.cube.metadata.extra["snapshot"]["mmap"] is True

    def test_wraps_live_cube(self, built):
        service = CubeService(built)
        assert service.cube is built

    def test_top_matches_live(self, built, snapshot_dir):
        service = CubeService(snapshot_dir)
        live = CubeService(built)
        assert (
            service.top("D", k=5, min_minority=5)
            == live.top("D", k=5, min_minority=5)
        )

    def test_point_and_navigation_queries(self, built, snapshot_dir):
        service = CubeService(snapshot_dir)
        sa = {"ethnicity": "minority"}
        assert service.value("D", sa=sa) == built.value("D", sa=sa)
        assert service.cell(sa=sa) == built.cell(sa=sa)
        got = {s.key for s in service.children()}
        want = {
            key for key in built.keys() if len(key[0]) + len(key[1]) == 1
        }
        assert got == want
        child = service.cell(sa=sa, ca={"city": "Rivertown"})
        parents = service.parents(sa=sa, ca={"city": "Rivertown"})
        assert child is not None and len(parents) == 2
        assert (
            [s.key for s in service.slice(ca={"city": "Rivertown"})]
            == [s.key for s in built.slice(ca={"city": "Rivertown"})]
        )

    def test_pivot_matches_live(self, built, snapshot_dir):
        from repro.report.pivot import pivot

        service = CubeService(snapshot_dir)
        assert (
            service.pivot("D", "ethnicity", "city")
            == pivot(built, "D", "ethnicity", "city")
        )

    def test_info_carries_provenance(self, snapshot_dir):
        info = CubeService(snapshot_dir).info()
        assert info["cells"] > 0
        assert info["snapshot"]["path"] == str(snapshot_dir)
        assert "D" in info["index_names"]

    def test_concurrent_readers_agree_with_reference(self, snapshot_dir):
        """Many threads over one cold service: every answer identical."""
        reference_cube = open_snapshot(snapshot_dir)
        reference = CubeService(reference_cube)
        expected = {
            "top": reference.top("D", k=5, min_minority=5),
            "slice": [
                s.key for s in reference.slice(ca={"city": "Rivertown"})
            ],
            "value": reference.value("D", sa={"ethnicity": "minority"}),
            "pivot": reference.pivot("D", "ethnicity", "city"),
            "children": {s.key for s in reference.children()},
        }

        # A fresh open: lazy keys/index are *not* built yet, so the
        # first queries race to build them — warm() plus read-only
        # arrays must make that safe.
        service = CubeService(open_snapshot(snapshot_dir))

        def worker(i: int):
            kind = ("top", "slice", "value", "pivot", "children")[i % 5]
            if kind == "top":
                return kind, service.top("D", k=5, min_minority=5)
            if kind == "slice":
                return kind, [
                    s.key for s in service.slice(ca={"city": "Rivertown"})
                ]
            if kind == "value":
                return kind, service.value("D", sa={"ethnicity": "minority"})
            if kind == "pivot":
                return kind, service.pivot("D", "ethnicity", "city")
            return kind, {s.key for s in service.children()}

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(worker, range(200)))
        assert len(results) == 200
        for kind, got in results:
            assert got == expected[kind], f"{kind} diverged under threads"


    def test_concurrent_point_queries_on_live_closed_cube(self, schools):
        """Live closed-mode cubes resolve misses through the lazy
        resolver; warm() must cover its transaction-database caches so
        threads never race the unsynchronized lazy builds."""
        table, schema = schools
        from repro.cube.builder import SegregationDataCubeBuilder

        closed = SegregationDataCubeBuilder(
            mode="closed", min_population=10, min_minority=3
        ).build(table, schema)
        full = build_cube(table, schema, min_population=10, min_minority=3)
        queries = list(full.keys())
        expected = {k: closed.value_by_key("D", k) for k in queries}
        service = CubeService(closed)

        def worker(i: int):
            key = queries[i % len(queries)]
            return key, service.value_by_key("D", key)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(worker, range(100)))
        import math

        for key, got in results:
            want = expected[key]
            assert got == want or (math.isnan(got) and math.isnan(want))


class TestServeCli:
    def test_typed_vocabulary_coordinates_addressable(
        self, tmp_path, capsys
    ):
        """int/bool-valued items are reachable from string CLI args."""
        from repro.cube.cell import CellStats
        from repro.cube.coordinates import make_key
        from repro.cube.cube import CubeMetadata, SegregationCube
        from repro.itemsets.items import Item, ItemDictionary, ItemKind

        dictionary = ItemDictionary()
        dictionary.add(Item("g", "F"), ItemKind.SA)
        dictionary.add(Item("n_boards", 2), ItemKind.CA)
        key = make_key([0], [1])
        cube = SegregationCube(
            {key: CellStats(key, 8, 3, 2, {"D": 0.25})},
            dictionary,
            CubeMetadata(
                index_names=["D"], min_population=1, min_minority=1,
                n_rows=8, n_units=2, mode="all", backend="test",
            ),
        )
        dump_snapshot(cube, tmp_path / "typed")
        code = serve_main(
            [str(tmp_path / "typed"), "cell",
             "--sa", "g=F", "--ca", "n_boards=2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "n_boards=2" in out
    def test_info(self, snapshot_dir, capsys):
        assert serve_main([str(snapshot_dir), "info"]) == 0
        out = capsys.readouterr().out
        assert "cells" in out

    def test_top_text_and_json(self, built, snapshot_dir, capsys):
        assert serve_main(
            [str(snapshot_dir), "top", "--index", "D", "-k", "3",
             "--min-minority", "5"]
        ) == 0
        text = capsys.readouterr().out
        assert "rank" in text
        assert serve_main(
            [str(snapshot_dir), "top", "--index", "D", "-k", "3",
             "--min-minority", "5", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        live = built.top("D", k=3, min_minority=5)
        assert [f["cell"] for f in payload] == [
            built.describe(s.key) for s in live
        ]

    def test_cell_found_and_missing(self, snapshot_dir, capsys):
        assert serve_main(
            [str(snapshot_dir), "cell", "--sa", "ethnicity=minority"]
        ) == 0
        assert "ethnicity=minority" in capsys.readouterr().out
        code = serve_main(
            [str(snapshot_dir), "cell", "--sa", "ethnicity=minority",
             "--ca", "city=Lakeside", "--sa", "sex=F"]
        )
        capsys.readouterr()
        assert code in (0, 1)  # cell may or may not be materialised

    def test_rows_text_and_json(self, built, snapshot_dir, capsys):
        assert serve_main([str(snapshot_dir), "rows"]) == 0
        text = capsys.readouterr().out
        assert "ethnicity" in text and "units" in text
        assert serve_main([str(snapshot_dir), "rows", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == built.to_rows()

    def test_pivot_json(self, snapshot_dir, capsys):
        assert serve_main(
            [str(snapshot_dir), "pivot", "--index", "D",
             "--rows", "ethnicity", "--cols", "city", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"][-1] == "*"
        assert len(payload["values"]) == len(payload["rows"])

    def test_no_mmap_flag(self, snapshot_dir, capsys):
        # The documented form: flag after the subcommand.
        assert serve_main([str(snapshot_dir), "info", "--no-mmap"]) == 0
        out = capsys.readouterr().out
        assert "'mmap': False" in out

    def test_unknown_coordinate_is_clean_error(self, snapshot_dir, capsys):
        code = serve_main(
            [str(snapshot_dir), "slice", "--sa", "ethnicity=bogus"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_missing_snapshot_is_clean_error(self, tmp_path, capsys):
        code = serve_main([str(tmp_path / "nope"), "info"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_bad_coordinate_syntax_exits(self, snapshot_dir):
        with pytest.raises(SystemExit):
            serve_main([str(snapshot_dir), "slice", "--sa", "noequals"])
