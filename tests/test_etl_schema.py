"""Tests of schema declarations and validation."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.etl.schema import AttributeSpec, Role, Schema
from repro.etl.table import Table


class TestSchemaBuild:
    def test_build_collects_roles(self):
        schema = Schema.build(
            segregation=["sex", "age"],
            context=["region"],
            unit="unitID",
            id_="pid",
            multi_valued=["region"],
        )
        assert schema.sa_names == ["sex", "age"]
        assert schema.ca_names == ["region"]
        assert schema.unit_name == "unitID"
        assert schema.id_name == "pid"
        assert schema.spec("region").multi_valued

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema.build(segregation=["a"], context=["a"])

    def test_two_units_rejected(self):
        with pytest.raises(SchemaError, match="more than one unit"):
            Schema(
                [
                    AttributeSpec("u1", Role.UNIT),
                    AttributeSpec("u2", Role.UNIT),
                ]
            )

    def test_multivalued_unit_rejected(self):
        with pytest.raises(SchemaError):
            AttributeSpec("u", Role.UNIT, multi_valued=True)

    def test_missing_unit_raises_on_access(self):
        schema = Schema.build(segregation=["sex"])
        with pytest.raises(SchemaError, match="no unit"):
            schema.unit_name

    def test_unknown_spec_raises(self):
        schema = Schema.build(segregation=["sex"])
        with pytest.raises(SchemaError, match="not in schema"):
            schema.spec("nope")

    def test_with_spec_replaces(self):
        schema = Schema.build(segregation=["sex"])
        updated = schema.with_spec(AttributeSpec("sex", Role.CONTEXT))
        assert updated.ca_names == ["sex"]
        assert updated.sa_names == []

    def test_analysis_names_order(self):
        schema = Schema.build(segregation=["s"], context=["c1", "c2"])
        assert schema.analysis_names() == ["s", "c1", "c2"]


class TestValidation:
    @pytest.fixture()
    def table(self):
        return Table.from_dict(
            {
                "sex": ["F", "M"],
                "tags": [{"a"}, {"b"}],
                "unitID": [0, 1],
            }
        )

    def test_valid_schema_passes(self, table):
        schema = Schema.build(
            segregation=["sex"],
            context=["tags"],
            unit="unitID",
            multi_valued=["tags"],
        )
        schema.validate(table)

    def test_missing_column(self, table):
        schema = Schema.build(segregation=["age"])
        with pytest.raises(SchemaError, match="missing column"):
            schema.validate(table)

    def test_unit_must_be_integer(self, table):
        schema = Schema.build(unit="sex")
        with pytest.raises(SchemaError, match="must be integer"):
            schema.validate(table)

    def test_multiplicity_mismatch_single_declared_multi_stored(self, table):
        schema = Schema.build(segregation=["tags"])
        with pytest.raises(SchemaError, match="single-valued"):
            schema.validate(table)

    def test_multiplicity_mismatch_multi_declared_single_stored(self, table):
        schema = Schema.build(segregation=["sex"], multi_valued=["sex"])
        with pytest.raises(SchemaError, match="multi-valued"):
            schema.validate(table)
