"""Batched-vs-scalar index parity: the columnar fill's correctness pin.

Every ``IndexSpec.batch_func`` must reproduce the scalar ``func`` to the
bit — the columnar cube fill is advertised as producing *identical*
cubes, so these property tests assert exact float equality (no
tolerance), including the degenerate-``nan`` cases.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes.base import DEFAULT_INDEXES, IndexSpec
from repro.indexes.counts import UnitCounts


def _assert_batch_matches_scalar(spec: IndexSpec, t: np.ndarray,
                                 m: np.ndarray) -> None:
    batch = spec.compute_batch(t, m)
    assert batch.shape == (len(m),)
    scalar = np.array(
        [spec.compute(UnitCounts(t, row)) for row in m], dtype=np.float64
    )
    both_nan = np.isnan(batch) & np.isnan(scalar)
    assert ((batch == scalar) | both_nan).all(), (
        f"{spec.name}: batch {batch} != scalar {scalar} for t={t}, m={m}"
    )


@st.composite
def count_batches(draw, min_units=1, max_units=30, max_cells=8):
    """Random ``(t, m)`` batches, zeros (empty units) included."""
    n = draw(st.integers(min_units, max_units))
    t = np.array(
        draw(st.lists(st.integers(0, 80), min_size=n, max_size=n)),
        dtype=np.float64,
    )
    n_cells = draw(st.integers(0, max_cells))
    m = np.array(
        [
            [draw(st.integers(0, int(ti))) for ti in t]
            for _ in range(n_cells)
        ],
        dtype=np.float64,
    ).reshape(n_cells, n)
    return t, m


@given(count_batches())
@settings(max_examples=150, deadline=None)
def test_batch_kernels_bit_identical(batch):
    t, m = batch
    for spec in DEFAULT_INDEXES:
        _assert_batch_matches_scalar(spec, t, m)


class TestEdgeCases:
    def test_all_zero_units(self):
        t = np.zeros(4)
        m = np.zeros((3, 4))
        for spec in DEFAULT_INDEXES:
            # Everything degenerate: nan across the board, like scalar.
            assert np.isnan(spec.compute_batch(t, m)).all()

    def test_single_unit(self):
        t = np.array([10.0])
        m = np.array([[0.0], [4.0], [10.0]])
        for spec in DEFAULT_INDEXES:
            _assert_batch_matches_scalar(spec, t, m)

    def test_empty_minority_rows_are_nan(self):
        t = np.array([5.0, 7.0, 3.0])
        m = np.array([[0.0, 0.0, 0.0], [2.0, 3.0, 1.0]])
        for spec in DEFAULT_INDEXES:
            values = spec.compute_batch(t, m)
            assert np.isnan(values[0])
            _assert_batch_matches_scalar(spec, t, m)

    def test_full_minority_rows_are_nan(self):
        t = np.array([5.0, 7.0])
        m = np.array([[5.0, 7.0]])
        for spec in DEFAULT_INDEXES:
            assert np.isnan(spec.compute_batch(t, m)).all()

    def test_zero_cells(self):
        t = np.array([5.0, 7.0])
        m = np.zeros((0, 2))
        for spec in DEFAULT_INDEXES:
            assert spec.compute_batch(t, m).shape == (0,)

    def test_fortran_ordered_input_still_bit_identical(self):
        t = np.array([6.0, 9.0, 4.0, 7.0])
        m = np.asfortranarray(
            [[3.0, 2.0, 1.0, 5.0], [0.0, 9.0, 0.0, 1.0], [1.0, 1.0, 1.0, 1.0]]
        )
        for spec in DEFAULT_INDEXES:
            _assert_batch_matches_scalar(spec, t, m)

    def test_mixed_empty_units_dropped_like_scalar(self):
        t = np.array([6.0, 0.0, 9.0, 0.0, 4.0])
        m = np.array([[3.0, 0.0, 2.0, 0.0, 1.0],
                      [0.0, 0.0, 9.0, 0.0, 0.0]])
        for spec in DEFAULT_INDEXES:
            _assert_batch_matches_scalar(spec, t, m)


class TestDispatch:
    def test_scalar_fallback_without_batch_func(self):
        spec = IndexSpec(
            "TestProp", "Minority proportion",
            lambda c: c.proportion, (0.0, 1.0), True,
        )
        assert spec.batch_func is None
        t = np.array([4.0, 0.0, 6.0])
        m = np.array([[1.0, 0.0, 2.0], [4.0, 0.0, 6.0]])
        values = spec.compute_batch(t, m)
        expected = [3 / 10, 1.0]
        assert values == pytest.approx(expected)

    def test_shape_mismatch_rejected(self):
        from repro.errors import SegregationIndexError

        spec = DEFAULT_INDEXES[0]
        with pytest.raises(SegregationIndexError, match="does not match"):
            spec.compute_batch(np.array([1.0, 2.0]), np.zeros((2, 3)))
        with pytest.raises(SegregationIndexError, match="does not match"):
            spec.compute_batch(np.array([1.0, 2.0]), np.zeros(2))
